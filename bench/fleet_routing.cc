// Standby read fleet under primary write churn: one primary fans redo out to
// N standbys, a lag-aware router spreads thousands of analytic sessions over
// them by freshness contract. The headline claim: aggregate bounded-staleness
// scan throughput scales with standby count (>= 3x at 4 standbys vs 1) with
// ZERO freshness violations.
//
// The whole fleet runs in one process sharing the host's cores, so raw scan
// throughput cannot scale with node count here. NodeCapacity models what a
// real deployment has — one server per standby — as an explicit per-node
// admission budget (token rate + concurrency slots), making the measured
// scaling the routing layer's: can the router saturate N nodes' budgets
// without breaking any contract? Tune with STRATUS_NODE_QPS / _NODE_SLOTS.
// The default per-node budget is set well below what one host core can
// execute (N x budget must stay under host saturation, or the host — not
// the modeled per-node capacity — becomes the binding constraint and the
// measured scaling collapses to the host's).

#include "bench_util.h"
#include "common/clock.h"
#include "common/random.h"
#include "fleet/fleet_cluster.h"
#include "fleet/fleet_observability.h"
#include "fleet/fleet_router.h"
#include "workload/fleet_driver.h"

#include <atomic>
#include <thread>
#include <vector>

namespace stratus {
namespace {

struct PhaseResult {
  double qps = 0;
  uint64_t queries = 0;
  uint64_t errors = 0;
  uint64_t driver_violations = 0;
  uint64_t router_violations = 0;
  uint64_t pinned_mismatches = 0;
  double decide_p50_us = 0, decide_p99_us = 0;
  double query_p50_us = 0, query_p99_us = 0;
  std::vector<double> load_share;
  fleet::RouterStats router;
  std::string fleet_json;  ///< /v/fleet snapshot taken mid-run.
};

DatabaseOptions ChurnDbOptions(obs::MetricsRegistry* registry) {
  DatabaseOptions options;
  options.registry = registry;
  options.apply.num_workers = 2;
  options.apply.barrier_interval = 8;
  options.population.blocks_per_imcu = 2;
  options.population.manager_interval_us = 2000;
  options.population.repop_invalid_threshold = 0.10;
  options.shipping.heartbeat_interval_us = 500;
  options.commit_table_partitions = 2;
  options.journal_buckets = 8;
  return options;
}

/// Primary write churn, same op mix as the consistency harness.
class Churn {
 public:
  Churn(PrimaryDb* primary, ObjectId table, uint64_t seed, int64_t initial_rows)
      : primary_(primary), table_(table), next_id_(initial_rows) {
    writers_.emplace_back([this, seed] { WriterLoop(seed * 3 + 1); });
    writers_.emplace_back([this, seed] { WriterLoop(seed * 5 + 2); });
  }

  ~Churn() {
    stop_.store(true, std::memory_order_release);
    for (auto& w : writers_) w.join();
  }

  static Row MakeRow(int64_t id, Random* rng) {
    return Row{Value(id), Value(static_cast<int64_t>(rng->Uniform(50))),
               Value(static_cast<int64_t>(rng->Uniform(50))),
               Value(std::string("s") + std::to_string(rng->Uniform(6)))};
  }

 private:
  void WriterLoop(uint64_t wseed) {
    Random rng(wseed);
    while (!stop_.load(std::memory_order_acquire)) {
      Transaction txn = primary_->Begin();
      bool ok = true;
      const int ops = 1 + static_cast<int>(rng.Uniform(4));
      for (int i = 0; i < ops && ok; ++i) {
        const uint32_t dice = static_cast<uint32_t>(rng.Uniform(100));
        if (dice < 60) {
          const int64_t id = rng.UniformInt(0, next_id_.load() - 1);
          Status st = primary_->UpdateByKey(&txn, table_, id, MakeRow(id, &rng));
          if (st.IsAborted()) ok = false;
        } else if (dice < 85) {
          const int64_t id = next_id_.fetch_add(1);
          (void)primary_->Insert(&txn, table_, MakeRow(id, &rng), nullptr);
        } else {
          const int64_t id = rng.UniformInt(0, next_id_.load() - 1);
          Table* t = primary_->table(table_);
          const auto rid = t->index()->Lookup(id);
          if (rid.has_value()) {
            Status st = primary_->Delete(&txn, table_, *rid);
            if (st.IsAborted()) ok = false;
          }
        }
      }
      if (ok) {
        (void)primary_->Commit(&txn);
      } else {
        primary_->Abort(&txn);
      }
    }
  }

  PrimaryDb* primary_;
  const ObjectId table_;
  std::atomic<int64_t> next_id_;
  std::atomic<bool> stop_{false};
  std::vector<std::thread> writers_;
};

PhaseResult RunPhase(const char* name, int num_standbys,
                     const fleet::NodeCapacity& capacity,
                     FleetDriverOptions driver_options) {
  std::printf("\nRunning: %s (%d standby%s)...\n", name, num_standbys,
              num_standbys == 1 ? "" : "s");

  obs::MetricsRegistry registry;
  fleet::FleetOptions options;
  options.num_standbys = num_standbys;
  options.db = ChurnDbOptions(&registry);
  options.capacity = capacity;
  fleet::FleetCluster fleet(options);
  fleet.Start();

  const int64_t initial_rows = EnvInt("STRATUS_ROWS", 3000);
  const ObjectId table =
      fleet
          .CreateTable("t", kDefaultTenant, Schema::WideTable(2, 1),
                       ImService::kStandbyOnly, true)
          .value();
  {
    Random rng(driver_options.seed);
    Transaction txn = fleet.primary()->Begin();
    for (int64_t i = 0; i < initial_rows; ++i) {
      (void)fleet.primary()->Insert(&txn, table, Churn::MakeRow(i, &rng),
                                    nullptr);
    }
    (void)fleet.primary()->Commit(&txn);
  }
  fleet.WaitForCatchup();
  for (int i = 0; i < fleet.num_standbys(); ++i)
    (void)fleet.node(i)->db()->PopulateNow(table);

  fleet::RouterOptions router_options;
  router_options.registry = &registry;
  fleet::FleetRouter router(&fleet, router_options);
  fleet::FleetObservability obs_surface(&fleet, &router);

  PhaseResult out;
  {
    Churn churn(fleet.primary(), table, driver_options.seed + 99, initial_rows);
    FleetDriver driver(&fleet, &router, table, driver_options);

    // Snapshot /v/fleet mid-run so the JSON shows live load, not quiesce.
    std::atomic<bool> snap_done{false};
    std::thread snapper([&] {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(driver_options.duration_ms / 2));
      out.fleet_json = obs_surface.FleetJson();
      snap_done.store(true);
    });
    driver.Run();
    snapper.join();
    (void)snap_done;

    FleetDriverStats& stats = driver.stats();
    out.qps = stats.Qps();
    out.queries = stats.queries.load();
    out.errors = stats.errors.load();
    out.driver_violations = stats.freshness_violations.load();
    out.pinned_mismatches = stats.pinned_mismatches.load();
    out.decide_p50_us = stats.decide_us.Percentile(50);
    out.decide_p99_us = stats.decide_us.Percentile(99);
    out.query_p50_us = stats.query_us.Percentile(50);
    out.query_p99_us = stats.query_us.Percentile(99);
  }
  out.router = router.stats();
  out.router_violations = out.router.freshness_violations;

  uint64_t total_served = 0;
  for (int i = 0; i < fleet.num_standbys(); ++i)
    total_served += fleet.node(i)->served();
  for (int i = 0; i < fleet.num_standbys(); ++i) {
    out.load_share.push_back(
        total_served == 0 ? 0.0
                          : static_cast<double>(fleet.node(i)->served()) /
                                static_cast<double>(total_served));
  }

  fleet.Stop();
  return out;
}

}  // namespace
}  // namespace stratus

int main() {
  using namespace stratus;
  PrintHeader("Standby read fleet — lag-aware routing over N standbys",
              "redo fan-out + freshness-contract routing (ROADMAP: one "
              "primary, N standbys)");

  const int standbys = static_cast<int>(EnvInt("STRATUS_FLEET_STANDBYS", 4));
  fleet::NodeCapacity capacity;
  capacity.max_qps = static_cast<double>(EnvInt("STRATUS_NODE_QPS", 100));
  capacity.slots = static_cast<int>(EnvInt("STRATUS_NODE_SLOTS", 4));

  FleetDriverOptions driver_options;
  driver_options.sessions = static_cast<int>(EnvInt("STRATUS_SESSIONS", 1000));
  driver_options.worker_threads =
      static_cast<int>(EnvInt("STRATUS_FLEET_WORKERS", 16));
  driver_options.duration_ms =
      static_cast<int>(EnvInt("STRATUS_DURATION_MS", 3000));
  driver_options.bounded_lag_scn =
      static_cast<Scn>(EnvInt("STRATUS_BOUND_SCN", 50'000));
  // 0 (default) = closed loop; > 0 paces arrivals at this aggregate rate.
  driver_options.target_qps =
      static_cast<double>(EnvInt("STRATUS_TARGET_QPS", 0));
  driver_options.seed = static_cast<uint64_t>(EnvInt("STRATUS_SEED", 42));

  BenchReport report("fleet_routing");
  report.Config("standbys", static_cast<int64_t>(standbys));
  report.Config("node_qps", capacity.max_qps);
  report.Config("node_slots", static_cast<int64_t>(capacity.slots));
  report.Config("sessions", static_cast<int64_t>(driver_options.sessions));
  report.Config("worker_threads",
                static_cast<int64_t>(driver_options.worker_threads));
  report.Config("duration_ms", static_cast<int64_t>(driver_options.duration_ms));
  report.Config("rows", EnvInt("STRATUS_ROWS", 3000));
  report.Config("bounded_lag_scn",
                static_cast<int64_t>(driver_options.bounded_lag_scn));
  report.Config("target_qps", driver_options.target_qps);

  // Phase A/B: identical bounded-staleness workload against 1 standby vs the
  // fleet — the scaling claim.
  FleetDriverOptions bounded = driver_options;
  bounded.strict_pct = 0;
  bounded.pinned_pct = 0;
  const PhaseResult single = RunPhase("bounded, single standby", 1, capacity,
                                      bounded);
  const PhaseResult fleet_run =
      RunPhase("bounded, full fleet", standbys, capacity, bounded);

  // Phase C: mixed contracts on the fleet — strict + pinned repeatable reads
  // riding along with the bounded workhorse traffic.
  FleetDriverOptions mixed = driver_options;
  mixed.strict_pct = static_cast<uint32_t>(EnvInt("STRATUS_STRICT_PCT", 15));
  mixed.pinned_pct = static_cast<uint32_t>(EnvInt("STRATUS_PINNED_PCT", 15));
  const PhaseResult mixed_run =
      RunPhase("mixed contracts, full fleet", standbys, capacity, mixed);

  const double speedup = single.qps > 0 ? fleet_run.qps / single.qps : 0;
  const uint64_t violations =
      single.driver_violations + single.router_violations +
      fleet_run.driver_violations + fleet_run.router_violations +
      mixed_run.driver_violations + mixed_run.router_violations;

  ReportTable table({"Phase", "QPS", "queries", "errors", "violations",
                     "decide p50/p99 (us)", "query p50/p99 (us)"});
  auto add_row = [&](const char* phase, const PhaseResult& r) {
    table.AddRow({phase, Fmt(r.qps), std::to_string(r.queries),
                  std::to_string(r.errors),
                  std::to_string(r.driver_violations + r.router_violations),
                  Fmt(r.decide_p50_us) + " / " + Fmt(r.decide_p99_us),
                  Fmt(r.query_p50_us) + " / " + Fmt(r.query_p99_us)});
  };
  add_row("bounded, 1 standby", single);
  add_row(("bounded, " + std::to_string(standbys) + " standbys").c_str(),
          fleet_run);
  add_row("mixed contracts", mixed_run);
  table.Print("FLEET ROUTING — aggregate throughput and contract compliance");

  std::printf("\nFleet speedup (bounded QPS, %d standbys vs 1): %.2fx %s\n",
              standbys, speedup, speedup >= 3.0 ? "(PASS >= 3x)" : "(BELOW 3x)");
  std::printf("Freshness violations across all phases: %llu %s\n",
              static_cast<unsigned long long>(violations),
              violations == 0 ? "(PASS: zero)" : "(FAIL: must be zero)");
  std::printf("Pinned re-read mismatches: %llu\n",
              static_cast<unsigned long long>(mixed_run.pinned_mismatches));
  std::printf("\nPer-standby load share (bounded fleet phase):");
  for (size_t i = 0; i < fleet_run.load_share.size(); ++i)
    std::printf(" sb%zu=%.3f", i, fleet_run.load_share[i]);
  std::printf("\nRouter (mixed): decisions=%llu strict=%llu bounded=%llu "
              "pinned=%llu sticky=%llu reroutes=%llu drains=%llu "
              "catchup_waits=%llu\n",
              static_cast<unsigned long long>(mixed_run.router.decisions),
              static_cast<unsigned long long>(mixed_run.router.strict_queries),
              static_cast<unsigned long long>(mixed_run.router.bounded_queries),
              static_cast<unsigned long long>(mixed_run.router.pinned_queries),
              static_cast<unsigned long long>(mixed_run.router.sticky_hits),
              static_cast<unsigned long long>(mixed_run.router.reroutes),
              static_cast<unsigned long long>(mixed_run.router.drains),
              static_cast<unsigned long long>(mixed_run.router.catchup_waits));
  std::printf("\n/v/fleet (mid-run, mixed phase): %.400s%s\n",
              mixed_run.fleet_json.c_str(),
              mixed_run.fleet_json.size() > 400 ? "..." : "");

  report.Metric("qps_single", single.qps);
  report.Metric("qps_fleet", fleet_run.qps);
  report.Metric("qps_mixed", mixed_run.qps);
  report.Metric("fleet_speedup", speedup);
  report.Metric("freshness_violations", violations);
  report.Metric("pinned_mismatches", mixed_run.pinned_mismatches);
  report.Metric("errors_single", single.errors);
  report.Metric("errors_fleet", fleet_run.errors);
  report.Metric("errors_mixed", mixed_run.errors);
  report.Metric("decide_p50_us", fleet_run.decide_p50_us);
  report.Metric("decide_p99_us", fleet_run.decide_p99_us);
  report.Metric("query_p50_us", fleet_run.query_p50_us);
  report.Metric("query_p99_us", fleet_run.query_p99_us);
  for (size_t i = 0; i < fleet_run.load_share.size(); ++i)
    report.Metric("load_share_sb" + std::to_string(i), fleet_run.load_share[i]);
  report.Metric("router_reroutes_mixed", mixed_run.router.reroutes);
  report.Metric("router_sticky_hits_mixed", mixed_run.router.sticky_hits);
  report.Metric("router_catchup_waits_mixed", mixed_run.router.catchup_waits);
  return 0;
}
