// Ablation of the Section III.F interconnect optimizations: with a 2-instance
// standby RAC, invalidation groups destined for the non-master instance are
// (a) batched into fewer messages and (b) pipelined so several messages share
// one round-trip wait. The paper: "messaging over the network can become a
// bottleneck [so] DBIM-on-ADG employs batching and pipelined transmission of
// invalidation groups to reduce the impact of network latency on QuerySCN
// advancement."

#include "bench_util.h"
#include "common/clock.h"
#include "common/random.h"
#include "net/channel.h"

#include <thread>

namespace stratus {
namespace {

struct Outcome {
  uint64_t advancements = 0;
  double avg_quiesce_us = 0;
  uint64_t messages = 0;
  uint64_t groups = 0;
  uint64_t rtt_waits = 0;
  double commits_per_sec = 0;
};

Outcome RunOnce(net::ChannelKind channel_kind, bool pipelined,
                size_t max_batch_groups, int duration_ms) {
  DatabaseOptions db_options = DefaultClusterOptions();
  db_options.standby_instances = 2;
  db_options.population.blocks_per_imcu = 8;
  db_options.transport.latency_us = static_cast<int64_t>(EnvInt("STRATUS_NET_US", 300));
  db_options.transport.pipelined = pipelined;
  db_options.transport.max_batch_groups = max_batch_groups;
  db_options.transport.channel.kind = channel_kind;
  AdgCluster cluster(db_options);
  cluster.Start();
  const ObjectId table =
      cluster
          .CreateTable("t", kDefaultTenant, Schema::WideTable(2, 1),
                       ImService::kStandbyOnly, true)
          .value();
  {
    Transaction txn = cluster.primary()->Begin();
    for (int64_t id = 0; id < 8000; ++id) {
      (void)cluster.primary()->Insert(
          &txn, table,
          Row{Value(id), Value(id % 3), Value(id % 5), Value(std::string("x"))},
          nullptr);
    }
    (void)cluster.primary()->Commit(&txn);
  }
  cluster.WaitForCatchup();
  (void)cluster.standby()->PopulateNow(table);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Random rng(9);
    while (!stop.load(std::memory_order_acquire)) {
      Transaction txn = cluster.primary()->Begin();
      for (int i = 0; i < 2; ++i) {
        const int64_t id = rng.UniformInt(0, 7999);
        (void)cluster.primary()->UpdateByKey(
            &txn, table, id,
            Row{Value(id), Value(static_cast<int64_t>(rng.Uniform(10))),
                Value(id % 5), Value(std::string("y"))});
      }
      (void)cluster.primary()->Commit(&txn);
    }
  });
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_release);
  writer.join();
  cluster.WaitForCatchup();
  const double wall_sec = watch.ElapsedSeconds();

  Outcome out;
  RecoveryCoordinator* coordinator = cluster.standby()->coordinator();
  out.advancements = coordinator->advancements();
  out.avg_quiesce_us =
      out.advancements == 0
          ? 0
          : static_cast<double>(coordinator->quiesce_nanos()) / 1000.0 /
                static_cast<double>(out.advancements);
  const TransportStats ts = cluster.standby()->channel()->stats();
  out.messages = ts.messages_sent;
  out.groups = ts.groups_sent;
  out.rtt_waits = ts.rtt_waits;
  out.commits_per_sec =
      static_cast<double>(cluster.primary()->txn_manager()->commits()) / wall_sec;
  cluster.Stop();
  return out;
}

}  // namespace
}  // namespace stratus

int main() {
  using namespace stratus;
  const int duration_ms = static_cast<int>(EnvInt("STRATUS_DURATION_MS", 2'000));
  PrintHeader("Ablation — RAC invalidation-group transport (batching + pipelining)",
              "ICDE'20 Section III.F: batching & pipelining hide interconnect latency");

  struct Config {
    const char* name;
    bool pipelined;
    size_t batch;
  };
  const Config configs[] = {
      {"stop-and-wait, no batching", false, 1},
      {"stop-and-wait, batched", false, 64},
      {"pipelined, no batching", true, 1},
      {"pipelined + batched", true, 64},
  };
  const struct {
    const char* name;
    net::ChannelKind kind;
  } kinds[] = {{"loopback", net::ChannelKind::kLoopback},
               {"tcp", net::ChannelKind::kSocket}};
  ReportTable table({"Wire", "Configuration", "QuerySCN advancements",
                     "avg quiesce (us)", "messages", "groups", "RTT waits",
                     "commits/s"});
  BenchReport report("ablation_rac_transport");
  report.Config("duration_ms", static_cast<int64_t>(duration_ms));
  for (const auto& k : kinds) {
    for (const Config& c : configs) {
      std::printf("\nRunning: %s over %s...\n", c.name, k.name);
      const Outcome out = RunOnce(k.kind, c.pipelined, c.batch, duration_ms);
      table.AddRow({k.name, c.name, std::to_string(out.advancements),
                    Fmt(out.avg_quiesce_us, 1), std::to_string(out.messages),
                    std::to_string(out.groups), std::to_string(out.rtt_waits),
                    Fmt(out.commits_per_sec, 0)});
      const std::string prefix =
          std::string(k.name) + (c.pipelined ? "_pipe" : "_sw") + "_b" +
          std::to_string(c.batch) + "_";
      report.Metric(prefix + "advancements", out.advancements);
      report.Metric(prefix + "messages", out.messages);
      report.Metric(prefix + "rtt_waits", out.rtt_waits);
      report.Metric(prefix + "commits_per_sec", out.commits_per_sec);
    }
  }
  table.Print("ABLATION — interconnect handling of invalidation groups");
  std::printf(
      "\nExpected shape: batching collapses messages; pipelining collapses RTT\n"
      "waits; together they keep QuerySCN advancement frequent (high count,\n"
      "low quiesce time) despite the simulated interconnect latency. The tcp\n"
      "rows add real per-message socket cost on top of the modeled RTT.\n");
  return 0;
}
