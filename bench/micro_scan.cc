// Microbenchmarks of the scan paths (Section II.B's raw IMCS advantage):
// row-store scan vs In-Memory Scan Engine over the same table, plus the cost
// of SMU reconciliation (fraction of rows invalid) and of population itself.

#include <benchmark/benchmark.h>

#include <fstream>

#include "bench_util.h"
#include "common/random.h"
#include "imcs/population.h"
#include "imcs/scan_engine.h"
#include "imcs/scan_kernels.h"
#include "obs/metrics.h"
#include "txn/txn_manager.h"

namespace stratus {
namespace {

/// Shared fixture: one table with N rows, populated once.
class ScanFixture {
 public:
  static constexpr int64_t kDomain = 1000;

  explicit ScanFixture(size_t rows)
      : log_(0, &scns_),
        mgr_(&scns_, &txns_, &store_, {&log_}, nullptr),
        cache_(&store_),
        table_(10, kDefaultTenant, "t", Schema::WideTable(10, 10), &store_),
        im_store_(0, 4ull << 30),
        snapshot_(&mgr_, &sync_) {
    Random rng(42);
    size_t loaded = 0;
    while (loaded < rows) {
      Transaction txn = mgr_.Begin();
      for (int i = 0; i < 1024 && loaded < rows; ++i, ++loaded) {
        Row row;
        row.push_back(Value(static_cast<int64_t>(loaded)));
        for (int c = 0; c < 10; ++c)
          row.push_back(Value(static_cast<int64_t>(rng.Uniform(kDomain))));
        for (int c = 0; c < 10; ++c)
          row.push_back(Value("v" + std::to_string(rng.Uniform(kDomain))));
        (void)mgr_.Insert(&txn, &table_, std::move(row), nullptr);
      }
      (void)mgr_.Commit(&txn);
    }
    PopulationOptions options;
    options.blocks_per_imcu = 32;
    populator_ = std::make_unique<Populator>(&im_store_, &snapshot_, &store_, options);
    populator_->EnableObject(&table_);
    (void)populator_->PopulateNow(10);
  }

  uint64_t Scan(bool use_imcs, int64_t pivot) {
    ReadView view;
    view.snapshot_scn = mgr_.visible_scn();
    view.resolver = &txns_;
    std::vector<Predicate> preds = {{1, PredOp::kEq, Value(pivot)}};
    std::vector<const ImStore*> stores;
    if (use_imcs) stores.push_back(&im_store_);
    uint64_t n = 0;
    ScanEngine engine;
    (void)engine.Scan(table_, preds, view, stores, cache_,
                      [&](const Row&) { ++n; }, nullptr);
    return n;
  }

  /// Full-table SUM(n1) with aggregation push-down at the given DOP — the
  /// heaviest per-row columnar work the engine does, so the DOP sweep
  /// measures the parallel decomposition rather than dispatch overhead.
  uint64_t ScanSumAtDop(bool use_imcs, size_t dop) {
    ReadView view;
    view.snapshot_scn = mgr_.visible_scn();
    view.resolver = &txns_;
    std::vector<const ImStore*> stores;
    if (use_imcs) stores.push_back(&im_store_);
    ScanEngine engine;
    ScanOptions options;
    options.dop = dop;
    AggState agg;
    (void)engine.Scan(table_, {}, view, stores, cache_, [](const Row&) {},
                      nullptr, /*needs_rows=*/false, /*expressions=*/nullptr,
                      ScanAggregate{AggKind::kSum, 1}, &agg, options);
    return agg.count;
  }

  void InvalidateFraction(double fraction) {
    Random rng(7);
    for (const auto& smu : im_store_.SmusForObject(10)) {
      const size_t target = static_cast<size_t>(fraction * smu->num_rows());
      for (size_t i = 0; i < target; ++i) {
        const Dba dba = smu->dbas()[rng.Uniform(smu->dbas().size())];
        smu->MarkRowInvalid(dba, static_cast<SlotId>(rng.Uniform(kRowsPerBlock)));
      }
    }
  }

  ScnAllocator scns_;
  TxnTable txns_;
  BlockStore store_;
  RedoLog log_;
  TxnManager mgr_;
  BufferCache cache_;
  Table table_;
  ImStore im_store_;
  PrimaryImSync sync_;
  PrimarySnapshotSource snapshot_;
  std::unique_ptr<Populator> populator_;
};

ScanFixture& Fixture() {
  static auto* fixture = new ScanFixture(64 * kRowsPerBlock);  // 16384 rows.
  return *fixture;
}

void BM_RowStoreScan(benchmark::State& state) {
  ScanFixture& f = Fixture();
  Random rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.Scan(false, static_cast<int64_t>(rng.Uniform(ScanFixture::kDomain))));
  }
  state.SetItemsProcessed(state.iterations() * 64 * kRowsPerBlock);
}
BENCHMARK(BM_RowStoreScan)->Unit(benchmark::kMillisecond);

void BM_ImcsScan(benchmark::State& state) {
  ScanFixture& f = Fixture();
  Random rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.Scan(true, static_cast<int64_t>(rng.Uniform(ScanFixture::kDomain))));
  }
  state.SetItemsProcessed(state.iterations() * 64 * kRowsPerBlock);
}
BENCHMARK(BM_ImcsScan)->Unit(benchmark::kMicrosecond);

// DOP sweep over the parallel scan (per-IMCU tasks + row-path chunks merged
// in task order). Speedup requires cores; on a 1-core host the sweep mostly
// measures decomposition overhead staying flat.
void BM_ImcsScanParallel(benchmark::State& state) {
  ScanFixture& f = Fixture();
  const size_t dop = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.ScanSumAtDop(true, dop));
  }
  state.SetItemsProcessed(state.iterations() * 64 * kRowsPerBlock);
}
BENCHMARK(BM_ImcsScanParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

void BM_RowStoreScanParallel(benchmark::State& state) {
  ScanFixture& f = Fixture();
  const size_t dop = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.ScanSumAtDop(false, dop));
  }
  state.SetItemsProcessed(state.iterations() * 64 * kRowsPerBlock);
}
BENCHMARK(BM_RowStoreScanParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_ImcsScanStorageIndexMiss(benchmark::State& state) {
  // Pivot outside every IMCU's min/max: pure storage-index pruning.
  ScanFixture& f = Fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.Scan(true, ScanFixture::kDomain + 12345));
  }
}
BENCHMARK(BM_ImcsScanStorageIndexMiss)->Unit(benchmark::kMicrosecond);

void BM_ImcsScanWithInvalidRows(benchmark::State& state) {
  // One-time fixture mutation: ~5% invalid rows → SMU reconciliation cost.
  static bool invalidated = [] {
    Fixture().InvalidateFraction(0.05);
    return true;
  }();
  (void)invalidated;
  ScanFixture& f = Fixture();
  Random rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.Scan(true, static_cast<int64_t>(rng.Uniform(ScanFixture::kDomain))));
  }
}
BENCHMARK(BM_ImcsScanWithInvalidRows)->Unit(benchmark::kMicrosecond);

// --- Scan-kernel sweep (scalar vs SWAR vs AVX2) ----------------------------
//
// The column-level predicate kernel in isolation: 1M rows of byte-wide
// dictionary codes (domain 256 → width 8, the shape the paper's Q1
// `WHERE n1 = :1` encodes to), selective equality probe, bitmap output.
// This is the number the vectorization tentpole is judged on.

constexpr size_t kKernelRows = 1u << 20;
constexpr int64_t kKernelDomain = 256;

const IntColumnVector& KernelColumn() {
  static auto* col = [] {
    Random rng(11);
    std::vector<std::optional<int64_t>> values(kKernelRows);
    for (auto& v : values)
      v = static_cast<int64_t>(rng.Uniform(kKernelDomain));
    return new IntColumnVector(values);
  }();
  return *col;
}

void BM_FilterBitmapKernel(benchmark::State& state) {
  const ScanKernel kernel = static_cast<ScanKernel>(state.range(0));
  if (kernel == ScanKernel::kAvx2 && !Avx2Supported()) {
    state.SkipWithError("AVX2 not supported on this host");
    return;
  }
  const IntColumnVector& col = KernelColumn();
  std::vector<uint64_t> bm(BitmapWords(col.size()));
  const Value pivot(int64_t{42});
  for (auto _ : state) {
    col.FilterBitmap(PredOp::kEq, pivot, kernel, bm.data(), nullptr);
    benchmark::DoNotOptimize(bm.data());
  }
  state.SetItemsProcessed(state.iterations() * kKernelRows);
  state.SetLabel(ScanKernelName(kernel));
}
BENCHMARK(BM_FilterBitmapKernel)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

// The same sweep end-to-end: a selective encoded-predicate scan through the
// whole engine (storage index, bitmap conjunction, merge) per kernel.
void BM_ImcsScanKernel(benchmark::State& state) {
  const ScanKernel kernel = static_cast<ScanKernel>(state.range(0));
  if (kernel == ScanKernel::kAvx2 && !Avx2Supported()) {
    state.SkipWithError("AVX2 not supported on this host");
    return;
  }
  ScanFixture& f = Fixture();
  ForceScanKernel(kernel);
  Random rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.Scan(true, static_cast<int64_t>(rng.Uniform(ScanFixture::kDomain))));
  }
  ClearScanKernelOverride();
  state.SetItemsProcessed(state.iterations() * 64 * kRowsPerBlock);
  state.SetLabel(ScanKernelName(kernel));
}
BENCHMARK(BM_ImcsScanKernel)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

/// Best-of-k wall time of one FilterBitmap pass over the 1M-row column.
uint64_t TimeKernelNs(ScanKernel kernel, int reps) {
  const IntColumnVector& col = KernelColumn();
  std::vector<uint64_t> bm(BitmapWords(col.size()));
  const Value pivot(int64_t{42});
  uint64_t best = ~uint64_t{0};
  for (int r = 0; r < reps; ++r) {
    const uint64_t t0 = NowNanos();
    col.FilterBitmap(PredOp::kEq, pivot, kernel, bm.data(), nullptr);
    benchmark::DoNotOptimize(bm.data());
    best = std::min(best, NowNanos() - t0);
  }
  return best;
}

void BM_Population(benchmark::State& state) {
  // Cost of building IMCUs for a 4-block chunk (encoding + dictionaries).
  ScanFixture& f = Fixture();
  for (auto _ : state) {
    state.PauseTiming();
    ImStore scratch(0, 4ull << 30);
    PopulationOptions options;
    options.blocks_per_imcu = 4;
    Populator populator(&scratch, &f.snapshot_, &f.store_, options);
    populator.EnableObject(&f.table_);
    state.ResumeTiming();
    populator.RunOnePass();
    benchmark::DoNotOptimize(scratch.used_bytes());
  }
}
BENCHMARK(BM_Population)->Unit(benchmark::kMillisecond);

/// At exit, dumps the global registry — including the shared scan pool's
/// `stratus_scan_*` task/latency series exercised by the DOP sweep — to
/// micro_scan_metrics.json, mirroring the harness binaries' dumps, plus the
/// unified BENCH_micro_scan.json report (google-benchmark owns main(), so the
/// report rides the same static destructor; its per-case timings stay in the
/// benchmark's own stdout). The registry is heap-allocated and never
/// destroyed, so exporting from a static destructor is safe.
struct MetricsDumper {
  ~MetricsDumper() {
    std::ofstream out("micro_scan_metrics.json", std::ios::trunc);
    if (out) out << obs::MetricsRegistry::Global().ExportJson();
    BenchReport report("micro_scan");
    report.Config("rows", static_cast<int64_t>(64 * kRowsPerBlock));
    report.Config("domain", ScanFixture::kDomain);
    report.Config("kernel_rows", static_cast<int64_t>(kKernelRows));
    report.Config("kernel_domain", kKernelDomain);
    report.Config("avx2_supported", static_cast<int64_t>(Avx2Supported()));
    report.Metric("scan_pool_tasks",
                  obs::MetricsRegistry::Global()
                      .GetCounter("stratus_scan_tasks", {})
                      ->Value());
    // Single-thread kernel sweep on the selective encoded predicate: the
    // vectorization acceptance numbers (speedup_* are vs the scalar Get()
    // baseline over identical data, best-of-7 each).
    const uint64_t scalar_ns = TimeKernelNs(ScanKernel::kScalar, 7);
    const uint64_t swar_ns = TimeKernelNs(ScanKernel::kSwar, 7);
    report.Metric("filter_scalar_ns", scalar_ns);
    report.Metric("filter_swar_ns", swar_ns);
    report.Metric("kernel_speedup_swar",
                  static_cast<double>(scalar_ns) / static_cast<double>(swar_ns));
    if (Avx2Supported()) {
      const uint64_t avx2_ns = TimeKernelNs(ScanKernel::kAvx2, 7);
      report.Metric("filter_avx2_ns", avx2_ns);
      report.Metric("kernel_speedup_avx2", static_cast<double>(scalar_ns) /
                                               static_cast<double>(avx2_ns));
    }
    report.Write();
  }
} g_metrics_dumper;

}  // namespace
}  // namespace stratus
