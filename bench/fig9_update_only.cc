// Reproduces Figure 9 (Section IV.A.1): speedup in median / average / 95th
// percentile response times of Q1 and Q2 on the standby under an Update-only
// OLTAP workload (70% updates + 29% index fetches on the primary, 1% ad-hoc
// scans against the standby), with and without DBIM-on-ADG.
//
// Also reproduces the Section IV.A.1 CPU observation: offloading the scans to
// a DBIM-enabled standby cuts the primary's CPU while raising the standby's.
//
// The paper reports ~100x improvements on a 6M-row × 101-column table on
// Exadata; the scaled-down default here reproduces the *shape* (two to three
// orders of magnitude, dominated by the row-path scan cost).

#include "bench_util.h"

namespace stratus {
namespace {

struct RunOutcome {
  Histogram q1;
  Histogram q2;
  Histogram q1_quiet;
  Histogram q2_quiet;
  double achieved_ops = 0;
  double primary_cpu_pct = 0;
  double scan_cpu_pct = 0;
  uint64_t flushed_records = 0;
};

RunOutcome RunOnce(bool imadg_enabled, bool scans_on_standby) {
  DatabaseOptions db_options = DefaultClusterOptions();
  db_options.standby_imadg_enabled = imadg_enabled;
  AdgCluster cluster(db_options);
  cluster.Start();

  OltapOptions options = DefaultOltapOptions();
  options.update_pct = 70;
  options.insert_pct = 0;
  options.scan_pct = 1;
  options.scans_on_standby = scans_on_standby;
  OltapWorkload workload(&cluster, options);
  const ImService service =
      scans_on_standby ? ImService::kStandbyOnly : ImService::kBoth;
  Status st = workload.Setup(service);
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  workload.Run();

  RunOutcome out;
  out.q1.Merge(workload.stats().q1_latency);
  out.q2.Merge(workload.stats().q2_latency);
  // Quiescent phase: DMLs stopped, scans measured without single-core
  // scheduling contention (the paper's testbed had idle cores for scans).
  workload.MeasureQuiescentScans(30, &out.q1_quiet, &out.q2_quiet);
  out.achieved_ops = workload.stats().AchievedOpsPerSec();
  out.primary_cpu_pct =
      CpuPct(workload.stats().primary_op_cpu_ns.load(), workload.stats().wall_ns);
  out.scan_cpu_pct =
      CpuPct(workload.stats().scan_cpu_ns.load(), workload.stats().wall_ns);
  if (imadg_enabled && cluster.standby()->flush() != nullptr)
    out.flushed_records = cluster.standby()->flush()->stats().flushed_records;
  if (imadg_enabled && scans_on_standby)
    DumpMetricsJson(cluster, "fig9_update_only");
  cluster.Stop();
  return out;
}

}  // namespace
}  // namespace stratus

int main() {
  using namespace stratus;
  PrintHeader("Figure 9 — Update-only workload: Q1/Q2 response times on the standby",
              "ICDE'20 Fig. 9: ~100x improvement in median/avg/p95 with DBIM-on-ADG");

  std::printf("\n[1/3] Standby WITHOUT DBIM-on-ADG (row-path scans)...\n");
  RunOutcome without = RunOnce(/*imadg_enabled=*/false, /*scans_on_standby=*/true);
  std::printf("[2/3] Standby WITH DBIM-on-ADG (IMCS scans)...\n");
  RunOutcome with_im = RunOnce(/*imadg_enabled=*/true, /*scans_on_standby=*/true);
  std::printf("[3/3] All operations on the primary (CPU comparison)...\n");
  RunOutcome on_primary = RunOnce(/*imadg_enabled=*/true, /*scans_on_standby=*/false);

  ReportTable fig9({"Query", "Metric", "w/o DBIM-on-ADG (ms)", "w/ DBIM-on-ADG (ms)",
                    "Speedup", "Paper"});
  const struct {
    const char* name;
    const Histogram* base;
    const Histogram* improved;
  } rows[] = {
      {"Q1 (n1 = :1)", &without.q1, &with_im.q1},
      {"Q2 (c1 = :2)", &without.q2, &with_im.q2},
  };
  for (const auto& r : rows) {
    fig9.AddRow({r.name, "median", UsToMs(r.base->Percentile(50)),
                 UsToMs(r.improved->Percentile(50)),
                 Speedup(r.base->Percentile(50), r.improved->Percentile(50)),
                 "~100x"});
    fig9.AddRow({r.name, "average", UsToMs(r.base->Average()),
                 UsToMs(r.improved->Average()),
                 Speedup(r.base->Average(), r.improved->Average()), "~100x"});
    fig9.AddRow({r.name, "p95", UsToMs(r.base->Percentile(95)),
                 UsToMs(r.improved->Percentile(95)),
                 Speedup(r.base->Percentile(95), r.improved->Percentile(95)),
                 "~100x"});
  }
  fig9.Print("FIGURE 9 — Update-only workload (70% upd / 29% fetch / 1% scan)");

  ReportTable quiet({"Query", "Metric", "w/o DBIM-on-ADG (ms)", "w/ DBIM-on-ADG (ms)",
                     "Speedup", "Paper"});
  const struct {
    const char* name;
    const Histogram* base;
    const Histogram* improved;
  } qrows[] = {
      {"Q1 (n1 = :1)", &without.q1_quiet, &with_im.q1_quiet},
      {"Q2 (c1 = :2)", &without.q2_quiet, &with_im.q2_quiet},
  };
  for (const auto& r : qrows) {
    quiet.AddRow({r.name, "median", UsToMs(r.base->Percentile(50)),
                  UsToMs(r.improved->Percentile(50)),
                  Speedup(r.base->Percentile(50), r.improved->Percentile(50)),
                  "~100x"});
    quiet.AddRow({r.name, "average", UsToMs(r.base->Average()),
                  UsToMs(r.improved->Average()),
                  Speedup(r.base->Average(), r.improved->Average()), "~100x"});
  }
  quiet.Print("FIGURE 9 (quiescent phase) — raw scan gap without single-core "
              "scheduling contention");

  ReportTable cpu({"Configuration", "Primary op CPU %", "Standby scan CPU %", "Paper"});
  cpu.AddRow({"scans on primary", Fmt(on_primary.primary_cpu_pct + on_primary.scan_cpu_pct),
              "0.00", "11.7% / 2%"});
  cpu.AddRow({"scans offloaded (DBIM-on-ADG)", Fmt(with_im.primary_cpu_pct),
              Fmt(with_im.scan_cpu_pct), "4.7% / 17%"});
  cpu.Print("Section IV.A.1 — CPU usage transfer (share of one core)");

  std::printf("\nAchieved throughput: without=%.0f ops/s, with=%.0f ops/s "
              "(the paper notes the target cannot be sustained without DBIM;\n"
              " shared threads backpressure the mix when scans are slow)\n",
              without.achieved_ops, with_im.achieved_ops);
  std::printf("Invalidation records flushed during the DBIM-on-ADG run: %llu\n",
              static_cast<unsigned long long>(with_im.flushed_records));

  BenchReport report("fig9_update_only");
  ReportCommonConfig(&report, DefaultOltapOptions());
  report.Metric("q1_median_us_without", without.q1.Percentile(50));
  report.Metric("q1_median_us_with", with_im.q1.Percentile(50));
  report.Metric("q1_p95_us_without", without.q1.Percentile(95));
  report.Metric("q1_p95_us_with", with_im.q1.Percentile(95));
  report.Metric("q2_median_us_without", without.q2.Percentile(50));
  report.Metric("q2_median_us_with", with_im.q2.Percentile(50));
  report.Metric("q1_quiet_median_us_without", without.q1_quiet.Percentile(50));
  report.Metric("q1_quiet_median_us_with", with_im.q1_quiet.Percentile(50));
  report.Metric("ops_per_sec_without", without.achieved_ops);
  report.Metric("ops_per_sec_with", with_im.achieved_ops);
  report.Metric("primary_cpu_pct_offloaded", with_im.primary_cpu_pct);
  report.Metric("scan_cpu_pct_offloaded", with_im.scan_cpu_pct);
  report.Metric("flushed_records", with_im.flushed_records);
  report.Write();
  return 0;
}
