// Ablation of the two Section III.D latency optimizations on the QuerySCN
// advancement critical path:
//   1. Cooperative Flush (III.D.2): recovery workers help drain the worklink
//      vs the recovery coordinator flushing alone, serially.
//   2. IM-ADG Commit Table partitioning (III.D.1): multiple sorted linked
//      lists vs the single-list insertion bottleneck.
//
// Metric: time spent inside Quiesce Periods per QuerySCN advancement (the
// paper's "latency in publishing the new QuerySCN") under a high-throughput
// small-transaction update workload, plus commit-table insertion walk/
// contention counters.

#include "bench_util.h"
#include "common/clock.h"
#include "common/random.h"

#include <thread>

namespace stratus {
namespace {

struct Outcome {
  uint64_t advancements = 0;
  double avg_quiesce_us = 0;
  uint64_t flushed_txns = 0;
  uint64_t cooperative_steps = 0;
  uint64_t coordinator_steps = 0;
  uint64_t insert_walk_steps = 0;
  uint64_t partition_contention = 0;
  double commits_per_sec = 0;
};

Outcome RunOnce(bool cooperative, size_t partitions, int duration_ms) {
  DatabaseOptions db_options = DefaultClusterOptions();
  db_options.flush.cooperative = cooperative;
  db_options.commit_table_partitions = partitions;
  AdgCluster cluster(db_options);
  cluster.Start();
  const ObjectId table =
      cluster
          .CreateTable("t", kDefaultTenant, Schema::WideTable(3, 1),
                       ImService::kStandbyOnly, true)
          .value();
  {
    Transaction txn = cluster.primary()->Begin();
    for (int64_t id = 0; id < 8000; ++id) {
      (void)cluster.primary()->Insert(
          &txn, table,
          Row{Value(id), Value(id % 3), Value(id % 5), Value(id % 7),
              Value(std::string("x"))},
          nullptr);
    }
    (void)cluster.primary()->Commit(&txn);
  }
  cluster.WaitForCatchup();
  (void)cluster.standby()->PopulateNow(table);

  // Small-transaction firehose: every commit carries a handful of
  // invalidation records that must flush before each QuerySCN publish.
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Random rng(3);
    while (!stop.load(std::memory_order_acquire)) {
      Transaction txn = cluster.primary()->Begin();
      for (int i = 0; i < 4; ++i) {
        const int64_t id = rng.UniformInt(0, 7999);
        (void)cluster.primary()->UpdateByKey(
            &txn, table, id,
            Row{Value(id), Value(static_cast<int64_t>(rng.Uniform(10))),
                Value(id % 5), Value(id % 7), Value(std::string("y"))});
      }
      (void)cluster.primary()->Commit(&txn);
    }
  });
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_release);
  writer.join();
  cluster.WaitForCatchup();
  const double wall_sec = watch.ElapsedSeconds();

  Outcome out;
  RecoveryCoordinator* coordinator = cluster.standby()->coordinator();
  out.advancements = coordinator->advancements();
  out.avg_quiesce_us =
      out.advancements == 0
          ? 0
          : static_cast<double>(coordinator->quiesce_nanos()) / 1000.0 /
                static_cast<double>(out.advancements);
  const FlushStats fs = cluster.standby()->flush()->stats();
  out.flushed_txns = fs.flushed_txns;
  out.cooperative_steps = fs.cooperative_steps;
  out.coordinator_steps = fs.coordinator_steps;
  out.insert_walk_steps = cluster.standby()->commit_table()->insert_walk_steps();
  out.partition_contention =
      cluster.standby()->commit_table()->partition_contention();
  out.commits_per_sec =
      static_cast<double>(cluster.primary()->txn_manager()->commits()) / wall_sec;
  cluster.Stop();
  return out;
}

}  // namespace
}  // namespace stratus

int main() {
  using namespace stratus;
  const int duration_ms = static_cast<int>(EnvInt("STRATUS_DURATION_MS", 4'000));
  PrintHeader("Ablation — Cooperative Flush and Commit Table partitioning",
              "ICDE'20 Section III.D: both exist to keep QuerySCN publication fast");

  struct Config {
    const char* name;
    bool cooperative;
    size_t partitions;
  };
  const Config configs[] = {
      {"serial flush, 1 partition", false, 1},
      {"serial flush, 8 partitions", false, 8},
      {"cooperative flush, 1 partition", true, 1},
      {"cooperative flush, 8 partitions", true, 8},
  };

  BenchReport report("ablation_flush");
  report.Config("duration_ms", static_cast<int64_t>(duration_ms));
  ReportTable table({"Configuration", "advancements", "avg quiesce (us)",
                     "flushed txns", "coop steps", "coord steps",
                     "insert walk steps", "commits/s"});
  for (const Config& c : configs) {
    std::printf("\nRunning: %s...\n", c.name);
    const Outcome out = RunOnce(c.cooperative, c.partitions, duration_ms);
    table.AddRow({c.name, std::to_string(out.advancements),
                  Fmt(out.avg_quiesce_us, 1), std::to_string(out.flushed_txns),
                  std::to_string(out.cooperative_steps),
                  std::to_string(out.coordinator_steps),
                  std::to_string(out.insert_walk_steps),
                  Fmt(out.commits_per_sec, 0)});
    const std::string prefix = std::string(c.cooperative ? "coop" : "serial") +
                               "_p" + std::to_string(c.partitions) + "_";
    report.Metric(prefix + "advancements", out.advancements);
    report.Metric(prefix + "avg_quiesce_us", out.avg_quiesce_us);
    report.Metric(prefix + "flushed_txns", out.flushed_txns);
    report.Metric(prefix + "commits_per_sec", out.commits_per_sec);
  }
  table.Print("ABLATION — invalidation flush on the QuerySCN critical path");
  std::printf(
      "\nExpected shape: cooperative flush moves worklink draining onto the\n"
      "recovery workers (coop steps >> 0) and keeps quiesce time low; the\n"
      "single-partition commit table shows head-walk steps under out-of-order\n"
      "commit mining where the partitioned one stays near zero.\n");
  return 0;
}
