// Microbenchmarks of the DBIM-on-ADG bookkeeping structures on the redo-apply
// hot path: IM-ADG Journal record buffering (per-worker areas, Section III.C),
// IM-ADG Commit Table insertion (partitioned vs single sorted list, Section
// III.D.1), worklink chopping, and redo record encode/decode.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "imadg/commit_table.h"
#include "imadg/journal.h"
#include "common/random.h"
#include "redo/change_vector.h"

namespace stratus {
namespace {

void BM_JournalAddRecord(benchmark::State& state) {
  ImAdgJournal journal(64, 4);
  InvalidationRecord rec;
  rec.object_id = 10;
  rec.dba = 100;
  rec.slot = 1;
  Xid xid = 1;
  int i = 0;
  for (auto _ : state) {
    // A fresh transaction every 16 records (anchor reuse dominates).
    if (++i % 16 == 0) ++xid;
    journal.AddRecord(xid, /*worker=*/0, rec);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JournalAddRecord);

void BM_JournalAnchorCreation(benchmark::State& state) {
  ImAdgJournal journal(static_cast<size_t>(state.range(0)), 4);
  Xid xid = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(journal.GetOrCreateAnchor(xid++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JournalAnchorCreation)->Arg(1)->Arg(64)->Arg(1024);

void BM_CommitTableInsert(benchmark::State& state) {
  // Arg = partitions. In-order commitSCNs: the common tail-append path.
  ImAdgCommitTable table(static_cast<size_t>(state.range(0)));
  Scn scn = 1;
  for (auto _ : state) {
    table.Insert(scn, scn, true, false, kDefaultTenant, nullptr);
    ++scn;
    if (scn % 4096 == 0) {
      state.PauseTiming();
      auto* chain = table.Chop(scn);
      while (chain != nullptr) {
        auto* next = chain->next;
        delete chain;
        chain = next;
      }
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CommitTableInsert)->Arg(1)->Arg(8);

void BM_CommitTableInsertOutOfOrder(benchmark::State& state) {
  // Mildly out-of-order commitSCNs (as parallel mining produces them): the
  // single sorted list pays head walks, partitions mostly avoid them.
  ImAdgCommitTable table(static_cast<size_t>(state.range(0)));
  Random rng(5);
  Scn base = 1000;
  for (auto _ : state) {
    const Scn scn = base + rng.Uniform(64);
    base += 2;
    table.Insert(scn, scn, true, false, kDefaultTenant, nullptr);
    if (base % 8192 == 0) {
      state.PauseTiming();
      auto* chain = table.Chop(base + 64);
      while (chain != nullptr) {
        auto* next = chain->next;
        delete chain;
        chain = next;
      }
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["walk_steps_per_insert"] =
      static_cast<double>(table.insert_walk_steps()) /
      static_cast<double>(table.inserts());
}
BENCHMARK(BM_CommitTableInsertOutOfOrder)->Arg(1)->Arg(8);

void BM_WorklinkChop(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    ImAdgCommitTable table(8);
    for (Scn s = 1; s <= 4096; ++s)
      table.Insert(s, s, true, false, kDefaultTenant, nullptr);
    state.ResumeTiming();
    auto* chain = table.Chop(4096);
    benchmark::DoNotOptimize(chain);
    state.PauseTiming();
    while (chain != nullptr) {
      auto* next = chain->next;
      delete chain;
      chain = next;
    }
    state.ResumeTiming();
  }
}
BENCHMARK(BM_WorklinkChop)->Unit(benchmark::kMicrosecond);

void BM_RedoRecordEncodeDecode(benchmark::State& state) {
  RedoRecord rec;
  rec.scn = 12345;
  ChangeVector cv;
  cv.kind = CvKind::kUpdate;
  cv.scn = 12345;
  cv.xid = 99;
  cv.dba = 4711;
  cv.object_id = 10;
  cv.slot = 17;
  for (int c = 0; c < 10; ++c) cv.after.push_back(Value(static_cast<int64_t>(c)));
  for (int c = 0; c < 10; ++c) cv.after.push_back(Value(std::string("abcdefgh")));
  rec.cvs.push_back(std::move(cv));
  for (auto _ : state) {
    std::string buf;
    EncodeRedoRecord(rec, &buf);
    size_t pos = 0;
    RedoRecord out;
    benchmark::DoNotOptimize(DecodeRedoRecord(buf, &pos, &out));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RedoRecordEncodeDecode);

/// Unified BENCH_micro_journal.json emitted at exit (google-benchmark owns
/// main(); per-case timings stay in the benchmark's own stdout — the report
/// records the run's shape for trajectory tooling).
struct ReportDumper {
  ~ReportDumper() {
    BenchReport report("micro_journal");
    report.Config("journal_cvs_per_txn", int64_t{16});
    report.Config("chop_batch", int64_t{4096});
    report.Write();
  }
} g_report_dumper;

}  // namespace
}  // namespace stratus
