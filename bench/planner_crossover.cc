// IMCS-vs-row-path crossover under update pressure: as the standby's SMU
// invalidity grows (updates invalidate rows faster than repopulation renews
// them), the columnar scan pays more and more per-row reconciliation
// re-fetches until the row path is simply faster. This harness disables
// repopulation so invalidity accumulates, sweeps the invalid fraction, and at
// each level measures the same full-table SUM on both paths — the latency
// crossover is the empirical justification for the planner's
// rowpath_invalid_threshold default.

#include <algorithm>
#include <chrono>
#include <thread>

#include "bench_util.h"
#include "db/plan.h"

namespace stratus {
namespace {

struct SweepPoint {
  double target_fraction = 0;    ///< Rows updated / initial rows.
  double invalid_fraction = 0;   ///< What the planner actually saw.
  Histogram imcs;                ///< Cost model pinned to IMCS (us).
  Histogram row;                 ///< force_row_store (us).
  std::string default_verdict;   ///< PlannerVerdict at the default threshold.
};

/// Updates rows [from, to) by identity, one transaction per batch, so the
/// invalidated row set is exactly the id range (no random-overlap slack).
Status UpdateRange(AdgCluster* cluster, OltapWorkload* workload, int64_t from,
                   int64_t to, Random* rng) {
  PrimaryDb* primary = cluster->primary();
  constexpr int64_t kBatch = 256;
  for (int64_t id = from; id < to;) {
    Transaction txn = primary->Begin(0, kDefaultTenant);
    const int64_t end = std::min(to, id + kBatch);
    for (; id < end; ++id) {
      STRATUS_RETURN_IF_ERROR(primary->UpdateByKey(
          &txn, workload->table_id(), id, workload->MakeRow(id, rng)));
    }
    STRATUS_RETURN_IF_ERROR(primary->Commit(&txn).status());
  }
  return Status::OK();
}

}  // namespace
}  // namespace stratus

int main() {
  using namespace stratus;
  PrintHeader(
      "Planner crossover — IMCS vs row path as SMU invalidity grows",
      "Section III.C consequence: invalid rows reconcile through the row "
      "path, eroding the columnar advantage");

  DatabaseOptions db_options = DefaultClusterOptions();
  // Never repopulate: invalidity accumulates monotonically across the sweep
  // (both the invalidity trigger and the staleness trigger must be off).
  db_options.population.repop_invalid_threshold = 2.0;
  db_options.population.repop_staleness_us = 0;
  // Pin the cost model to IMCS while coverage exists so both paths stay
  // measurable past the default crossover; the default verdict is computed
  // per level from the shared policy function instead.
  db_options.planner.rowpath_invalid_threshold = 2.0;
  AdgCluster cluster(db_options);
  cluster.Start();

  OltapOptions options = DefaultOltapOptions();
  OltapWorkload workload(&cluster, options);
  Status st = workload.Setup(ImService::kStandbyOnly);
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    return 1;
  }

  const int reps = static_cast<int>(EnvInt("STRATUS_CROSSOVER_REPS", 15));
  const uint32_t dop = static_cast<uint32_t>(EnvInt("STRATUS_SCAN_DOP", 2));
  const double kLevels[] = {0.0, 0.05, 0.10, 0.20, 0.30, 0.45, 0.60};
  const auto rows = static_cast<int64_t>(options.initial_rows);

  Random rng(options.seed + 1);
  std::vector<SweepPoint> points;
  int64_t updated = 0;
  for (const double level : kLevels) {
    const auto target = static_cast<int64_t>(level * static_cast<double>(rows));
    if (target > updated) {
      st = UpdateRange(&cluster, &workload, updated, target, &rng);
      if (!st.ok()) {
        std::fprintf(stderr, "update sweep failed: %s\n", st.ToString().c_str());
        return 1;
      }
      updated = target;
    }
    // Let redo apply and the invalidation flush settle before measuring.
    cluster.WaitForCatchup();
    std::this_thread::sleep_for(std::chrono::milliseconds(300));

    SweepPoint point;
    point.target_fraction =
        static_cast<double>(updated) / static_cast<double>(rows);
    ScanQuery q;
    q.object = workload.table_id();
    q.agg = AggKind::kSum;
    q.agg_column = 1;
    q.dop = dop;
    for (int i = 0; i < 3; ++i) (void)cluster.standby()->Query(q);  // Warm up.
    for (int i = 0; i < reps; ++i) {
      for (const bool force_row : {false, true}) {
        q.force_row_store = force_row;
        Stopwatch watch;
        StatusOr<QueryResult> result = cluster.standby()->Query(q);
        if (!result.ok()) continue;
        (force_row ? point.row : point.imcs).Record(watch.ElapsedMicros());
        if (!force_row && !result->profile.stages.empty())
          point.invalid_fraction = result->profile.stages[0].invalid_fraction;
      }
    }
    const char* reason = "";
    const AccessPath verdict =
        PlannerVerdict(/*rows_covered=*/1, point.invalid_fraction,
                       PlannerOptions{}.rowpath_invalid_threshold, &reason);
    point.default_verdict = verdict == AccessPath::kImcs ? "imcs" : "row";
    points.push_back(std::move(point));
  }
  DumpMetricsJson(cluster, "planner_crossover");
  cluster.Stop();

  ReportTable table({"Updated %", "Invalid %", "IMCS med (us)", "Row med (us)",
                     "IMCS/Row", "Planner @0.40"});
  double latency_crossover = -1.0;
  double planner_crossover = -1.0;
  for (const SweepPoint& p : points) {
    const double imcs_med = p.imcs.Percentile(50);
    const double row_med = p.row.Percentile(50);
    if (latency_crossover < 0 && row_med > 0 && imcs_med > row_med)
      latency_crossover = p.invalid_fraction;
    if (planner_crossover < 0 && p.default_verdict == "row")
      planner_crossover = p.invalid_fraction;
    table.AddRow({Fmt(100.0 * p.target_fraction),
                  Fmt(100.0 * p.invalid_fraction), Fmt(imcs_med), Fmt(row_med),
                  row_med > 0 ? Fmt(imcs_med / row_med) : "-",
                  p.default_verdict});
  }
  table.Print("Full-table SUM latency, IMCS vs forced row path");
  std::printf(
      "\nLatency crossover at invalid fraction %.2f; the default planner "
      "flips at %.2f (threshold %.2f).\n",
      latency_crossover, planner_crossover,
      PlannerOptions{}.rowpath_invalid_threshold);

  BenchReport report("planner_crossover");
  ReportCommonConfig(&report, options);
  report.Config("scan_dop", static_cast<int64_t>(dop));
  report.Config("reps", static_cast<int64_t>(reps));
  report.Config("planner_threshold",
                PlannerOptions{}.rowpath_invalid_threshold);
  for (size_t i = 0; i < points.size(); ++i) {
    const std::string tag = "level" + std::to_string(i) + "_";
    report.Metric(tag + "invalid_fraction", points[i].invalid_fraction);
    report.Metric(tag + "imcs_median_us", points[i].imcs.Percentile(50));
    report.Metric(tag + "row_median_us", points[i].row.Percentile(50));
    report.Metric(tag + "planner_row",
                  static_cast<int64_t>(points[i].default_verdict == "row"));
  }
  report.Metric("latency_crossover_invalid_fraction", latency_crossover);
  report.Metric("planner_crossover_invalid_fraction", planner_crossover);
  report.Write();
  return 0;
}
