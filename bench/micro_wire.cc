// Microbenchmark of the src/net/ wire: encodes synthetic redo batches and
// ships them through a Channel, sweeping the frame batch size over both the
// deterministic loopback wire and the real localhost TCP wire. Reports
// records/s, wire MB/s, and per-frame delivery latency percentiles, and dumps
// every series (including the channel's own stratus_net_* metrics) to
// micro_wire_metrics.json.
//
// Knobs: STRATUS_WIRE_RECORDS (total records per cell, default 200k).

#include <atomic>
#include <chrono>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "common/random.h"
#include "net/channel.h"
#include "net/codec.h"
#include "obs/metrics.h"

namespace stratus {
namespace {

/// One synthetic redo batch: `n` single-CV update records with a small mixed
/// row payload, the shape the shipper produces under an OLTP write stream.
std::vector<RedoRecord> MakeBatch(size_t n, Random* rng) {
  std::vector<RedoRecord> batch(n);
  Scn scn = 1 + rng->Uniform(1'000);
  for (RedoRecord& rec : batch) {
    rec.scn = scn;
    scn += 1 + rng->Uniform(3);
    rec.thread = 0;
    ChangeVector cv;
    cv.kind = CvKind::kUpdate;
    cv.scn = rec.scn;
    cv.xid = rng->Uniform(1u << 16);
    cv.dba = rng->Uniform(1u << 20);
    cv.object_id = 1;
    cv.slot = static_cast<SlotId>(rng->Uniform(kRowsPerBlock));
    cv.after = Row{Value(static_cast<int64_t>(rng->Uniform(1u << 20))),
                   Value(static_cast<int64_t>(rng->Uniform(100))),
                   Value(rng->NextString(8))};
    rec.cvs.push_back(std::move(cv));
  }
  return batch;
}

/// Stamps each frame's delivery latency: frames arrive in send order, so the
/// i-th OnFrame pairs with the i-th Send timestamp.
class LatencySink : public net::FrameSink {
 public:
  LatencySink(std::vector<std::atomic<uint64_t>>* send_ts,
              obs::LatencyHistogram* hist)
      : send_ts_(send_ts), hist_(hist) {}

  void OnFrame(const net::Frame& frame) override {
    (void)frame;
    const uint64_t now = NowMicros();
    const size_t i = delivered_.fetch_add(1, std::memory_order_acq_rel);
    if (i < send_ts_->size()) {
      const uint64_t sent = (*send_ts_)[i].load(std::memory_order_acquire);
      hist_->Record(now > sent ? now - sent : 0);
    }
  }

  size_t delivered() const {
    return delivered_.load(std::memory_order_acquire);
  }

 private:
  std::vector<std::atomic<uint64_t>>* send_ts_;
  obs::LatencyHistogram* hist_;
  std::atomic<size_t> delivered_{0};
};

struct Cell {
  uint64_t frames = 0;
  size_t frame_bytes = 0;
  double records_per_sec = 0;
  double mb_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
  double max_us = 0;
};

Cell RunOnce(net::ChannelKind kind, const char* kind_name, size_t batch_size,
             size_t total_records, obs::MetricsRegistry* registry) {
  Random rng(2026 + batch_size);
  const std::vector<RedoRecord> batch = MakeBatch(batch_size, &rng);
  std::string payload;
  net::EncodeRedoBatch(batch, &payload);
  const size_t frames = std::max<size_t>(1, total_records / batch_size);

  obs::LatencyHistogram* hist = registry->GetHistogram(
      "stratus_wire_frame_latency_us",
      {{"kind", kind_name}, {"batch", std::to_string(batch_size)}});
  std::vector<std::atomic<uint64_t>> send_ts(frames);
  LatencySink sink(&send_ts, hist);

  net::ChannelOptions options;
  options.kind = kind;
  options.name = std::string(kind_name) + "-b" + std::to_string(batch_size);
  options.registry = registry;
  auto channel = net::CreateChannel(options, &sink);
  if (!channel->Start().ok()) {
    std::fprintf(stderr, "channel start failed (%s)\n", kind_name);
    return Cell{};
  }

  Stopwatch watch;
  for (size_t i = 0; i < frames; ++i) {
    send_ts[i].store(NowMicros(), std::memory_order_release);
    std::string copy = payload;
    if (!channel
             ->Send(net::FrameType::kRedoBatch, 0, batch.back().scn,
                    std::move(copy))
             .ok()) {
      break;
    }
  }
  while (sink.delivered() < frames) {
    std::this_thread::sleep_for(std::chrono::microseconds(20));
  }
  const double seconds = watch.ElapsedSeconds();
  const uint64_t wire_bytes = channel->stats().bytes_delivered;
  channel->Stop();

  Cell cell;
  cell.frames = frames;
  cell.frame_bytes = payload.size();
  cell.records_per_sec =
      static_cast<double>(frames * batch_size) / seconds;
  cell.mb_per_sec = static_cast<double>(wire_bytes) / seconds / (1 << 20);
  cell.p50_us = hist->Percentile(50);
  cell.p99_us = hist->Percentile(99);
  cell.max_us = static_cast<double>(hist->MaxUs());
  return cell;
}

}  // namespace
}  // namespace stratus

int main() {
  using namespace stratus;
  const size_t total_records =
      static_cast<size_t>(EnvInt("STRATUS_WIRE_RECORDS", 200'000));
  PrintHeader("Micro — redo wire: batch size × channel kind",
              "transport cost model behind Section IV apply-rate results");

  obs::MetricsRegistry registry;
  const struct {
    const char* name;
    net::ChannelKind kind;
  } kinds[] = {{"loopback", net::ChannelKind::kLoopback},
               {"tcp", net::ChannelKind::kSocket}};
  const size_t batch_sizes[] = {1, 32, 256, 1024};

  BenchReport report("micro_wire");
  report.Config("wire_records", static_cast<int64_t>(total_records));
  ReportTable table({"Channel", "Records/frame", "Frame bytes", "Frames",
                     "records/s", "MB/s", "p50 us", "p99 us", "max us"});
  for (const auto& k : kinds) {
    for (const size_t b : batch_sizes) {
      std::printf("Running: %s, %zu records/frame...\n", k.name, b);
      const Cell cell =
          RunOnce(k.kind, k.name, b, total_records, &registry);
      table.AddRow({k.name, std::to_string(b),
                    std::to_string(cell.frame_bytes),
                    std::to_string(cell.frames), Fmt(cell.records_per_sec, 0),
                    Fmt(cell.mb_per_sec, 1), Fmt(cell.p50_us, 1),
                    Fmt(cell.p99_us, 1), Fmt(cell.max_us, 1)});
      const std::string prefix =
          std::string(k.name) + "_b" + std::to_string(b) + "_";
      report.Metric(prefix + "records_per_sec", cell.records_per_sec);
      report.Metric(prefix + "mb_per_sec", cell.mb_per_sec);
      report.Metric(prefix + "p99_us", cell.p99_us);
    }
  }
  table.Print("MICRO — wire throughput & frame latency");
  std::printf(
      "\nExpected shape: loopback shows pure codec cost (latency ~ encode+\n"
      "decode); TCP adds syscall + ack overhead per frame, amortized away as\n"
      "records/frame grows. p99 isolates scheduling/ack-stall tails.\n");

  const char* path = "micro_wire_metrics.json";
  std::ofstream out(path, std::ios::trunc);
  if (out) {
    out << registry.ExportJson();
    std::printf("metrics dump: %s\n", path);
  }
  report.Write();
  return 0;
}
