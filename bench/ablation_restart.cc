// Ablation of specialized redo generation (Section III.E): after a standby
// instance restart, a transaction that straddled the restart is discovered
// with a missing 'transaction begin' record. With the commit-record IM flag,
// only transactions that actually touched IMCS objects trigger coarse
// invalidation; without it, the standby must pessimistically coarse-
// invalidate for EVERY straddling transaction — costing IMCS coverage (and
// thus query latency) until repopulation.

// A second stage ablates the durability subsystem's IMCS snapshot-resume: a
// standby restarted FROM DISK either repopulates the column store from the
// recovered row store (snapshot off) or adopts the serialized IMCUs written
// at the last checkpoint (snapshot on). The metric is time-to-query-ready:
// restart begin to the first scan fully served from the IMCS.

#include "bench_util.h"
#include "common/clock.h"
#include "common/random.h"

#include <cstdlib>
#include <thread>

namespace stratus {
namespace {

struct Outcome {
  uint64_t coarse_invalidations = 0;
  double q1_before_repop_ms = 0;   // Right after the flag-driven decision.
  double q1_after_repop_ms = 0;    // Once repopulation restored the IMCS.
};

Outcome RunOnce(bool specialized_redo, bool straddler_touches_im) {
  DatabaseOptions db_options = DefaultClusterOptions();
  db_options.specialized_redo = specialized_redo;
  db_options.population.manager_interval_us = 1'000'000;  // Manual repop only.
  AdgCluster cluster(db_options);
  cluster.Start();
  const size_t rows = static_cast<size_t>(EnvInt("STRATUS_ROWS", 40'000));
  const ObjectId im_table =
      cluster
          .CreateTable("im", kDefaultTenant, Schema::WideTable(5, 5),
                       ImService::kStandbyOnly, true)
          .value();
  const ObjectId plain_table =
      cluster
          .CreateTable("plain", kDefaultTenant, Schema::WideTable(1, 0),
                       ImService::kNone, true)
          .value();
  {
    Random rng(1);
    size_t loaded = 0;
    while (loaded < rows) {
      Transaction txn = cluster.primary()->Begin();
      for (int i = 0; i < 512 && loaded < rows; ++i, ++loaded) {
        Row row{Value(static_cast<int64_t>(loaded))};
        for (int c = 0; c < 5; ++c)
          row.push_back(Value(static_cast<int64_t>(rng.Uniform(1000))));
        for (int c = 0; c < 5; ++c) row.push_back(Value(rng.NextString(8)));
        (void)cluster.primary()->Insert(&txn, im_table, std::move(row), nullptr);
      }
      (void)cluster.primary()->Commit(&txn);
    }
  }
  cluster.WaitForCatchup();

  // The straddler: begins (and is partially mined) before the restart.
  Transaction straddler = cluster.primary()->Begin();
  if (straddler_touches_im) {
    Row row{Value(int64_t{1})};
    for (int c = 0; c < 5; ++c) row.push_back(Value(int64_t{1}));
    for (int c = 0; c < 5; ++c) row.push_back(Value(std::string("mid-txn!")));
    (void)cluster.primary()->UpdateByKey(&straddler, im_table, 1, std::move(row));
  } else {
    (void)cluster.primary()->Insert(
        &straddler, plain_table, Row{Value(int64_t{0}), Value(int64_t{0})}, nullptr);
  }
  // A committed marker so the straddler's DMLs are applied pre-restart.
  {
    Transaction txn = cluster.primary()->Begin();
    (void)cluster.primary()->Insert(&txn, plain_table,
                                    Row{Value(int64_t{1}), Value(int64_t{1})},
                                    nullptr);
    (void)cluster.primary()->Commit(&txn);
  }
  cluster.WaitForCatchup();

  cluster.standby()->Restart();
  cluster.WaitForCatchup();
  // Population completes BEFORE the straddler's commit arrives — the
  // pathological timing the paper's "postpone population briefly" advice
  // avoids.
  (void)cluster.standby()->PopulateNow(im_table);
  (void)cluster.primary()->Commit(&straddler);
  cluster.WaitForCatchup();

  Outcome out;
  out.coarse_invalidations =
      cluster.standby()->im_store()->Stats().coarse_invalidations;

  auto time_q1 = [&] {
    ScanQuery q;
    q.object = im_table;
    q.predicates = {{1, PredOp::kEq, Value(int64_t{7})}};
    q.agg = AggKind::kCount;
    Stopwatch watch;
    (void)cluster.standby()->Query(q);
    return static_cast<double>(watch.ElapsedNanos()) / 1e6;
  };
  out.q1_before_repop_ms = time_q1();
  // Repopulate (recovers from coarse invalidation) and measure again.
  for (int i = 0; i < 3; ++i) cluster.standby()->populator()->RunOnePass();
  out.q1_after_repop_ms = time_q1();
  cluster.Stop();
  return out;
}

struct RestartOutcome {
  double restart_ms = 0;     // DiskRestartStandby wall time (recovery incl.)
  double ready_ms = 0;       // Restart begin -> first IMCS-served scan.
  uint64_t rows_from_imcs = 0;
  uint64_t restored_smus = 0;
};

std::string MakeBenchDir() {
  std::string tmpl = "/tmp/stratus_bench_restart_XXXXXX";
  if (::mkdtemp(tmpl.data()) == nullptr) std::abort();
  return tmpl;
}

RestartOutcome RunDiskRestart(bool snapshot_resume, size_t rows) {
  DatabaseOptions db_options = DefaultClusterOptions();
  db_options.population.manager_interval_us = 1'000'000;  // Manual repop only.
  db_options.persist.enabled = true;
  db_options.persist.data_dir = MakeBenchDir();
  db_options.persist.snapshot_imcs = snapshot_resume;
  AdgCluster cluster(db_options);
  cluster.Start();
  const ObjectId im_table =
      cluster
          .CreateTable("im", kDefaultTenant, Schema::WideTable(5, 5),
                       ImService::kStandbyOnly, true)
          .value();
  Random rng(1);
  size_t loaded = 0;
  while (loaded < rows) {
    Transaction txn = cluster.primary()->Begin();
    for (int i = 0; i < 512 && loaded < rows; ++i, ++loaded) {
      Row row{Value(static_cast<int64_t>(loaded))};
      for (int c = 0; c < 5; ++c)
        row.push_back(Value(static_cast<int64_t>(rng.Uniform(1000))));
      for (int c = 0; c < 5; ++c) row.push_back(Value(rng.NextString(8)));
      (void)cluster.primary()->Insert(&txn, im_table, std::move(row), nullptr);
    }
    (void)cluster.primary()->Commit(&txn);
  }
  cluster.WaitForCatchup();
  (void)cluster.standby()->PopulateNow(im_table);
  // The checkpoint writes the row-store image (and, with snapshot_imcs, the
  // serialized IMCUs) that the restart below recovers from.
  (void)cluster.standby()->TakeCheckpoint();
  const Scn scn_before = cluster.standby()->published_query_scn();

  RestartOutcome out;
  Stopwatch watch;
  (void)cluster.DiskRestartStandby();
  out.restart_ms = static_cast<double>(watch.ElapsedNanos()) / 1e6;
  out.restored_smus = cluster.standby()->last_recovery().restored_smus;
  // Query-ready = a scan at (at least) the pre-restart snapshot served from
  // the IMCS. Full repopulation pays the row-store scan + encode here;
  // snapshot resume adopted the reloaded IMCUs during recovery and skips it.
  if (cluster.standby()->im_store()->Stats().smus_ready == 0)
    (void)cluster.standby()->PopulateNow(im_table);
  (void)cluster.standby()->WaitForQueryScn(scn_before, 30'000'000);
  ScanQuery q;
  q.object = im_table;
  q.predicates = {{1, PredOp::kEq, Value(int64_t{7})}};
  q.agg = AggKind::kCount;
  const auto result = cluster.standby()->Query(q);
  out.ready_ms = static_cast<double>(watch.ElapsedNanos()) / 1e6;
  if (result.ok()) out.rows_from_imcs = result->stats.rows_from_imcs;
  cluster.Stop();
  return out;
}

}  // namespace
}  // namespace stratus

int main() {
  using namespace stratus;
  PrintHeader("Ablation — specialized redo generation vs pessimistic coarse invalidation",
              "ICDE'20 Section III.E: the commit-record flag avoids needless coarse invalidation");

  struct Config {
    const char* name;
    bool specialized;
    bool touches_im;
    const char* expectation;
  };
  const Config configs[] = {
      {"flag on, straddler touched IMCS object", true, true, "coarse (necessary)"},
      {"flag on, straddler touched only non-IM object", true, false, "NO coarse"},
      {"flag off, straddler touched only non-IM object", false, false,
       "coarse (pessimistic)"},
  };
  BenchReport report("ablation_restart");
  report.Config("rows", EnvInt("STRATUS_ROWS", 40'000));
  ReportTable table({"Configuration", "coarse invalidations", "Q1 before repop (ms)",
                     "Q1 after repop (ms)", "expected"});
  int config_idx = 0;
  for (const Config& c : configs) {
    std::printf("\nRunning: %s...\n", c.name);
    const Outcome out = RunOnce(c.specialized, c.touches_im);
    table.AddRow({c.name, std::to_string(out.coarse_invalidations),
                  Fmt(out.q1_before_repop_ms), Fmt(out.q1_after_repop_ms),
                  c.expectation});
    const std::string prefix =
        "cfg" + std::to_string(config_idx++) + std::string(c.specialized ? "_flag" : "_noflag") +
        std::string(c.touches_im ? "_im_" : "_noim_");
    report.Metric(prefix + "coarse_invalidations", out.coarse_invalidations);
    report.Metric(prefix + "q1_before_repop_ms", out.q1_before_repop_ms);
    report.Metric(prefix + "q1_after_repop_ms", out.q1_after_repop_ms);
  }
  table.Print("ABLATION — restart handling (coarse invalidation = whole IMCS row-path)");
  std::printf(
      "\nExpected shape: only rows 1 and 3 coarse-invalidate. Where coarse\n"
      "invalidation strikes, Q1 pays row-path latency until repopulation.\n");

  // Stage 2: disk restart with vs without IMCS snapshot resume.
  const size_t restart_rows =
      static_cast<size_t>(EnvInt("STRATUS_RESTART_ROWS", 60'000));
  report.Config("restart_rows", static_cast<int64_t>(restart_rows));
  ReportTable restart_table({"Disk-restart variant", "restart (ms)",
                             "query-ready (ms)", "rows from IMCS",
                             "restored SMUs"});
  std::printf("\nRunning: disk restart, full repopulation...\n");
  const RestartOutcome full = RunDiskRestart(/*snapshot_resume=*/false,
                                             restart_rows);
  std::printf("Running: disk restart, snapshot resume...\n");
  const RestartOutcome resume = RunDiskRestart(/*snapshot_resume=*/true,
                                               restart_rows);
  restart_table.AddRow({"full repopulation", Fmt(full.restart_ms),
                        Fmt(full.ready_ms), std::to_string(full.rows_from_imcs),
                        std::to_string(full.restored_smus)});
  restart_table.AddRow({"snapshot resume", Fmt(resume.restart_ms),
                        Fmt(resume.ready_ms),
                        std::to_string(resume.rows_from_imcs),
                        std::to_string(resume.restored_smus)});
  restart_table.Print(
      "ABLATION — IMCS snapshot resume vs full repopulation after disk restart");
  const double speedup =
      resume.ready_ms > 0 ? full.ready_ms / resume.ready_ms : 0;
  report.Metric("restart_full_repop_ready_ms", full.ready_ms);
  report.Metric("restart_snapshot_resume_ready_ms", resume.ready_ms);
  report.Metric("restart_full_repop_restart_ms", full.restart_ms);
  report.Metric("restart_snapshot_resume_restart_ms", resume.restart_ms);
  report.Metric("restart_snapshot_restored_smus", resume.restored_smus);
  report.Metric("restart_snapshot_resume_speedup", speedup);
  std::printf(
      "\nSnapshot resume reaches query-ready %.2fx faster than repopulating\n"
      "the column store from the recovered row store.\n", speedup);
  return 0;
}
