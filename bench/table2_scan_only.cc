// Reproduces Table 2 (Section IV.B): with a scan-only workload (no DMLs; 25%
// ad-hoc full-table scans + 75% index fetches) and DBIM enabled on BOTH
// databases, the primary and the standby serve Q1 equally fast — so scans
// over DML-quiet data can be offloaded transparently. Also reproduces the
// accompanying CPU-transfer observation (primary 8% → 0.5%, standby 0.3% →
// 7.9% in the paper).

#include <thread>

#include "bench_util.h"

namespace stratus {
namespace {

struct RunOutcome {
  Histogram q1;
  double scan_cpu_pct = 0;
  double fetch_cpu_pct = 0;
};

RunOutcome RunOnce(bool scans_on_standby) {
  DatabaseOptions db_options = DefaultClusterOptions();
  AdgCluster cluster(db_options);
  cluster.Start();

  OltapOptions options = DefaultOltapOptions();
  options.update_pct = 0;
  options.insert_pct = 0;
  options.scan_pct = 25;
  options.scans_on_standby = scans_on_standby;
  // 25% of the paper's 4000 ops/s would be 1000 scans/s — far beyond one core
  // with this table size; the pacing backpressure handles it, the latency
  // distribution is what Table 2 compares.
  OltapWorkload workload(&cluster, options);
  Status st = workload.Setup(ImService::kBoth);  // DBIM on both databases.
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  workload.Run();

  RunOutcome out;
  out.q1.Merge(workload.stats().q1_latency);
  out.q1.Merge(workload.stats().q2_latency);
  out.scan_cpu_pct =
      CpuPct(workload.stats().scan_cpu_ns.load(), workload.stats().wall_ns);
  out.fetch_cpu_pct =
      CpuPct(workload.stats().primary_op_cpu_ns.load(), workload.stats().wall_ns);
  if (scans_on_standby) DumpMetricsJson(cluster, "table2_scan_only");
  cluster.Stop();
  return out;
}

/// DOP sweep over one IMCS-resident standby scan (full-table SUM push-down —
/// the heaviest columnar work per row). One cluster, quiescent, so the only
/// variable across points is the scan's degree of parallelism.
struct DopPoint {
  uint32_t dop = 1;
  Histogram latency;
};

std::vector<DopPoint> RunDopSweep() {
  DatabaseOptions db_options = DefaultClusterOptions();
  AdgCluster cluster(db_options);
  cluster.Start();
  OltapOptions options = DefaultOltapOptions();
  OltapWorkload workload(&cluster, options);
  Status st = workload.Setup(ImService::kBoth);
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  cluster.WaitForCatchup();

  ScanQuery q;
  q.object = workload.table_id();
  q.agg = AggKind::kSum;
  q.agg_column = 1;
  const int reps = static_cast<int>(EnvInt("STRATUS_DOP_REPS", 40));
  std::vector<DopPoint> points;
  for (const uint32_t dop : {1u, 2u, 4u, 8u}) {
    q.dop = dop;
    DopPoint point;
    point.dop = dop;
    for (int i = 0; i < 5; ++i) (void)cluster.standby()->Query(q);  // Warm up.
    for (int i = 0; i < reps; ++i) {
      Stopwatch watch;
      if (!cluster.standby()->Query(q).ok()) continue;
      point.latency.Record(watch.ElapsedMicros());
    }
    points.push_back(std::move(point));
  }
  DumpMetricsJson(cluster, "table2_dop_sweep");
  cluster.Stop();
  return points;
}

}  // namespace
}  // namespace stratus

int main() {
  using namespace stratus;
  PrintHeader("Table 2 — Scan-only workload: Q1 on primary vs standby (DBIM on both)",
              "ICDE'20 Table 2: primary 4.25/4.31/4.55 ms vs standby 4.30/4.36/4.6 ms");

  std::printf("\n[1/2] Scans on the PRIMARY...\n");
  RunOutcome primary = RunOnce(/*scans_on_standby=*/false);
  std::printf("[2/2] Scans on the STANDBY...\n");
  RunOutcome standby = RunOnce(/*scans_on_standby=*/true);

  ReportTable table2({"", "Median (ms)", "Average (ms)", "p95 (ms)"});
  table2.AddRow({"Primary", UsToMs(primary.q1.Percentile(50)),
                 UsToMs(primary.q1.Average()), UsToMs(primary.q1.Percentile(95))});
  table2.AddRow({"Standby", UsToMs(standby.q1.Percentile(50)),
                 UsToMs(standby.q1.Average()), UsToMs(standby.q1.Percentile(95))});
  table2.AddRow({"Paper: Primary", "4.25", "4.31", "4.55"});
  table2.AddRow({"Paper: Standby", "4.30", "4.36", "4.60"});
  table2.Print("TABLE 2 — Response time for Q1, scan-only workload");

  const double ratio = standby.q1.Average() > 0
                           ? primary.q1.Average() / standby.q1.Average()
                           : 0.0;
  std::printf("\nPrimary/Standby average ratio: %.2f (paper: ~0.99 — equal)\n", ratio);

  ReportTable cpu({"Configuration", "Scan CPU %", "Fetch CPU %", "Paper (primary/standby)"});
  cpu.AddRow({"scans on primary", Fmt(primary.scan_cpu_pct),
              Fmt(primary.fetch_cpu_pct), "8% / 0.3%"});
  cpu.AddRow({"scans on standby", Fmt(standby.scan_cpu_pct),
              Fmt(standby.fetch_cpu_pct), "0.5% / 7.9%"});
  cpu.Print("Section IV.B — direct CPU transfer when scans move to the standby");
  std::printf("\n(The scan CPU moves wholesale between roles; fetch CPU stays put.)\n");

  std::printf("\n[3/3] Parallel-scan DOP sweep on the STANDBY (IMCS-resident SUM)...\n");
  const std::vector<DopPoint> sweep = RunDopSweep();
  const double base_us =
      sweep.empty() ? 0.0 : sweep.front().latency.Percentile(50);
  ReportTable dop_table({"DOP", "Median (us)", "p95 (us)", "Speedup vs DOP=1"});
  for (const DopPoint& p : sweep) {
    const double med = p.latency.Percentile(50);
    dop_table.AddRow({std::to_string(p.dop), Fmt(med),
                      Fmt(p.latency.Percentile(95)),
                      med > 0 ? Fmt(base_us / med) : "-"});
  }
  dop_table.Print("Parallel scan — same query, same data, rising DOP");
  std::printf(
      "\n(%u hardware threads on this host; speedup saturates at the core "
      "count — on one core the sweep stays flat and only measures the "
      "decomposition overhead.)\n",
      std::thread::hardware_concurrency());

  BenchReport report("table2_scan_only");
  ReportCommonConfig(&report, DefaultOltapOptions());
  report.Metric("q1_median_us_primary", primary.q1.Percentile(50));
  report.Metric("q1_avg_us_primary", primary.q1.Average());
  report.Metric("q1_p95_us_primary", primary.q1.Percentile(95));
  report.Metric("q1_median_us_standby", standby.q1.Percentile(50));
  report.Metric("q1_avg_us_standby", standby.q1.Average());
  report.Metric("q1_p95_us_standby", standby.q1.Percentile(95));
  report.Metric("primary_standby_avg_ratio", ratio);
  report.Metric("scan_cpu_pct_primary", primary.scan_cpu_pct);
  report.Metric("scan_cpu_pct_standby", standby.scan_cpu_pct);
  for (const DopPoint& p : sweep) {
    report.Metric("dop" + std::to_string(p.dop) + "_median_us",
                  p.latency.Percentile(50));
  }
  report.Write();
  return 0;
}
