// Reproduces Figure 10 (Section IV.A.2): Q1/Q2 response times on the standby
// under the Update+Insert workload — 25% inserts, 40% updates, 34% index
// fetches on the primary, 1% scans on the standby — with and without
// DBIM-on-ADG.
//
// The paper reports ~10x (an order of magnitude less than Figure 9): inserts
// grow the table, so the population infrastructure continuously extends and
// repopulates the *edge IMCU*, and freshly inserted rows are served from the
// row store until covered. The harness prints the population-churn counters
// that explain the smaller factor.

#include "bench_util.h"

namespace stratus {
namespace {

struct RunOutcome {
  Histogram q1;
  Histogram q2;
  double achieved_ops = 0;
  PopulationStats population;
  uint64_t final_rows = 0;
};

RunOutcome RunOnce(bool imadg_enabled) {
  DatabaseOptions db_options = DefaultClusterOptions();
  db_options.standby_imadg_enabled = imadg_enabled;
  // Faster tail coverage: the edge chunk is the experiment.
  db_options.population.manager_interval_us = 2'000;
  AdgCluster cluster(db_options);
  cluster.Start();

  OltapOptions options = DefaultOltapOptions();
  options.update_pct = 40;
  options.insert_pct = 25;
  options.scan_pct = 1;
  OltapWorkload workload(&cluster, options);
  Status st = workload.Setup(ImService::kStandbyOnly);
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  workload.Run();

  RunOutcome out;
  out.q1.Merge(workload.stats().q1_latency);
  out.q2.Merge(workload.stats().q2_latency);
  out.achieved_ops = workload.stats().AchievedOpsPerSec();
  if (imadg_enabled) {
    out.population = cluster.standby()->populator()->stats();
  }
  ScanQuery count;
  count.object = workload.table_id();
  count.agg = AggKind::kCount;
  auto result = cluster.standby()->Query(count);
  if (result.ok()) out.final_rows = result->count;
  if (imadg_enabled) DumpMetricsJson(cluster, "fig10_update_insert");
  cluster.Stop();
  return out;
}

}  // namespace
}  // namespace stratus

int main() {
  using namespace stratus;
  PrintHeader(
      "Figure 10 — Update+Insert workload: Q1/Q2 response times on the standby",
      "ICDE'20 Fig. 10: ~10x improvement; edge-IMCU churn limits the benefit");

  std::printf("\n[1/2] Standby WITHOUT DBIM-on-ADG...\n");
  RunOutcome without = RunOnce(false);
  std::printf("[2/2] Standby WITH DBIM-on-ADG...\n");
  RunOutcome with_im = RunOnce(true);

  ReportTable fig10({"Query", "Metric", "w/o DBIM-on-ADG (ms)", "w/ DBIM-on-ADG (ms)",
                     "Speedup", "Paper"});
  const struct {
    const char* name;
    const Histogram* base;
    const Histogram* improved;
  } rows[] = {
      {"Q1 (n1 = :1)", &without.q1, &with_im.q1},
      {"Q2 (c1 = :2)", &without.q2, &with_im.q2},
  };
  for (const auto& r : rows) {
    fig10.AddRow({r.name, "median", UsToMs(r.base->Percentile(50)),
                  UsToMs(r.improved->Percentile(50)),
                  Speedup(r.base->Percentile(50), r.improved->Percentile(50)),
                  "~10x"});
    fig10.AddRow({r.name, "average", UsToMs(r.base->Average()),
                  UsToMs(r.improved->Average()),
                  Speedup(r.base->Average(), r.improved->Average()), "~10x"});
    fig10.AddRow({r.name, "p95", UsToMs(r.base->Percentile(95)),
                  UsToMs(r.improved->Percentile(95)),
                  Speedup(r.base->Percentile(95), r.improved->Percentile(95)),
                  "~10x"});
  }
  fig10.Print("FIGURE 10 — Update+Insert workload (25% ins / 40% upd / 34% fetch / 1% scan)");

  ReportTable churn({"Counter", "Value"});
  churn.AddRow({"table rows at end", std::to_string(with_im.final_rows)});
  churn.AddRow({"IMCUs populated", std::to_string(with_im.population.imcus_populated)});
  churn.AddRow({"edge (tail) extensions", std::to_string(with_im.population.tail_extensions)});
  churn.AddRow({"repopulations", std::to_string(with_im.population.repopulations)});
  churn.AddRow({"rows populated", std::to_string(with_im.population.rows_populated)});
  churn.Print("Edge-IMCU churn during the DBIM-on-ADG run (Section IV.A.2's explanation)");

  std::printf("\nAchieved throughput: without=%.0f ops/s, with=%.0f ops/s\n",
              without.achieved_ops, with_im.achieved_ops);

  BenchReport report("fig10_update_insert");
  ReportCommonConfig(&report, DefaultOltapOptions());
  report.Metric("q1_median_us_without", without.q1.Percentile(50));
  report.Metric("q1_median_us_with", with_im.q1.Percentile(50));
  report.Metric("q1_p95_us_without", without.q1.Percentile(95));
  report.Metric("q1_p95_us_with", with_im.q1.Percentile(95));
  report.Metric("q2_median_us_without", without.q2.Percentile(50));
  report.Metric("q2_median_us_with", with_im.q2.Percentile(50));
  report.Metric("ops_per_sec_without", without.achieved_ops);
  report.Metric("ops_per_sec_with", with_im.achieved_ops);
  report.Metric("final_rows", with_im.final_rows);
  report.Metric("imcus_populated", with_im.population.imcus_populated);
  report.Metric("tail_extensions", with_im.population.tail_extensions);
  report.Metric("repopulations", with_im.population.repopulations);
  report.Write();
  return 0;
}
