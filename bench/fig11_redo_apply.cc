// Reproduces Figure 11 (Section IV.C): log advancement on primary and standby
// instances over time, with a 2-redo-thread (RAC) primary running a
// high-throughput mix of short, medium and long transactions and DBIM-on-ADG
// enabled on the standby. The claim under test: redo apply (and hence the
// QuerySCN) tracks primary log generation with minimal lag — the Invalidation
// Flush on the QuerySCN-advancement critical path adds only a thin overhead.
//
// The harness prints the time series the paper plots (pri_log/pri_log2 vs
// std_log) plus a with/without-DBIM-on-ADG lag summary.

#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "common/random.h"

namespace stratus {
namespace {

struct Sample {
  double t_sec;
  Scn pri_log1;
  Scn pri_log2;
  Scn std_dispatched;
  Scn std_query_scn;
  uint64_t shipped_bytes;
};

struct RunOutcome {
  std::vector<Sample> series;
  double avg_lag_scn = 0;
  Scn max_lag_scn = 0;
  uint64_t advancements = 0;
  double avg_quiesce_us = 0;
  uint64_t commits = 0;
};

RunOutcome RunOnce(bool imadg_enabled, int duration_ms, int mira_instances = 1) {
  DatabaseOptions db_options = DefaultClusterOptions();
  db_options.primary_redo_threads = 2;
  db_options.standby_imadg_enabled = imadg_enabled;
  db_options.mira_apply_instances = mira_instances;
  AdgCluster cluster(db_options);
  cluster.Start();

  const ObjectId table =
      cluster
          .CreateTable("t", kDefaultTenant, Schema::WideTable(5, 5),
                       ImService::kStandbyOnly, true)
          .value();

  // Seed rows.
  {
    Transaction txn = cluster.primary()->Begin();
    Random rng(7);
    for (int64_t id = 0; id < 4000; ++id) {
      Row row{Value(id)};
      for (int c = 0; c < 5; ++c)
        row.push_back(Value(static_cast<int64_t>(rng.Uniform(100))));
      for (int c = 0; c < 5; ++c) row.push_back(Value(rng.NextString(8)));
      (void)cluster.primary()->Insert(&txn, table, std::move(row), nullptr);
    }
    (void)cluster.primary()->Commit(&txn);
  }
  cluster.WaitForCatchup();
  (void)cluster.standby()->PopulateNow(table);

  // Transaction mix: short (1 DML), medium (8), long (64) — per Section IV.C.
  std::atomic<bool> stop{false};
  std::atomic<int64_t> next_id{4000};
  auto writer = [&](RedoThreadId thread, uint64_t seed) {
    Random rng(seed);
    while (!stop.load(std::memory_order_acquire)) {
      const uint32_t dice = static_cast<uint32_t>(rng.Uniform(100));
      const int ops = dice < 60 ? 1 : dice < 90 ? 8 : 64;
      Transaction txn = cluster.primary()->Begin(thread);
      for (int i = 0; i < ops; ++i) {
        const int64_t id = rng.UniformInt(0, next_id.load() - 1);
        Row row{Value(id)};
        for (int c = 0; c < 5; ++c)
          row.push_back(Value(static_cast<int64_t>(rng.Uniform(100))));
        for (int c = 0; c < 5; ++c) row.push_back(Value(rng.NextString(8)));
        if (!cluster.primary()->UpdateByKey(&txn, table, id, std::move(row)).ok())
          break;
      }
      (void)cluster.primary()->Commit(&txn);
    }
  };
  std::thread w1(writer, 0, 11);
  std::thread w2(writer, 1, 22);

  RunOutcome out;
  Stopwatch watch;
  const int sample_interval_ms = 250;
  std::vector<Scn> lags;
  while (watch.ElapsedNanos() < static_cast<uint64_t>(duration_ms) * 1'000'000ull) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sample_interval_ms));
    Sample s;
    s.t_sec = watch.ElapsedSeconds();
    s.pri_log1 = cluster.primary()->redo_log(0)->LastScn();
    s.pri_log2 = cluster.primary()->redo_log(1)->LastScn();
    s.std_dispatched = cluster.standby()->apply_engine() != nullptr
                           ? cluster.standby()->apply_engine()->dispatched_scn()
                           : kInvalidScn;
    s.std_query_scn = cluster.standby()->query_scn();
    s.shipped_bytes = cluster.shipped_bytes();
    out.series.push_back(s);
    const Scn pri = std::max(s.pri_log1, s.pri_log2);
    if (pri != kInvalidScn && s.std_query_scn != kInvalidScn && pri > s.std_query_scn)
      lags.push_back(pri - s.std_query_scn);
    else
      lags.push_back(0);
  }
  stop.store(true, std::memory_order_release);
  w1.join();
  w2.join();

  double total = 0;
  for (Scn lag : lags) {
    total += static_cast<double>(lag);
    out.max_lag_scn = std::max(out.max_lag_scn, lag);
  }
  out.avg_lag_scn = lags.empty() ? 0 : total / static_cast<double>(lags.size());
  if (cluster.standby()->coordinator() != nullptr) {
    out.advancements = cluster.standby()->coordinator()->advancements();
    out.avg_quiesce_us =
        out.advancements == 0
            ? 0.0
            : static_cast<double>(cluster.standby()->coordinator()->quiesce_nanos()) /
                  1000.0 / static_cast<double>(out.advancements);
  }
  out.commits = cluster.primary()->txn_manager()->commits();
  if (imadg_enabled && mira_instances == 1)
    DumpMetricsJson(cluster, "fig11_redo_apply");
  cluster.Stop();
  return out;
}

}  // namespace
}  // namespace stratus

int main() {
  using namespace stratus;
  const int duration_ms = static_cast<int>(EnvInt("STRATUS_DURATION_MS", 8'000));
  PrintHeader(
      "Figure 11 — Log advancement on primary and standby (2 primary redo threads)",
      "ICDE'20 Fig. 11: standby log catchup is almost instantaneous, minimal lag");

  std::printf("\n[1/3] DBIM-on-ADG ENABLED (SIRA)...\n");
  RunOutcome with_im = RunOnce(true, duration_ms);
  std::printf("[2/3] DBIM-on-ADG DISABLED (plain ADG reference)...\n");
  RunOutcome without = RunOnce(false, duration_ms);
  std::printf("[3/3] DBIM-on-ADG + MIRA (2 apply instances — Section V)...\n");
  RunOutcome mira = RunOnce(true, duration_ms, /*mira_instances=*/2);

  ReportTable series({"t (s)", "pri_log (SCN)", "pri_log2 (SCN)", "std dispatched",
                      "std QuerySCN", "shipped (KiB)"});
  for (const Sample& s : with_im.series) {
    series.AddRow({Fmt(s.t_sec, 2), std::to_string(s.pri_log1),
                   std::to_string(s.pri_log2), std::to_string(s.std_dispatched),
                   std::to_string(s.std_query_scn),
                   std::to_string(s.shipped_bytes / 1024)});
  }
  series.Print("FIGURE 11 — log advancement time series (DBIM-on-ADG enabled)");

  ReportTable summary({"Configuration", "avg lag (SCN)", "max lag (SCN)",
                       "QuerySCN advancements", "avg quiesce (us)", "commits"});
  summary.AddRow({"DBIM-on-ADG enabled", Fmt(with_im.avg_lag_scn, 0),
                  std::to_string(with_im.max_lag_scn),
                  std::to_string(with_im.advancements),
                  Fmt(with_im.avg_quiesce_us, 1), std::to_string(with_im.commits)});
  summary.AddRow({"plain ADG", Fmt(without.avg_lag_scn, 0),
                  std::to_string(without.max_lag_scn),
                  std::to_string(without.advancements),
                  Fmt(without.avg_quiesce_us, 1), std::to_string(without.commits)});
  summary.AddRow({"DBIM-on-ADG + MIRA (2 apply instances)", Fmt(mira.avg_lag_scn, 0),
                  std::to_string(mira.max_lag_scn),
                  std::to_string(mira.advancements),
                  Fmt(mira.avg_quiesce_us, 1), std::to_string(mira.commits)});
  summary.Print("Redo-apply impact of DBIM-on-ADG (Section IV.C claim: negligible)");

  std::printf("\nShape check: the standby QuerySCN tracks max(pri_log, pri_log2)\n"
              "within a small, bounded lag in both configurations.\n");

  BenchReport report("fig11_redo_apply");
  report.Config("duration_ms", static_cast<int64_t>(duration_ms));
  report.Config("workers", EnvInt("STRATUS_WORKERS", 4));
  report.Metric("avg_lag_scn_with", with_im.avg_lag_scn);
  report.Metric("max_lag_scn_with", with_im.max_lag_scn);
  report.Metric("advancements_with", with_im.advancements);
  report.Metric("avg_quiesce_us_with", with_im.avg_quiesce_us);
  report.Metric("commits_with", with_im.commits);
  report.Metric("avg_lag_scn_plain", without.avg_lag_scn);
  report.Metric("max_lag_scn_plain", without.max_lag_scn);
  report.Metric("avg_lag_scn_mira", mira.avg_lag_scn);
  report.Metric("max_lag_scn_mira", mira.max_lag_scn);
  report.Write();
  return 0;
}
