#ifndef STRATUS_BENCH_BENCH_UTIL_H_
#define STRATUS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "db/database.h"
#include "workload/oltap.h"
#include "workload/report.h"

namespace stratus {

/// Environment-overridable knob: STRATUS_<NAME> (integer).
inline int64_t EnvInt(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoll(v, nullptr, 10);
}

/// Shared defaults for the paper harnesses. The paper's testbed used a 6M-row
/// × 101-column table on Exadata; defaults here are scaled to finish on one
/// core in minutes (see DESIGN.md substitutions). Override via environment:
/// STRATUS_ROWS, STRATUS_DURATION_MS, STRATUS_NUM_COLS, STRATUS_VARCHAR_COLS,
/// STRATUS_TARGET_OPS.
inline OltapOptions DefaultOltapOptions() {
  OltapOptions options;
  options.initial_rows = static_cast<size_t>(EnvInt("STRATUS_ROWS", 60'000));
  options.num_cols = static_cast<int>(EnvInt("STRATUS_NUM_COLS", 10));
  options.varchar_cols = static_cast<int>(EnvInt("STRATUS_VARCHAR_COLS", 10));
  options.duration_ms = static_cast<int>(EnvInt("STRATUS_DURATION_MS", 5'000));
  options.target_ops_per_sec =
      static_cast<int>(EnvInt("STRATUS_TARGET_OPS", 4'000));
  options.num_threads = 2;
  options.value_domain = 1'000;
  return options;
}

inline DatabaseOptions DefaultClusterOptions() {
  DatabaseOptions options;
  options.apply.num_workers = static_cast<int>(EnvInt("STRATUS_WORKERS", 4));
  options.population.blocks_per_imcu = 16;
  options.population.manager_interval_us = 5'000;
  // Keep IMCU invalidity low so scans rarely pay the row-path reconciliation
  // (the paper's repopulation heuristics serve the same purpose).
  options.population.repop_invalid_threshold = 0.05;
  options.shipping.heartbeat_interval_us = 1'000;
  return options;
}

/// CPU percentage of one core over the run.
inline double CpuPct(uint64_t cpu_ns, uint64_t wall_ns) {
  return wall_ns == 0 ? 0.0
                      : 100.0 * static_cast<double>(cpu_ns) /
                            static_cast<double>(wall_ns);
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title);
  std::printf("Paper reference: %s\n", paper_ref);
  std::printf("==============================================================\n");
}

/// Dumps the cluster's full metrics registry to `<name>_metrics.json` in the
/// working directory (the `*_metrics.json` pattern is gitignored). Call while
/// the cluster is still running — the registry export pulls live pipeline
/// stats that detach on Stop().
inline void DumpMetricsJson(const AdgCluster& cluster, const std::string& name) {
  const std::string path = name + "_metrics.json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  out << cluster.MetricsJson();
  std::printf("metrics dump: %s\n", path.c_str());
}

/// Unified result artifact: every bench writes `BENCH_<name>.json` with the
/// same schema so perf-trajectory tooling can diff runs without per-bench
/// parsers:
///
///   {"bench": "<name>", "schema": 1,
///    "config": {...},    // the knobs that shaped the run (env overrides in)
///    "metrics": {...},   // the bench's headline numbers
///    "wall_ms": ..., "cpu_ms": ...}
///
/// `cpu_ms` is the constructing thread's CPU time (worker/pipeline threads
/// are not attributed — compare it against wall_ms for the driver's share).
/// Write() emits the file; the destructor writes if the bench forgot.
class BenchReport {
 public:
  explicit BenchReport(std::string name)
      : name_(std::move(name)), wall0_ns_(NowNanos()), cpu0_ns_(ThreadCpuNanos()) {}
  ~BenchReport() {
    if (!written_) Write();
  }

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  void Config(const std::string& key, int64_t v) {
    config_.emplace_back(key, std::to_string(v));
  }
  void Config(const std::string& key, double v) {
    config_.emplace_back(key, Num(v));
  }
  void Config(const std::string& key, const std::string& v) {
    config_.emplace_back(key, "\"" + Escaped(v) + "\"");
  }
  void Metric(const std::string& key, int64_t v) {
    metrics_.emplace_back(key, std::to_string(v));
  }
  void Metric(const std::string& key, uint64_t v) {
    metrics_.emplace_back(key, std::to_string(v));
  }
  void Metric(const std::string& key, double v) {
    metrics_.emplace_back(key, Num(v));
  }

  void Write() {
    written_ = true;
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return;
    }
    out << "{\"bench\":\"" << Escaped(name_) << "\",\"schema\":1,";
    out << "\"config\":" << Section(config_) << ",";
    out << "\"metrics\":" << Section(metrics_) << ",";
    out << "\"wall_ms\":" << Num(static_cast<double>(NowNanos() - wall0_ns_) / 1e6)
        << ",";
    out << "\"cpu_ms\":"
        << Num(static_cast<double>(ThreadCpuNanos() - cpu0_ns_) / 1e6) << "}\n";
    std::printf("bench report: %s\n", path.c_str());
  }

 private:
  using Entries = std::vector<std::pair<std::string, std::string>>;

  static std::string Num(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
  }
  static std::string Escaped(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }
  static std::string Section(const Entries& entries) {
    std::string out = "{";
    for (size_t i = 0; i < entries.size(); ++i) {
      if (i != 0) out += ",";
      out += "\"" + Escaped(entries[i].first) + "\":" + entries[i].second;
    }
    return out + "}";
  }

  std::string name_;
  uint64_t wall0_ns_;
  uint64_t cpu0_ns_;
  Entries config_;
  Entries metrics_;
  bool written_ = false;
};

/// Stamps the shared OLTAP/cluster env knobs into a report's config section
/// (the overridable surface of DefaultOltapOptions/DefaultClusterOptions).
inline void ReportCommonConfig(BenchReport* report, const OltapOptions& oltap) {
  report->Config("initial_rows", static_cast<int64_t>(oltap.initial_rows));
  report->Config("num_cols", static_cast<int64_t>(oltap.num_cols));
  report->Config("varchar_cols", static_cast<int64_t>(oltap.varchar_cols));
  report->Config("duration_ms", static_cast<int64_t>(oltap.duration_ms));
  report->Config("target_ops_per_sec",
                 static_cast<int64_t>(oltap.target_ops_per_sec));
  report->Config("workers", EnvInt("STRATUS_WORKERS", 4));
}

}  // namespace stratus

#endif  // STRATUS_BENCH_BENCH_UTIL_H_
