file(REMOVE_RECURSE
  "CMakeFiles/ablation_restart.dir/ablation_restart.cc.o"
  "CMakeFiles/ablation_restart.dir/ablation_restart.cc.o.d"
  "ablation_restart"
  "ablation_restart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_restart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
