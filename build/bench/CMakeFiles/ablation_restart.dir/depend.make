# Empty dependencies file for ablation_restart.
# This may be replaced when dependencies are built.
