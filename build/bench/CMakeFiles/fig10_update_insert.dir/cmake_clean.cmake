file(REMOVE_RECURSE
  "CMakeFiles/fig10_update_insert.dir/fig10_update_insert.cc.o"
  "CMakeFiles/fig10_update_insert.dir/fig10_update_insert.cc.o.d"
  "fig10_update_insert"
  "fig10_update_insert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_update_insert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
