file(REMOVE_RECURSE
  "CMakeFiles/table2_scan_only.dir/table2_scan_only.cc.o"
  "CMakeFiles/table2_scan_only.dir/table2_scan_only.cc.o.d"
  "table2_scan_only"
  "table2_scan_only.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_scan_only.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
