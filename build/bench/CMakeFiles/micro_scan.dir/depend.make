# Empty dependencies file for micro_scan.
# This may be replaced when dependencies are built.
