file(REMOVE_RECURSE
  "CMakeFiles/micro_scan.dir/micro_scan.cc.o"
  "CMakeFiles/micro_scan.dir/micro_scan.cc.o.d"
  "micro_scan"
  "micro_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
