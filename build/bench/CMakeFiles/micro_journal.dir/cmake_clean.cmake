file(REMOVE_RECURSE
  "CMakeFiles/micro_journal.dir/micro_journal.cc.o"
  "CMakeFiles/micro_journal.dir/micro_journal.cc.o.d"
  "micro_journal"
  "micro_journal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_journal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
