# Empty compiler generated dependencies file for micro_journal.
# This may be replaced when dependencies are built.
