file(REMOVE_RECURSE
  "CMakeFiles/ablation_rac_transport.dir/ablation_rac_transport.cc.o"
  "CMakeFiles/ablation_rac_transport.dir/ablation_rac_transport.cc.o.d"
  "ablation_rac_transport"
  "ablation_rac_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rac_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
