# Empty compiler generated dependencies file for ablation_rac_transport.
# This may be replaced when dependencies are built.
