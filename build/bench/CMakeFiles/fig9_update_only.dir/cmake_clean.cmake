file(REMOVE_RECURSE
  "CMakeFiles/fig9_update_only.dir/fig9_update_only.cc.o"
  "CMakeFiles/fig9_update_only.dir/fig9_update_only.cc.o.d"
  "fig9_update_only"
  "fig9_update_only.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_update_only.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
