# Empty dependencies file for fig9_update_only.
# This may be replaced when dependencies are built.
