file(REMOVE_RECURSE
  "CMakeFiles/fig11_redo_apply.dir/fig11_redo_apply.cc.o"
  "CMakeFiles/fig11_redo_apply.dir/fig11_redo_apply.cc.o.d"
  "fig11_redo_apply"
  "fig11_redo_apply.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_redo_apply.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
