# Empty dependencies file for fig11_redo_apply.
# This may be replaced when dependencies are built.
