file(REMOVE_RECURSE
  "CMakeFiles/ablation_flush.dir/ablation_flush.cc.o"
  "CMakeFiles/ablation_flush.dir/ablation_flush.cc.o.d"
  "ablation_flush"
  "ablation_flush.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_flush.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
