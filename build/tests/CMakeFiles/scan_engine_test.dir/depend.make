# Empty dependencies file for scan_engine_test.
# This may be replaced when dependencies are built.
