file(REMOVE_RECURSE
  "CMakeFiles/scan_engine_test.dir/scan_engine_test.cc.o"
  "CMakeFiles/scan_engine_test.dir/scan_engine_test.cc.o.d"
  "scan_engine_test"
  "scan_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
