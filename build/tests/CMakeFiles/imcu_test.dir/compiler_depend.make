# Empty compiler generated dependencies file for imcu_test.
# This may be replaced when dependencies are built.
