file(REMOVE_RECURSE
  "CMakeFiles/imcu_test.dir/imcu_test.cc.o"
  "CMakeFiles/imcu_test.dir/imcu_test.cc.o.d"
  "imcu_test"
  "imcu_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imcu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
