file(REMOVE_RECURSE
  "CMakeFiles/log_merger_test.dir/log_merger_test.cc.o"
  "CMakeFiles/log_merger_test.dir/log_merger_test.cc.o.d"
  "log_merger_test"
  "log_merger_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_merger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
