# Empty compiler generated dependencies file for log_merger_test.
# This may be replaced when dependencies are built.
