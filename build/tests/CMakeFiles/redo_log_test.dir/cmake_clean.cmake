file(REMOVE_RECURSE
  "CMakeFiles/redo_log_test.dir/redo_log_test.cc.o"
  "CMakeFiles/redo_log_test.dir/redo_log_test.cc.o.d"
  "redo_log_test"
  "redo_log_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redo_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
