file(REMOVE_RECURSE
  "CMakeFiles/smu_test.dir/smu_test.cc.o"
  "CMakeFiles/smu_test.dir/smu_test.cc.o.d"
  "smu_test"
  "smu_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
