# Empty dependencies file for smu_test.
# This may be replaced when dependencies are built.
