file(REMOVE_RECURSE
  "CMakeFiles/oltap_test.dir/oltap_test.cc.o"
  "CMakeFiles/oltap_test.dir/oltap_test.cc.o.d"
  "oltap_test"
  "oltap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oltap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
