# Empty dependencies file for oltap_test.
# This may be replaced when dependencies are built.
