file(REMOVE_RECURSE
  "CMakeFiles/commit_table_test.dir/commit_table_test.cc.o"
  "CMakeFiles/commit_table_test.dir/commit_table_test.cc.o.d"
  "commit_table_test"
  "commit_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commit_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
