# Empty dependencies file for commit_table_test.
# This may be replaced when dependencies are built.
