file(REMOVE_RECURSE
  "CMakeFiles/redo_apply_test.dir/redo_apply_test.cc.o"
  "CMakeFiles/redo_apply_test.dir/redo_apply_test.cc.o.d"
  "redo_apply_test"
  "redo_apply_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redo_apply_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
