# Empty dependencies file for redo_apply_test.
# This may be replaced when dependencies are built.
