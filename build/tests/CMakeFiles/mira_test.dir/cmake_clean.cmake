file(REMOVE_RECURSE
  "CMakeFiles/mira_test.dir/mira_test.cc.o"
  "CMakeFiles/mira_test.dir/mira_test.cc.o.d"
  "mira_test"
  "mira_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mira_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
