# Empty compiler generated dependencies file for mira_test.
# This may be replaced when dependencies are built.
