file(REMOVE_RECURSE
  "CMakeFiles/log_shipping_test.dir/log_shipping_test.cc.o"
  "CMakeFiles/log_shipping_test.dir/log_shipping_test.cc.o.d"
  "log_shipping_test"
  "log_shipping_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_shipping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
