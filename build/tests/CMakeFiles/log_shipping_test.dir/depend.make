# Empty dependencies file for log_shipping_test.
# This may be replaced when dependencies are built.
