file(REMOVE_RECURSE
  "CMakeFiles/im_store_test.dir/im_store_test.cc.o"
  "CMakeFiles/im_store_test.dir/im_store_test.cc.o.d"
  "im_store_test"
  "im_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/im_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
