# Empty compiler generated dependencies file for column_vector_test.
# This may be replaced when dependencies are built.
