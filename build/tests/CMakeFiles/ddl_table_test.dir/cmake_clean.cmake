file(REMOVE_RECURSE
  "CMakeFiles/ddl_table_test.dir/ddl_table_test.cc.o"
  "CMakeFiles/ddl_table_test.dir/ddl_table_test.cc.o.d"
  "ddl_table_test"
  "ddl_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddl_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
