# Empty dependencies file for ddl_table_test.
# This may be replaced when dependencies are built.
