# Empty dependencies file for change_vector_test.
# This may be replaced when dependencies are built.
