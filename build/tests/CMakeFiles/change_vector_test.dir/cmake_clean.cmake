file(REMOVE_RECURSE
  "CMakeFiles/change_vector_test.dir/change_vector_test.cc.o"
  "CMakeFiles/change_vector_test.dir/change_vector_test.cc.o.d"
  "change_vector_test"
  "change_vector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/change_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
