# Empty compiler generated dependencies file for rac_test.
# This may be replaced when dependencies are built.
