file(REMOVE_RECURSE
  "CMakeFiles/rac_test.dir/rac_test.cc.o"
  "CMakeFiles/rac_test.dir/rac_test.cc.o.d"
  "rac_test"
  "rac_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rac_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
