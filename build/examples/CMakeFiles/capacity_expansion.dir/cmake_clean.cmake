file(REMOVE_RECURSE
  "CMakeFiles/capacity_expansion.dir/capacity_expansion.cpp.o"
  "CMakeFiles/capacity_expansion.dir/capacity_expansion.cpp.o.d"
  "capacity_expansion"
  "capacity_expansion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capacity_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
