# Empty dependencies file for capacity_expansion.
# This may be replaced when dependencies are built.
