file(REMOVE_RECURSE
  "libstratus.a"
)
