
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adg/recovery_coordinator.cc" "src/CMakeFiles/stratus.dir/adg/recovery_coordinator.cc.o" "gcc" "src/CMakeFiles/stratus.dir/adg/recovery_coordinator.cc.o.d"
  "/root/repo/src/adg/recovery_worker.cc" "src/CMakeFiles/stratus.dir/adg/recovery_worker.cc.o" "gcc" "src/CMakeFiles/stratus.dir/adg/recovery_worker.cc.o.d"
  "/root/repo/src/adg/redo_apply.cc" "src/CMakeFiles/stratus.dir/adg/redo_apply.cc.o" "gcc" "src/CMakeFiles/stratus.dir/adg/redo_apply.cc.o.d"
  "/root/repo/src/adg/redo_splitter.cc" "src/CMakeFiles/stratus.dir/adg/redo_splitter.cc.o" "gcc" "src/CMakeFiles/stratus.dir/adg/redo_splitter.cc.o.d"
  "/root/repo/src/common/clock.cc" "src/CMakeFiles/stratus.dir/common/clock.cc.o" "gcc" "src/CMakeFiles/stratus.dir/common/clock.cc.o.d"
  "/root/repo/src/common/histogram.cc" "src/CMakeFiles/stratus.dir/common/histogram.cc.o" "gcc" "src/CMakeFiles/stratus.dir/common/histogram.cc.o.d"
  "/root/repo/src/common/latch.cc" "src/CMakeFiles/stratus.dir/common/latch.cc.o" "gcc" "src/CMakeFiles/stratus.dir/common/latch.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/stratus.dir/common/status.cc.o" "gcc" "src/CMakeFiles/stratus.dir/common/status.cc.o.d"
  "/root/repo/src/db/catalog.cc" "src/CMakeFiles/stratus.dir/db/catalog.cc.o" "gcc" "src/CMakeFiles/stratus.dir/db/catalog.cc.o.d"
  "/root/repo/src/db/database.cc" "src/CMakeFiles/stratus.dir/db/database.cc.o" "gcc" "src/CMakeFiles/stratus.dir/db/database.cc.o.d"
  "/root/repo/src/db/ddl.cc" "src/CMakeFiles/stratus.dir/db/ddl.cc.o" "gcc" "src/CMakeFiles/stratus.dir/db/ddl.cc.o.d"
  "/root/repo/src/db/query.cc" "src/CMakeFiles/stratus.dir/db/query.cc.o" "gcc" "src/CMakeFiles/stratus.dir/db/query.cc.o.d"
  "/root/repo/src/db/service.cc" "src/CMakeFiles/stratus.dir/db/service.cc.o" "gcc" "src/CMakeFiles/stratus.dir/db/service.cc.o.d"
  "/root/repo/src/imadg/commit_table.cc" "src/CMakeFiles/stratus.dir/imadg/commit_table.cc.o" "gcc" "src/CMakeFiles/stratus.dir/imadg/commit_table.cc.o.d"
  "/root/repo/src/imadg/ddl_table.cc" "src/CMakeFiles/stratus.dir/imadg/ddl_table.cc.o" "gcc" "src/CMakeFiles/stratus.dir/imadg/ddl_table.cc.o.d"
  "/root/repo/src/imadg/flush.cc" "src/CMakeFiles/stratus.dir/imadg/flush.cc.o" "gcc" "src/CMakeFiles/stratus.dir/imadg/flush.cc.o.d"
  "/root/repo/src/imadg/invalidation.cc" "src/CMakeFiles/stratus.dir/imadg/invalidation.cc.o" "gcc" "src/CMakeFiles/stratus.dir/imadg/invalidation.cc.o.d"
  "/root/repo/src/imadg/journal.cc" "src/CMakeFiles/stratus.dir/imadg/journal.cc.o" "gcc" "src/CMakeFiles/stratus.dir/imadg/journal.cc.o.d"
  "/root/repo/src/imadg/mining.cc" "src/CMakeFiles/stratus.dir/imadg/mining.cc.o" "gcc" "src/CMakeFiles/stratus.dir/imadg/mining.cc.o.d"
  "/root/repo/src/imcs/column_vector.cc" "src/CMakeFiles/stratus.dir/imcs/column_vector.cc.o" "gcc" "src/CMakeFiles/stratus.dir/imcs/column_vector.cc.o.d"
  "/root/repo/src/imcs/dictionary.cc" "src/CMakeFiles/stratus.dir/imcs/dictionary.cc.o" "gcc" "src/CMakeFiles/stratus.dir/imcs/dictionary.cc.o.d"
  "/root/repo/src/imcs/expression.cc" "src/CMakeFiles/stratus.dir/imcs/expression.cc.o" "gcc" "src/CMakeFiles/stratus.dir/imcs/expression.cc.o.d"
  "/root/repo/src/imcs/im_store.cc" "src/CMakeFiles/stratus.dir/imcs/im_store.cc.o" "gcc" "src/CMakeFiles/stratus.dir/imcs/im_store.cc.o.d"
  "/root/repo/src/imcs/imcu.cc" "src/CMakeFiles/stratus.dir/imcs/imcu.cc.o" "gcc" "src/CMakeFiles/stratus.dir/imcs/imcu.cc.o.d"
  "/root/repo/src/imcs/population.cc" "src/CMakeFiles/stratus.dir/imcs/population.cc.o" "gcc" "src/CMakeFiles/stratus.dir/imcs/population.cc.o.d"
  "/root/repo/src/imcs/scan_engine.cc" "src/CMakeFiles/stratus.dir/imcs/scan_engine.cc.o" "gcc" "src/CMakeFiles/stratus.dir/imcs/scan_engine.cc.o.d"
  "/root/repo/src/imcs/smu.cc" "src/CMakeFiles/stratus.dir/imcs/smu.cc.o" "gcc" "src/CMakeFiles/stratus.dir/imcs/smu.cc.o.d"
  "/root/repo/src/rac/home_location_map.cc" "src/CMakeFiles/stratus.dir/rac/home_location_map.cc.o" "gcc" "src/CMakeFiles/stratus.dir/rac/home_location_map.cc.o.d"
  "/root/repo/src/rac/transport.cc" "src/CMakeFiles/stratus.dir/rac/transport.cc.o" "gcc" "src/CMakeFiles/stratus.dir/rac/transport.cc.o.d"
  "/root/repo/src/redo/change_vector.cc" "src/CMakeFiles/stratus.dir/redo/change_vector.cc.o" "gcc" "src/CMakeFiles/stratus.dir/redo/change_vector.cc.o.d"
  "/root/repo/src/redo/log_merger.cc" "src/CMakeFiles/stratus.dir/redo/log_merger.cc.o" "gcc" "src/CMakeFiles/stratus.dir/redo/log_merger.cc.o.d"
  "/root/repo/src/redo/log_shipping.cc" "src/CMakeFiles/stratus.dir/redo/log_shipping.cc.o" "gcc" "src/CMakeFiles/stratus.dir/redo/log_shipping.cc.o.d"
  "/root/repo/src/redo/redo_log.cc" "src/CMakeFiles/stratus.dir/redo/redo_log.cc.o" "gcc" "src/CMakeFiles/stratus.dir/redo/redo_log.cc.o.d"
  "/root/repo/src/storage/block.cc" "src/CMakeFiles/stratus.dir/storage/block.cc.o" "gcc" "src/CMakeFiles/stratus.dir/storage/block.cc.o.d"
  "/root/repo/src/storage/block_store.cc" "src/CMakeFiles/stratus.dir/storage/block_store.cc.o" "gcc" "src/CMakeFiles/stratus.dir/storage/block_store.cc.o.d"
  "/root/repo/src/storage/buffer_cache.cc" "src/CMakeFiles/stratus.dir/storage/buffer_cache.cc.o" "gcc" "src/CMakeFiles/stratus.dir/storage/buffer_cache.cc.o.d"
  "/root/repo/src/storage/index.cc" "src/CMakeFiles/stratus.dir/storage/index.cc.o" "gcc" "src/CMakeFiles/stratus.dir/storage/index.cc.o.d"
  "/root/repo/src/storage/schema.cc" "src/CMakeFiles/stratus.dir/storage/schema.cc.o" "gcc" "src/CMakeFiles/stratus.dir/storage/schema.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/stratus.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/stratus.dir/storage/table.cc.o.d"
  "/root/repo/src/storage/value.cc" "src/CMakeFiles/stratus.dir/storage/value.cc.o" "gcc" "src/CMakeFiles/stratus.dir/storage/value.cc.o.d"
  "/root/repo/src/txn/txn_manager.cc" "src/CMakeFiles/stratus.dir/txn/txn_manager.cc.o" "gcc" "src/CMakeFiles/stratus.dir/txn/txn_manager.cc.o.d"
  "/root/repo/src/txn/txn_table.cc" "src/CMakeFiles/stratus.dir/txn/txn_table.cc.o" "gcc" "src/CMakeFiles/stratus.dir/txn/txn_table.cc.o.d"
  "/root/repo/src/workload/oltap.cc" "src/CMakeFiles/stratus.dir/workload/oltap.cc.o" "gcc" "src/CMakeFiles/stratus.dir/workload/oltap.cc.o.d"
  "/root/repo/src/workload/report.cc" "src/CMakeFiles/stratus.dir/workload/report.cc.o" "gcc" "src/CMakeFiles/stratus.dir/workload/report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
