# Empty dependencies file for stratus.
# This may be replaced when dependencies are built.
