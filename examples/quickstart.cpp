// Quickstart: stand up a primary + standby pair (Figure 1's topology), run
// OLTP on the primary, and watch the standby serve transactionally consistent
// analytics from its In-Memory Column Store — the paper's core promise.
//
// Build & run:   ./build/examples/quickstart

#include <cstdio>

#include "common/clock.h"
#include "db/database.h"

using namespace stratus;

int main() {
  // 1. A cluster: primary + standby connected by redo shipping.
  DatabaseOptions options;
  options.apply.num_workers = 4;        // Parallel redo apply on the standby.
  options.population.blocks_per_imcu = 16;
  AdgCluster cluster(options);
  cluster.Start();

  // 2. A table whose INMEMORY attribute targets the *standby* service: the
  //    standby builds IMCUs for it, the primary keeps only the row store.
  const ObjectId orders =
      cluster
          .CreateTable("orders", kDefaultTenant,
                       Schema(std::vector<ColumnDef>{{"id", ValueType::kInt},
                                                     {"amount", ValueType::kInt},
                                                     {"region", ValueType::kString}}),
                       ImService::kStandbyOnly, /*identity_index=*/true)
          .value();

  // 3. OLTP on the primary: insert 20k orders.
  std::printf("Loading 20,000 orders on the primary...\n");
  for (int batch = 0; batch < 20; ++batch) {
    Transaction txn = cluster.primary()->Begin();
    for (int i = 0; i < 1000; ++i) {
      const int64_t id = batch * 1000 + i;
      Row row{Value(id), Value(id % 500),
              Value(std::string(id % 3 == 0 ? "emea" : id % 3 == 1 ? "amer" : "apac"))};
      if (!cluster.primary()->Insert(&txn, orders, std::move(row), nullptr).ok())
        return 1;
    }
    if (!cluster.primary()->Commit(&txn).ok()) return 1;
  }

  // 4. The standby applies redo continuously; wait for it to catch up, then
  //    populate its column store (normally a background activity).
  cluster.WaitForCatchup();
  if (Status st = cluster.standby()->PopulateNow(orders); !st.ok()) {
    std::fprintf(stderr, "population failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("Standby QuerySCN: %llu (primary SCN: %llu)\n",
              static_cast<unsigned long long>(cluster.standby()->query_scn()),
              static_cast<unsigned long long>(cluster.primary()->current_scn()));

  // 5. Analytics on the standby — IMCS path vs forced row path.
  ScanQuery q;
  q.object = orders;
  q.predicates = {{2, PredOp::kEq, Value(std::string("emea"))}};
  q.agg = AggKind::kSum;
  q.agg_column = 1;

  uint64_t t0 = NowNanos();
  auto imcs = cluster.standby()->Query(q);
  const double imcs_ms = static_cast<double>(NowNanos() - t0) / 1e6;
  q.force_row_store = true;
  t0 = NowNanos();
  auto rowpath = cluster.standby()->Query(q);
  const double row_ms = static_cast<double>(NowNanos() - t0) / 1e6;
  if (!imcs.ok() || !rowpath.ok()) return 1;

  std::printf("\nSELECT SUM(amount) FROM orders WHERE region = 'emea'  (on standby)\n");
  std::printf("  IMCS path : sum=%lld over %llu rows in %.2f ms "
              "(%llu rows served from IMCUs)\n",
              static_cast<long long>(imcs->agg_int),
              static_cast<unsigned long long>(imcs->count), imcs_ms,
              static_cast<unsigned long long>(imcs->stats.rows_from_imcs));
  std::printf("  Row path  : sum=%lld over %llu rows in %.2f ms\n",
              static_cast<long long>(rowpath->agg_int),
              static_cast<unsigned long long>(rowpath->count), row_ms);
  std::printf("  Agreement : %s, speedup %.1fx\n",
              imcs->agg_int == rowpath->agg_int ? "EXACT" : "MISMATCH!",
              imcs_ms > 0 ? row_ms / imcs_ms : 0.0);

  // 6. Keep transacting: updates on the primary invalidate standby IMCU rows
  //    through the mining → journal → flush pipeline, never serving stale data.
  std::printf("\nUpdating 200 orders on the primary...\n");
  Transaction txn = cluster.primary()->Begin();
  for (int64_t id = 0; id < 200; ++id) {
    (void)cluster.primary()->UpdateByKey(
        &txn, orders, id, Row{Value(id), Value(int64_t{999'999}),
                              Value(std::string("emea"))});
  }
  (void)cluster.primary()->Commit(&txn);
  cluster.WaitForCatchup();

  ScanQuery fresh;
  fresh.object = orders;
  fresh.predicates = {{1, PredOp::kEq, Value(int64_t{999'999})}};
  fresh.agg = AggKind::kCount;
  auto result = cluster.standby()->Query(fresh);
  std::printf("Standby sees %llu updated rows (expected 200); "
              "%llu invalidation records were flushed to SMUs.\n",
              static_cast<unsigned long long>(result.ok() ? result->count : 0),
              static_cast<unsigned long long>(
                  cluster.standby()->flush()->stats().flushed_records));

  cluster.Stop();
  std::printf("\nDone.\n");
  return 0;
}
