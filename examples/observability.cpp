// Observability tour: boot a mini primary + standby cluster under OLTP load,
// attach the embedded HTTP observability server, and walk its endpoints —
// /metrics, /healthz, /readyz, the v$-style views, per-query profiles, and
// the slow-query log.
//
// Modes:
//   ./build/examples/observability            demo: print endpoint excerpts
//   ./build/examples/observability --smoke    CI self-check: GET every endpoint
//                                             over a real TCP client; non-zero
//                                             exit on any non-200 or empty body
//   ./build/examples/observability --serve [port-file]
//                                             keep serving until EOF on stdin;
//                                             writes the bound port to
//                                             `port-file` (default
//                                             obs_server.port) for curl
//
// Build & run:   ./build/examples/observability

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "db/database.h"
#include "db/introspection.h"
#include "obs/obs_server.h"

using namespace stratus;

namespace {

/// Minimal HTTP/1.0 GET over a fresh TCP connection (the smoke test's
/// client side — deliberately not reusing the server's code).
bool HttpGet(int port, const std::string& path, int* status, std::string* body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (::send(fd, request.data(), request.size(), 0) !=
      static_cast<ssize_t>(request.size())) {
    ::close(fd);
    return false;
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) response.append(buf, n);
  ::close(fd);
  if (response.rfind("HTTP/1.0 ", 0) != 0) return false;
  *status = std::atoi(response.c_str() + 9);
  const size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) return false;
  *body = response.substr(header_end + 4);
  return true;
}

/// Runs enough cluster activity that every endpoint has something to show.
ObjectId LoadCluster(AdgCluster* cluster) {
  const ObjectId orders =
      cluster
          ->CreateTable("orders", kDefaultTenant,
                        Schema(std::vector<ColumnDef>{
                            {"id", ValueType::kInt},
                            {"amount", ValueType::kInt}}),
                        ImService::kStandbyOnly, /*identity_index=*/true)
          .value();
  for (int batch = 0; batch < 4; ++batch) {
    Transaction txn = cluster->primary()->Begin();
    for (int i = 0; i < 1000; ++i) {
      const int64_t id = batch * 1000 + i;
      (void)cluster->primary()->Insert(&txn, orders,
                                       Row{Value(id), Value(id % 100)});
    }
    (void)cluster->primary()->Commit(&txn);
  }
  cluster->WaitForCatchup();
  (void)cluster->standby()->PopulateNow(orders);

  // A couple of standby queries so /queries and the profiles have entries.
  ScanQuery q;
  q.object = orders;
  q.predicates = {{1, PredOp::kEq, Value(int64_t{7})}};
  (void)cluster->standby()->Query(q);
  q.force_row_store = true;
  (void)cluster->standby()->Query(q);
  return orders;
}

int RunSmoke(AdgCluster* cluster, int port) {
  // /v/does_not_exist must 404; everything else must 200 with a body.
  struct Probe {
    const char* path;
    int want_status;
  };
  const Probe probes[] = {
      {"/metrics", 200},        {"/metrics.json", 200},
      {"/healthz", 200},        {"/readyz", 200},
      {"/traces", 200},         {"/queries", 200},
      {"/v/im_segments", 200},  {"/v/standby_apply", 200},
      {"/v/transport", 200},    {"/v/persist", 200},
      {"/v/does_not_exist", 404},
  };
  int failures = 0;
  for (const Probe& probe : probes) {
    int status = 0;
    std::string body;
    if (!HttpGet(port, probe.path, &status, &body)) {
      std::fprintf(stderr, "FAIL %s: transport error\n", probe.path);
      ++failures;
      continue;
    }
    if (status != probe.want_status || body.empty()) {
      std::fprintf(stderr, "FAIL %s: status=%d (want %d), body %zu bytes\n",
                   probe.path, status, probe.want_status, body.size());
      ++failures;
      continue;
    }
    std::printf("ok %-18s %d, %zu bytes\n", probe.path, status, body.size());
  }
  // Spot-check payload shape: /metrics carries the build-info series and the
  // im_segments view mentions the loaded table.
  int status = 0;
  std::string body;
  if (HttpGet(port, "/metrics", &status, &body) &&
      body.find("stratus_build_info") == std::string::npos) {
    std::fprintf(stderr, "FAIL /metrics: stratus_build_info missing\n");
    ++failures;
  }
  if (HttpGet(port, "/v/im_segments", &status, &body) &&
      body.find("\"orders\"") == std::string::npos) {
    std::fprintf(stderr, "FAIL /v/im_segments: no row for 'orders'\n");
    ++failures;
  }
  (void)cluster;
  return failures == 0 ? 0 : 1;
}

void PrintExcerpt(const char* title, const std::string& payload, size_t max) {
  std::printf("\n=== %s ===\n%.*s%s\n", title,
              static_cast<int>(std::min(payload.size(), max)), payload.c_str(),
              payload.size() > max ? "\n... (truncated)" : "");
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const bool serve = argc > 1 && std::strcmp(argv[1], "--serve") == 0;

  DatabaseOptions options;
  options.apply.num_workers = 2;
  options.population.blocks_per_imcu = 8;
  AdgCluster cluster(options);
  cluster.Start();
  const ObjectId orders = LoadCluster(&cluster);

  obs::ObsServerOptions server_options;
  server_options.registry = cluster.registry();
  obs::ObsServer server(server_options);
  ClusterObservability views(&cluster);
  views.Register(&server);
  if (Status st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("observability server on http://127.0.0.1:%d\n", server.port());

  int rc = 0;
  if (smoke) {
    rc = RunSmoke(&cluster, server.port());
  } else if (serve) {
    const char* port_file = argc > 2 ? argv[2] : "obs_server.port";
    if (FILE* f = std::fopen(port_file, "w"); f != nullptr) {
      std::fprintf(f, "%d\n", server.port());
      std::fclose(f);
    }
    std::printf("serving until EOF on stdin (try: curl -s "
                "http://127.0.0.1:%d/v/im_segments)\n",
                server.port());
    for (int c; (c = std::getchar()) != EOF;) {
    }
  } else {
    // Demo: fetch through the public payload builders (same code the HTTP
    // handlers run) and show what each surface looks like.
    ScanQuery q;
    q.object = orders;
    q.predicates = {{1, PredOp::kEq, Value(int64_t{7})}};
    if (auto result = cluster.standby()->Query(q); result.ok()) {
      PrintExcerpt("QueryResult::profile.Explain()", result->profile.Explain(),
                   2000);
    }
    PrintExcerpt("/v/im_segments", views.View("im_segments").body, 800);
    PrintExcerpt("/v/standby_apply", views.View("standby_apply").body, 800);
    PrintExcerpt("/v/transport", views.View("transport").body, 600);
    PrintExcerpt("/healthz", views.Healthz().body, 200);
    PrintExcerpt("/readyz", views.Readyz().body, 200);
    PrintExcerpt("/queries", views.QueriesJson(), 600);
  }

  server.Stop();
  cluster.Stop();
  return rc;
}
