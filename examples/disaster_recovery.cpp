// Disaster recovery walkthrough (Section III.E): the standby instance
// restarts, losing every non-persistent structure — the IMCS, the IM-ADG
// Journal and Commit Table — while a transaction is in flight on the primary.
// Specialized redo generation lets the standby detect the partially-mined
// transaction and coarse-invalidate only when necessary; queries stay correct
// throughout, and repopulation restores in-memory performance.
//
// Build & run:   ./build/examples/disaster_recovery

#include <cstdio>

#include "common/clock.h"
#include "db/database.h"

using namespace stratus;

namespace {

double TimeQ1Ms(StandbyDb* standby, ObjectId table, uint64_t* from_imcs) {
  ScanQuery q;
  q.object = table;
  q.predicates = {{1, PredOp::kEq, Value(int64_t{7})}};
  q.agg = AggKind::kCount;
  const uint64_t t0 = NowNanos();
  auto result = standby->Query(q);
  if (from_imcs != nullptr)
    *from_imcs = result.ok() ? result->stats.rows_from_imcs : 0;
  return static_cast<double>(NowNanos() - t0) / 1e6;
}

}  // namespace

int main() {
  DatabaseOptions options;
  options.apply.num_workers = 4;
  options.population.manager_interval_us = 500'000;  // Manual control below.
  AdgCluster cluster(options);
  cluster.Start();

  const ObjectId accounts =
      cluster
          .CreateTable("accounts", kDefaultTenant, Schema::WideTable(5, 5),
                       ImService::kStandbyOnly, true)
          .value();
  std::printf("[t0] Loading 10,000 accounts...\n");
  for (int batch = 0; batch < 10; ++batch) {
    Transaction txn = cluster.primary()->Begin();
    for (int64_t i = 0; i < 1000; ++i) {
      const int64_t id = batch * 1000 + i;
      Row row{Value(id)};
      for (int c = 0; c < 5; ++c) row.push_back(Value(id % (10 + c)));
      for (int c = 0; c < 5; ++c) row.push_back(Value(std::string("acct")));
      (void)cluster.primary()->Insert(&txn, accounts, std::move(row), nullptr);
    }
    (void)cluster.primary()->Commit(&txn);
  }
  cluster.WaitForCatchup();
  (void)cluster.standby()->PopulateNow(accounts);

  uint64_t from_imcs = 0;
  double ms = TimeQ1Ms(cluster.standby(), accounts, &from_imcs);
  std::printf("[t1] Steady state: Q1 on standby = %.2f ms (%llu rows via IMCS)\n",
              ms, static_cast<unsigned long long>(from_imcs));

  // An OLTP transaction is mid-flight when disaster strikes.
  std::printf("[t2] A transaction updates account 1 on the primary (not yet committed)...\n");
  Transaction in_flight = cluster.primary()->Begin();
  Row update{Value(int64_t{1})};
  for (int c = 0; c < 5; ++c) update.push_back(Value(int64_t{c}));
  for (int c = 0; c < 5; ++c) update.push_back(Value(std::string("dirty")));
  (void)cluster.primary()->UpdateByKey(&in_flight, accounts, 1, std::move(update));
  {
    Transaction marker = cluster.primary()->Begin();
    Row row{Value(int64_t{10'000})};
    for (int c = 0; c < 5; ++c) row.push_back(Value(int64_t{0}));
    for (int c = 0; c < 5; ++c) row.push_back(Value(std::string("m")));
    (void)cluster.primary()->Insert(&marker, accounts, std::move(row), nullptr);
    (void)cluster.primary()->Commit(&marker);
  }
  cluster.WaitForCatchup();

  std::printf("[t3] *** STANDBY INSTANCE RESTART *** "
              "(IMCS, journal, commit table: all lost)\n");
  cluster.standby()->Restart();
  cluster.WaitForCatchup();
  std::printf("      QuerySCN re-established: %llu\n",
              static_cast<unsigned long long>(cluster.standby()->query_scn()));

  // Population resumes immediately — the risky timing.
  (void)cluster.standby()->PopulateNow(accounts);
  std::printf("[t4] IMCS repopulated right after restart.\n");

  std::printf("[t5] The in-flight transaction commits on the primary...\n");
  (void)cluster.primary()->Commit(&in_flight);
  cluster.WaitForCatchup();

  const auto stats = cluster.standby()->im_store()->Stats();
  std::printf("      Coarse invalidations on standby: %llu "
              "(the commit record's IM flag + missing 'begin' forced it)\n",
              static_cast<unsigned long long>(stats.coarse_invalidations));

  ms = TimeQ1Ms(cluster.standby(), accounts, &from_imcs);
  std::printf("[t6] Q1 right after coarse invalidation = %.2f ms "
              "(%llu rows via IMCS — the row store serves everything, still "
              "CORRECT, just slower)\n",
              ms, static_cast<unsigned long long>(from_imcs));

  // Repopulation heals the IMCS.
  for (int i = 0; i < 3; ++i) cluster.standby()->populator()->RunOnePass();
  ms = TimeQ1Ms(cluster.standby(), accounts, &from_imcs);
  std::printf("[t7] Q1 after repopulation = %.2f ms (%llu rows via IMCS)\n", ms,
              static_cast<unsigned long long>(from_imcs));

  // Correctness check: the dirty update is visible exactly once.
  ScanQuery q;
  q.object = accounts;
  q.predicates = {{6, PredOp::kEq, Value(std::string("dirty"))}};
  q.agg = AggKind::kCount;
  auto result = cluster.standby()->Query(q);
  std::printf("[t8] Rows with the straddling transaction's value: %llu (expected 1)\n",
              static_cast<unsigned long long>(result.ok() ? result->count : 0));

  // Final act: the primary site is declared lost — FAILOVER. The standby
  // becomes a read-write primary; its IMCS survives the role transition and
  // is maintained by commit-time invalidation from here on.
  std::printf("[t9] *** FAILOVER: promoting the standby to primary ***\n");
  if (!cluster.standby()->Promote().ok()) return 1;
  Transaction txn = cluster.standby()->Begin();
  Row fresh{Value(int64_t{1})};
  for (int c = 0; c < 5; ++c) fresh.push_back(Value(int64_t{c}));
  for (int c = 0; c < 5; ++c) fresh.push_back(Value(std::string("new-era")));
  (void)cluster.standby()->UpdateByKey(&txn, accounts, 1, std::move(fresh));
  if (!cluster.standby()->Commit(&txn).ok()) return 1;
  ScanQuery post;
  post.object = accounts;
  post.predicates = {{6, PredOp::kEq, Value(std::string("new-era"))}};
  post.agg = AggKind::kCount;
  auto promoted = cluster.standby()->Query(post);
  std::printf("[t10] Write on the promoted database visible: %llu row(s). "
              "Business continues.\n",
              static_cast<unsigned long long>(promoted.ok() ? promoted->count : 0));

  cluster.Stop();
  std::printf("\nDone.\n");
  return 0;
}
