// Capacity expansion (Figure 2): partition the IMCS *across* the primary and
// standby databases. The SALES fact table is partitioned by month; only the
// latest month is populated in the primary's IMCS (hot OLTP + current-month
// reports), while the standby populates the whole year for deep analytics.
// Dimension tables are populated on BOTH instances for efficient joins.
//
// Build & run:   ./build/examples/capacity_expansion

#include <cstdio>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "db/database.h"

using namespace stratus;

namespace {

constexpr int kMonths = 12;
constexpr int kRowsPerMonth = 2'000;

Schema SalesSchema() {
  return Schema(std::vector<ColumnDef>{{"id", ValueType::kInt},
                                       {"product_id", ValueType::kInt},
                                       {"amount", ValueType::kInt}});
}

}  // namespace

int main() {
  DatabaseOptions options;
  options.apply.num_workers = 4;
  options.population.blocks_per_imcu = 8;
  AdgCluster cluster(options);
  cluster.Start();

  // SALES partitions: months 1..11 → standby-only IMCS, month 12 (latest) →
  // both. Dimension table PRODUCTS → both (join processing on each side).
  std::vector<ObjectId> sales(kMonths);
  for (int m = 0; m < kMonths; ++m) {
    const ImService service =
        m == kMonths - 1 ? ImService::kBoth : ImService::kStandbyOnly;
    sales[m] = cluster
                   .CreateTable("sales_2019_" + std::to_string(m + 1),
                                kDefaultTenant, SalesSchema(), service, true)
                   .value();
  }
  const ObjectId products =
      cluster
          .CreateTable("products", kDefaultTenant,
                       Schema(std::vector<ColumnDef>{{"product_id", ValueType::kInt},
                                                     {"category", ValueType::kString}}),
                       ImService::kBoth, true)
          .value();

  // Load dimensions + a year of sales.
  Random rng(2019);
  {
    Transaction txn = cluster.primary()->Begin();
    for (int64_t p = 0; p < 50; ++p) {
      (void)cluster.primary()->Insert(
          &txn, products,
          Row{Value(p), Value(std::string("cat") + std::to_string(p % 5))},
          nullptr);
    }
    (void)cluster.primary()->Commit(&txn);
  }
  std::printf("Loading %d months x %d sales rows...\n", kMonths, kRowsPerMonth);
  for (int m = 0; m < kMonths; ++m) {
    Transaction txn = cluster.primary()->Begin();
    for (int i = 0; i < kRowsPerMonth; ++i) {
      (void)cluster.primary()->Insert(
          &txn, sales[m],
          Row{Value(static_cast<int64_t>(m * kRowsPerMonth + i)),
              Value(static_cast<int64_t>(rng.Uniform(50))),
              Value(static_cast<int64_t>(rng.Uniform(1000)))},
          nullptr);
    }
    (void)cluster.primary()->Commit(&txn);
  }
  cluster.WaitForCatchup();

  // Populate per the service placement.
  for (int m = 0; m < kMonths; ++m)
    (void)cluster.standby()->PopulateNow(sales[m]);
  (void)cluster.standby()->PopulateNow(products);
  (void)cluster.primary()->PopulateNow(sales[kMonths - 1]);
  (void)cluster.primary()->PopulateNow(products);

  const auto pri = cluster.primary()->im_store()->Stats();
  const auto stb = cluster.standby()->im_store()->Stats();
  std::printf("\nIMCS placement (capacity expansion):\n");
  std::printf("  primary IMCS: %zu IMCUs, %zu KiB  (latest month + dimensions)\n",
              pri.smus_ready, pri.used_bytes / 1024);
  std::printf("  standby IMCS: %zu IMCUs, %zu KiB  (entire year + dimensions)\n",
              stb.smus_ready, stb.used_bytes / 1024);

  // Deep analytics on the standby: full-year join SALES ⋈ PRODUCTS.
  std::printf("\nFull-year analytics on the STANDBY (category = 'cat3'):\n");
  uint64_t year_total = 0;
  uint64_t t0 = NowNanos();
  for (int m = 0; m < kMonths; ++m) {
    JoinQuery join;
    join.left = sales[m];
    join.right = products;
    join.left_column = 1;   // product_id.
    join.right_column = 0;  // product_id.
    join.right_predicates = {{1, PredOp::kEq, Value(std::string("cat3"))}};
    auto result = cluster.standby()->Join(join);
    if (result.ok()) year_total += result->count;
  }
  std::printf("  matched %llu sales across 12 partitions in %.2f ms\n",
              static_cast<unsigned long long>(year_total),
              static_cast<double>(NowNanos() - t0) / 1e6);

  // Current-month report on the PRIMARY, from its own IMCS.
  std::printf("\nCurrent-month report on the PRIMARY:\n");
  ScanQuery current;
  current.object = sales[kMonths - 1];
  current.agg = AggKind::kSum;
  current.agg_column = 2;
  t0 = NowNanos();
  auto result = cluster.primary()->Query(current);
  std::printf("  SUM(amount) December = %lld in %.2f ms (%llu rows from IMCS)\n",
              result.ok() ? static_cast<long long>(result->agg_int) : -1,
              static_cast<double>(NowNanos() - t0) / 1e6,
              result.ok() ? static_cast<unsigned long long>(result->stats.rows_from_imcs)
                          : 0ull);

  // Workload isolation: the January partition is NOT in the primary's IMCS —
  // the same query there runs the row path on the primary, IMCS on standby.
  ScanQuery jan;
  jan.object = sales[0];
  jan.agg = AggKind::kSum;
  jan.agg_column = 2;
  auto pri_jan = cluster.primary()->Query(jan);
  auto stb_jan = cluster.standby()->Query(jan);
  if (pri_jan.ok() && stb_jan.ok()) {
    std::printf("\nJanuary partition: primary served %llu rows from IMCS (expected 0),\n"
                "                   standby served %llu rows from IMCS. Sums agree: %s\n",
                static_cast<unsigned long long>(pri_jan->stats.rows_from_imcs),
                static_cast<unsigned long long>(stb_jan->stats.rows_from_imcs),
                pri_jan->agg_int == stb_jan->agg_int ? "yes" : "NO");
  }

  cluster.Stop();
  std::printf("\nDone.\n");
  return 0;
}
