// Multi-tenant DBIM-on-ADG: the paper's infrastructure is tenant-aware —
// invalidation records carry tenant information and coarse invalidation
// (Section III.E) is scoped to one tenant's IMCUs. This example runs two
// tenants through one cluster and shows tenant isolation of the coarse path.
//
// Build & run:   ./build/examples/multi_tenant

#include <cstdio>

#include "db/database.h"

using namespace stratus;

namespace {

constexpr TenantId kTenantA = 1;
constexpr TenantId kTenantB = 2;

ObjectId MakeTenantTable(AdgCluster* cluster, TenantId tenant, const char* name) {
  const ObjectId table =
      cluster
          ->CreateTable(name, tenant, Schema::WideTable(3, 1),
                        ImService::kStandbyOnly, true)
          .value();
  Transaction txn = cluster->primary()->Begin(0, tenant);
  for (int64_t id = 0; id < 3000; ++id) {
    (void)cluster->primary()->Insert(
        &txn, table,
        Row{Value(id), Value(id % 10), Value(id % 20), Value(id % 30),
            Value(std::string("t") + std::to_string(tenant))},
        nullptr);
  }
  (void)cluster->primary()->Commit(&txn);
  return table;
}

uint64_t ImcsRows(StandbyDb* standby, ObjectId table) {
  ScanQuery q;
  q.object = table;
  q.agg = AggKind::kCount;
  auto result = standby->Query(q);
  return result.ok() ? result->stats.rows_from_imcs : 0;
}

}  // namespace

int main() {
  DatabaseOptions options;
  options.apply.num_workers = 4;
  options.population.manager_interval_us = 500'000;
  AdgCluster cluster(options);
  cluster.Start();

  std::printf("Creating one IM-enabled table per tenant and loading 3,000 rows each...\n");
  const ObjectId table_a = MakeTenantTable(&cluster, kTenantA, "events");
  const ObjectId table_b = MakeTenantTable(&cluster, kTenantB, "events");
  cluster.WaitForCatchup();
  (void)cluster.standby()->PopulateNow(table_a);
  (void)cluster.standby()->PopulateNow(table_b);

  std::printf("IMCS serving: tenant A=%llu rows, tenant B=%llu rows\n",
              static_cast<unsigned long long>(ImcsRows(cluster.standby(), table_a)),
              static_cast<unsigned long long>(ImcsRows(cluster.standby(), table_b)));

  // Per-tenant maintenance: tenant A's updates invalidate only A's IMCUs.
  std::printf("\nTenant A updates 100 rows...\n");
  Transaction txn = cluster.primary()->Begin(0, kTenantA);
  for (int64_t id = 0; id < 100; ++id) {
    (void)cluster.primary()->UpdateByKey(
        &txn, table_a, id,
        Row{Value(id), Value(int64_t{777}), Value(id % 20), Value(id % 30),
            Value(std::string("t1"))});
  }
  (void)cluster.primary()->Commit(&txn);
  cluster.WaitForCatchup();

  // Simulate the restart+straddler scenario for tenant B only: coarse
  // invalidation is tenant-scoped.
  std::printf("Simulating a straddling-transaction restart for tenant B...\n");
  Transaction straddler = cluster.primary()->Begin(0, kTenantB);
  (void)cluster.primary()->UpdateByKey(
      &straddler, table_b,
      1, Row{Value(int64_t{1}), Value(int64_t{5}), Value(int64_t{5}),
             Value(int64_t{5}), Value(std::string("t2"))});
  {
    Transaction marker = cluster.primary()->Begin(0, kTenantB);
    (void)cluster.primary()->Insert(
        &marker, table_b,
        Row{Value(int64_t{3000}), Value(int64_t{0}), Value(int64_t{0}),
            Value(int64_t{0}), Value(std::string("t2"))},
        nullptr);
    (void)cluster.primary()->Commit(&marker);
  }
  cluster.WaitForCatchup();
  cluster.standby()->Restart();
  cluster.WaitForCatchup();
  (void)cluster.standby()->PopulateNow(table_a);
  (void)cluster.standby()->PopulateNow(table_b);
  (void)cluster.primary()->Commit(&straddler);
  cluster.WaitForCatchup();

  std::printf("\nAfter tenant B's coarse invalidation:\n");
  std::printf("  tenant A IMCS rows: %llu  (unaffected — isolation)\n",
              static_cast<unsigned long long>(ImcsRows(cluster.standby(), table_a)));
  std::printf("  tenant B IMCS rows: %llu  (coarse-invalidated → row path)\n",
              static_cast<unsigned long long>(ImcsRows(cluster.standby(), table_b)));
  std::printf("  coarse invalidations recorded: %llu\n",
              static_cast<unsigned long long>(
                  cluster.standby()->im_store()->Stats().coarse_invalidations));

  // Both tenants' queries remain correct.
  ScanQuery qa;
  qa.object = table_a;
  qa.predicates = {{1, PredOp::kEq, Value(int64_t{777})}};
  qa.agg = AggKind::kCount;
  ScanQuery qb;
  qb.object = table_b;
  qb.agg = AggKind::kCount;
  auto ra = cluster.standby()->Query(qa);
  auto rb = cluster.standby()->Query(qb);
  std::printf("\nCorrectness: tenant A updated rows = %llu (expected 100), "
              "tenant B total rows = %llu (expected 3001)\n",
              static_cast<unsigned long long>(ra.ok() ? ra->count : 0),
              static_cast<unsigned long long>(rb.ok() ? rb->count : 0));

  cluster.Stop();
  std::printf("\nDone.\n");
  return 0;
}
