#include "obs/lag_monitor.h"

#include <algorithm>
#include <chrono>

#include "common/clock.h"

namespace stratus {
namespace obs {

LagMonitor::LagMonitor(LagSources sources, MetricsRegistry* registry,
                       Labels labels, int64_t poll_interval_us)
    : sources_(std::move(sources)),
      registry_(registry),
      poll_interval_us_(poll_interval_us) {
  if (registry_ != nullptr) {
    transport_lag_scn_ =
        registry_->GetGauge("stratus_lag_transport_scn", labels);
    apply_lag_scn_ = registry_->GetGauge("stratus_lag_apply_scn", labels);
    staleness_scn_ = registry_->GetGauge("stratus_lag_queryscn_scn", labels);
    transport_lag_us_ = registry_->GetGauge("stratus_lag_transport_us", labels);
    apply_lag_us_ = registry_->GetGauge("stratus_lag_apply_us", labels);
    staleness_us_ = registry_->GetGauge("stratus_lag_queryscn_us", labels);
    primary_scn_gauge_ = registry_->GetGauge("stratus_primary_scn", labels);
    query_scn_gauge_ = registry_->GetGauge("stratus_query_scn", labels);
    no_data_gauge_ = registry_->GetGauge("stratus_lag_no_data", labels);
    clamped_gauge_ = registry_->GetGauge("stratus_lag_heartbeat_clamped", labels);
    staleness_hist_ =
        registry_->GetHistogram("stratus_queryscn_staleness_us", labels);
  }
}

LagMonitor::~LagMonitor() { Stop(); }

void LagMonitor::Start() {
  if (started_) return;
  started_ = true;
  {
    std::lock_guard<std::mutex> g(stop_mu_);
    stop_ = false;
  }
  thread_ = std::thread([this] { Run(); });
}

void LagMonitor::Stop() {
  if (!started_) return;
  started_ = false;
  {
    std::lock_guard<std::mutex> g(stop_mu_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void LagMonitor::Run() {
  for (;;) {
    {
      std::unique_lock<std::mutex> g(stop_mu_);
      if (stop_cv_.wait_for(g, std::chrono::microseconds(poll_interval_us_),
                            [this] { return stop_; })) {
        return;
      }
    }
    Snapshot();
  }
}

void LagMonitor::ExtendTimeline(Scn primary, uint64_t now_us) {
  if (primary == kInvalidScn) return;
  std::lock_guard<std::mutex> g(timeline_mu_);
  if (!timeline_.empty() && timeline_.back().scn >= primary) return;
  timeline_.push_back({primary, now_us});
  if (timeline_.size() > kMaxTimeline) timeline_.pop_front();
}

int64_t LagMonitor::WallLagUs(Scn scn, Scn primary, uint64_t now_us) const {
  if (primary == kInvalidScn) return 0;
  const Scn at = scn == kInvalidScn ? 0 : scn;
  if (at >= primary) return 0;
  std::lock_guard<std::mutex> g(timeline_mu_);
  if (timeline_.empty()) return 0;
  // First timeline point with scn > at: when the primary moved past the
  // consumer's position. Everything the consumer is missing was generated at
  // or after that moment.
  const auto it = std::upper_bound(
      timeline_.begin(), timeline_.end(), at,
      [](Scn value, const TimelinePoint& p) { return value < p.scn; });
  if (it == timeline_.end()) {
    // The primary's advance past `at` happened since the last poll; it is at
    // most one poll interval old.
    return 0;
  }
  return now_us > it->at_us ? static_cast<int64_t>(now_us - it->at_us) : 0;
}

LagSnapshot LagMonitor::Snapshot() {
  LagSnapshot snap;
  snap.sampled_at_us = NowMicros();
  snap.primary_scn = sources_.primary_scn ? sources_.primary_scn() : kInvalidScn;
  snap.shipped_scn = sources_.shipped_scn ? sources_.shipped_scn() : kInvalidScn;
  snap.applied_scn = sources_.applied_scn ? sources_.applied_scn() : kInvalidScn;
  snap.query_scn = sources_.query_scn ? sources_.query_scn() : kInvalidScn;

  ExtendTimeline(snap.primary_scn, snap.sampled_at_us);

  snap.primary_known = snap.primary_scn != kInvalidScn;
  snap.no_data = snap.shipped_scn == kInvalidScn &&
                 snap.applied_scn == kInvalidScn &&
                 snap.query_scn == kInvalidScn;

  // Heartbeat records carry SCNs above the primary's visible (commit) SCN, so
  // shipped/applied/query watermarks legitimately run ahead of it at idle.
  // Clamp consumers to the primary's position: lag measures missing *commits*,
  // and an idle, caught-up pipeline must read as zero on every stage. The
  // snapshot remembers that a clamp happened — a clamped zero is a real
  // "caught up", while no_data zeros measure nothing at all.
  auto clamp = [&](Scn v) -> Scn {
    if (v == kInvalidScn || snap.primary_scn == kInvalidScn) return v;
    if (v > snap.primary_scn) snap.heartbeat_clamped = true;
    return std::min(v, snap.primary_scn);
  };
  snap.shipped_scn = clamp(snap.shipped_scn);
  snap.applied_scn = clamp(snap.applied_scn);
  snap.query_scn = clamp(snap.query_scn);

  auto delta = [](Scn ahead, Scn behind) -> uint64_t {
    if (ahead == kInvalidScn) return 0;
    const Scn b = behind == kInvalidScn ? 0 : behind;
    return ahead > b ? ahead - b : 0;
  };
  snap.transport_lag_scn = delta(snap.primary_scn, snap.shipped_scn);
  snap.apply_lag_scn = delta(snap.shipped_scn, snap.applied_scn);
  snap.staleness_scn = delta(snap.primary_scn, snap.query_scn);

  snap.transport_lag_us =
      WallLagUs(snap.shipped_scn, snap.primary_scn, snap.sampled_at_us);
  // Apply lag is measured against the apply stage's *input* (the shipped
  // mark): redo still in flight is transport lag, not apply lag.
  snap.apply_lag_us =
      WallLagUs(snap.applied_scn, snap.shipped_scn, snap.sampled_at_us);
  snap.staleness_us =
      WallLagUs(snap.query_scn, snap.primary_scn, snap.sampled_at_us);

  polls_.fetch_add(1, std::memory_order_relaxed);
  Publish(snap);
  return snap;
}

void LagMonitor::Publish(const LagSnapshot& snap) {
  if (registry_ == nullptr) return;
  transport_lag_scn_->Set(static_cast<int64_t>(snap.transport_lag_scn));
  apply_lag_scn_->Set(static_cast<int64_t>(snap.apply_lag_scn));
  staleness_scn_->Set(static_cast<int64_t>(snap.staleness_scn));
  transport_lag_us_->Set(snap.transport_lag_us);
  apply_lag_us_->Set(snap.apply_lag_us);
  staleness_us_->Set(snap.staleness_us);
  primary_scn_gauge_->Set(
      snap.primary_scn == kInvalidScn ? 0 : static_cast<int64_t>(snap.primary_scn));
  query_scn_gauge_->Set(
      snap.query_scn == kInvalidScn ? 0 : static_cast<int64_t>(snap.query_scn));
  no_data_gauge_->Set(snap.no_data ? 1 : 0);
  clamped_gauge_->Set(snap.heartbeat_clamped ? 1 : 0);
  staleness_hist_->Record(static_cast<uint64_t>(snap.staleness_us));
}

}  // namespace obs
}  // namespace stratus
