#include "obs/trace.h"

#include <array>
#include <cstdio>

namespace stratus {
namespace obs {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kRedoGenerate:
      return "redo_generate";
    case Stage::kLogShip:
      return "log_ship";
    case Stage::kLogMerge:
      return "log_merge";
    case Stage::kRecoveryApply:
      return "recovery_apply";
    case Stage::kJournalAppend:
      return "journal_append";
    case Stage::kInvalidationFlush:
      return "invalidation_flush";
    case Stage::kQueryScnAdvance:
      return "queryscn_advance";
    case Stage::kScan:
      return "scan";
    case Stage::kPopulation:
      return "population";
    case Stage::kNumStages:
      break;
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// TraceBuffer
// ---------------------------------------------------------------------------

TraceBuffer::TraceBuffer(size_t capacity) {
  ring_.resize(capacity == 0 ? 1 : capacity);
}

TraceBuffer& TraceBuffer::Global() {
  static TraceBuffer* global = new TraceBuffer();
  return *global;
}

void TraceBuffer::Emit(const TraceEvent& event) {
  total_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> g(mu_);
  ring_[next_] = event;
  if (++next_ == ring_.size()) {
    next_ = 0;
    wrapped_ = true;
  }
}

std::vector<TraceEvent> TraceBuffer::Snapshot() const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<TraceEvent> out;
  if (wrapped_) {
    out.reserve(ring_.size());
    out.insert(out.end(), ring_.begin() + static_cast<long>(next_), ring_.end());
  } else {
    out.reserve(next_);
  }
  out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<long>(next_));
  return out;
}

void TraceBuffer::Clear() {
  std::lock_guard<std::mutex> g(mu_);
  next_ = 0;
  wrapped_ = false;
}

std::string TraceBuffer::ExportJson() const {
  const std::vector<TraceEvent> events = Snapshot();
  std::string out = "[\n";
  bool first = true;
  char buf[256];
  for (const TraceEvent& e : events) {
    if (!first) out += ",\n";
    first = false;
    // Chrome trace-event "complete" events (ph:"X", ts/dur in microseconds).
    std::snprintf(buf, sizeof(buf),
                  "  {\"name\":\"%s\",\"ph\":\"X\",\"ts\":%llu,\"dur\":%.3f,"
                  "\"tid\":%u,\"args\":{\"id\":%llu}}",
                  StageName(e.stage),
                  static_cast<unsigned long long>(e.start_us),
                  static_cast<double>(e.dur_ns) / 1000.0, e.thread,
                  static_cast<unsigned long long>(e.id));
    out += buf;
  }
  out += "\n]\n";
  return out;
}

// ---------------------------------------------------------------------------
// Span plumbing
// ---------------------------------------------------------------------------

namespace internal {

int StageSampleShift(Stage stage) {
  switch (stage) {
    // Per-record hot paths: every 64th event reaches the trace ring.
    case Stage::kRecoveryApply:
    case Stage::kJournalAppend:
    case Stage::kLogMerge:
      return 6;
    // Per-batch / per-commit paths: every 8th.
    case Stage::kRedoGenerate:
    case Stage::kLogShip:
      return 3;
    // Control-plane and query stages: every event.
    default:
      return 0;
  }
}

LatencyHistogram* StageHistogram(Stage stage) {
  struct Table {
    std::array<LatencyHistogram*, kNumStages> h;
    Table() {
      for (size_t s = 0; s < kNumStages; ++s) {
        h[s] = MetricsRegistry::Global().GetHistogram(
            "stratus_stage_us",
            {{"stage", StageName(static_cast<Stage>(s))}});
      }
    }
  };
  static Table* table = new Table();
  return table->h[static_cast<size_t>(stage)];
}

bool ShouldTrace(Stage stage) {
  const int shift = StageSampleShift(stage);
  if (shift == 0) return true;
  static std::array<std::atomic<uint64_t>, kNumStages> occurrences{};
  const uint64_t n = occurrences[static_cast<size_t>(stage)].fetch_add(
      1, std::memory_order_relaxed);
  return (n & ((1ull << shift) - 1)) == 0;
}

uint32_t ThreadOrdinal() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

}  // namespace internal

}  // namespace obs
}  // namespace stratus
