#ifndef STRATUS_OBS_METRICS_H_
#define STRATUS_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace stratus {
namespace obs {

/// Label set attached to a series, e.g. {{"role","standby"},{"instance","1"}}.
/// Order does not matter: the registry canonicalizes by sorting on key.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// A monotonically increasing counter, sharded across cache lines so hot
/// paths (redo apply, journal append) can Inc() without bouncing one atomic
/// between every worker thread.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Inc(uint64_t n = 1) {
    cells_[CellIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  static constexpr size_t kShards = 8;
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  static size_t CellIndex();

  std::array<Cell, kShards> cells_;
};

/// A point-in-time value (queue depth, lag, watermark). Signed so deltas that
/// transiently go negative (clock skew between sample points) stay sane.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket (power-of-two, microseconds) latency histogram. Record() is a
/// handful of relaxed atomic ops — cheap enough for per-change-vector hot
/// paths — and percentiles are derived from bucket counts with log-linear
/// interpolation (bounded error, never a sort).
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 64;

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void Record(uint64_t value_us);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t SumUs() const { return sum_us_.load(std::memory_order_relaxed); }
  uint64_t MaxUs() const { return max_us_.load(std::memory_order_relaxed); }
  double Average() const;
  /// p in [0,100]. Approximate (bucketed); exact for counts of 0/1 buckets.
  double Percentile(double p) const;

  void Reset();

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_us_{0};
  std::atomic<uint64_t> max_us_{0};
};

/// Receives series from pull callbacks at export time. Components that keep
/// their own per-instance stats structs (BufferCacheStats, FlushStats, …)
/// publish through this instead of duplicating state into registry handles.
class MetricsSink {
 public:
  virtual ~MetricsSink() = default;
  virtual void Counter(std::string_view name, const Labels& labels,
                       uint64_t value) = 0;
  virtual void Gauge(std::string_view name, const Labels& labels,
                     double value) = 0;
};

/// Process-wide registry of named series. Handle lookup (GetCounter & co) is
/// lock-sharded by name hash; the returned pointers are stable for the
/// registry's lifetime, so hot paths resolve their handle once and then
/// touch only the handle's atomics.
///
/// Two publication styles coexist:
///  - owned handles (GetCounter/GetGauge/GetHistogram) for new
///    instrumentation recorded in place, and
///  - pull callbacks (AddCallback) for the pre-existing *Stats snapshot
///    structs, which stay the per-component source of truth and are read out
///    only when somebody exports.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry (what DatabaseOptions defaults to).
  static MetricsRegistry& Global();

  /// Finds or creates a series. Same (name, labels) → same handle, so
  /// sequentially created clusters keep appending to one series rather than
  /// colliding.
  Counter* GetCounter(std::string_view name, const Labels& labels = {});
  Gauge* GetGauge(std::string_view name, const Labels& labels = {});
  LatencyHistogram* GetHistogram(std::string_view name,
                                 const Labels& labels = {});

  /// Registers a pull callback invoked during every export. Returns an id
  /// for RemoveCallback. Callbacks run under the registry's callback mutex:
  /// removal never races a running export.
  uint64_t AddCallback(std::function<void(MetricsSink*)> fn);
  void RemoveCallback(uint64_t id);

  /// Prometheus-style text exposition ("name{k=\"v\"} value" lines, sorted).
  /// Histograms expand to _count/_sum_us/_p50_us/_p95_us/_p99_us/_max_us.
  std::string ExportText() const;
  /// The same series as a JSON array of {name, labels, type, ...} objects.
  std::string ExportJson() const;
  /// Number of distinct series the next export would emit (histograms count
  /// once, not once per derived column).
  size_t SeriesCount() const;

  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };
  /// One exported series, flattened for sorting/rendering (public so the
  /// export machinery in metrics.cc can build them from callbacks).
  struct Rendered;

 private:
  struct Entry {
    std::string name;
    Labels labels;
    Kind kind;
    std::unique_ptr<obs::Counter> counter;
    std::unique_ptr<obs::Gauge> gauge;
    std::unique_ptr<obs::LatencyHistogram> histogram;
  };

  static constexpr size_t kMapShards = 16;
  struct Shard {
    mutable std::mutex mu;
    // Keyed by canonical "name|k=v|k=v" encoding.
    std::vector<std::unique_ptr<Entry>> entries;
  };

  Entry* FindOrCreate(std::string_view name, const Labels& labels, Kind kind);

  void Collect(std::vector<Rendered>* out) const;

  std::array<Shard, kMapShards> shards_;

  mutable std::mutex callbacks_mu_;
  uint64_t next_callback_id_ = 1;
  std::vector<std::pair<uint64_t, std::function<void(MetricsSink*)>>> callbacks_;
};

/// Registers the `stratus_build_info` gauge (value always 1) whose labels
/// carry the binary's identifying facts — version, compiler, build type,
/// NDEBUG, chaos points — so dashboards can correlate metric streams with
/// the build that produced them. Idempotent: same labels map to one series.
void ExportBuildInfo(MetricsRegistry* registry);

/// RAII holder for an export callback: registers on Attach, removes on
/// destruction (or Reset), so a component's series vanish from exports the
/// moment the component is torn down instead of dangling.
class ScopedMetricsCallback {
 public:
  ScopedMetricsCallback() = default;
  ScopedMetricsCallback(MetricsRegistry* registry,
                        std::function<void(MetricsSink*)> fn) {
    Attach(registry, std::move(fn));
  }
  ~ScopedMetricsCallback() { Reset(); }

  ScopedMetricsCallback(const ScopedMetricsCallback&) = delete;
  ScopedMetricsCallback& operator=(const ScopedMetricsCallback&) = delete;

  void Attach(MetricsRegistry* registry, std::function<void(MetricsSink*)> fn) {
    Reset();
    registry_ = registry;
    id_ = registry_->AddCallback(std::move(fn));
  }

  void Reset() {
    if (registry_ != nullptr) registry_->RemoveCallback(id_);
    registry_ = nullptr;
    id_ = 0;
  }

 private:
  MetricsRegistry* registry_ = nullptr;
  uint64_t id_ = 0;
};

}  // namespace obs
}  // namespace stratus

#endif  // STRATUS_OBS_METRICS_H_
