#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace stratus {
namespace obs {

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

size_t Counter::CellIndex() {
  static std::atomic<size_t> next_slot{0};
  thread_local const size_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

namespace {

/// Bucket b holds values in [2^(b-1), 2^b); bucket 0 holds 0us. Values at or
/// above 2^62 all land in the last bucket (bit_width would index past the
/// array for them).
inline size_t BucketFor(uint64_t us) {
  return std::min(static_cast<size_t>(std::bit_width(us)),
                  LatencyHistogram::kBuckets - 1);
}

inline double BucketLow(size_t b) {
  return b == 0 ? 0.0 : static_cast<double>(1ull << (b - 1));
}

inline double BucketHigh(size_t b) {
  return b == 0 ? 1.0 : static_cast<double>(1ull << b);
}

}  // namespace

void LatencyHistogram::Record(uint64_t value_us) {
  buckets_[BucketFor(value_us)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(value_us, std::memory_order_relaxed);
  uint64_t prev = max_us_.load(std::memory_order_relaxed);
  while (prev < value_us &&
         !max_us_.compare_exchange_weak(prev, value_us,
                                        std::memory_order_relaxed)) {
  }
}

double LatencyHistogram::Average() const {
  const uint64_t n = Count();
  return n == 0 ? 0.0 : static_cast<double>(SumUs()) / static_cast<double>(n);
}

double LatencyHistogram::Percentile(double p) const {
  std::array<uint64_t, kBuckets> counts;
  uint64_t total = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
    total += counts[b];
  }
  if (total == 0) return 0.0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  const double rank = p / 100.0 * static_cast<double>(total);
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    if (counts[b] == 0) continue;
    if (static_cast<double>(seen + counts[b]) >= rank) {
      // Linear interpolation inside the bucket's value range.
      const double into =
          counts[b] == 0
              ? 0.0
              : (rank - static_cast<double>(seen)) / static_cast<double>(counts[b]);
      const double lo = BucketLow(b);
      const double hi = std::min(BucketHigh(b),
                                 static_cast<double>(MaxUs() == 0 ? 1 : MaxUs()));
      return lo + (std::max(hi, lo) - lo) * std::clamp(into, 0.0, 1.0);
    }
    seen += counts[b];
  }
  return static_cast<double>(MaxUs());
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_us_.store(0, std::memory_order_relaxed);
  max_us_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

namespace {

Labels Canonicalize(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

std::string SeriesKey(std::string_view name, const Labels& canonical) {
  std::string key(name);
  for (const auto& [k, v] : canonical) {
    key.push_back('|');
    key.append(k);
    key.push_back('=');
    key.append(v);
  }
  return key;
}

std::string RenderLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out.append(k);
    out.append("=\"");
    out.append(v);
    out.push_back('"');
  }
  out.push_back('}');
  return out;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out.append("\\n");
      continue;
    }
    out.push_back(c);
  }
  return out;
}

std::string FmtDouble(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
  }
  return buf;
}

}  // namespace

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* global = new MetricsRegistry();
  return *global;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(std::string_view name,
                                                      const Labels& labels,
                                                      Kind kind) {
  const Labels canonical = Canonicalize(labels);
  const std::string key = SeriesKey(name, canonical);
  Shard& shard = shards_[std::hash<std::string>{}(key) % kMapShards];
  std::lock_guard<std::mutex> g(shard.mu);
  for (const auto& e : shard.entries) {
    if (e->name == name && e->labels == canonical) {
      // A name+labels pair identifies one series; silently creating a second
      // series of another kind would emit duplicate names in the exposition.
      if (e->kind != kind) {
        std::fprintf(stderr,
                     "MetricsRegistry: series \"%s\" already registered with a "
                     "different kind\n",
                     key.c_str());
        std::abort();
      }
      return e.get();
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->labels = canonical;
  entry->kind = kind;
  switch (kind) {
    case Kind::kCounter:
      entry->counter = std::make_unique<obs::Counter>();
      break;
    case Kind::kGauge:
      entry->gauge = std::make_unique<obs::Gauge>();
      break;
    case Kind::kHistogram:
      entry->histogram = std::make_unique<obs::LatencyHistogram>();
      break;
  }
  shard.entries.push_back(std::move(entry));
  return shard.entries.back().get();
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     const Labels& labels) {
  return FindOrCreate(name, labels, Kind::kCounter)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, const Labels& labels) {
  return FindOrCreate(name, labels, Kind::kGauge)->gauge.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(std::string_view name,
                                                const Labels& labels) {
  return FindOrCreate(name, labels, Kind::kHistogram)->histogram.get();
}

uint64_t MetricsRegistry::AddCallback(std::function<void(MetricsSink*)> fn) {
  std::lock_guard<std::mutex> g(callbacks_mu_);
  const uint64_t id = next_callback_id_++;
  callbacks_.emplace_back(id, std::move(fn));
  return id;
}

void MetricsRegistry::RemoveCallback(uint64_t id) {
  std::lock_guard<std::mutex> g(callbacks_mu_);
  callbacks_.erase(
      std::remove_if(callbacks_.begin(), callbacks_.end(),
                     [id](const auto& c) { return c.first == id; }),
      callbacks_.end());
}

/// One exported series, flattened for sorting/rendering.
struct MetricsRegistry::Rendered {
  std::string name;
  Labels labels;
  Kind kind;
  double value = 0;  // Counter/Gauge.
  // Histogram summary columns.
  uint64_t count = 0;
  uint64_t sum_us = 0;
  uint64_t max_us = 0;
  double p50 = 0, p95 = 0, p99 = 0;

  bool operator<(const Rendered& o) const {
    if (name != o.name) return name < o.name;
    return labels < o.labels;
  }
};

namespace {

/// Adapter collecting callback output into the flattened series list.
class CollectingSink : public MetricsSink {
 public:
  explicit CollectingSink(std::vector<MetricsRegistry::Rendered>* out)
      : out_(out) {}

  void Counter(std::string_view name, const Labels& labels,
               uint64_t value) override {
    auto& r = out_->emplace_back();
    r.name = std::string(name);
    r.labels = Canonicalize(labels);
    r.kind = MetricsRegistry::Kind::kCounter;
    r.value = static_cast<double>(value);
  }

  void Gauge(std::string_view name, const Labels& labels,
             double value) override {
    auto& r = out_->emplace_back();
    r.name = std::string(name);
    r.labels = Canonicalize(labels);
    r.kind = MetricsRegistry::Kind::kGauge;
    r.value = value;
  }

 private:
  std::vector<MetricsRegistry::Rendered>* out_;
};

}  // namespace

void MetricsRegistry::Collect(std::vector<Rendered>* out) const {
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> g(shard.mu);
    for (const auto& e : shard.entries) {
      auto& r = out->emplace_back();
      r.name = e->name;
      r.labels = e->labels;
      r.kind = e->kind;
      switch (e->kind) {
        case Kind::kCounter:
          r.value = static_cast<double>(e->counter->Value());
          break;
        case Kind::kGauge:
          r.value = static_cast<double>(e->gauge->Value());
          break;
        case Kind::kHistogram:
          r.count = e->histogram->Count();
          r.sum_us = e->histogram->SumUs();
          r.max_us = e->histogram->MaxUs();
          r.p50 = e->histogram->Percentile(50);
          r.p95 = e->histogram->Percentile(95);
          r.p99 = e->histogram->Percentile(99);
          break;
      }
    }
  }
  {
    CollectingSink sink(out);
    std::lock_guard<std::mutex> g(callbacks_mu_);
    for (const auto& [id, fn] : callbacks_) fn(&sink);
  }
  std::sort(out->begin(), out->end());
}

std::string MetricsRegistry::ExportText() const {
  std::vector<Rendered> series;
  Collect(&series);
  std::string out;
  out.reserve(series.size() * 64);
  for (const Rendered& r : series) {
    const std::string labels = RenderLabels(r.labels);
    switch (r.kind) {
      case Kind::kCounter:
      case Kind::kGauge:
        out += r.name + labels + " " + FmtDouble(r.value) + "\n";
        break;
      case Kind::kHistogram: {
        const auto line = [&](const char* suffix, const std::string& value) {
          out += r.name;
          out += suffix;
          out += labels;
          out.push_back(' ');
          out += value;
          out.push_back('\n');
        };
        line("_count", std::to_string(r.count));
        line("_sum_us", std::to_string(r.sum_us));
        line("_p50_us", FmtDouble(r.p50));
        line("_p95_us", FmtDouble(r.p95));
        line("_p99_us", FmtDouble(r.p99));
        line("_max_us", std::to_string(r.max_us));
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::ExportJson() const {
  std::vector<Rendered> series;
  Collect(&series);
  std::string out = "[\n";
  bool first = true;
  for (const Rendered& r : series) {
    if (!first) out += ",\n";
    first = false;
    out += "  {\"name\":\"" + JsonEscape(r.name) + "\",\"labels\":{";
    bool first_label = true;
    for (const auto& [k, v] : r.labels) {
      if (!first_label) out.push_back(',');
      first_label = false;
      out += "\"" + JsonEscape(k) + "\":\"" + JsonEscape(v) + "\"";
    }
    out += "},";
    switch (r.kind) {
      case Kind::kCounter:
        out += "\"type\":\"counter\",\"value\":" + FmtDouble(r.value) + "}";
        break;
      case Kind::kGauge:
        out += "\"type\":\"gauge\",\"value\":" + FmtDouble(r.value) + "}";
        break;
      case Kind::kHistogram:
        out += "\"type\":\"histogram\",\"count\":" + std::to_string(r.count) +
               ",\"sum_us\":" + std::to_string(r.sum_us) +
               ",\"p50_us\":" + FmtDouble(r.p50) +
               ",\"p95_us\":" + FmtDouble(r.p95) +
               ",\"p99_us\":" + FmtDouble(r.p99) +
               ",\"max_us\":" + std::to_string(r.max_us) + "}";
        break;
    }
  }
  out += "\n]\n";
  return out;
}

size_t MetricsRegistry::SeriesCount() const {
  std::vector<Rendered> series;
  Collect(&series);
  return series.size();
}

void ExportBuildInfo(MetricsRegistry* registry) {
  if (registry == nullptr) return;
  Labels labels;
  labels.emplace_back("version", "0.6.0");
#if defined(__clang__)
  labels.emplace_back("compiler", "clang " __clang_version__);
#elif defined(__GNUC__)
  labels.emplace_back("compiler", "gcc " __VERSION__);
#else
  labels.emplace_back("compiler", "unknown");
#endif
#ifdef NDEBUG
  labels.emplace_back("build", "release");
  labels.emplace_back("ndebug", "1");
#else
  labels.emplace_back("build", "debug");
  labels.emplace_back("ndebug", "0");
#endif
#ifdef STRATUS_CHAOS_POINTS
  labels.emplace_back("chaos_points", "on");
#else
  labels.emplace_back("chaos_points", "off");
#endif
  registry->GetGauge("stratus_build_info", labels)->Set(1);
}

}  // namespace obs
}  // namespace stratus
