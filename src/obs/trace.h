#ifndef STRATUS_OBS_TRACE_H_
#define STRATUS_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "obs/metrics.h"

namespace stratus {
namespace obs {

/// The redo-to-query pipeline stages (the span taxonomy). A committed
/// transaction becomes visible to standby queries by passing, in order,
/// through kRedoGenerate → kLogShip → kLogMerge → kRecoveryApply (with
/// kJournalAppend piggybacked on mining) → kInvalidationFlush →
/// kQueryScnAdvance; kScan is the consumer side. Each stage gets a latency
/// histogram in the registry ("stratus_stage_us{stage=...}") and a sampled
/// slice of events in the global TraceBuffer, so one transaction's standby
/// visibility latency can be decomposed stage by stage.
enum class Stage : uint8_t {
  kRedoGenerate = 0,    ///< Primary commit: redo append + visibility.
  kLogShip,             ///< One shipped batch, pull → deliver.
  kLogMerge,            ///< Merger emit + dispatch of one record.
  kRecoveryApply,       ///< One change vector applied by a recovery worker.
  kJournalAppend,       ///< One invalidation record buffered in the journal.
  kInvalidationFlush,   ///< One flush batch (worklink drain step).
  kQueryScnAdvance,     ///< One QuerySCN advancement (includes the quiesce).
  kScan,                ///< One standby/primary scan execution.
  kPopulation,          ///< One IMCU population task.
  kNumStages
};

constexpr size_t kNumStages = static_cast<size_t>(Stage::kNumStages);

const char* StageName(Stage stage);

/// One completed span.
struct TraceEvent {
  Stage stage = Stage::kNumStages;
  uint32_t thread = 0;    ///< Small per-thread ordinal (not the OS tid).
  uint64_t id = 0;        ///< Stage-specific correlator (SCN, XID, DBA…).
  uint64_t start_us = 0;  ///< Monotonic clock, microseconds.
  uint64_t dur_ns = 0;
};

/// Fixed-capacity ring of recent spans. Writes are mutex-guarded — span
/// emission into the ring is sampled (per-stage shift, see SpanGuard), so the
/// lock is off the per-record hot path while staying exact for rare stages
/// (flush, QuerySCN advance) and race-free under TSan.
class TraceBuffer {
 public:
  explicit TraceBuffer(size_t capacity = 1 << 14);

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// The process-wide buffer STRATUS_SPAN emits into.
  static TraceBuffer& Global();

  void Emit(const TraceEvent& event);

  /// Oldest-to-newest copy of the retained events.
  std::vector<TraceEvent> Snapshot() const;
  /// Events ever emitted (>= retained count once the ring wraps).
  uint64_t total_emitted() const {
    return total_.load(std::memory_order_relaxed);
  }
  void Clear();

  /// Chrome trace-event style JSON array of the retained spans.
  std::string ExportJson() const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  size_t next_ = 0;
  bool wrapped_ = false;
  std::atomic<uint64_t> total_{0};
};

namespace internal {

/// Per-stage sampling shift: a stage's spans reach the TraceBuffer every
/// 2^shift-th time (histograms always record). Hot per-record stages sample
/// sparsely; control-plane stages record every event.
int StageSampleShift(Stage stage);

/// The stage's latency histogram in the global registry (created on first
/// use, then cached — hot paths never touch the registry map).
LatencyHistogram* StageHistogram(Stage stage);

/// Returns true when this occurrence of `stage` should also be traced.
bool ShouldTrace(Stage stage);

/// Small dense ordinal for the calling thread (for trace readability).
uint32_t ThreadOrdinal();

}  // namespace internal

/// RAII span: records the scope's duration into the stage histogram, and —
/// sampled — into the global TraceBuffer. `id` correlates the span with a
/// pipeline object (SCN, XID, DBA) across stages.
class SpanGuard {
 public:
  explicit SpanGuard(Stage stage, uint64_t id = 0)
      : stage_(stage), id_(id), start_ns_(NowNanos()) {}

  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  /// Updates the correlator mid-span (the id is often known only once the
  /// work completed, e.g. the SCN a commit was assigned).
  void set_id(uint64_t id) { id_ = id; }

  ~SpanGuard() {
    const uint64_t end_ns = NowNanos();
    const uint64_t dur_ns = end_ns - start_ns_;
    internal::StageHistogram(stage_)->Record(dur_ns / 1000);
    if (internal::ShouldTrace(stage_)) {
      TraceEvent e;
      e.stage = stage_;
      e.thread = internal::ThreadOrdinal();
      e.id = id_;
      e.start_us = start_ns_ / 1000;
      e.dur_ns = dur_ns;
      TraceBuffer::Global().Emit(e);
    }
  }

 private:
  Stage stage_;
  uint64_t id_;
  uint64_t start_ns_;
};

#define STRATUS_SPAN_CONCAT_INNER(a, b) a##b
#define STRATUS_SPAN_CONCAT(a, b) STRATUS_SPAN_CONCAT_INNER(a, b)

/// Opens a span covering the rest of the enclosing scope.
///   STRATUS_SPAN(stratus::obs::Stage::kRecoveryApply, cv.scn);
#define STRATUS_SPAN(stage, ...)                             \
  ::stratus::obs::SpanGuard STRATUS_SPAN_CONCAT(             \
      stratus_span_, __LINE__)(stage, ##__VA_ARGS__)

}  // namespace obs
}  // namespace stratus

#endif  // STRATUS_OBS_TRACE_H_
