#ifndef STRATUS_OBS_OBS_SERVER_H_
#define STRATUS_OBS_OBS_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace stratus {
namespace obs {

/// One parsed HTTP request (the subset the observability surface needs:
/// request line only, headers are read and discarded).
struct HttpRequest {
  std::string method;  ///< "GET", uppercased as received.
  std::string path;    ///< Target before '?', e.g. "/v/im_segments".
  std::string query;   ///< Raw query string after '?' (may be empty).
};

/// What a handler returns; the server adds the status line, Content-Type,
/// Content-Length and Connection: close framing.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

struct ObsServerOptions {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (read it back via
  /// port() after Start()).
  int port = 0;
  /// Threads serving accepted connections. Scrapes are short and close-per-
  /// request (HTTP/1.0), so a small pool rides out concurrent scrapers.
  size_t worker_threads = 2;
  /// Request (line + headers) size cap; beyond it the connection gets 431.
  size_t max_request_bytes = 8192;
  /// Accepted connections waiting for a worker beyond this bound are closed
  /// unserved rather than queued without limit.
  size_t max_pending_connections = 64;
  /// Per-connection socket read/write timeout.
  int64_t io_timeout_us = 2'000'000;
  /// Registry for the server's own request counters (null: counters are
  /// still kept internally, nothing is published).
  MetricsRegistry* registry = nullptr;
};

/// A minimal embedded HTTP/1.0 server for the observability endpoints:
/// GET-only, close-per-request, loopback-only — deliberately not a general
/// web server. Built on the same POSIX socket primitives as
/// net::SocketChannel; an accept thread feeds a bounded queue drained by a
/// small worker pool, so a stuck scraper cannot wedge the whole surface.
///
/// Handlers registered before or after Start() (a mutex guards the table);
/// they run on worker threads and must be thread-safe. Exact-path handlers
/// win over prefix handlers; among prefixes the longest match wins.
class ObsServer {
 public:
  explicit ObsServer(ObsServerOptions options = {});
  ~ObsServer();

  ObsServer(const ObsServer&) = delete;
  ObsServer& operator=(const ObsServer&) = delete;

  Status Start();
  void Stop();

  /// The bound port (valid after a successful Start()).
  int port() const { return port_; }

  /// Registers `handler` for exactly `path`.
  void Handle(std::string path, HttpHandler handler);
  /// Registers `handler` for every path beginning with `prefix`
  /// (e.g. "/v/"); the longest matching prefix wins.
  void HandlePrefix(std::string prefix, HttpHandler handler);

  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }
  uint64_t connections_dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);
  HttpResponse Dispatch(const HttpRequest& request) const;

  ObsServerOptions options_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  int port_ = 0;
  bool started_ = false;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;  ///< Accepted fds awaiting a worker.
  bool stopping_ = false;    ///< Guarded by queue_mu_.

  mutable std::mutex handlers_mu_;
  std::vector<std::pair<std::string, HttpHandler>> exact_;
  std::vector<std::pair<std::string, HttpHandler>> prefixes_;

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> errors_{0};  ///< Responses with status >= 400.
  std::atomic<uint64_t> dropped_{0};

  Counter* requests_counter_ = nullptr;
  Counter* errors_counter_ = nullptr;
  Counter* dropped_counter_ = nullptr;
};

}  // namespace obs
}  // namespace stratus

#endif  // STRATUS_OBS_OBS_SERVER_H_
