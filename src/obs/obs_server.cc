#include "obs/obs_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>

namespace stratus {
namespace obs {

namespace {

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

void SetSocketTimeout(int fd, int64_t timeout_us) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_us / 1'000'000);
  tv.tv_usec = static_cast<suseconds_t>(timeout_us % 1'000'000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Writes the whole buffer, tolerating short writes; MSG_NOSIGNAL so a
/// scraper that hung up mid-response surfaces as EPIPE, not SIGPIPE.
bool SendAll(int fd, const char* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

ObsServer::ObsServer(ObsServerOptions options) : options_(std::move(options)) {
  if (options_.registry != nullptr) {
    requests_counter_ = options_.registry->GetCounter("stratus_obs_http_requests");
    errors_counter_ = options_.registry->GetCounter("stratus_obs_http_errors");
    dropped_counter_ = options_.registry->GetCounter("stratus_obs_http_dropped");
  }
}

ObsServer::~ObsServer() { Stop(); }

Status ObsServer::Start() {
  if (started_) return Status::FailedPrecondition("already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Internal("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 16) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("bind/listen failed");
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  if (::pipe(wake_pipe_) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("pipe() failed");
  }

  started_ = true;
  {
    std::lock_guard<std::mutex> g(queue_mu_);
    stopping_ = false;
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  const size_t workers = std::max<size_t>(1, options_.worker_threads);
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void ObsServer::Stop() {
  if (!started_) return;
  started_ = false;
  {
    std::lock_guard<std::mutex> g(queue_mu_);
    stopping_ = true;
  }
  // Wake the accept loop (pipe) and the workers (condvar).
  const char b = 0;
  (void)!::write(wake_pipe_[1], &b, 1);
  queue_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& t : workers_) t.join();
  workers_.clear();

  for (int fd : pending_) ::close(fd);
  pending_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
}

void ObsServer::Handle(std::string path, HttpHandler handler) {
  std::lock_guard<std::mutex> g(handlers_mu_);
  exact_.emplace_back(std::move(path), std::move(handler));
}

void ObsServer::HandlePrefix(std::string prefix, HttpHandler handler) {
  std::lock_guard<std::mutex> g(handlers_mu_);
  prefixes_.emplace_back(std::move(prefix), std::move(handler));
}

void ObsServer::AcceptLoop() {
  for (;;) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & POLLIN) != 0) return;  // Stop() woke us.
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    {
      std::lock_guard<std::mutex> g(queue_mu_);
      if (!stopping_ && pending_.size() < options_.max_pending_connections) {
        pending_.push_back(fd);
        queue_cv_.notify_one();
        continue;
      }
    }
    // Over the bound (or shutting down): refuse rather than queue unboundedly.
    ::close(fd);
    dropped_.fetch_add(1, std::memory_order_relaxed);
    if (dropped_counter_ != nullptr) dropped_counter_->Inc();
  }
}

void ObsServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> l(queue_mu_);
      queue_cv_.wait(l, [this] { return stopping_ || !pending_.empty(); });
      if (pending_.empty()) return;  // stopping_, queue drained.
      fd = pending_.front();
      pending_.pop_front();
    }
    ServeConnection(fd);
    ::close(fd);
  }
}

HttpResponse ObsServer::Dispatch(const HttpRequest& request) const {
  std::lock_guard<std::mutex> g(handlers_mu_);
  for (const auto& [path, handler] : exact_) {
    if (request.path == path) return handler(request);
  }
  const std::pair<std::string, HttpHandler>* best = nullptr;
  for (const auto& entry : prefixes_) {
    if (request.path.rfind(entry.first, 0) != 0) continue;
    if (best == nullptr || entry.first.size() > best->first.size()) best = &entry;
  }
  if (best != nullptr) return best->second(request);
  HttpResponse resp;
  resp.status = 404;
  resp.body = "not found\n";
  return resp;
}

void ObsServer::ServeConnection(int fd) {
  SetSocketTimeout(fd, options_.io_timeout_us);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  // Read until the end of the header block, EOF, or the size cap.
  std::string buf;
  bool oversized = false;
  while (buf.find("\r\n\r\n") == std::string::npos) {
    if (buf.size() > options_.max_request_bytes) {
      oversized = true;
      break;
    }
    char chunk[1024];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or timeout: parse whatever arrived.
    buf.append(chunk, static_cast<size_t>(n));
  }

  HttpResponse resp;
  if (oversized) {
    resp.status = 431;
    resp.body = "request too large\n";
  } else {
    // Request line: METHOD SP target SP version.
    const size_t line_end = buf.find("\r\n");
    const std::string line =
        line_end == std::string::npos ? buf : buf.substr(0, line_end);
    const size_t sp1 = line.find(' ');
    const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                                : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos || sp1 == 0 ||
        sp2 == sp1 + 1 || line.compare(sp2 + 1, 5, "HTTP/") != 0) {
      resp.status = 400;
      resp.body = "malformed request\n";
    } else {
      HttpRequest request;
      request.method = line.substr(0, sp1);
      std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
      const size_t qmark = target.find('?');
      request.path = target.substr(0, qmark);
      if (qmark != std::string::npos) request.query = target.substr(qmark + 1);
      if (request.method != "GET") {
        resp.status = 405;
        resp.body = "only GET is served here\n";
      } else {
        resp = Dispatch(request);
      }
    }
  }

  requests_.fetch_add(1, std::memory_order_relaxed);
  if (requests_counter_ != nullptr) requests_counter_->Inc();
  if (resp.status >= 400) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    if (errors_counter_ != nullptr) errors_counter_->Inc();
  }

  std::string head = "HTTP/1.0 " + std::to_string(resp.status) + " " +
                     ReasonPhrase(resp.status) +
                     "\r\nContent-Type: " + resp.content_type +
                     "\r\nContent-Length: " + std::to_string(resp.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  if (SendAll(fd, head.data(), head.size())) {
    SendAll(fd, resp.body.data(), resp.body.size());
  }
}

}  // namespace obs
}  // namespace stratus
