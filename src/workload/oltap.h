#ifndef STRATUS_WORKLOAD_OLTAP_H_
#define STRATUS_WORKLOAD_OLTAP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/random.h"
#include "db/database.h"

namespace stratus {

/// Configuration of the synthetic OLTAP workload of Section IV.A: a wide
/// table (identity + NUMBER columns + VARCHAR columns) takes a tunable mix of
/// updates / inserts / index fetches on the primary while ad-hoc full-table
/// scans (Table 1's Q1 and Q2) run against the standby (or the primary, for
/// the comparison experiments).
struct OltapOptions {
  // Table shape (the paper: 6M rows, 1 + 50 + 50 columns; scaled down by
  // default so a harness run finishes in minutes on one core).
  size_t initial_rows = 60'000;
  int num_cols = 10;
  int varchar_cols = 10;
  int varchar_len = 8;
  /// NUMBER columns draw from [0, value_domain); predicates hit
  /// ~rows/value_domain rows.
  int64_t value_domain = 1000;

  // Operation mix (percent; the remainder is index fetch).
  uint32_t update_pct = 70;
  uint32_t insert_pct = 0;
  uint32_t scan_pct = 1;
  /// Of the ad-hoc scans, how many run Q3 (GROUP BY n1 with COUNT + SUM)
  /// instead of the Q1/Q2 filters. Exercises the hash-aggregate operator
  /// under concurrent DML/churn.
  uint32_t group_scan_pct = 20;

  int target_ops_per_sec = 4000;
  int duration_ms = 10'000;
  int num_threads = 2;
  uint64_t seed = 42;

  /// Where the ad-hoc scans run.
  bool scans_on_standby = true;
  /// Force scans down the row path (the "without DBIM" baseline).
  bool scans_force_row_store = false;
  /// Scan degree of parallelism (ScanQuery::dop); 0/1 = serial.
  uint32_t scan_dop = 1;
  InstanceId scan_instance = kMasterInstance;
  /// Which tenant issues the traffic.
  TenantId tenant = kDefaultTenant;
};

/// Latency and CPU accounting for one workload run.
struct OltapStats {
  Histogram q1_latency;       ///< SELECT * WHERE n1 = :1 (microseconds).
  Histogram q2_latency;       ///< SELECT * WHERE c1 = :2.
  Histogram q3_latency;       ///< SELECT n1, COUNT(*), SUM(n2) GROUP BY n1.
  Histogram update_latency;
  Histogram insert_latency;
  Histogram fetch_latency;

  std::atomic<uint64_t> ops_done{0};
  std::atomic<uint64_t> scans_done{0};
  std::atomic<uint64_t> update_conflicts{0};
  std::atomic<uint64_t> errors{0};

  /// CPU attributed to primary-side ops (DML + fetches) vs standby-side scans,
  /// measured per-op with CLOCK_THREAD_CPUTIME_ID.
  std::atomic<uint64_t> primary_op_cpu_ns{0};
  std::atomic<uint64_t> scan_cpu_ns{0};

  uint64_t wall_ns = 0;
  double AchievedOpsPerSec() const {
    return wall_ns == 0 ? 0.0
                        : static_cast<double>(ops_done.load()) * 1e9 /
                              static_cast<double>(wall_ns);
  }
};

/// Drives the OLTAP workload against an AdgCluster.
class OltapWorkload {
 public:
  OltapWorkload(AdgCluster* cluster, const OltapOptions& options);

  /// Creates the wide table (service: standby or both), loads the initial
  /// rows, waits for standby catch-up, and populates the IMCS synchronously.
  Status Setup(ImService service = ImService::kStandbyOnly);

  /// Runs the mix for `duration_ms` across `num_threads` paced threads.
  void Run();

  ObjectId table_id() const { return table_; }
  OltapStats& stats() { return stats_; }
  const OltapOptions& options() const { return options_; }

  /// Builds a row for identity `id` with freshly drawn column values.
  Row MakeRow(int64_t id, Random* rng) const;

  /// One Q1 / Q2 execution (exposed for the scan-only experiments).
  Status RunScanOnce(Random* rng, bool q2);

  /// One Q3 execution: GROUP BY n1 with COUNT(*) + SUM(n2) through the
  /// hash-aggregate operator (exposed for the scan-only experiments).
  Status RunGroupScanOnce(Random* rng);

  /// Runs `n` Q1 and `n` Q2 scans with no concurrent DML (the paper's scans
  /// had idle CPUs to run on; this isolates the raw scan gap from the
  /// single-core scheduling contention of the loaded run).
  void MeasureQuiescentScans(int n, Histogram* q1, Histogram* q2);

 private:
  void WorkerLoop(int thread_idx);
  void DoUpdate(Random* rng);
  void DoInsert(Random* rng);
  void DoFetch(Random* rng);
  void DoScan(Random* rng);

  AdgCluster* cluster_;
  OltapOptions options_;
  ObjectId table_ = kInvalidObjectId;
  std::atomic<int64_t> next_id_{0};
  std::atomic<bool> stop_{false};
  OltapStats stats_;
};

}  // namespace stratus

#endif  // STRATUS_WORKLOAD_OLTAP_H_
