#ifndef STRATUS_WORKLOAD_REPORT_H_
#define STRATUS_WORKLOAD_REPORT_H_

#include <string>
#include <vector>

#include "common/histogram.h"

namespace stratus {

/// Plain-text table formatting for the benchmark harnesses, so every bench
/// prints its paper table/figure in the same aligned style.
class ReportTable {
 public:
  explicit ReportTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  /// Renders with a title banner to stdout.
  void Print(const std::string& title) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "12.3" style fixed-point formatting.
std::string Fmt(double v, int decimals = 2);
/// Microseconds → milliseconds string.
std::string UsToMs(double us, int decimals = 2);
/// "median / avg / p95" milliseconds triple from a histogram.
std::string LatencyTriple(const Histogram& h);
/// Speedup "x" formatting ("97.3x"); returns "-" when base is 0.
std::string Speedup(double base, double improved);

}  // namespace stratus

#endif  // STRATUS_WORKLOAD_REPORT_H_
