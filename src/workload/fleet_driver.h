#ifndef STRATUS_WORKLOAD_FLEET_DRIVER_H_
#define STRATUS_WORKLOAD_FLEET_DRIVER_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "common/random.h"
#include "fleet/fleet_cluster.h"
#include "fleet/fleet_router.h"

namespace stratus {

/// Multi-session analytic workload against a standby read fleet: thousands of
/// logical sessions, multiplexed over a bounded pool of worker threads, each
/// issuing routed scans under a per-query freshness contract. Every response
/// is audited against its contract on the driver side — independently of the
/// router's own audit — so a routing bug cannot hide its own violations.
struct FleetDriverOptions {
  int sessions = 1000;     ///< Logical analytic sessions.
  int worker_threads = 8;  ///< OS threads multiplexing the sessions.
  int duration_ms = 3000;
  /// 0 = closed loop (each session issues as soon as its previous query
  /// returns). > 0 = open loop: queries are issued on a fixed arrival
  /// schedule at this aggregate rate; when the fleet falls behind, arrivals
  /// backlog and issue back-to-back until the schedule is caught up.
  double target_qps = 0;

  /// Contract mix in percent; the remainder is bounded-staleness (the
  /// workhorse contract of a read fleet). 0/0 = bounded only.
  uint32_t strict_pct = 0;
  uint32_t pinned_pct = 0;
  /// The bounded contracts' staleness allowance.
  Scn bounded_lag_scn = 50'000;
  /// Re-executions of each pinned session's SCN (repeatable-read epochs).
  int pinned_requeries = 3;

  uint64_t seed = 42;
  /// Predicate value domain of the generated scans (matches the churn
  /// table's column domain).
  int64_t value_domain = 50;
};

struct FleetDriverStats {
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> strict_queries{0};
  std::atomic<uint64_t> bounded_queries{0};
  std::atomic<uint64_t> pinned_queries{0};
  /// Driver-side contract audit failures. Must be zero.
  std::atomic<uint64_t> freshness_violations{0};
  /// Pinned re-executions that did not match the epoch's first result
  /// byte-for-byte. Must be zero.
  std::atomic<uint64_t> pinned_mismatches{0};

  Histogram decide_us;  ///< Routing-decision latency.
  Histogram query_us;   ///< End-to-end routed-query latency.
  uint64_t wall_ns = 0;

  double Qps() const {
    return wall_ns == 0 ? 0.0
                        : static_cast<double>(
                              queries.load(std::memory_order_relaxed)) *
                              1e9 / static_cast<double>(wall_ns);
  }
};

class FleetDriver {
 public:
  FleetDriver(fleet::FleetCluster* fleet, fleet::FleetRouter* router,
              ObjectId table, const FleetDriverOptions& options);

  /// Runs the session mix for duration_ms (closed loop: each session issues
  /// its next query as soon as the previous returns and a worker is free).
  void Run();

  FleetDriverStats& stats() { return stats_; }

 private:
  void WorkerLoop(int worker);

  fleet::FleetCluster* fleet_;
  fleet::FleetRouter* router_;
  ObjectId table_;
  FleetDriverOptions options_;
  FleetDriverStats stats_;
  std::atomic<bool> stop_{false};
};

}  // namespace stratus

#endif  // STRATUS_WORKLOAD_FLEET_DRIVER_H_
