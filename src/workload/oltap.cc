#include "workload/oltap.h"

#include <chrono>
#include <thread>

#include "common/clock.h"

namespace stratus {

OltapWorkload::OltapWorkload(AdgCluster* cluster, const OltapOptions& options)
    : cluster_(cluster), options_(options) {}

Row OltapWorkload::MakeRow(int64_t id, Random* rng) const {
  Row row;
  row.reserve(1 + options_.num_cols + options_.varchar_cols);
  row.push_back(Value(id));
  for (int i = 0; i < options_.num_cols; ++i)
    row.push_back(Value(static_cast<int64_t>(rng->Uniform(options_.value_domain))));
  for (int i = 0; i < options_.varchar_cols; ++i) {
    // Strings also come from a bounded domain so Q2 predicates hit rows.
    const uint64_t v = rng->Uniform(static_cast<uint64_t>(options_.value_domain));
    std::string s = "v" + std::to_string(v);
    s.resize(static_cast<size_t>(options_.varchar_len), 'x');
    row.push_back(Value(std::move(s)));
  }
  return row;
}

Status OltapWorkload::Setup(ImService service) {
  Schema schema = Schema::WideTable(options_.num_cols, options_.varchar_cols);
  StatusOr<ObjectId> oid = cluster_->CreateTable(
      "C" + std::to_string(1 + options_.num_cols + options_.varchar_cols) +
          "_WIDE_HASH",
      options_.tenant, std::move(schema), service, /*identity_index=*/true);
  if (!oid.ok()) return oid.status();
  table_ = *oid;

  // Initial load in batches (one transaction per batch keeps redo records
  // flowing and the standby applying while we load).
  Random rng(options_.seed);
  PrimaryDb* primary = cluster_->primary();
  constexpr size_t kBatch = 512;
  size_t loaded = 0;
  while (loaded < options_.initial_rows) {
    Transaction txn = primary->Begin(0, options_.tenant);
    const size_t n = std::min(kBatch, options_.initial_rows - loaded);
    for (size_t i = 0; i < n; ++i) {
      STRATUS_RETURN_IF_ERROR(
          primary->Insert(&txn, table_, MakeRow(static_cast<int64_t>(loaded + i), &rng)));
    }
    StatusOr<Scn> committed = primary->Commit(&txn);
    if (!committed.ok()) return committed.status();
    loaded += n;
  }
  next_id_.store(static_cast<int64_t>(loaded), std::memory_order_release);

  // Let the standby catch up, then build the IMCS synchronously so the run
  // starts from the steady state the paper measures.
  cluster_->WaitForCatchup();
  if (ImOnStandby(service)) {
    const Status st = cluster_->standby()->PopulateNow(table_);
    // FailedPrecondition = the standby runs without DBIM-on-ADG (the paper's
    // baseline configuration); everything is served by the row path.
    if (!st.ok() && st.code() != Code::kFailedPrecondition) return st;
  }
  if (ImOnPrimary(service) && cluster_->primary()->im_store() != nullptr) {
    STRATUS_RETURN_IF_ERROR(cluster_->primary()->PopulateNow(table_));
  }
  return Status::OK();
}

void OltapWorkload::DoUpdate(Random* rng) {
  PrimaryDb* primary = cluster_->primary();
  const int64_t max_id = next_id_.load(std::memory_order_acquire);
  if (max_id == 0) return;
  const int64_t id = rng->UniformInt(0, max_id - 1);
  ScopedLatencyTimer latency(&stats_.update_latency);
  ScopedCpuTimer cpu(&stats_.primary_op_cpu_ns);
  Transaction txn = primary->Begin(
      static_cast<RedoThreadId>(rng->Uniform(primary->redo_threads())),
      options_.tenant);
  Status st = primary->UpdateByKey(&txn, table_, id, MakeRow(id, rng));
  if (st.ok()) {
    st = primary->Commit(&txn).status();
  } else {
    primary->Abort(&txn);
    if (st.IsAborted()) {
      stats_.update_conflicts.fetch_add(1, std::memory_order_relaxed);
    } else {
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void OltapWorkload::DoInsert(Random* rng) {
  PrimaryDb* primary = cluster_->primary();
  const int64_t id = next_id_.fetch_add(1, std::memory_order_acq_rel);
  ScopedLatencyTimer latency(&stats_.insert_latency);
  ScopedCpuTimer cpu(&stats_.primary_op_cpu_ns);
  Transaction txn = primary->Begin(
      static_cast<RedoThreadId>(rng->Uniform(primary->redo_threads())),
      options_.tenant);
  Status st = primary->Insert(&txn, table_, MakeRow(id, rng));
  if (st.ok()) {
    st = primary->Commit(&txn).status();
  } else {
    primary->Abort(&txn);
    stats_.errors.fetch_add(1, std::memory_order_relaxed);
  }
}

void OltapWorkload::DoFetch(Random* rng) {
  PrimaryDb* primary = cluster_->primary();
  const int64_t max_id = next_id_.load(std::memory_order_acquire);
  if (max_id == 0) return;
  const int64_t id = rng->UniformInt(0, max_id - 1);
  ScopedLatencyTimer latency(&stats_.fetch_latency);
  ScopedCpuTimer cpu(&stats_.primary_op_cpu_ns);
  if (!primary->Fetch(table_, id).ok())
    stats_.errors.fetch_add(1, std::memory_order_relaxed);
}

Status OltapWorkload::RunScanOnce(Random* rng, bool q2) {
  ScanQuery query;
  query.object = table_;
  query.force_row_store = options_.scans_force_row_store;
  query.dop = options_.scan_dop;
  // Count instead of materializing SELECT * — latency is dominated by the
  // scan itself either way, and counting keeps harness memory flat.
  query.agg = AggKind::kCount;
  if (!q2) {
    // Q1: WHERE n1 = :1.
    query.predicates.push_back(Predicate{
        1, PredOp::kEq,
        Value(static_cast<int64_t>(rng->Uniform(options_.value_domain)))});
  } else {
    // Q2: WHERE c1 = :2.
    std::string s =
        "v" + std::to_string(rng->Uniform(static_cast<uint64_t>(options_.value_domain)));
    s.resize(static_cast<size_t>(options_.varchar_len), 'x');
    query.predicates.push_back(
        Predicate{static_cast<uint32_t>(1 + options_.num_cols), PredOp::kEq,
                  Value(std::move(s))});
  }
  if (options_.scans_on_standby) {
    return cluster_->standby()->Query(query, options_.scan_instance).status();
  }
  return cluster_->primary()->Query(query).status();
}

Status OltapWorkload::RunGroupScanOnce(Random* rng) {
  // Q3: SELECT n1, COUNT(*), SUM(n2) WHERE n3 < :1 GROUP BY n1. The range
  // predicate keeps selectivity varied; the grouped result is at most
  // value_domain rows so harness memory stays flat.
  ScanQuery query;
  query.object = table_;
  query.force_row_store = options_.scans_force_row_store;
  query.dop = options_.scan_dop;
  query.group_by.push_back(1);
  query.aggregates.push_back(AggSpec{AggKind::kCount, 1});
  if (options_.num_cols >= 2)
    query.aggregates.push_back(AggSpec{AggKind::kSum, 2});
  if (options_.num_cols >= 3) {
    query.predicates.push_back(Predicate{
        3, PredOp::kLt,
        Value(static_cast<int64_t>(rng->Uniform(options_.value_domain)) + 1)});
  }
  if (options_.scans_on_standby) {
    return cluster_->standby()->Query(query, options_.scan_instance).status();
  }
  return cluster_->primary()->Query(query).status();
}

void OltapWorkload::DoScan(Random* rng) {
  const bool q3 = rng->Percent(options_.group_scan_pct);
  const bool q2 = !q3 && rng->Percent(50);
  Stopwatch watch;
  const uint64_t cpu_start = ThreadCpuNanos();
  const Status st = q3 ? RunGroupScanOnce(rng) : RunScanOnce(rng, q2);
  if (!st.ok()) {
    stats_.errors.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // CPU accrues only for successful scans so scan_cpu_ns / scans_done stays a
  // meaningful per-scan ratio.
  stats_.scan_cpu_ns.fetch_add(ThreadCpuNanos() - cpu_start,
                               std::memory_order_relaxed);
  stats_.scans_done.fetch_add(1, std::memory_order_relaxed);
  (q3 ? stats_.q3_latency : q2 ? stats_.q2_latency : stats_.q1_latency)
      .Record(watch.ElapsedMicros());
}

void OltapWorkload::WorkerLoop(int thread_idx) {
  Random rng(options_.seed * 7919 + static_cast<uint64_t>(thread_idx) * 104729 + 1);
  const double ops_per_thread =
      static_cast<double>(options_.target_ops_per_sec) /
      static_cast<double>(options_.num_threads);
  const int64_t op_interval_ns =
      ops_per_thread <= 0 ? 0 : static_cast<int64_t>(1e9 / ops_per_thread);
  uint64_t next_op_at = NowNanos();
  while (!stop_.load(std::memory_order_acquire)) {
    const uint64_t now = NowNanos();
    if (now < next_op_at) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(next_op_at - now));
      continue;
    }
    next_op_at += static_cast<uint64_t>(op_interval_ns);
    // The paper's setup uses the same threads for DMLs and queries, so a slow
    // scan backpressures the whole mix; if we fall badly behind, resynchronize
    // the pacing clock instead of bursting.
    if (NowNanos() > next_op_at + 1'000'000'000ull) next_op_at = NowNanos();

    const uint32_t dice = static_cast<uint32_t>(rng.Uniform(100));
    if (dice < options_.scan_pct) {
      DoScan(&rng);
    } else if (dice < options_.scan_pct + options_.update_pct) {
      DoUpdate(&rng);
    } else if (dice < options_.scan_pct + options_.update_pct + options_.insert_pct) {
      DoInsert(&rng);
    } else {
      DoFetch(&rng);
    }
    stats_.ops_done.fetch_add(1, std::memory_order_relaxed);
  }
}

void OltapWorkload::MeasureQuiescentScans(int n, Histogram* q1, Histogram* q2) {
  // Let in-flight redo apply, invalidation flush and repopulation settle so
  // the measurement reflects the steady state, not the drain.
  cluster_->WaitForCatchup();
  std::this_thread::sleep_for(std::chrono::milliseconds(2500));
  Random rng(options_.seed * 31 + 17);
  for (int i = 0; i < n; ++i) {
    for (bool is_q2 : {false, true}) {
      Stopwatch watch;
      if (!RunScanOnce(&rng, is_q2).ok()) continue;
      (is_q2 ? q2 : q1)->Record(watch.ElapsedMicros());
    }
  }
}

void OltapWorkload::Run() {
  stop_.store(false, std::memory_order_release);
  Stopwatch watch;
  std::vector<std::thread> threads;
  threads.reserve(options_.num_threads);
  for (int i = 0; i < options_.num_threads; ++i)
    threads.emplace_back([this, i] { WorkerLoop(i); });
  std::this_thread::sleep_for(std::chrono::milliseconds(options_.duration_ms));
  stop_.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  stats_.wall_ns = watch.ElapsedNanos();
}

}  // namespace stratus
