#include "workload/fleet_driver.h"

#include <chrono>
#include <thread>

#include "common/clock.h"
#include "imcs/scan_engine.h"

namespace stratus {

namespace {

/// Scan shapes matching the churn table (WideTable(2,1) + writer mix used by
/// the consistency harness): Q1 numeric point filter, Q2 varchar point
/// filter, Q3 unfiltered — always aggregated so results stay small.
ScanQuery RandomScan(ObjectId table, int64_t value_domain, Random* rng) {
  ScanQuery q;
  q.object = table;
  const uint32_t kind = static_cast<uint32_t>(rng->Uniform(3));
  if (kind == 0) {
    q.predicates = {{1, PredOp::kEq,
                     Value(static_cast<int64_t>(
                         rng->Uniform(static_cast<uint64_t>(value_domain))))}};
  } else if (kind == 1) {
    q.predicates = {{3, PredOp::kEq,
                     Value(std::string("s") + std::to_string(rng->Uniform(6)))}};
  }  // kind == 2: unfiltered.
  q.agg = AggKind::kSum;
  q.agg_column = 2;
  return q;
}

}  // namespace

FleetDriver::FleetDriver(fleet::FleetCluster* fleet, fleet::FleetRouter* router,
                         ObjectId table, const FleetDriverOptions& options)
    : fleet_(fleet), router_(router), table_(table), options_(options) {}

namespace {

/// Per-session repeatable-read epoch (pinned sessions only). A session is
/// touched by exactly one worker, so no locking.
struct SessionState {
  Scn pin = kInvalidScn;
  uint64_t fingerprint_count = 0;
  int64_t fingerprint_agg = 0;
  bool fingerprint_agg_valid = false;
  int requeries_left = 0;
};

}  // namespace

void FleetDriver::Run() {
  stop_.store(false, std::memory_order_relaxed);
  const uint64_t start_ns = NowNanos();

  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(options_.worker_threads));
  for (int w = 0; w < options_.worker_threads; ++w) {
    workers.emplace_back([this, w] { WorkerLoop(w); });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(options_.duration_ms));
  stop_.store(true, std::memory_order_relaxed);
  for (auto& t : workers) t.join();

  stats_.wall_ns = NowNanos() - start_ns;
}

void FleetDriver::WorkerLoop(int worker) {
  Random rng(options_.seed * 7919 + static_cast<uint64_t>(worker));

  // This worker's slice of the logical sessions (static partition: session
  // ids worker, worker+T, worker+2T, ...) plus their pinned-epoch state.
  std::vector<uint64_t> sessions;
  for (uint64_t s = static_cast<uint64_t>(worker);
       s < static_cast<uint64_t>(options_.sessions);
       s += static_cast<uint64_t>(options_.worker_threads)) {
    sessions.push_back(s);
  }
  if (sessions.empty()) return;
  std::vector<SessionState> state(sessions.size());

  // Round-robin over the slice. Closed loop: each session issues its next
  // query as soon as the previous one returns. Open loop (target_qps > 0):
  // this worker owns a 1/worker_threads share of the aggregate arrival
  // schedule and paces issuance against it.
  const double worker_qps =
      options_.target_qps / static_cast<double>(options_.worker_threads);
  const int64_t arrival_interval_us =
      worker_qps > 0 ? static_cast<int64_t>(1e6 / worker_qps) : 0;
  uint64_t next_arrival_us = NowMicros();

  size_t turn = 0;
  while (!stop_.load(std::memory_order_relaxed)) {
    if (arrival_interval_us > 0) {
      const uint64_t now = NowMicros();
      if (now < next_arrival_us) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(next_arrival_us - now));
      }
      next_arrival_us += static_cast<uint64_t>(arrival_interval_us);
    }
    const size_t slot = turn++ % sessions.size();
    const uint64_t session = sessions[slot];

    // Session -> contract mode, fixed for the session's lifetime.
    Random mode_rng(options_.seed ^ (session * 0x9E3779B97F4A7C15ull));
    const uint64_t roll = mode_rng.Uniform(100);
    const bool strict = roll < options_.strict_pct;
    const bool pinned =
        !strict && roll < options_.strict_pct + options_.pinned_pct;

    const ScanQuery q = RandomScan(table_, options_.value_domain, &rng);
    const uint64_t t0 = NowMicros();

    if (strict) {
      const auto routed = router_->Query(q, fleet::FreshnessContract::Strict());
      stats_.query_us.Record(static_cast<int64_t>(NowMicros() - t0));
      if (!routed.ok()) {
        stats_.errors.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      stats_.queries.fetch_add(1, std::memory_order_relaxed);
      stats_.strict_queries.fetch_add(1, std::memory_order_relaxed);
      stats_.decide_us.Record(routed->decision.decide_us);
      if (routed->result.snapshot < routed->decision.decision_watermark) {
        stats_.freshness_violations.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }

    if (pinned) {
      SessionState& st = state[slot];
      if (st.pin == kInvalidScn) {
        // Open a new repeatable-read epoch: a bounded query whose snapshot
        // becomes the pin, its result the epoch's fingerprint.
        const auto routed = router_->Query(
            q, fleet::FreshnessContract::BoundedScn(options_.bounded_lag_scn));
        stats_.query_us.Record(static_cast<int64_t>(NowMicros() - t0));
        if (!routed.ok()) {
          stats_.errors.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        stats_.queries.fetch_add(1, std::memory_order_relaxed);
        stats_.bounded_queries.fetch_add(1, std::memory_order_relaxed);
        stats_.decide_us.Record(routed->decision.decide_us);
        if (routed->result.snapshot + options_.bounded_lag_scn <
            routed->decision.primary_scn) {
          stats_.freshness_violations.fetch_add(1, std::memory_order_relaxed);
        }
        st.pin = routed->result.snapshot;
        st.fingerprint_count = routed->result.count;
        st.fingerprint_agg = routed->result.agg_int;
        st.fingerprint_agg_valid = routed->result.agg_valid;
        st.requeries_left = options_.pinned_requeries;
        continue;
      }

      // Re-execute the SAME query shape at the pinned SCN — possibly on a
      // different standby — and demand an identical answer. The epoch keeps
      // its opening query: RandomScan output this turn is discarded by
      // rebuilding it from the session's epoch seed.
      Random epoch_rng(options_.seed ^ (session * 31 + 17));
      const ScanQuery pinned_q =
          RandomScan(table_, options_.value_domain, &epoch_rng);
      const uint64_t p0 = NowMicros();
      const auto routed = router_->Query(
          pinned_q, fleet::FreshnessContract::PinnedAt(st.pin, session));
      stats_.query_us.Record(static_cast<int64_t>(NowMicros() - p0));
      if (!routed.ok()) {
        stats_.errors.fetch_add(1, std::memory_order_relaxed);
        st.pin = kInvalidScn;  // Abandon the epoch; reopen next turn.
        continue;
      }
      stats_.queries.fetch_add(1, std::memory_order_relaxed);
      stats_.pinned_queries.fetch_add(1, std::memory_order_relaxed);
      stats_.decide_us.Record(routed->decision.decide_us);
      if (routed->result.snapshot != st.pin) {
        stats_.freshness_violations.fetch_add(1, std::memory_order_relaxed);
      }
      if (st.requeries_left == options_.pinned_requeries) {
        // First re-execution establishes the pinned fingerprint for the
        // epoch query shape (the opener ran a different random shape).
        st.fingerprint_count = routed->result.count;
        st.fingerprint_agg = routed->result.agg_int;
        st.fingerprint_agg_valid = routed->result.agg_valid;
      } else if (routed->result.count != st.fingerprint_count ||
                 routed->result.agg_int != st.fingerprint_agg ||
                 routed->result.agg_valid != st.fingerprint_agg_valid) {
        stats_.pinned_mismatches.fetch_add(1, std::memory_order_relaxed);
      }
      if (--st.requeries_left <= 0) st.pin = kInvalidScn;
      continue;
    }

    // Bounded-staleness (the default mix).
    const auto routed = router_->Query(
        q, fleet::FreshnessContract::BoundedScn(options_.bounded_lag_scn));
    stats_.query_us.Record(static_cast<int64_t>(NowMicros() - t0));
    if (!routed.ok()) {
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    stats_.queries.fetch_add(1, std::memory_order_relaxed);
    stats_.bounded_queries.fetch_add(1, std::memory_order_relaxed);
    stats_.decide_us.Record(routed->decision.decide_us);
    if (routed->result.snapshot + options_.bounded_lag_scn <
        routed->decision.primary_scn) {
      stats_.freshness_violations.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

}  // namespace stratus
