#include "workload/report.h"

#include <algorithm>
#include <cstdio>

namespace stratus {

void ReportTable::Print(const std::string& title) const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  }
  size_t total = 1;
  for (size_t w : widths) total += w + 3;

  std::printf("\n%s\n", title.c_str());
  std::printf("%s\n", std::string(total, '-').c_str());
  std::printf("|");
  for (size_t i = 0; i < headers_.size(); ++i)
    std::printf(" %-*s |", static_cast<int>(widths[i]), headers_[i].c_str());
  std::printf("\n%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) {
    std::printf("|");
    for (size_t i = 0; i < headers_.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : "";
      std::printf(" %-*s |", static_cast<int>(widths[i]), cell.c_str());
    }
    std::printf("\n");
  }
  std::printf("%s\n", std::string(total, '-').c_str());
  std::fflush(stdout);
}

std::string Fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string UsToMs(double us, int decimals) { return Fmt(us / 1000.0, decimals); }

std::string LatencyTriple(const Histogram& h) {
  return UsToMs(h.Percentile(50)) + " / " + UsToMs(h.Average()) + " / " +
         UsToMs(h.Percentile(95));
}

std::string Speedup(double base, double improved) {
  if (improved <= 0.0) return "-";
  return Fmt(base / improved, 1) + "x";
}

}  // namespace stratus
