#ifndef STRATUS_ADG_RECOVERY_WORKER_H_
#define STRATUS_ADG_RECOVERY_WORKER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>

#include "chaos/crash_point.h"
#include "common/status.h"
#include "common/types.h"
#include "redo/change_vector.h"

namespace stratus {

/// Where the standby applies change vectors (implemented by the standby
/// database: block store, tables, indexes, transaction table).
class ApplySink {
 public:
  virtual ~ApplySink() = default;
  virtual Status ApplyCv(const ChangeVector& cv) = 0;
};

/// Per-CV hook invoked by recovery workers after applying a change vector.
/// The DBIM-on-ADG Mining Component "piggybacks on the recovery workers to
/// sniff each CV" (Section III.B) through this interface.
class ApplyHooks {
 public:
  virtual ~ApplyHooks() = default;
  virtual void OnCvApplied(const ChangeVector& cv, WorkerId worker) = 0;
};

/// Re-bases worker ids before forwarding to an inner hook. Under MIRA every
/// apply instance numbers its workers 0..k-1; the shared Mining Component
/// needs globally unique ids so each worker keeps its own journal area.
class OffsetApplyHooks : public ApplyHooks {
 public:
  OffsetApplyHooks(ApplyHooks* inner, WorkerId offset)
      : inner_(inner), offset_(offset) {}
  void OnCvApplied(const ChangeVector& cv, WorkerId worker) override {
    inner_->OnCvApplied(cv, offset_ + worker);
  }

 private:
  ApplyHooks* inner_;
  WorkerId offset_;
};

/// Cooperative-flush participation (Section III.D.2): between applies,
/// recovery workers poll for a pending worklink and help drain it.
class FlushParticipant {
 public:
  virtual ~FlushParticipant() = default;
  /// True if a flush is pending and workers are allowed to help.
  virtual bool WantsHelp() const = 0;
  /// Performs one batch of flush work; returns true if more remains.
  virtual bool FlushStep(WorkerId invoker) = 0;
};

/// One entry in a recovery worker's queue: either a change vector to apply or
/// a barrier announcing that every CV with SCN <= `scn` assigned to this
/// worker has already been enqueued (so once drained, the worker's applied
/// watermark advances to `scn`).
struct ApplyEntry {
  enum class Kind : uint8_t { kCv, kBarrier } kind = Kind::kBarrier;
  ChangeVector cv;
  Scn scn = kInvalidScn;  ///< Barrier SCN.
};

/// A recovery worker process (Section II.A, Figure 3): applies the change
/// vectors hashed to it, in SCN order, and advertises an applied watermark
/// the recovery coordinator folds into the QuerySCN.
class RecoveryWorker {
 public:
  RecoveryWorker(WorkerId id, ApplySink* sink, ApplyHooks* hooks,
                 FlushParticipant* flush, size_t queue_capacity = 8192);
  ~RecoveryWorker();

  RecoveryWorker(const RecoveryWorker&) = delete;
  RecoveryWorker& operator=(const RecoveryWorker&) = delete;

  /// Optional crash injection; must be set before Start().
  void set_chaos(chaos::ChaosController* chaos) { chaos_ = chaos; }

  void Start();
  /// Drains the queue, then stops the thread.
  void Stop();
  /// Requests stop and wakes everything (including a dispatcher blocked in
  /// Enqueue) WITHOUT joining — crash teardown uses this first so the
  /// dispatcher can never deadlock against a worker whose thread already died
  /// on a CrashSignal.
  void BeginShutdown();

  /// Enqueues an entry; blocks when the queue is full (backpressure on the
  /// dispatcher, as Oracle's recovery slaves throttle the merger). Never
  /// drops: change vectors come from destructive ReceivedLog pops, so a
  /// discarded entry would be lost forever. Entries enqueued after stop are
  /// either applied by the draining worker thread or recovered by
  /// DrainQueueTo().
  void Enqueue(ApplyEntry entry);

  /// After the worker thread has been joined: applies every change vector
  /// still queued directly to `sink` (no mining hooks — the journal is being
  /// discarded anyway) so no CV is skipped across a crash. Returns the number
  /// of CVs applied. Single-threaded by contract.
  size_t DrainQueueTo(ApplySink* sink);

  WorkerId id() const { return id_; }

  /// Highest SCN up to which this worker has applied everything assigned to
  /// it (advanced by barriers).
  Scn applied_watermark() const {
    // Acquire pairs with the release store in Run(): a coordinator folding
    // this watermark into the QuerySCN observes every block change the
    // barrier covers.
    return watermark_.load(std::memory_order_acquire);
  }

  /// True when the worker thread was terminated by a CrashSignal.
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }

  /// First non-OK apply status, latched (OK when none occurred). The counter
  /// alone proved too easy to ignore — the quarantine path and the degraded
  /// health report both start from this.
  Status first_error() const;

  uint64_t applied_cvs() const { return applied_cvs_.load(std::memory_order_relaxed); }
  uint64_t apply_errors() const { return apply_errors_.load(std::memory_order_relaxed); }

 private:
  void Run();
  bool Pop(ApplyEntry* out, int64_t timeout_us);
  void RequeueFront(ApplyEntry entry);
  void LatchError(const Status& status);

  WorkerId id_;
  ApplySink* sink_;
  ApplyHooks* hooks_;
  FlushParticipant* flush_;
  size_t capacity_;
  chaos::ChaosController* chaos_ = nullptr;

  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> crashed_{false};

  std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<ApplyEntry> queue_;

  std::atomic<Scn> watermark_{kInvalidScn};
  std::atomic<uint64_t> applied_cvs_{0};
  std::atomic<uint64_t> apply_errors_{0};

  mutable std::mutex err_mu_;
  Status first_error_;  ///< Guarded by err_mu_.
};

}  // namespace stratus

#endif  // STRATUS_ADG_RECOVERY_WORKER_H_
