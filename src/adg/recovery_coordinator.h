#ifndef STRATUS_ADG_RECOVERY_COORDINATOR_H_
#define STRATUS_ADG_RECOVERY_COORDINATOR_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "chaos/crash_point.h"
#include "common/latch.h"
#include "common/types.h"
#include "adg/recovery_worker.h"

namespace stratus {

/// Work the DBIM-on-ADG infrastructure contributes to a QuerySCN advancement
/// (Section III.D). Implemented by `imadg::InvalidationFlushComponent`; when
/// DBIM-on-ADG is disabled the coordinator advances without a driver.
class FlushDriver {
 public:
  virtual ~FlushDriver() = default;

  /// Chops the IM-ADG Commit Table at `target` and builds the worklinks.
  /// Called inside the Quiesce Period, before any flush step.
  virtual void PrepareAdvance(Scn target) = 0;

  /// Performs one batch of invalidation flush; returns true if more remains.
  virtual bool FlushStep(WorkerId invoker) = 0;

  /// True once every worklink node has been flushed and every remote
  /// instance has acknowledged its invalidation groups.
  virtual bool AdvanceComplete() const = 0;

  /// Called after the new QuerySCN has been published (outside the Quiesce
  /// Period); used to propagate the QuerySCN to non-master RAC instances.
  virtual void OnPublished(Scn published) = 0;

  /// Discards a prepared-but-unfinished advancement (crash teardown): frees
  /// any chopped-but-unflushed worklink nodes. The abandoned invalidations
  /// all belong to commits above the still-current QuerySCN, so no published
  /// consistency point ever needed them.
  virtual void AbandonAdvance() {}
};

/// The recovery coordinator (Section II.A): tracks recovery workers' applied
/// watermarks, establishes consistency points, and publishes the QuerySCN.
/// During each advancement it runs the DBIM-on-ADG invalidation flush inside
/// the Quiesce Period so queries at the new QuerySCN find every stale IMCU
/// row marked invalid.
class RecoveryCoordinator {
 public:
  /// `workers` outlive the coordinator. `driver` may be null.
  RecoveryCoordinator(std::vector<RecoveryWorker*> workers, FlushDriver* driver,
                      int64_t poll_interval_us = 500);
  ~RecoveryCoordinator();

  RecoveryCoordinator(const RecoveryCoordinator&) = delete;
  RecoveryCoordinator& operator=(const RecoveryCoordinator&) = delete;

  /// Optional crash injection; must be set before Start().
  void set_chaos(chaos::ChaosController* chaos) { chaos_ = chaos; }

  void Start();
  void Stop();
  /// Crash teardown: additionally abandons an in-progress advancement
  /// (without publishing) instead of waiting for its flush to drain — a
  /// crashed recovery worker can no longer help, and the restart discards the
  /// flush state anyway.
  void CrashStop();

  /// The published QuerySCN: the Consistent Read snapshot for every query on
  /// the standby.
  Scn query_scn() const { return query_scn_.load(std::memory_order_acquire); }

  /// Blocks until query_scn() >= scn, the coordinator stops, or timeout.
  /// Returns the QuerySCN seen. Waiters are released immediately on Stop() —
  /// a stopped coordinator can never publish, so sleeping out the timeout
  /// would only stall shutdown.
  Scn WaitForQueryScn(Scn scn, int64_t timeout_us) const;

  /// The Quiesce lock population synchronizes with (Section III.A).
  QuiesceLock* quiesce() { return &quiesce_; }

  /// Candidate consistency point: min applied watermark across workers.
  Scn CandidateScn() const;

  /// Forces one advancement attempt synchronously (used by tests to step the
  /// protocol deterministically; the background thread does the same).
  bool TryAdvanceOnce();

  /// True when the coordinator thread was terminated by a CrashSignal.
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }

  uint64_t advancements() const { return advancements_.load(std::memory_order_relaxed); }

  /// Total wall time spent inside Quiesce Periods, for redo-apply impact
  /// accounting (Section IV.C).
  uint64_t quiesce_nanos() const { return quiesce_nanos_.load(std::memory_order_relaxed); }

  /// Observer invoked (from the coordinator thread) after every publish,
  /// outside the Quiesce Period. Must be set before Start().
  void set_publish_listener(std::function<void(Scn)> fn) {
    publish_listener_ = std::move(fn);
  }

 private:
  void Run();

  std::vector<RecoveryWorker*> workers_;
  FlushDriver* driver_;
  int64_t poll_interval_us_;
  chaos::ChaosController* chaos_ = nullptr;

  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> abort_advance_{false};
  std::atomic<bool> crashed_{false};
  std::atomic<Scn> query_scn_{kInvalidScn};
  QuiesceLock quiesce_;

  mutable std::mutex publish_mu_;
  mutable std::condition_variable published_;

  std::atomic<uint64_t> advancements_{0};
  std::atomic<uint64_t> quiesce_nanos_{0};
  std::function<void(Scn)> publish_listener_;
};

}  // namespace stratus

#endif  // STRATUS_ADG_RECOVERY_COORDINATOR_H_
