#include "adg/recovery_coordinator.h"

#include <algorithm>
#include <chrono>

#include "common/clock.h"
#include "obs/trace.h"

namespace stratus {

RecoveryCoordinator::RecoveryCoordinator(std::vector<RecoveryWorker*> workers,
                                         FlushDriver* driver,
                                         int64_t poll_interval_us)
    : workers_(std::move(workers)), driver_(driver),
      poll_interval_us_(poll_interval_us) {}

RecoveryCoordinator::~RecoveryCoordinator() {
  if (thread_.joinable()) Stop();
}

void RecoveryCoordinator::Start() {
  stop_.store(false, std::memory_order_release);
  abort_advance_.store(false, std::memory_order_release);
  crashed_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Run(); });
}

void RecoveryCoordinator::Stop() {
  stop_.store(true, std::memory_order_release);
  // Release WaitForQueryScn waiters: once stopped, no publish will ever
  // satisfy them, and leaving them to sleep out their timeout stalls every
  // caller that raced with shutdown.
  {
    std::lock_guard<std::mutex> g(publish_mu_);
    published_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

void RecoveryCoordinator::CrashStop() {
  abort_advance_.store(true, std::memory_order_release);
  Stop();
  // With the thread joined, any advancement it abandoned mid-flush left its
  // chopped worklink nodes behind; free them. Publishing never happened, so
  // those invalidations were never needed by any query snapshot.
  if (driver_ != nullptr) driver_->AbandonAdvance();
}

Scn RecoveryCoordinator::CandidateScn() const {
  Scn candidate = kMaxScn;
  for (const RecoveryWorker* w : workers_)
    candidate = std::min(candidate, w->applied_watermark());
  return candidate == kMaxScn ? kInvalidScn : candidate;
}

bool RecoveryCoordinator::TryAdvanceOnce() {
  const Scn target = CandidateScn();
  if (target == kInvalidScn || target <= query_scn()) return false;

  // QuerySCN advancement (Section III.D): inside the Quiesce Period, chop the
  // IM-ADG Commit Table at the target, drain the worklinks (cooperatively —
  // recovery workers pick up batches through their FlushParticipant hook
  // while we drive from here), then publish. Population cannot capture an
  // IMCU snapshot SCN anywhere in this window, which is exactly what makes
  // "SMU registered before the flush" / "snapshot taken after the publish"
  // the only two possible interleavings.
  STRATUS_SPAN(obs::Stage::kQueryScnAdvance, target);
  STRATUS_CRASH_POINT(chaos_, chaos::CrashPoint::kQuiesceBegin);
  const uint64_t t0 = NowNanos();
  quiesce_.BeginQuiesce();
  // The quiesce lock is held non-RAII; a CrashSignal escaping this window
  // must release it on the way out or the restarted pipeline's population
  // would deadlock against a lock owned by a dead "process".
  try {
    if (driver_ != nullptr) {
      driver_->PrepareAdvance(target);
      while (!driver_->AdvanceComplete()) {
        if (abort_advance_.load(std::memory_order_acquire)) {
          // Crash teardown while draining: a crashed worker can no longer
          // cooperate and the flush state is being discarded. Abandon without
          // publishing — the unflushed invalidations all belong to commits
          // above the still-current QuerySCN, so the published snapshot stays
          // consistent.
          driver_->AbandonAdvance();
          quiesce_.EndQuiesce();
          return false;
        }
        if (!driver_->FlushStep(/*invoker=*/kMaxWorkerId)) {
          // Nothing to grab but remote acks may still be pending.
          if (driver_->AdvanceComplete()) break;
          std::this_thread::sleep_for(std::chrono::microseconds(20));
        }
      }
    }
    STRATUS_CRASH_POINT(chaos_, chaos::CrashPoint::kQuiescePublish);
    query_scn_.store(target, std::memory_order_release);
  } catch (const chaos::CrashSignal&) {
    quiesce_.EndQuiesce();
    throw;
  }
  quiesce_.EndQuiesce();
  STRATUS_CRASH_POINT(chaos_, chaos::CrashPoint::kQuiesceEnd);
  quiesce_nanos_.fetch_add(NowNanos() - t0, std::memory_order_relaxed);
  advancements_.fetch_add(1, std::memory_order_relaxed);
  if (driver_ != nullptr) driver_->OnPublished(target);
  if (publish_listener_) publish_listener_(target);
  {
    std::lock_guard<std::mutex> g(publish_mu_);
    published_.notify_all();
  }
  return true;
}

void RecoveryCoordinator::Run() {
  try {
    while (!stop_.load(std::memory_order_acquire)) {
      if (!TryAdvanceOnce()) {
        std::this_thread::sleep_for(std::chrono::microseconds(poll_interval_us_));
      }
    }
  } catch (const chaos::CrashSignal&) {
    // The coordinator "process" dies here. If it died between FlushStep and
    // publish, CrashStop's AbandonAdvance reclaims the worklink remainder.
    crashed_.store(true, std::memory_order_release);
    std::lock_guard<std::mutex> g(publish_mu_);
    published_.notify_all();
  }
}

Scn RecoveryCoordinator::WaitForQueryScn(Scn scn, int64_t timeout_us) const {
  std::unique_lock<std::mutex> g(publish_mu_);
  published_.wait_for(g, std::chrono::microseconds(timeout_us), [&] {
    return query_scn() >= scn || stop_.load(std::memory_order_acquire) ||
           crashed_.load(std::memory_order_acquire);
  });
  return query_scn();
}

}  // namespace stratus
