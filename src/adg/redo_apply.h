#ifndef STRATUS_ADG_REDO_APPLY_H_
#define STRATUS_ADG_REDO_APPLY_H_

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "chaos/crash_point.h"
#include "common/types.h"
#include "adg/recovery_coordinator.h"
#include "adg/recovery_worker.h"
#include "redo/log_merger.h"

namespace stratus {

/// Options for the parallel redo apply pipeline.
struct RedoApplyOptions {
  int num_workers = 4;
  /// Broadcast a watermark barrier to all workers at least every this many
  /// dispatched records (the QuerySCN "leapfrogs" in barrier-sized steps).
  int barrier_interval = 64;
  size_t worker_queue_capacity = 8192;
  int64_t coordinator_poll_us = 500;
  /// MIRA: when several apply engines share one *global* recovery
  /// coordinator (built over the union of their workers), the per-engine
  /// coordinator is not created.
  bool create_coordinator = true;
  /// Optional crash injection, threaded into the dispatcher, every recovery
  /// worker and the coordinator. Null in production wiring.
  chaos::ChaosController* chaos = nullptr;
};

/// Parallel Redo Apply / Media Recovery on the standby (Section II.A,
/// Figure 3): a merge thread consumes the SCN-ordered stream from the
/// `LogMerger` and distributes change vectors to recovery workers by hashing
/// the DBA; a recovery coordinator folds worker watermarks into the QuerySCN.
class RedoApplyEngine {
 public:
  /// `sink`, `hooks`, `flush` and `driver` outlive the engine; `hooks`,
  /// `flush` and `driver` may be null (plain ADG without DBIM).
  RedoApplyEngine(std::unique_ptr<LogMerger> merger, ApplySink* sink,
                  ApplyHooks* hooks, FlushParticipant* flush,
                  FlushDriver* driver, const RedoApplyOptions& options);
  ~RedoApplyEngine();

  RedoApplyEngine(const RedoApplyEngine&) = delete;
  RedoApplyEngine& operator=(const RedoApplyEngine&) = delete;

  void Start();
  /// Stops dispatching and drains workers. Records still queued in the
  /// received logs remain there (a later engine instance can resume — the
  /// standby "restart" scenario of Section III.E).
  void Stop();
  /// Crash teardown: some pipeline threads may already be dead on a
  /// CrashSignal. Wakes everything first (so no live thread blocks on a dead
  /// one), joins, abandons any in-progress QuerySCN advancement, then drains
  /// every worker queue straight into the sink so no dispatched change vector
  /// is ever lost (exactly-once across restart).
  void CrashStop();

  RecoveryCoordinator* coordinator() { return coordinator_.get(); }

  /// SCN of the last record handed to the dispatcher.
  Scn dispatched_scn() const { return dispatched_scn_.load(std::memory_order_acquire); }

  uint64_t dispatched_records() const {
    return dispatched_records_.load(std::memory_order_relaxed);
  }

  /// True when any pipeline thread (dispatcher, worker, coordinator) was
  /// terminated by a CrashSignal.
  bool crashed() const;

  const std::vector<std::unique_ptr<RecoveryWorker>>& workers() const {
    return workers_;
  }

 private:
  void DispatchLoop();
  void BroadcastBarrier(Scn scn);

  std::unique_ptr<LogMerger> merger_;
  ApplySink* sink_;
  RedoApplyOptions options_;

  std::vector<std::unique_ptr<RecoveryWorker>> workers_;
  std::unique_ptr<RecoveryCoordinator> coordinator_;

  std::thread dispatch_thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> dispatcher_crashed_{false};
  std::atomic<Scn> dispatched_scn_{kInvalidScn};
  std::atomic<uint64_t> dispatched_records_{0};
};

}  // namespace stratus

#endif  // STRATUS_ADG_REDO_APPLY_H_
