#include "adg/redo_apply.h"

#include "obs/trace.h"

namespace stratus {

RedoApplyEngine::RedoApplyEngine(std::unique_ptr<LogMerger> merger,
                                 ApplySink* sink, ApplyHooks* hooks,
                                 FlushParticipant* flush, FlushDriver* driver,
                                 const RedoApplyOptions& options)
    : merger_(std::move(merger)), sink_(sink), options_(options) {
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.push_back(std::make_unique<RecoveryWorker>(
        static_cast<WorkerId>(i), sink_, hooks, flush,
        options_.worker_queue_capacity));
    workers_.back()->set_chaos(options_.chaos);
  }
  if (options_.create_coordinator) {
    std::vector<RecoveryWorker*> worker_ptrs;
    for (auto& w : workers_) worker_ptrs.push_back(w.get());
    coordinator_ = std::make_unique<RecoveryCoordinator>(
        std::move(worker_ptrs), driver, options_.coordinator_poll_us);
    coordinator_->set_chaos(options_.chaos);
  }
}

RedoApplyEngine::~RedoApplyEngine() {
  if (dispatch_thread_.joinable()) Stop();
}

void RedoApplyEngine::Start() {
  stop_.store(false, std::memory_order_release);
  dispatcher_crashed_.store(false, std::memory_order_release);
  for (auto& w : workers_) w->Start();
  if (coordinator_ != nullptr) coordinator_->Start();
  dispatch_thread_ = std::thread([this] { DispatchLoop(); });
}

void RedoApplyEngine::Stop() {
  stop_.store(true, std::memory_order_release);
  if (dispatch_thread_.joinable()) dispatch_thread_.join();
  for (auto& w : workers_) w->Stop();
  if (coordinator_ != nullptr) coordinator_->Stop();
}

void RedoApplyEngine::CrashStop() {
  stop_.store(true, std::memory_order_release);
  // Wake first, join second: if a worker died on a CrashSignal with a full
  // queue, a dispatcher blocked in Enqueue would otherwise never return.
  for (auto& w : workers_) w->BeginShutdown();
  if (dispatch_thread_.joinable()) dispatch_thread_.join();
  for (auto& w : workers_) w->Stop();
  if (coordinator_ != nullptr) coordinator_->CrashStop();
  // Every thread is down. Whatever a crashed worker left queued (including
  // the entry it popped but never applied, which it requeued on the way out)
  // is applied here — change vectors came off destructive ReceivedLog pops,
  // so this drain is the only thing standing between a crash and a skipped
  // change vector.
  for (auto& w : workers_) w->DrainQueueTo(sink_);
}

bool RedoApplyEngine::crashed() const {
  if (dispatcher_crashed_.load(std::memory_order_acquire)) return true;
  for (const auto& w : workers_)
    if (w->crashed()) return true;
  return coordinator_ != nullptr && coordinator_->crashed();
}

void RedoApplyEngine::BroadcastBarrier(Scn scn) {
  if (scn == kInvalidScn) return;
  for (auto& w : workers_) {
    ApplyEntry barrier;
    barrier.kind = ApplyEntry::Kind::kBarrier;
    barrier.scn = scn;
    w->Enqueue(std::move(barrier));
  }
}

void RedoApplyEngine::DispatchLoop() {
  int since_barrier = 0;
  Scn last_scn = kInvalidScn;
  try {
    while (!stop_.load(std::memory_order_acquire)) {
      // The hand-off point fires with no record in flight: the merger pops a
      // received log destructively only at emission, inside Next(). A crash
      // here therefore loses nothing — the restarted engine re-merges from
      // the surviving ReceivedLogs.
      STRATUS_CRASH_POINT(options_.chaos, chaos::CrashPoint::kDispatchHandoff);
      RedoRecord rec;
      if (!merger_->Next(&rec, /*timeout_us=*/1000)) {
        // Idle or stalled: nothing new to dispatch. Any barrier for `last_scn`
        // has already been broadcast below, so just retry.
        if (merger_->Finished()) break;
        continue;
      }
      STRATUS_SPAN(obs::Stage::kLogMerge, rec.scn);
      bool heartbeat_only = true;
      for (ChangeVector& cv : rec.cvs) {
        if (cv.kind == CvKind::kHeartbeat) continue;
        heartbeat_only = false;
        ApplyEntry entry;
        entry.kind = ApplyEntry::Kind::kCv;
        entry.cv = std::move(cv);
        const size_t target = static_cast<size_t>(entry.cv.dba) % workers_.size();
        workers_[target]->Enqueue(std::move(entry));
      }
      last_scn = rec.scn;
      dispatched_scn_.store(rec.scn, std::memory_order_release);
      dispatched_records_.fetch_add(1, std::memory_order_relaxed);

      // A heartbeat record proves every stream has delivered up to rec.scn, so
      // broadcast a barrier immediately; otherwise barrier periodically.
      if (heartbeat_only || ++since_barrier >= options_.barrier_interval) {
        BroadcastBarrier(last_scn);
        since_barrier = 0;
      }
    }
    // Final barrier so watermarks (and thus the QuerySCN) cover everything
    // dispatched before shutdown.
    BroadcastBarrier(last_scn);
  } catch (const chaos::CrashSignal&) {
    // The dispatcher "process" dies here — mid-record state is impossible at
    // the hand-off point, and an Enqueue throw cannot happen (Enqueue does
    // not hit crash points). No final barrier: the restarted engine rebuilds
    // watermarks from scratch.
    dispatcher_crashed_.store(true, std::memory_order_release);
  }
}

}  // namespace stratus
