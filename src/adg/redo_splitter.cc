#include "adg/redo_splitter.h"

namespace stratus {

RedoSplitter::RedoSplitter(std::unique_ptr<LogMerger> merger,
                           std::vector<ReceivedLog*> outputs)
    : merger_(std::move(merger)), outputs_(std::move(outputs)) {}

RedoSplitter::~RedoSplitter() {
  if (thread_.joinable()) Stop();
}

void RedoSplitter::Start() {
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Run(); });
}

void RedoSplitter::Stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  for (ReceivedLog* out : outputs_) out->Close();
}

void RedoSplitter::Run() {
  while (!stop_.load(std::memory_order_acquire)) {
    RedoRecord rec;
    if (!merger_->Next(&rec, /*timeout_us=*/1000)) {
      if (merger_->Finished()) break;
      continue;
    }
    // Partition the record's CVs by owning instance; every instance receives
    // a record at this SCN (empty = pure watermark advance).
    std::vector<RedoRecord> per_instance(outputs_.size());
    for (size_t i = 0; i < outputs_.size(); ++i) {
      per_instance[i].scn = rec.scn;
      per_instance[i].thread = rec.thread;
    }
    for (ChangeVector& cv : rec.cvs) {
      if (cv.kind == CvKind::kHeartbeat) continue;
      per_instance[InstanceFor(cv.dba)].cvs.push_back(std::move(cv));
    }
    for (size_t i = 0; i < outputs_.size(); ++i) {
      outputs_[i]->Deliver({std::move(per_instance[i])});
    }
    routed_.fetch_add(1, std::memory_order_relaxed);
  }
  for (ReceivedLog* out : outputs_) out->Close();
}

}  // namespace stratus
