#ifndef STRATUS_ADG_REDO_SPLITTER_H_
#define STRATUS_ADG_REDO_SPLITTER_H_

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/types.h"
#include "redo/log_merger.h"
#include "redo/log_shipping.h"

namespace stratus {

/// The Multi-Instance Redo Apply (MIRA, Section V / [2]) splitter: consumes
/// the globally SCN-ordered stream from the log merger and routes each change
/// vector to the apply instance that owns its DBA (hash partitioning), so
/// several apply engines recover the database in parallel.
///
/// Every record's SCN is delivered to *every* instance (instances that get no
/// CVs from a record receive it empty, i.e. as a heartbeat), so each
/// instance's applied watermark — and hence the global QuerySCN, the minimum
/// across all instances' workers — keeps advancing even for instances the
/// workload doesn't touch.
class RedoSplitter {
 public:
  /// `outputs[i]` feeds apply instance i.
  RedoSplitter(std::unique_ptr<LogMerger> merger,
               std::vector<ReceivedLog*> outputs);
  ~RedoSplitter();

  RedoSplitter(const RedoSplitter&) = delete;
  RedoSplitter& operator=(const RedoSplitter&) = delete;

  void Start();
  void Stop();

  /// Which instance applies `dba` (same hash the engines use for workers is
  /// fine — partitioning only has to be deterministic).
  size_t InstanceFor(Dba dba) const { return dba % outputs_.size(); }

  uint64_t routed_records() const { return routed_.load(std::memory_order_relaxed); }

 private:
  void Run();

  std::unique_ptr<LogMerger> merger_;
  std::vector<ReceivedLog*> outputs_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> routed_{0};
};

}  // namespace stratus

#endif  // STRATUS_ADG_REDO_SPLITTER_H_
