#include "adg/recovery_worker.h"

#include <chrono>

#include "obs/trace.h"

namespace stratus {

RecoveryWorker::RecoveryWorker(WorkerId id, ApplySink* sink, ApplyHooks* hooks,
                               FlushParticipant* flush, size_t queue_capacity)
    : id_(id), sink_(sink), hooks_(hooks), flush_(flush), capacity_(queue_capacity) {}

RecoveryWorker::~RecoveryWorker() {
  if (thread_.joinable()) Stop();
}

void RecoveryWorker::Start() {
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Run(); });
}

void RecoveryWorker::Stop() {
  {
    std::lock_guard<std::mutex> g(mu_);
    stop_.store(true, std::memory_order_release);
    not_empty_.notify_all();
    not_full_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

void RecoveryWorker::Enqueue(ApplyEntry entry) {
  std::unique_lock<std::mutex> g(mu_);
  not_full_.wait(g, [&] {
    return queue_.size() < capacity_ || stop_.load(std::memory_order_relaxed);
  });
  if (stop_.load(std::memory_order_relaxed)) return;
  queue_.push_back(std::move(entry));
  not_empty_.notify_one();
}

bool RecoveryWorker::Pop(ApplyEntry* out, int64_t timeout_us) {
  std::unique_lock<std::mutex> g(mu_);
  not_empty_.wait_for(g, std::chrono::microseconds(timeout_us), [&] {
    return !queue_.empty() || stop_.load(std::memory_order_relaxed);
  });
  if (queue_.empty()) return false;
  *out = std::move(queue_.front());
  queue_.pop_front();
  not_full_.notify_one();
  return true;
}

void RecoveryWorker::Run() {
  uint64_t since_flush_check = 0;
  while (true) {
    ApplyEntry entry;
    if (!Pop(&entry, /*timeout_us=*/1000)) {
      if (stop_.load(std::memory_order_acquire)) {
        std::lock_guard<std::mutex> g(mu_);
        if (queue_.empty()) break;
        continue;
      }
      // Idle: volunteer for cooperative flush (Section III.D.2).
      if (flush_ != nullptr && flush_->WantsHelp()) flush_->FlushStep(id_);
      continue;
    }
    if (entry.kind == ApplyEntry::Kind::kBarrier) {
      if (entry.scn > watermark_.load(std::memory_order_relaxed))
        watermark_.store(entry.scn, std::memory_order_release);
      continue;
    }
    {
      STRATUS_SPAN(obs::Stage::kRecoveryApply, entry.cv.xid);
      const Status st = sink_->ApplyCv(entry.cv);
      if (!st.ok()) apply_errors_.fetch_add(1, std::memory_order_relaxed);
      applied_cvs_.fetch_add(1, std::memory_order_relaxed);
      if (hooks_ != nullptr) hooks_->OnCvApplied(entry.cv, id_);
    }

    // Periodically lend a hand to a pending invalidation flush, without
    // starving redo apply (one batch every few applies).
    if (flush_ != nullptr && ++since_flush_check >= 16) {
      since_flush_check = 0;
      if (flush_->WantsHelp()) flush_->FlushStep(id_);
    }
  }
}

}  // namespace stratus
