#include "adg/recovery_worker.h"

#include <chrono>

#include "obs/trace.h"

namespace stratus {

RecoveryWorker::RecoveryWorker(WorkerId id, ApplySink* sink, ApplyHooks* hooks,
                               FlushParticipant* flush, size_t queue_capacity)
    : id_(id), sink_(sink), hooks_(hooks), flush_(flush), capacity_(queue_capacity) {}

RecoveryWorker::~RecoveryWorker() {
  if (thread_.joinable()) Stop();
}

void RecoveryWorker::Start() {
  stop_.store(false, std::memory_order_release);
  crashed_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Run(); });
}

void RecoveryWorker::BeginShutdown() {
  std::lock_guard<std::mutex> g(mu_);
  stop_.store(true, std::memory_order_release);
  not_empty_.notify_all();
  not_full_.notify_all();
}

void RecoveryWorker::Stop() {
  BeginShutdown();
  if (thread_.joinable()) thread_.join();
}

void RecoveryWorker::Enqueue(ApplyEntry entry) {
  std::unique_lock<std::mutex> g(mu_);
  not_full_.wait(g, [&] {
    return queue_.size() < capacity_ || stop_.load(std::memory_order_relaxed);
  });
  // Push even past capacity once stop is requested: the bound only exists for
  // backpressure, while a silently dropped change vector is unrecoverable
  // (its ReceivedLog pop was destructive). DrainQueueTo picks up anything a
  // crashed worker leaves behind.
  queue_.push_back(std::move(entry));
  not_empty_.notify_one();
}

void RecoveryWorker::RequeueFront(ApplyEntry entry) {
  std::lock_guard<std::mutex> g(mu_);
  queue_.push_front(std::move(entry));
}

bool RecoveryWorker::Pop(ApplyEntry* out, int64_t timeout_us) {
  std::unique_lock<std::mutex> g(mu_);
  not_empty_.wait_for(g, std::chrono::microseconds(timeout_us), [&] {
    return !queue_.empty() || stop_.load(std::memory_order_relaxed);
  });
  if (queue_.empty()) return false;
  *out = std::move(queue_.front());
  queue_.pop_front();
  not_full_.notify_one();
  return true;
}

size_t RecoveryWorker::DrainQueueTo(ApplySink* sink) {
  std::deque<ApplyEntry> rest;
  {
    std::lock_guard<std::mutex> g(mu_);
    rest.swap(queue_);
  }
  size_t applied = 0;
  for (ApplyEntry& entry : rest) {
    if (entry.kind != ApplyEntry::Kind::kCv) continue;
    const Status st = sink->ApplyCv(entry.cv);
    if (!st.ok()) {
      apply_errors_.fetch_add(1, std::memory_order_relaxed);
      LatchError(st);
    }
    applied_cvs_.fetch_add(1, std::memory_order_relaxed);
    ++applied;
  }
  return applied;
}

void RecoveryWorker::LatchError(const Status& status) {
  std::lock_guard<std::mutex> g(err_mu_);
  if (first_error_.ok()) first_error_ = status;
}

Status RecoveryWorker::first_error() const {
  std::lock_guard<std::mutex> g(err_mu_);
  return first_error_;
}

void RecoveryWorker::Run() {
  uint64_t since_flush_check = 0;
  try {
    while (true) {
      ApplyEntry entry;
      if (!Pop(&entry, /*timeout_us=*/1000)) {
        if (stop_.load(std::memory_order_acquire)) {
          std::lock_guard<std::mutex> g(mu_);
          if (queue_.empty()) break;
          continue;
        }
        // Idle: volunteer for cooperative flush (Section III.D.2).
        if (flush_ != nullptr && flush_->WantsHelp()) flush_->FlushStep(id_);
        continue;
      }
      // The popped entry is the one piece of state only this thread holds; a
      // crash before it is applied must put it back so DrainQueueTo recovers
      // it, and a crash after must NOT (block apply prepends a version — it
      // is not idempotent, so a re-apply would corrupt the row).
      bool applied = false;
      try {
        STRATUS_CRASH_POINT(chaos_, chaos::CrashPoint::kWorkerDequeue);
        if (entry.kind == ApplyEntry::Kind::kBarrier) {
          // Single writer: only this thread stores watermark_, so the guard
          // load may be relaxed. The store is a release, paired with the
          // acquire load in applied_watermark(), so the QuerySCN the
          // coordinator publishes from it happens-after every block change
          // the barrier covers.
          if (entry.scn > watermark_.load(std::memory_order_relaxed))
            watermark_.store(entry.scn, std::memory_order_release);
          continue;
        }
        {
          STRATUS_SPAN(obs::Stage::kRecoveryApply, entry.cv.xid);
          STRATUS_CRASH_POINT(chaos_, chaos::CrashPoint::kWorkerApply);
          const Status st = sink_->ApplyCv(entry.cv);
          applied = true;
          if (!st.ok()) {
            apply_errors_.fetch_add(1, std::memory_order_relaxed);
            LatchError(st);
          }
          applied_cvs_.fetch_add(1, std::memory_order_relaxed);
          if (hooks_ != nullptr) hooks_->OnCvApplied(entry.cv, id_);
        }
      } catch (const chaos::CrashSignal&) {
        if (!applied) RequeueFront(std::move(entry));
        throw;
      }

      // Periodically lend a hand to a pending invalidation flush, without
      // starving redo apply (one batch every few applies).
      if (flush_ != nullptr && ++since_flush_check >= 16) {
        since_flush_check = 0;
        if (flush_->WantsHelp()) flush_->FlushStep(id_);
      }
    }
  } catch (const chaos::CrashSignal&) {
    // The worker "process" dies here. Queued work survives in queue_ for the
    // lifecycle driver's DrainQueueTo; mining state is lost with the journal.
    crashed_.store(true, std::memory_order_release);
  }
}

}  // namespace stratus
