#ifndef STRATUS_FLEET_FLEET_CLUSTER_H_
#define STRATUS_FLEET_FLEET_CLUSTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "db/database.h"
#include "obs/lag_monitor.h"
#include "obs/metrics.h"

namespace stratus {
namespace fleet {

/// Modeled serving capacity of one standby node. The whole fleet runs in one
/// process, so N standbys share the host's cores; real deployments give each
/// standby its own server. The gate models that per-node capacity explicitly:
/// a token bucket caps the node's admission rate and a slot count caps its
/// concurrent queries, so aggregate fleet throughput scales with node count
/// the way N separate servers would, independent of host core count. Zeros
/// disable the model (admission is then free).
struct NodeCapacity {
  double max_qps = 0;  ///< Sustained admissions/second (0 = unbounded).
  int slots = 0;       ///< Concurrent queries in the node (0 = unbounded).
};

/// Blocking admission gate implementing NodeCapacity: Acquire() waits for a
/// rate token and a free slot, Release() frees the slot.
class CapacityGate {
 public:
  explicit CapacityGate(const NodeCapacity& capacity);

  CapacityGate(const CapacityGate&) = delete;
  CapacityGate& operator=(const CapacityGate&) = delete;

  void Acquire();
  void Release();

 private:
  const double max_qps_;
  const int slots_;
  const double burst_;  ///< Token cap: short bursts above the rate.

  std::mutex mu_;
  std::condition_variable cv_;
  double tokens_;          ///< Guarded by mu_.
  uint64_t last_refill_us_ = 0;  ///< Guarded by mu_.
  int in_use_ = 0;         ///< Guarded by mu_.
};

/// One standby of the fleet: the database plus its routing-facing state —
/// whether it is accepting queries, its live load, and its own lag monitor.
class StandbyNode {
 public:
  StandbyNode(int id, const DatabaseOptions& options, size_t num_streams,
              const NodeCapacity& capacity);

  StandbyNode(const StandbyNode&) = delete;
  StandbyNode& operator=(const StandbyNode&) = delete;

  int id() const { return id_; }
  const std::string& name() const { return name_; }
  StandbyDb* db() { return &db_; }
  const StandbyDb* db() const { return &db_; }

  /// False while the node is down or draining: the router must not send new
  /// queries here. Flipped by FleetCluster's lifecycle calls.
  bool accepting() const { return accepting_.load(std::memory_order_acquire); }

  /// Query admission: blocks on the capacity gate, tracks live load. Every
  /// BeginQuery must be paired with EndQuery.
  void BeginQuery();
  void EndQuery();

  uint64_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }
  /// Queries completed on this node over its lifetime (load-share numerator).
  uint64_t served() const { return served_.load(std::memory_order_relaxed); }

  /// This node's standing lag monitor (non-null between fleet Start/Stop; it
  /// reads only restart-surviving atomics, so it runs through node restarts).
  obs::LagMonitor* lag_monitor() { return lag_monitor_.get(); }

 private:
  friend class FleetCluster;

  void set_accepting(bool v) {
    accepting_.store(v, std::memory_order_release);
  }

  const int id_;
  const std::string name_;
  StandbyDb db_;
  CapacityGate gate_;
  std::atomic<bool> accepting_{false};
  std::atomic<uint64_t> in_flight_{0};
  std::atomic<uint64_t> served_{0};

  /// Fleet-owned persistent redo cursors, one per primary redo thread. They
  /// outlive the node's shippers: a killed node's cursor keeps the primary
  /// from trimming the redo the node needs to catch up after rejoin.
  std::vector<uint64_t> cursor_ids_;
  std::vector<std::unique_ptr<LogShipper>> shippers_;
  std::unique_ptr<obs::LagMonitor> lag_monitor_;
};

struct FleetOptions {
  int num_standbys = 2;
  /// Template for the primary and every standby. Per-node identity
  /// (standby_name, channel peer labels) is applied on top; `registry` is
  /// shared by the whole fleet (defaulting to the global one).
  DatabaseOptions db;
  /// Applied to every node.
  NodeCapacity capacity;
};

/// One primary fanned out to N standbys: each primary redo thread's RedoLog
/// feeds one LogShipper per standby over an independent channel, with
/// fleet-owned cursors deciding redo retention. The ROADMAP "one primary,
/// N standbys" topology, in-process.
class FleetCluster {
 public:
  explicit FleetCluster(const FleetOptions& options);
  ~FleetCluster();

  FleetCluster(const FleetCluster&) = delete;
  FleetCluster& operator=(const FleetCluster&) = delete;

  void Start();
  void Stop();

  PrimaryDb* primary() { return &primary_; }
  int num_standbys() const { return static_cast<int>(nodes_.size()); }
  StandbyNode* node(int i) { return nodes_[static_cast<size_t>(i)].get(); }
  const StandbyNode* node(int i) const {
    return nodes_[static_cast<size_t>(i)].get();
  }

  /// Creates the table on the primary and mirrors it to every standby.
  StatusOr<ObjectId> CreateTable(const std::string& name, TenantId tenant,
                                 Schema schema, ImService service,
                                 bool identity_index);

  /// Blocks until every *accepting* standby's QuerySCN covers everything
  /// committed on the primary as of the call. Returns the minimum QuerySCN
  /// reached across those standbys.
  Scn WaitForCatchup(int64_t timeout_us = 30'000'000);
  /// Same, for one node (accepting or not — used by rejoin tests).
  Scn WaitForNodeCatchup(int i, int64_t timeout_us = 30'000'000);

  // --- Node lifecycle (chaos / maintenance) --------------------------------
  /// Takes node `i` out of service: stops accepting, stops and discards its
  /// shippers (the node's redo cursors stay registered, so the primary
  /// retains everything the node has not been shipped), stops the database.
  void StopStandby(int i);
  /// Brings a stopped node back: reopens its receive streams, restarts the
  /// database (IMCS and IM-ADG state rebuilt from scratch), and attaches
  /// fresh shippers that resume from the node's persistent cursors.
  void RestartStandby(int i);
  /// Durable restart of node `i` (requires the node's persistence enabled):
  /// stops accepting and stops the shippers (the node's fleet cursors stay
  /// registered, pinning undelivered redo), tears the database down
  /// (crash = no final archive sync, exercising torn-tail truncation),
  /// recovers it from its data directory, and reattaches shippers. The
  /// shippers resume from the fleet cursors and the node's receive streams
  /// are rewound to the persisted durable watermark, so the overlap window
  /// is redelivered and deduplicated — never lost, never double-applied.
  Status DiskRestartStandby(int i, bool crash = false);

  obs::MetricsRegistry* registry() const { return registry_; }
  std::string MetricsText() const { return registry_->ExportText(); }
  std::string MetricsJson() const { return registry_->ExportJson(); }
  uint64_t shipped_bytes() const;

 private:
  void StartShippers(StandbyNode* node);
  void StopShippers(StandbyNode* node);
  DatabaseOptions NodeOptions(int i) const;

  FleetOptions options_;
  obs::MetricsRegistry* registry_ = nullptr;
  PrimaryDb primary_;
  std::vector<std::unique_ptr<StandbyNode>> nodes_;
  bool started_ = false;
  obs::ScopedMetricsCallback shipper_metrics_cb_;
};

}  // namespace fleet
}  // namespace stratus

#endif  // STRATUS_FLEET_FLEET_CLUSTER_H_
