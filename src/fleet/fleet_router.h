#ifndef STRATUS_FLEET_FLEET_ROUTER_H_
#define STRATUS_FLEET_FLEET_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "db/query.h"
#include "fleet/fleet_cluster.h"
#include "obs/metrics.h"

namespace stratus {
namespace fleet {

/// How fresh the answer must be.
enum class FreshnessMode : uint8_t {
  /// Serve from the freshest healthy standby. The result's snapshot is
  /// guaranteed >= the freshest published QuerySCN at decision time.
  kStrict = 0,
  /// Any standby whose QuerySCN is within `max_lag_scn` of the primary's
  /// current SCN qualifies; the router picks the least loaded.
  kBoundedScn = 1,
  /// Any standby whose observed staleness (lag monitor) is within
  /// `max_lag_ms` qualifies; the router picks the least loaded.
  kBoundedMs = 2,
  /// Serve exactly at `pin_scn` (repeatable reads). Sticky: the same
  /// session keeps hitting the same standby while it stays healthy, and any
  /// standby gives byte-identical results at the pinned SCN.
  kPinned = 3,
};

struct FreshnessContract {
  FreshnessMode mode = FreshnessMode::kStrict;
  Scn max_lag_scn = 0;        ///< kBoundedScn.
  int64_t max_lag_ms = 0;     ///< kBoundedMs.
  Scn pin_scn = kInvalidScn;  ///< kPinned.
  uint64_t session_id = 0;    ///< Sticky-routing key (kPinned).

  static FreshnessContract Strict() { return {}; }
  static FreshnessContract BoundedScn(Scn max_lag) {
    FreshnessContract c;
    c.mode = FreshnessMode::kBoundedScn;
    c.max_lag_scn = max_lag;
    return c;
  }
  static FreshnessContract BoundedMs(int64_t ms) {
    FreshnessContract c;
    c.mode = FreshnessMode::kBoundedMs;
    c.max_lag_ms = ms;
    return c;
  }
  static FreshnessContract PinnedAt(Scn scn, uint64_t session_id) {
    FreshnessContract c;
    c.mode = FreshnessMode::kPinned;
    c.pin_scn = scn;
    c.session_id = session_id;
    return c;
  }
};

/// What the router decided, for the caller's contract audit.
struct RoutingDecision {
  int node_id = -1;
  std::string node_name;
  /// Freshest published QuerySCN among healthy nodes at decision time — the
  /// strict contract's floor.
  Scn decision_watermark = kInvalidScn;
  /// The chosen node's published QuerySCN at decision time.
  Scn node_scn = kInvalidScn;
  /// The primary's current SCN at decision time — the bounded contracts'
  /// reference point.
  Scn primary_scn = kInvalidScn;
  int attempts = 1;       ///< Nodes tried (1 = first choice served).
  int64_t decide_us = 0;  ///< Routing-decision latency (excludes execution).
  bool sticky = false;    ///< Served by the session's sticky node.
};

struct RoutedResult {
  QueryResult result;
  RoutingDecision decision;
};

struct RouterOptions {
  /// Bound on waiting for a lagging node to satisfy a pinned SCN.
  int64_t pin_wait_timeout_us = 10'000'000;
  /// Bound on one catch-up wait when no node is inside a bounded contract.
  int64_t catchup_wait_us = 250'000;
  /// Drain backoff after a node failure: doubles per consecutive failure.
  int64_t backoff_base_us = 10'000;
  int64_t backoff_max_us = 2'000'000;
  /// Nodes tried (including catch-up retries) before giving up.
  int max_attempts = 8;
  /// Decision-latency histogram + counters registry (null: stats only).
  obs::MetricsRegistry* registry = nullptr;
};

/// Router counters (all monotonic). freshness_violations counts responses
/// the router itself detected below contract after execution — the invariant
/// the fleet driver asserts is zero.
struct RouterStats {
  uint64_t decisions = 0;
  uint64_t strict_queries = 0;
  uint64_t bounded_queries = 0;
  uint64_t pinned_queries = 0;
  uint64_t sticky_hits = 0;
  uint64_t reroutes = 0;        ///< Retries after a failed/drained node.
  uint64_t drains = 0;          ///< Node marked down (failure or degraded).
  uint64_t probes = 0;          ///< Routed to a node in backoff recovery.
  uint64_t catchup_waits = 0;   ///< Waited for a node to enter a bound.
  uint64_t no_candidate = 0;    ///< Gave up: no eligible node.
  uint64_t freshness_violations = 0;
};

/// Lag-aware query router over a FleetCluster: picks a standby per query
/// according to its freshness contract, drains unhealthy standbys with
/// exponential-backoff re-probing, and audits every response against its
/// contract. Thread-safe; one router serves all sessions.
class FleetRouter {
 public:
  FleetRouter(FleetCluster* fleet, const RouterOptions& options);

  FleetRouter(const FleetRouter&) = delete;
  FleetRouter& operator=(const FleetRouter&) = delete;

  StatusOr<RoutedResult> Query(const ScanQuery& query,
                               const FreshnessContract& contract);
  StatusOr<RoutedResult> Join(const JoinQuery& query,
                              const FreshnessContract& contract);
  /// Star-schema multi-join under the same freshness contracts (pinned
  /// contracts execute through StandbyDb::MultiJoinAt).
  StatusOr<RoutedResult> MultiJoin(const MultiJoinQuery& query,
                                   const FreshnessContract& contract);

  RouterStats stats() const;

  /// True when the router is currently refusing to route to node `i`
  /// (drained: down, degraded, or in failure backoff).
  bool IsDrained(int i) const;

 private:
  struct NodeRetryState {
    std::atomic<uint64_t> down_until_us{0};
    std::atomic<int64_t> backoff_us{0};
  };

  /// Executes `exec(db, pin)` on the node the contract selects, with drain +
  /// reroute on failure. `pin` is kInvalidScn except for pinned contracts.
  StatusOr<RoutedResult> Route(
      const FreshnessContract& contract,
      const std::function<StatusOr<QueryResult>(StandbyDb*, Scn)>& exec);

  /// Picks a node for this attempt; fills the decision fields. Returns -1
  /// when no node qualifies right now.
  int PickNode(const FreshnessContract& contract, RoutingDecision* decision);

  bool Eligible(int i, uint64_t now_us, bool* is_probe) const;
  void MarkFailure(int i);
  void MarkSuccess(int i);
  bool AuditContract(const FreshnessContract& contract,
                     const RoutingDecision& decision, const QueryResult& result);

  FleetCluster* fleet_;
  RouterOptions options_;
  std::vector<std::unique_ptr<NodeRetryState>> retry_;

  mutable std::mutex sticky_mu_;
  std::unordered_map<uint64_t, int> sticky_;  ///< session -> node; sticky_mu_.

  std::atomic<uint64_t> round_robin_{0};  ///< Load tie-break.

  // Stats (atomic mirrors of RouterStats).
  std::atomic<uint64_t> decisions_{0}, strict_{0}, bounded_{0}, pinned_{0};
  std::atomic<uint64_t> sticky_hits_{0}, reroutes_{0}, drains_{0}, probes_{0};
  std::atomic<uint64_t> catchup_waits_{0}, no_candidate_{0}, violations_{0};

  obs::LatencyHistogram* decide_hist_ = nullptr;
  obs::ScopedMetricsCallback metrics_cb_;
};

}  // namespace fleet
}  // namespace stratus

#endif  // STRATUS_FLEET_FLEET_ROUTER_H_
