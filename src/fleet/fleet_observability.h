#ifndef STRATUS_FLEET_FLEET_OBSERVABILITY_H_
#define STRATUS_FLEET_FLEET_OBSERVABILITY_H_

#include <string>

#include "fleet/fleet_cluster.h"
#include "fleet/fleet_router.h"
#include "obs/obs_server.h"

namespace stratus {
namespace fleet {

/// Binds a fleet's observability surface to HTTP paths:
///
///   /metrics       Prometheus text exposition of the fleet registry
///   /metrics.json  the same series as JSON
///   /healthz       200 while every accepting standby is healthy, else 503
///   /v/fleet       per-standby lag / health / load share + router counters
///
/// The payload builders are public so tests exercise them without sockets.
/// The fleet (and router, when given) must outlive the server.
class FleetObservability {
 public:
  /// `router` may be null: /v/fleet then omits the router section.
  FleetObservability(FleetCluster* fleet, FleetRouter* router)
      : fleet_(fleet), router_(router) {}

  std::string MetricsText() const { return fleet_->MetricsText(); }
  std::string MetricsJson() const { return fleet_->MetricsJson(); }
  obs::HttpResponse Healthz() const;
  /// The /v/fleet JSON document.
  std::string FleetJson() const;

  /// Registers every endpoint above on `server`.
  void Register(obs::ObsServer* server);

 private:
  FleetCluster* fleet_;
  FleetRouter* router_;
};

}  // namespace fleet
}  // namespace stratus

#endif  // STRATUS_FLEET_FLEET_OBSERVABILITY_H_
