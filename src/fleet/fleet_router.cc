#include "fleet/fleet_router.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/clock.h"

namespace stratus {
namespace fleet {

FleetRouter::FleetRouter(FleetCluster* fleet, const RouterOptions& options)
    : fleet_(fleet), options_(options) {
  for (int i = 0; i < fleet_->num_standbys(); ++i)
    retry_.push_back(std::make_unique<NodeRetryState>());
  if (options_.registry != nullptr) {
    const obs::Labels labels{{"component", "fleet_router"}};
    decide_hist_ = options_.registry->GetHistogram(
        "stratus_fleet_route_decide_us", labels);
    metrics_cb_.Attach(options_.registry, [this](obs::MetricsSink* sink) {
      const obs::Labels l{{"component", "fleet_router"}};
      const RouterStats s = stats();
      sink->Counter("stratus_fleet_route_decisions", l, s.decisions);
      sink->Counter("stratus_fleet_route_strict", l, s.strict_queries);
      sink->Counter("stratus_fleet_route_bounded", l, s.bounded_queries);
      sink->Counter("stratus_fleet_route_pinned", l, s.pinned_queries);
      sink->Counter("stratus_fleet_route_sticky_hits", l, s.sticky_hits);
      sink->Counter("stratus_fleet_route_reroutes", l, s.reroutes);
      sink->Counter("stratus_fleet_route_drains", l, s.drains);
      sink->Counter("stratus_fleet_route_probes", l, s.probes);
      sink->Counter("stratus_fleet_route_catchup_waits", l, s.catchup_waits);
      sink->Counter("stratus_fleet_route_no_candidate", l, s.no_candidate);
      sink->Counter("stratus_fleet_freshness_violations", l,
                    s.freshness_violations);
    });
  }
}

RouterStats FleetRouter::stats() const {
  RouterStats s;
  s.decisions = decisions_.load(std::memory_order_relaxed);
  s.strict_queries = strict_.load(std::memory_order_relaxed);
  s.bounded_queries = bounded_.load(std::memory_order_relaxed);
  s.pinned_queries = pinned_.load(std::memory_order_relaxed);
  s.sticky_hits = sticky_hits_.load(std::memory_order_relaxed);
  s.reroutes = reroutes_.load(std::memory_order_relaxed);
  s.drains = drains_.load(std::memory_order_relaxed);
  s.probes = probes_.load(std::memory_order_relaxed);
  s.catchup_waits = catchup_waits_.load(std::memory_order_relaxed);
  s.no_candidate = no_candidate_.load(std::memory_order_relaxed);
  s.freshness_violations = violations_.load(std::memory_order_relaxed);
  return s;
}

bool FleetRouter::Eligible(int i, uint64_t now_us, bool* is_probe) const {
  const StandbyNode* n = fleet_->node(i);
  if (!n->accepting() || n->db()->degraded()) return false;
  if (n->db()->published_query_scn() == kInvalidScn) return false;
  const NodeRetryState& r = *retry_[static_cast<size_t>(i)];
  const uint64_t down_until = r.down_until_us.load(std::memory_order_acquire);
  if (now_us < down_until) return false;
  if (is_probe != nullptr)
    *is_probe = r.backoff_us.load(std::memory_order_acquire) > 0;
  return true;
}

bool FleetRouter::IsDrained(int i) const {
  return !Eligible(i, NowMicros(), nullptr);
}

void FleetRouter::MarkFailure(int i) {
  NodeRetryState& r = *retry_[static_cast<size_t>(i)];
  int64_t backoff = r.backoff_us.load(std::memory_order_acquire);
  backoff = backoff == 0 ? options_.backoff_base_us
                         : std::min<int64_t>(options_.backoff_max_us,
                                             backoff * 2);
  r.backoff_us.store(backoff, std::memory_order_release);
  r.down_until_us.store(NowMicros() + static_cast<uint64_t>(backoff),
                        std::memory_order_release);
  drains_.fetch_add(1, std::memory_order_relaxed);
}

void FleetRouter::MarkSuccess(int i) {
  NodeRetryState& r = *retry_[static_cast<size_t>(i)];
  r.backoff_us.store(0, std::memory_order_release);
  r.down_until_us.store(0, std::memory_order_release);
}

int FleetRouter::PickNode(const FreshnessContract& contract,
                          RoutingDecision* decision) {
  const uint64_t now = NowMicros();
  const int n = fleet_->num_standbys();
  decision->primary_scn = fleet_->primary()->current_scn();

  // Decision watermark: the freshest published QuerySCN among eligible nodes
  // right now — the strict contract's floor, recorded for every mode.
  Scn watermark = kInvalidScn;
  int freshest = -1;
  for (int i = 0; i < n; ++i) {
    if (!Eligible(i, now, nullptr)) continue;
    const Scn scn = fleet_->node(i)->db()->published_query_scn();
    if (freshest < 0 || scn > watermark) {
      watermark = scn;
      freshest = i;
    }
  }
  decision->decision_watermark = watermark;
  if (freshest < 0) return -1;

  int chosen = -1;
  switch (contract.mode) {
    case FreshnessMode::kStrict:
      chosen = freshest;
      break;
    case FreshnessMode::kPinned: {
      // Sticky first: the session keeps its node while that node is healthy.
      {
        std::lock_guard<std::mutex> g(sticky_mu_);
        auto it = sticky_.find(contract.session_id);
        if (it != sticky_.end()) {
          if (Eligible(it->second, now, nullptr)) {
            chosen = it->second;
            decision->sticky = true;
            sticky_hits_.fetch_add(1, std::memory_order_relaxed);
          } else {
            sticky_.erase(it);  // Node went away; re-pin below.
          }
        }
      }
      if (chosen < 0) {
        // The freshest node reaches the pin soonest (or already has).
        chosen = freshest;
        std::lock_guard<std::mutex> g(sticky_mu_);
        sticky_[contract.session_id] = chosen;
      }
      break;
    }
    case FreshnessMode::kBoundedScn:
    case FreshnessMode::kBoundedMs: {
      // Least-loaded node inside the bound; round-robin breaks load ties so
      // an idle fleet still spreads. Falls back to the freshest node (the
      // caller then waits for it to enter the bound).
      const uint64_t start =
          round_robin_.fetch_add(1, std::memory_order_relaxed);
      uint64_t best_load = 0;
      for (int k = 0; k < n; ++k) {
        const int i = static_cast<int>((start + static_cast<uint64_t>(k)) %
                                       static_cast<uint64_t>(n));
        if (!Eligible(i, now, nullptr)) continue;
        const StandbyNode* node = fleet_->node(i);
        bool in_bound;
        if (contract.mode == FreshnessMode::kBoundedScn) {
          const Scn scn = node->db()->published_query_scn();
          in_bound = decision->primary_scn <= scn ||
                     decision->primary_scn - scn <= contract.max_lag_scn;
        } else {
          obs::LagMonitor* mon =
              const_cast<StandbyNode*>(node)->lag_monitor();
          if (mon == nullptr) {
            in_bound = true;  // No monitor (fleet stopped): no ms signal.
          } else {
            const obs::LagSnapshot lag = mon->Snapshot();
            in_bound = lag.staleness_us <= contract.max_lag_ms * 1000;
          }
        }
        if (!in_bound) continue;
        const uint64_t load = node->in_flight();
        if (chosen < 0 || load < best_load) {
          chosen = i;
          best_load = load;
        }
      }
      if (chosen < 0) chosen = freshest;  // Out of bound: catch-up path.
      break;
    }
  }

  if (chosen >= 0) {
    bool is_probe = false;
    Eligible(chosen, now, &is_probe);
    if (is_probe) probes_.fetch_add(1, std::memory_order_relaxed);
    decision->node_id = chosen;
    decision->node_name = fleet_->node(chosen)->name();
    decision->node_scn = fleet_->node(chosen)->db()->published_query_scn();
  }
  return chosen;
}

bool FleetRouter::AuditContract(const FreshnessContract& contract,
                                const RoutingDecision& decision,
                                const QueryResult& result) {
  switch (contract.mode) {
    case FreshnessMode::kStrict:
      // Publish monotonicity makes the served snapshot at least the freshest
      // watermark observed when the route was decided.
      return decision.decision_watermark == kInvalidScn ||
             result.snapshot >= decision.decision_watermark;
    case FreshnessMode::kBoundedScn:
      return result.snapshot + contract.max_lag_scn >= decision.primary_scn;
    case FreshnessMode::kBoundedMs:
      // The ms bound was checked against the node's lag snapshot at decision
      // time; monotonicity keeps the served snapshot at least as fresh as
      // the node's SCN that passed that check.
      return decision.node_scn == kInvalidScn ||
             result.snapshot >= decision.node_scn;
    case FreshnessMode::kPinned:
      return result.snapshot == contract.pin_scn;
  }
  return true;
}

StatusOr<RoutedResult> FleetRouter::Route(
    const FreshnessContract& contract,
    const std::function<StatusOr<QueryResult>(StandbyDb*, Scn)>& exec) {
  switch (contract.mode) {
    case FreshnessMode::kStrict:
      strict_.fetch_add(1, std::memory_order_relaxed);
      break;
    case FreshnessMode::kBoundedScn:
    case FreshnessMode::kBoundedMs:
      bounded_.fetch_add(1, std::memory_order_relaxed);
      break;
    case FreshnessMode::kPinned:
      pinned_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  const Scn pin =
      contract.mode == FreshnessMode::kPinned ? contract.pin_scn : kInvalidScn;
  const uint64_t route_start = NowMicros();
  RoutingDecision decision;
  Status last_err = Status::Unavailable("no eligible standby");
  for (int attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    decision = RoutingDecision();
    decision.attempts = attempt;
    const int id = PickNode(contract, &decision);
    if (id < 0) {
      // Nothing eligible this instant (all down or draining): give backoffs
      // a chance to expire, then retry.
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.backoff_base_us));
      continue;
    }
    StandbyNode* node = fleet_->node(id);

    if (pin != kInvalidScn && decision.node_scn < pin) {
      // Pinned ahead of the node: wait for its QuerySCN to reach the pin.
      catchup_waits_.fetch_add(1, std::memory_order_relaxed);
      const Scn reached =
          node->db()->WaitForQueryScn(pin, options_.pin_wait_timeout_us);
      if (reached < pin || !node->accepting()) {
        reroutes_.fetch_add(1, std::memory_order_relaxed);
        last_err = Status::Unavailable("pinned SCN not reached in time");
        continue;
      }
      decision.node_scn = node->db()->published_query_scn();
    }
    if (contract.mode == FreshnessMode::kBoundedScn &&
        decision.primary_scn > decision.node_scn &&
        decision.primary_scn - decision.node_scn > contract.max_lag_scn) {
      // No node inside the bound: wait (bounded) for the freshest to enter
      // it rather than serving staler than the contract allows.
      catchup_waits_.fetch_add(1, std::memory_order_relaxed);
      node->db()->WaitForQueryScn(decision.primary_scn - contract.max_lag_scn,
                                  options_.catchup_wait_us);
      reroutes_.fetch_add(1, std::memory_order_relaxed);
      last_err = Status::Unavailable("no standby within staleness bound");
      continue;  // Re-decide with fresh SCNs.
    }

    decision.decide_us = static_cast<int64_t>(NowMicros() - route_start);
    node->BeginQuery();
    StatusOr<QueryResult> result = exec(node->db(), pin);
    node->EndQuery();
    if (!result.ok()) {
      // The node failed the query (stopped mid-flight, degraded, …): drain
      // it with backoff and try the next one.
      MarkFailure(id);
      reroutes_.fetch_add(1, std::memory_order_relaxed);
      last_err = result.status();
      continue;
    }
    MarkSuccess(id);
    decisions_.fetch_add(1, std::memory_order_relaxed);
    if (decide_hist_ != nullptr)
      decide_hist_->Record(static_cast<uint64_t>(decision.decide_us));
    if (!AuditContract(contract, decision, *result))
      violations_.fetch_add(1, std::memory_order_relaxed);
    RoutedResult routed;
    routed.result = std::move(*result);
    routed.decision = std::move(decision);
    return routed;
  }
  no_candidate_.fetch_add(1, std::memory_order_relaxed);
  return last_err;
}

StatusOr<RoutedResult> FleetRouter::Query(const ScanQuery& query,
                                          const FreshnessContract& contract) {
  return Route(contract, [&query](StandbyDb* db, Scn pin) {
    return pin == kInvalidScn ? db->Query(query) : db->QueryAt(query, pin);
  });
}

StatusOr<RoutedResult> FleetRouter::Join(const JoinQuery& query,
                                         const FreshnessContract& contract) {
  return Route(contract, [&query](StandbyDb* db, Scn pin) {
    return pin == kInvalidScn ? db->Join(query) : db->JoinAt(query, pin);
  });
}

StatusOr<RoutedResult> FleetRouter::MultiJoin(
    const MultiJoinQuery& query, const FreshnessContract& contract) {
  return Route(contract, [&query](StandbyDb* db, Scn pin) {
    return pin == kInvalidScn ? db->MultiJoin(query)
                              : db->MultiJoinAt(query, pin);
  });
}

}  // namespace fleet
}  // namespace stratus
