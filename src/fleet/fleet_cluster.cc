#include "fleet/fleet_cluster.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/clock.h"

namespace stratus {
namespace fleet {

CapacityGate::CapacityGate(const NodeCapacity& capacity)
    : max_qps_(capacity.max_qps),
      slots_(capacity.slots),
      burst_(std::max(1.0, capacity.max_qps / 50.0)),
      tokens_(std::max(1.0, capacity.max_qps / 50.0)) {}

void CapacityGate::Acquire() {
  if (max_qps_ <= 0 && slots_ <= 0) return;
  std::unique_lock<std::mutex> l(mu_);
  for (;;) {
    if (max_qps_ > 0) {
      const uint64_t now = NowMicros();
      if (last_refill_us_ == 0) last_refill_us_ = now;
      tokens_ = std::min(
          burst_, tokens_ + static_cast<double>(now - last_refill_us_) *
                                max_qps_ / 1e6);
      last_refill_us_ = now;
    }
    const bool slot_free = slots_ <= 0 || in_use_ < slots_;
    const bool token_free = max_qps_ <= 0 || tokens_ >= 1.0;
    if (slot_free && token_free) {
      if (max_qps_ > 0) tokens_ -= 1.0;
      ++in_use_;
      return;
    }
    if (!token_free) {
      // Sleep until the bucket accrues the missing fraction of a token.
      const int64_t wait_us = static_cast<int64_t>(
          std::max(50.0, (1.0 - tokens_) * 1e6 / max_qps_));
      cv_.wait_for(l, std::chrono::microseconds(wait_us));
    } else {
      cv_.wait(l);  // Slot-bound: a Release() will wake us.
    }
  }
}

void CapacityGate::Release() {
  if (max_qps_ <= 0 && slots_ <= 0) return;
  {
    std::lock_guard<std::mutex> g(mu_);
    --in_use_;
  }
  cv_.notify_one();
}

StandbyNode::StandbyNode(int id, const DatabaseOptions& options,
                         size_t num_streams, const NodeCapacity& capacity)
    : id_(id),
      name_(options.standby_name),
      db_(options, num_streams),
      gate_(capacity) {}

void StandbyNode::BeginQuery() {
  gate_.Acquire();
  in_flight_.fetch_add(1, std::memory_order_relaxed);
}

void StandbyNode::EndQuery() {
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
  served_.fetch_add(1, std::memory_order_relaxed);
  gate_.Release();
}

FleetCluster::FleetCluster(const FleetOptions& options)
    : options_(options), primary_(options.db) {
  registry_ = options_.db.registry != nullptr ? options_.db.registry
                                              : &obs::MetricsRegistry::Global();
  const size_t num_streams =
      static_cast<size_t>(options_.db.primary_redo_threads);
  for (int i = 0; i < options_.num_standbys; ++i) {
    nodes_.push_back(std::make_unique<StandbyNode>(
        i, NodeOptions(i), num_streams, options_.capacity));
  }
}

FleetCluster::~FleetCluster() { Stop(); }

DatabaseOptions FleetCluster::NodeOptions(int i) const {
  DatabaseOptions opts = options_.db;
  opts.registry = registry_;
  if (opts.standby_name.empty()) opts.standby_name = "sb" + std::to_string(i);
  // Each node gets its own durable subtree: the template's data_dir is the
  // fleet root, <root>/<node-name> is the node's PersistController home.
  if (opts.persist.enabled && !opts.persist.data_dir.empty())
    opts.persist.data_dir += "/" + opts.standby_name;
  return opts;
}

void FleetCluster::Start() {
  if (started_) return;
  started_ = true;
  primary_.Start();
  for (auto& node : nodes_) {
    node->db_.Start();
    // Fleet-owned cursors: registered once, surviving every shipper the node
    // ever has. Registered before the first shipper so no redo is trimmed
    // in the window between primary start and shipper attach.
    node->cursor_ids_.clear();
    for (int t = 0; t < primary_.redo_threads(); ++t) {
      // Seed the cursor from disk truth when the node persists: a persisted
      // cursor position from this process's lifetime resumes shipping where
      // the last shipper left off. Clamped to the log tail — after a cold
      // fleet start the primary's in-memory log is fresh, so a stale
      // persisted seq must not leap past records that were never shipped
      // (the standby's durable watermark dedups the resulting redelivery).
      uint64_t seq = 0;
      persist::PersistController* p = node->db_.persist();
      if (p != nullptr)
        seq = std::min(p->CursorSeq(static_cast<size_t>(t)),
                       primary_.redo_log(t)->NextSeq());
      node->cursor_ids_.push_back(primary_.redo_log(t)->RegisterCursor(seq));
    }
    StartShippers(node.get());

    obs::LagSources sources;
    StandbyNode* n = node.get();
    sources.primary_scn = [this] { return primary_.current_scn(); };
    sources.shipped_scn = [this, n] {
      Scn scn = kMaxScn;
      for (int t = 0; t < primary_.redo_threads(); ++t)
        scn = std::min(
            scn, n->db_.stream(static_cast<size_t>(t))->DeliveredWatermark());
      return scn == kMaxScn ? kInvalidScn : scn;
    };
    sources.applied_scn = [n] { return n->db_.applied_scn(); };
    sources.query_scn = [n] { return n->db_.published_query_scn(); };
    node->lag_monitor_ = std::make_unique<obs::LagMonitor>(
        std::move(sources), registry_, obs::Labels{{"db", node->name_}},
        options_.db.lag_poll_interval_us);
    node->lag_monitor_->Start();
    node->db_.SetLagProbe(
        [n] { return n->lag_monitor_->Snapshot(); });
    node->set_accepting(true);
  }

  shipper_metrics_cb_.Attach(registry_, [this](obs::MetricsSink* sink) {
    const obs::Labels labels{{"role", "transport"}};
    uint64_t bytes = 0, records = 0;
    for (const auto& node : nodes_) {
      for (const auto& s : node->shippers_) {
        bytes += s->bytes_shipped();
        records += s->records_shipped();
        s->channel()->ExportMetrics(sink, labels);
      }
      obs::Labels node_labels{{"standby", node->name_}};
      sink->Gauge("stratus_fleet_node_accepting", node_labels,
                  node->accepting() ? 1.0 : 0.0);
      sink->Gauge("stratus_fleet_node_in_flight", node_labels,
                  static_cast<double>(node->in_flight()));
      sink->Counter("stratus_fleet_node_served", node_labels, node->served());
    }
    sink->Counter("stratus_redo_shipped_bytes", labels, bytes);
    sink->Counter("stratus_redo_shipped_records", labels, records);
  });
}

void FleetCluster::Stop() {
  if (!started_) return;
  started_ = false;
  shipper_metrics_cb_.Reset();
  for (auto& node : nodes_) {
    node->set_accepting(false);
    node->db_.SetLagProbe(nullptr);
    if (node->lag_monitor_ != nullptr) {
      node->lag_monitor_->Stop();
      node->lag_monitor_.reset();
    }
    StopShippers(node.get());
    for (size_t t = 0; t < node->cursor_ids_.size(); ++t)
      primary_.redo_log(static_cast<int>(t))
          ->UnregisterCursor(node->cursor_ids_[t]);
    node->cursor_ids_.clear();
    node->db_.Stop();
  }
  primary_.Stop();
}

void FleetCluster::StartShippers(StandbyNode* node) {
  for (int t = 0; t < primary_.redo_threads(); ++t) {
    ShipperOptions shipping = options_.db.shipping;
    shipping.cursor_id = node->cursor_ids_[static_cast<size_t>(t)];
    shipping.channel.peer = node->name_;
    if (shipping.channel.registry == nullptr)
      shipping.channel.registry = registry_;
    if (node->db_.persist_enabled()) {
      StandbyNode* n = node;
      const size_t stream = static_cast<size_t>(t);
      // Durability gate: the fleet cursor passes a batch only once the node
      // reports its SCN fsynced, so a node killed between receive and
      // archive is redelivered that redo after rejoin instead of losing it.
      shipping.durable_floor = [n, stream] { return n->db_.DurableScn(stream); };
      // Cursor positions as disk truth: every advance lands in the node's
      // persist metadata (flushed with checkpoints into META).
      shipping.cursor_note = [n, stream](uint64_t seq) {
        persist::PersistController* p = n->db_.persist();
        if (p != nullptr) p->NoteCursorSeq(stream, seq);
      };
    }
    node->shippers_.push_back(std::make_unique<LogShipper>(
        primary_.redo_log(t), node->db_.stream(static_cast<size_t>(t)),
        shipping));
    node->shippers_.back()->Start();
  }
}

void FleetCluster::StopShippers(StandbyNode* node) {
  for (auto& s : node->shippers_) s->Stop();
  node->shippers_.clear();
}

StatusOr<ObjectId> FleetCluster::CreateTable(const std::string& name,
                                             TenantId tenant, Schema schema,
                                             ImService service,
                                             bool identity_index) {
  StatusOr<ObjectId> oid =
      primary_.CreateTable(name, tenant, schema, service, identity_index);
  if (!oid.ok()) return oid;
  for (auto& node : nodes_) {
    STRATUS_RETURN_IF_ERROR(node->db_.MirrorCreateTable(
        *oid, name, tenant, schema, service, identity_index));
  }
  return oid;
}

Scn FleetCluster::WaitForCatchup(int64_t timeout_us) {
  const Scn target = primary_.current_scn();
  Scn reached = kMaxScn;
  bool any = false;
  for (auto& node : nodes_) {
    if (!node->accepting()) continue;
    any = true;
    reached = target == kInvalidScn
                  ? std::min(reached, node->db_.query_scn())
                  : std::min(reached,
                             node->db_.WaitForQueryScn(target, timeout_us));
  }
  return any ? reached : kInvalidScn;
}

Scn FleetCluster::WaitForNodeCatchup(int i, int64_t timeout_us) {
  StandbyNode* n = node(i);
  const Scn target = primary_.current_scn();
  if (target == kInvalidScn) return n->db()->query_scn();
  return n->db()->WaitForQueryScn(target, timeout_us);
}

void FleetCluster::StopStandby(int i) {
  StandbyNode* n = node(i);
  n->set_accepting(false);
  // Stop the shippers first so nothing is in flight when the database stops;
  // the node's cursors stay registered (caller-owned), pinning its redo.
  StopShippers(n);
  n->db()->Stop();
}

void FleetCluster::RestartStandby(int i) {
  StandbyNode* n = node(i);
  // The old shippers' channel Stop closed the receive streams; reopen them
  // before the rebuilt pipeline attaches so the merger sees live streams.
  for (int t = 0; t < primary_.redo_threads(); ++t)
    n->db()->stream(static_cast<size_t>(t))->Reopen();
  n->db()->Restart();
  StartShippers(n);
  n->set_accepting(true);
}

Status FleetCluster::DiskRestartStandby(int i, bool crash) {
  StandbyNode* n = node(i);
  if (!started_) return Status::FailedPrecondition("fleet not started");
  if (!n->db()->persist_enabled())
    return Status::FailedPrecondition("node " + n->name() +
                                      " has no persistence configured");
  n->set_accepting(false);
  // Quiesce delivery before the database touches its persist state: the
  // durable-sink tee and the cursor_note callback both run on shipper
  // threads and must not observe the controller swap. The node's fleet
  // cursors stay registered, pinning redo past its durable floor.
  StopShippers(n);
  Status st = crash ? n->db()->CrashDiskRestart() : n->db()->DiskRestart();
  // Reattach shippers either way — a failed recovery leaves the node best-
  // effort restarted and the caller decides; redo keeps flowing meanwhile.
  StartShippers(n);
  n->set_accepting(st.ok());
  return st;
}

uint64_t FleetCluster::shipped_bytes() const {
  uint64_t total = 0;
  for (const auto& node : nodes_)
    for (const auto& s : node->shippers_) total += s->bytes_shipped();
  return total;
}

}  // namespace fleet
}  // namespace stratus
