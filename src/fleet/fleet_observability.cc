#include "fleet/fleet_observability.h"

#include <cstdio>

namespace stratus {
namespace fleet {

namespace {

std::string ScnStr(Scn scn) {
  return scn == kInvalidScn ? std::string("null") : std::to_string(scn);
}

std::string Frac(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

}  // namespace

obs::HttpResponse FleetObservability::Healthz() const {
  for (int i = 0; i < fleet_->num_standbys(); ++i) {
    const StandbyNode* node = fleet_->node(i);
    if (node->accepting() && node->db()->degraded()) {
      obs::HttpResponse resp;
      resp.status = 503;
      resp.content_type = "text/plain";
      resp.body = "degraded: " + node->name() + "\n";
      return resp;
    }
  }
  obs::HttpResponse resp;
  resp.status = 200;
  resp.content_type = "text/plain";
  resp.body = "ok\n";
  return resp;
}

std::string FleetObservability::FleetJson() const {
  uint64_t total_served = 0;
  for (int i = 0; i < fleet_->num_standbys(); ++i)
    total_served += fleet_->node(i)->served();

  std::string out = "{\"primary_scn\":";
  out += ScnStr(fleet_->primary()->current_scn());
  out += ",\"nodes\":[";
  for (int i = 0; i < fleet_->num_standbys(); ++i) {
    StandbyNode* node = fleet_->node(i);
    const StandbyHealth health = node->db()->health();
    if (i > 0) out += ",";
    out += "{\"id\":" + std::to_string(node->id());
    out += ",\"name\":\"" + node->name() + "\"";
    out += ",\"accepting\":" + std::string(node->accepting() ? "true" : "false");
    out += ",\"degraded\":" + std::string(health.degraded ? "true" : "false");
    out += ",\"apply_errors\":" + std::to_string(health.apply_errors);
    out += ",\"query_scn\":" + ScnStr(node->db()->published_query_scn());
    out += ",\"applied_scn\":" + ScnStr(node->db()->applied_scn());
    if (node->lag_monitor() != nullptr) {
      const obs::LagSnapshot lag = node->lag_monitor()->Snapshot();
      out += ",\"transport_lag_scn\":" + std::to_string(lag.transport_lag_scn);
      out += ",\"apply_lag_scn\":" + std::to_string(lag.apply_lag_scn);
      out += ",\"staleness_scn\":" + std::to_string(lag.staleness_scn);
      out += ",\"staleness_us\":" + std::to_string(lag.staleness_us);
    }
    out += ",\"in_flight\":" + std::to_string(node->in_flight());
    out += ",\"served\":" + std::to_string(node->served());
    out += ",\"load_share\":" +
           Frac(total_served == 0
                    ? 0.0
                    : static_cast<double>(node->served()) /
                          static_cast<double>(total_served));
    if (router_ != nullptr) {
      out += ",\"drained\":" +
             std::string(router_->IsDrained(i) ? "true" : "false");
    }
    out += "}";
  }
  out += "]";
  if (router_ != nullptr) {
    const RouterStats s = router_->stats();
    out += ",\"router\":{\"decisions\":" + std::to_string(s.decisions);
    out += ",\"strict\":" + std::to_string(s.strict_queries);
    out += ",\"bounded\":" + std::to_string(s.bounded_queries);
    out += ",\"pinned\":" + std::to_string(s.pinned_queries);
    out += ",\"sticky_hits\":" + std::to_string(s.sticky_hits);
    out += ",\"reroutes\":" + std::to_string(s.reroutes);
    out += ",\"drains\":" + std::to_string(s.drains);
    out += ",\"probes\":" + std::to_string(s.probes);
    out += ",\"catchup_waits\":" + std::to_string(s.catchup_waits);
    out += ",\"no_candidate\":" + std::to_string(s.no_candidate);
    out += ",\"freshness_violations\":" +
           std::to_string(s.freshness_violations);
    out += "}";
  }
  out += "}";
  return out;
}

void FleetObservability::Register(obs::ObsServer* server) {
  server->Handle("/metrics", [this](const obs::HttpRequest&) {
    obs::HttpResponse resp;
    resp.status = 200;
    resp.content_type = "text/plain; version=0.0.4";
    resp.body = MetricsText();
    return resp;
  });
  server->Handle("/metrics.json", [this](const obs::HttpRequest&) {
    obs::HttpResponse resp;
    resp.status = 200;
    resp.content_type = "application/json";
    resp.body = MetricsJson();
    return resp;
  });
  server->Handle("/healthz",
                 [this](const obs::HttpRequest&) { return Healthz(); });
  server->Handle("/v/fleet", [this](const obs::HttpRequest&) {
    obs::HttpResponse resp;
    resp.status = 200;
    resp.content_type = "application/json";
    resp.body = FleetJson();
    return resp;
  });
}

}  // namespace fleet
}  // namespace stratus
