#include "storage/block.h"

#include <algorithm>
#include <mutex>

namespace stratus {

TxnStatusInfo Block::ResolveVersion(const RowVersion& v,
                                    const VisibilityResolver& resolver) {
  const uint8_t cached = v.cached_state.load(std::memory_order_acquire);
  if (cached == static_cast<uint8_t>(TxnState::kCommitted)) {
    return {TxnState::kCommitted, v.cached_commit_scn.load(std::memory_order_acquire)};
  }
  if (cached == static_cast<uint8_t>(TxnState::kAborted)) {
    return {TxnState::kAborted, kInvalidScn};
  }
  TxnStatusInfo info = resolver.Resolve(v.xid);
  if (info.state == TxnState::kCommitted) {
    // Order matters: publish the SCN before the state so a racing reader that
    // observes kCommitted also observes the SCN.
    const_cast<RowVersion&>(v).cached_commit_scn.store(info.commit_scn,
                                                       std::memory_order_release);
    const_cast<RowVersion&>(v).cached_state.store(
        static_cast<uint8_t>(TxnState::kCommitted), std::memory_order_release);
  } else if (info.state == TxnState::kAborted) {
    const_cast<RowVersion&>(v).cached_state.store(
        static_cast<uint8_t>(TxnState::kAborted), std::memory_order_release);
  }
  return info;
}

Status Block::CheckWriteConflict(SlotId slot, Xid xid,
                                 const VisibilityResolver& resolver) const {
  std::shared_lock<std::shared_mutex> g(mu_);
  if (slot >= slots_.size() || slots_[slot] == nullptr) return Status::OK();
  const RowVersion& head = *slots_[slot];
  if (head.xid == xid) return Status::OK();
  const TxnStatusInfo info = ResolveVersion(head, resolver);
  if (info.state == TxnState::kActive) {
    return Status::Aborted("row " + std::to_string(dba_) + ":" +
                           std::to_string(slot) + " locked by txn " +
                           std::to_string(head.xid));
  }
  return Status::OK();
}

Status Block::Prepend(SlotId slot, std::shared_ptr<RowVersion> v, Scn scn,
                      bool allow_new_slot) {
  std::unique_lock<std::shared_mutex> g(mu_);
  if (slot >= kRowsPerBlock)
    return Status::OutOfRange("slot beyond block capacity");
  if (slot >= slots_.size()) {
    if (!allow_new_slot)
      return Status::NotFound("slot " + std::to_string(slot) + " not in use");
    slots_.resize(slot + 1);
  }
  if (!allow_new_slot && slots_[slot] == nullptr)
    return Status::NotFound("slot " + std::to_string(slot) + " never inserted");
  v->prev = slots_[slot];
  slots_[slot] = std::move(v);
  if (slots_.size() > used_slots_.load(std::memory_order_relaxed))
    used_slots_.store(static_cast<SlotId>(slots_.size()), std::memory_order_release);
  if (scn > last_change_scn_.load(std::memory_order_relaxed))
    last_change_scn_.store(scn, std::memory_order_release);
  return Status::OK();
}

Status Block::ApplyInsert(SlotId slot, Xid xid, Row row, Scn scn) {
  auto v = std::make_shared<RowVersion>();
  v->xid = xid;
  v->data = std::move(row);
  return Prepend(slot, std::move(v), scn, /*allow_new_slot=*/true);
}

Status Block::ApplyUpdate(SlotId slot, Xid xid, Row row, Scn scn) {
  auto v = std::make_shared<RowVersion>();
  v->xid = xid;
  v->data = std::move(row);
  return Prepend(slot, std::move(v), scn, /*allow_new_slot=*/false);
}

Status Block::ApplyDelete(SlotId slot, Xid xid, Scn scn) {
  auto v = std::make_shared<RowVersion>();
  v->xid = xid;
  v->deleted = true;
  return Prepend(slot, std::move(v), scn, /*allow_new_slot=*/false);
}

namespace {

std::shared_ptr<RowVersion> MakeVersion(Xid xid, Row row, bool deleted) {
  auto v = std::make_shared<RowVersion>();
  v->xid = xid;
  v->data = std::move(row);
  v->deleted = deleted;
  return v;
}

}  // namespace

Status Block::UpdateChecked(SlotId slot, Xid xid, Row row, Scn scn,
                            const VisibilityResolver& resolver) {
  std::unique_lock<std::shared_mutex> g(mu_);
  if (slot >= slots_.size() || slots_[slot] == nullptr)
    return Status::NotFound("slot " + std::to_string(slot) + " never inserted");
  const RowVersion& head = *slots_[slot];
  if (head.xid != xid) {
    const TxnStatusInfo info = ResolveVersion(head, resolver);
    if (info.state == TxnState::kActive) {
      return Status::Aborted("row " + std::to_string(dba_) + ":" +
                             std::to_string(slot) + " locked by txn " +
                             std::to_string(head.xid));
    }
  }
  auto v = MakeVersion(xid, std::move(row), /*deleted=*/false);
  v->prev = slots_[slot];
  slots_[slot] = std::move(v);
  if (scn > last_change_scn_.load(std::memory_order_relaxed))
    last_change_scn_.store(scn, std::memory_order_release);
  return Status::OK();
}

Status Block::DeleteChecked(SlotId slot, Xid xid, Scn scn,
                            const VisibilityResolver& resolver) {
  std::unique_lock<std::shared_mutex> g(mu_);
  if (slot >= slots_.size() || slots_[slot] == nullptr)
    return Status::NotFound("slot " + std::to_string(slot) + " never inserted");
  const RowVersion& head = *slots_[slot];
  if (head.xid != xid) {
    const TxnStatusInfo info = ResolveVersion(head, resolver);
    if (info.state == TxnState::kActive) {
      return Status::Aborted("row " + std::to_string(dba_) + ":" +
                             std::to_string(slot) + " locked by txn " +
                             std::to_string(head.xid));
    }
  }
  auto v = MakeVersion(xid, Row{}, /*deleted=*/true);
  v->prev = slots_[slot];
  slots_[slot] = std::move(v);
  if (scn > last_change_scn_.load(std::memory_order_relaxed))
    last_change_scn_.store(scn, std::memory_order_release);
  return Status::OK();
}

std::shared_ptr<const RowVersion> Block::VisibleVersion(
    SlotId slot, const ReadView& view) const {
  std::shared_lock<std::shared_mutex> g(mu_);
  if (slot >= slots_.size()) return nullptr;
  std::shared_ptr<const RowVersion> v = slots_[slot];
  while (v != nullptr) {
    if (view.self_xid != kInvalidXid && v->xid == view.self_xid) return v;
    const TxnStatusInfo info = ResolveVersion(*v, *view.resolver);
    if (info.state == TxnState::kCommitted && info.commit_scn <= view.snapshot_scn)
      return v;
    v = v->prev;
  }
  return nullptr;
}

Status Block::ReadRow(SlotId slot, const ReadView& view, Row* out) const {
  auto v = VisibleVersion(slot, view);
  if (v == nullptr || v->deleted)
    return Status::NotFound("no visible row at slot " + std::to_string(slot));
  *out = v->data;
  return Status::OK();
}

bool Block::RowVisible(SlotId slot, const ReadView& view) const {
  auto v = VisibleVersion(slot, view);
  return v != nullptr && !v->deleted;
}

size_t Block::Prune(Scn low_watermark, const VisibilityResolver& resolver) {
  std::unique_lock<std::shared_mutex> g(mu_);
  size_t freed = 0;
  for (auto& head : slots_) {
    // Unlink aborted versions anywhere in the chain; they are never visible.
    std::shared_ptr<RowVersion>* link = &head;
    while (*link != nullptr) {
      const TxnStatusInfo info = ResolveVersion(**link, resolver);
      if (info.state == TxnState::kAborted) {
        *link = (*link)->prev;
        ++freed;
        continue;
      }
      link = &(*link)->prev;
    }
    // Find the newest version visible at the low watermark; everything older
    // can never be needed again.
    std::shared_ptr<RowVersion> v = head;
    while (v != nullptr) {
      const TxnStatusInfo info = ResolveVersion(*v, resolver);
      if (info.state == TxnState::kCommitted && info.commit_scn <= low_watermark) {
        std::shared_ptr<RowVersion> old = v->prev;
        v->prev = nullptr;
        while (old != nullptr) {
          ++freed;
          old = old->prev;
        }
        break;
      }
      v = v->prev;
    }
  }
  return freed;
}

Scn Block::SnapshotChains(std::vector<SlotChainImage>* out) const {
  std::shared_lock<std::shared_mutex> g(mu_);
  out->clear();
  out->resize(slots_.size());
  for (size_t i = 0; i < slots_.size(); ++i) {
    SlotChainImage& chain = (*out)[i];
    for (auto v = slots_[i]; v != nullptr; v = v->prev) {
      RowVersionImage img;
      img.xid = v->xid;
      img.deleted = v->deleted;
      img.data = v->data;
      chain.push_back(std::move(img));
    }
    std::reverse(chain.begin(), chain.end());  // Stored newest-first; emit oldest-first.
  }
  return last_change_scn_.load(std::memory_order_acquire);
}

void Block::RestoreChains(const std::vector<SlotChainImage>& chains, Scn frontier) {
  std::unique_lock<std::shared_mutex> g(mu_);
  slots_.assign(chains.size(), nullptr);
  for (size_t i = 0; i < chains.size(); ++i) {
    std::shared_ptr<RowVersion> head;
    for (const RowVersionImage& img : chains[i]) {
      auto v = std::make_shared<RowVersion>();
      v->xid = img.xid;
      v->deleted = img.deleted;
      v->data = img.data;
      v->prev = std::move(head);
      head = std::move(v);
    }
    slots_[i] = std::move(head);
  }
  used_slots_.store(static_cast<SlotId>(slots_.size()), std::memory_order_release);
  last_change_scn_.store(frontier, std::memory_order_release);
}

size_t Block::ChainLength(SlotId slot) const {
  std::shared_lock<std::shared_mutex> g(mu_);
  if (slot >= slots_.size()) return 0;
  size_t n = 0;
  for (auto v = slots_[slot]; v != nullptr; v = v->prev) ++n;
  return n;
}

}  // namespace stratus
