#ifndef STRATUS_STORAGE_BLOCK_H_
#define STRATUS_STORAGE_BLOCK_H_

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/value.h"
#include "storage/visibility.h"

namespace stratus {

/// Number of row slots per data block.
inline constexpr SlotId kRowsPerBlock = 256;

/// One version of a row. Versions form a newest-first chain per slot; the
/// writing transaction's commitSCN (resolved through the transaction table
/// and cached here once terminal) determines visibility.
///
/// This replaces Oracle's undo-based Consistent Read: instead of rolling a
/// block image back with undo records, readers walk forward-retained version
/// chains. Both mechanisms provide reads at an arbitrary snapshot SCN, which
/// is what the QuerySCN protocol requires (see DESIGN.md, substitutions).
struct RowVersion {
  Xid xid = kInvalidXid;
  bool deleted = false;
  Row data;
  std::shared_ptr<RowVersion> prev;

  /// Cached terminal resolution (0 = unresolved / still active).
  std::atomic<uint8_t> cached_state{0};  // TxnState values once terminal.
  std::atomic<Scn> cached_commit_scn{kInvalidScn};
};

/// A serialized image of one row version (fuzzy checkpointing). The cached
/// visibility resolution is deliberately absent: restored versions re-resolve
/// through the transaction table, which the checkpoint restores separately.
struct RowVersionImage {
  Xid xid = kInvalidXid;
  bool deleted = false;
  Row data;
};

/// Checkpoint capture of one slot's version chain, oldest-first.
using SlotChainImage = std::vector<RowVersionImage>;

/// A slotted, versioned data block. Both roles mutate blocks through the same
/// three physical operations that redo change vectors describe (insert,
/// update, delete carrying the after-image); the primary additionally checks
/// row locks before generating redo.
class Block {
 public:
  Block(Dba dba, ObjectId object_id, TenantId tenant)
      : dba_(dba), object_id_(object_id), tenant_(tenant) {}

  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  Dba dba() const { return dba_; }
  ObjectId object_id() const { return object_id_; }
  TenantId tenant() const { return tenant_; }

  /// Number of slots ever used (including slots whose newest version is a
  /// delete).
  SlotId used_slots() const {
    return used_slots_.load(std::memory_order_acquire);
  }

  /// True if an insert can still claim a fresh slot.
  bool HasFreeSlot() const { return used_slots() < kRowsPerBlock; }

  /// Primary-only: returns Aborted if the newest version of `slot` belongs to
  /// a different, still-active transaction (no-wait row locking).
  Status CheckWriteConflict(SlotId slot, Xid xid,
                            const VisibilityResolver& resolver) const;

  /// Installs a new row version at `slot` (insert). `slot` may extend the
  /// used-slot range (redo apply installs at the exact slot the CV names).
  Status ApplyInsert(SlotId slot, Xid xid, Row row, Scn scn);

  /// Prepends an updated after-image version at `slot`.
  Status ApplyUpdate(SlotId slot, Xid xid, Row row, Scn scn);

  /// Prepends a delete marker version at `slot`.
  Status ApplyDelete(SlotId slot, Xid xid, Scn scn);

  /// Primary-side update: row-lock check and version install under one
  /// exclusive latch acquisition, so two writers cannot both pass the check.
  Status UpdateChecked(SlotId slot, Xid xid, Row row, Scn scn,
                       const VisibilityResolver& resolver);

  /// Primary-side delete with the same atomic lock check.
  Status DeleteChecked(SlotId slot, Xid xid, Scn scn,
                       const VisibilityResolver& resolver);

  /// Reads the version of `slot` visible to `view` into `*out`. Returns
  /// NotFound if the slot has no visible version or the visible version is a
  /// delete marker.
  Status ReadRow(SlotId slot, const ReadView& view, Row* out) const;

  /// True if a visible (non-deleted) version of `slot` exists under `view`.
  bool RowVisible(SlotId slot, const ReadView& view) const;

  /// SCN of the most recent change applied to this block.
  Scn last_change_scn() const {
    return last_change_scn_.load(std::memory_order_acquire);
  }

  /// Drops version history that no snapshot at or above `low_watermark` can
  /// ever need: everything older than the newest version whose commitSCN is
  /// <= low_watermark, plus aborted versions (which are invisible forever).
  /// Returns the number of versions freed.
  size_t Prune(Scn low_watermark, const VisibilityResolver& resolver);

  /// Length of the version chain at `slot` (diagnostics / GC tests).
  size_t ChainLength(SlotId slot) const;

  /// Fuzzy-checkpoint capture: every slot's version chain (oldest-first) plus
  /// the block's change frontier, taken atomically under the block latch.
  /// Recovery replays redo with scn > the returned frontier against the
  /// restored image; redo at or below it is already reflected in the chains.
  Scn SnapshotChains(std::vector<SlotChainImage>* out) const;

  /// Recovery: rebuilds the chains captured by SnapshotChains into this
  /// (freshly created) block and sets the change frontier to `frontier`.
  void RestoreChains(const std::vector<SlotChainImage>& chains, Scn frontier);

 private:
  /// Resolves a version's terminal state through `resolver`, caching it.
  static TxnStatusInfo ResolveVersion(const RowVersion& v,
                                      const VisibilityResolver& resolver);

  /// Returns the newest chain entry visible under `view`, or nullptr.
  std::shared_ptr<const RowVersion> VisibleVersion(SlotId slot,
                                                   const ReadView& view) const;

  Status Prepend(SlotId slot, std::shared_ptr<RowVersion> v, Scn scn,
                 bool allow_new_slot);

  Dba dba_;
  ObjectId object_id_;
  TenantId tenant_;

  mutable std::shared_mutex mu_;
  std::vector<std::shared_ptr<RowVersion>> slots_;
  std::atomic<SlotId> used_slots_{0};
  std::atomic<Scn> last_change_scn_{kInvalidScn};
};

}  // namespace stratus

#endif  // STRATUS_STORAGE_BLOCK_H_
