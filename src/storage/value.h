#ifndef STRATUS_STORAGE_VALUE_H_
#define STRATUS_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace stratus {

/// Column data types. The paper's evaluation schema uses NUMBER and VARCHAR2
/// columns plus an identity column; we model them as 64-bit integers and
/// strings.
enum class ValueType : uint8_t {
  kNull = 0,
  kInt = 1,
  kString = 2,
};

/// A single column value: NULL, 64-bit integer, or string.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(std::string s) : v_(std::move(s)) {}

  static Value Null() { return Value(); }

  ValueType type() const {
    switch (v_.index()) {
      case 0: return ValueType::kNull;
      case 1: return ValueType::kInt;
      default: return ValueType::kString;
    }
  }

  bool is_null() const { return v_.index() == 0; }
  int64_t as_int() const { return std::get<int64_t>(v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }

  /// Total ordering with NULL sorting first; cross-type compares by type tag.
  friend bool operator==(const Value& a, const Value& b) { return a.v_ == b.v_; }
  friend bool operator<(const Value& a, const Value& b);

  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, std::string> v_;
};

/// A row is a dense vector of values, one per schema column.
using Row = std::vector<Value>;

}  // namespace stratus

#endif  // STRATUS_STORAGE_VALUE_H_
