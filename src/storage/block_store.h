#ifndef STRATUS_STORAGE_BLOCK_STORE_H_
#define STRATUS_STORAGE_BLOCK_STORE_H_

#include <deque>
#include <memory>
#include <shared_mutex>

#include "common/status.h"
#include "common/types.h"
#include "storage/block.h"

namespace stratus {

/// DBAs below this bound are reserved for the transaction-table blocks that
/// commit / begin / abort change vectors notionally apply to. Reserving a
/// range lets those control CVs hash across recovery workers exactly like
/// data CVs, as in Oracle.
inline constexpr Dba kTxnTableDbaCount = 64;

/// Maps an XID to the transaction-table DBA its control CVs apply to.
inline Dba TxnTableDbaFor(Xid xid) { return xid % kTxnTableDbaCount; }

/// True for DBAs that address transaction-table blocks rather than data.
inline bool IsTxnTableDba(Dba dba) { return dba < kTxnTableDbaCount; }

/// The "datafiles" of one database: a growable array of data blocks indexed
/// by DBA. The primary allocates blocks when tables extend; the standby
/// materializes blocks on demand as redo apply touches previously unseen
/// DBAs (physical replication).
class BlockStore {
 public:
  BlockStore() = default;
  BlockStore(const BlockStore&) = delete;
  BlockStore& operator=(const BlockStore&) = delete;

  /// Allocates the next DBA for `object_id` (primary side). Thread-safe.
  Dba AllocateBlock(ObjectId object_id, TenantId tenant);

  /// Returns the block at `dba`, or nullptr if never created.
  Block* GetBlock(Dba dba) const;

  /// Returns the block at `dba`, creating it (and any gap before it) if
  /// needed — used by standby redo apply, which learns object/tenant from the
  /// change vector itself.
  Block* EnsureBlock(Dba dba, ObjectId object_id, TenantId tenant);

  /// One past the highest allocated DBA.
  Dba HighWater() const;

  /// Drops every block and rewinds DBA allocation, returning the store to its
  /// freshly-constructed state. Disk-recovery only: the caller has torn down
  /// everything holding block pointers and rebuilds from the checkpoint.
  void Reset();

 private:
  mutable std::shared_mutex mu_;
  std::deque<std::unique_ptr<Block>> blocks_;  // index = dba - kTxnTableDbaCount
  Dba next_dba_ = kTxnTableDbaCount;
};

}  // namespace stratus

#endif  // STRATUS_STORAGE_BLOCK_STORE_H_
