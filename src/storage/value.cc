#include "storage/value.h"

namespace stratus {

bool operator<(const Value& a, const Value& b) {
  if (a.v_.index() != b.v_.index()) return a.v_.index() < b.v_.index();
  switch (a.v_.index()) {
    case 0: return false;  // NULL == NULL for ordering purposes.
    case 1: return std::get<int64_t>(a.v_) < std::get<int64_t>(b.v_);
    default: return std::get<std::string>(a.v_) < std::get<std::string>(b.v_);
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull: return "NULL";
    case ValueType::kInt: return std::to_string(as_int());
    case ValueType::kString: return "'" + as_string() + "'";
  }
  return "?";
}

}  // namespace stratus
