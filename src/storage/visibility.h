#ifndef STRATUS_STORAGE_VISIBILITY_H_
#define STRATUS_STORAGE_VISIBILITY_H_

#include "common/types.h"

namespace stratus {

/// Lifecycle state of a transaction as known to a transaction table.
enum class TxnState : uint8_t {
  kActive = 0,
  kCommitted = 1,
  kAborted = 2,
};

/// Resolution of an XID against a transaction table.
struct TxnStatusInfo {
  TxnState state = TxnState::kActive;
  Scn commit_scn = kInvalidScn;  ///< Valid only when state == kCommitted.
};

/// Interface through which the storage layer resolves row-version visibility.
/// Implemented by `TxnTable`; on the standby the table is maintained purely
/// by applying commit/abort change vectors from the redo stream.
class VisibilityResolver {
 public:
  virtual ~VisibilityResolver() = default;
  virtual TxnStatusInfo Resolve(Xid xid) const = 0;
};

/// A Consistent Read view: a row version is visible iff its writing
/// transaction committed at or before `snapshot_scn`, or the reader is that
/// transaction itself (`self_xid`, primary only — standby queries are
/// read-only).
struct ReadView {
  Scn snapshot_scn = kMaxScn;
  Xid self_xid = kInvalidXid;
  const VisibilityResolver* resolver = nullptr;
};

}  // namespace stratus

#endif  // STRATUS_STORAGE_VISIBILITY_H_
