#include "storage/index.h"

#include <mutex>

namespace stratus {

void OrderedIndex::Insert(int64_t key, RowId rid) {
  std::unique_lock<std::shared_mutex> g(mu_);
  map_[key] = rid;
}

void OrderedIndex::Erase(int64_t key) {
  std::unique_lock<std::shared_mutex> g(mu_);
  map_.erase(key);
}

std::optional<RowId> OrderedIndex::Lookup(int64_t key) const {
  std::shared_lock<std::shared_mutex> g(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

std::vector<RowId> OrderedIndex::RangeScan(int64_t lo, int64_t hi) const {
  std::shared_lock<std::shared_mutex> g(mu_);
  std::vector<RowId> out;
  for (auto it = map_.lower_bound(lo); it != map_.end() && it->first <= hi; ++it)
    out.push_back(it->second);
  return out;
}

size_t OrderedIndex::size() const {
  std::shared_lock<std::shared_mutex> g(mu_);
  return map_.size();
}

int64_t OrderedIndex::MinKey() const {
  std::shared_lock<std::shared_mutex> g(mu_);
  return map_.empty() ? 0 : map_.begin()->first;
}

int64_t OrderedIndex::MaxKey() const {
  std::shared_lock<std::shared_mutex> g(mu_);
  return map_.empty() ? 0 : map_.rbegin()->first;
}

}  // namespace stratus
