#include "storage/schema.h"

namespace stratus {

Schema Schema::WideTable(int num_cols, int varchar_cols) {
  std::vector<ColumnDef> cols;
  cols.reserve(1 + num_cols + varchar_cols);
  cols.push_back({"id", ValueType::kInt});
  for (int i = 1; i <= num_cols; ++i)
    cols.push_back({"n" + std::to_string(i), ValueType::kInt});
  for (int i = 1; i <= varchar_cols; ++i)
    cols.push_back({"c" + std::to_string(i), ValueType::kString});
  return Schema(std::move(cols));
}

int Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i)
    if (columns_[i].name == name) return static_cast<int>(i);
  return -1;
}

Status Schema::ValidateRow(const Row& row) const {
  if (row.size() != columns_.size())
    return Status::InvalidArgument("row arity " + std::to_string(row.size()) +
                                   " != schema arity " +
                                   std::to_string(columns_.size()));
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) continue;
    if (row[i].type() != columns_[i].type)
      return Status::InvalidArgument("type mismatch in column " + columns_[i].name);
  }
  return Status::OK();
}

Schema Schema::WithDroppedColumn(size_t idx) const {
  std::vector<ColumnDef> cols = columns_;
  if (idx < cols.size()) {
    cols[idx].type = ValueType::kNull;
    cols[idx].name = cols[idx].name + ".dropped";
  }
  return Schema(std::move(cols));
}

}  // namespace stratus
