#ifndef STRATUS_STORAGE_INDEX_H_
#define STRATUS_STORAGE_INDEX_H_

#include <cstdint>
#include <map>
#include <optional>
#include <shared_mutex>
#include <vector>

#include "common/types.h"

namespace stratus {

/// An ordered unique index from an integer key (the evaluation schema's
/// identity column) to a row address. The paper's OLTAP workload performs a
/// large fraction of index-based fetches against it (Section IV.A).
///
/// Entries are inserted eagerly at DML time (as Oracle maintains index blocks
/// within the transaction); visibility of the target row is still resolved
/// through the row's version chain, so an entry pointing at an uncommitted or
/// deleted row is harmless.
class OrderedIndex {
 public:
  OrderedIndex() = default;
  OrderedIndex(const OrderedIndex&) = delete;
  OrderedIndex& operator=(const OrderedIndex&) = delete;

  void Insert(int64_t key, RowId rid);
  void Erase(int64_t key);
  std::optional<RowId> Lookup(int64_t key) const;

  /// All row ids with key in [lo, hi], in key order.
  std::vector<RowId> RangeScan(int64_t lo, int64_t hi) const;

  size_t size() const;

  /// Smallest and largest keys present (0 if empty).
  int64_t MinKey() const;
  int64_t MaxKey() const;

 private:
  mutable std::shared_mutex mu_;
  std::map<int64_t, RowId> map_;
};

}  // namespace stratus

#endif  // STRATUS_STORAGE_INDEX_H_
