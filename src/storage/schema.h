#ifndef STRATUS_STORAGE_SCHEMA_H_
#define STRATUS_STORAGE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/value.h"

namespace stratus {

/// One column definition.
struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kInt;
};

/// An ordered list of columns. Immutable once attached to a table; schema
/// changes create a new SCN-effective catalog version (Section III.G).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns) : columns_(std::move(columns)) {}

  /// Builds the paper's evaluation schema: one identity column `id`,
  /// `num_cols` NUMBER columns `n1..`, `varchar_cols` VARCHAR columns `c1..`
  /// (Section IV.A uses 1 + 50 + 50 = 101 columns).
  static Schema WideTable(int num_cols, int varchar_cols);

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Returns the index of the named column, or -1 if absent.
  int FindColumn(const std::string& name) const;

  /// Validates that `row` matches the schema (arity and types; NULL matches
  /// any type).
  Status ValidateRow(const Row& row) const;

  /// Returns a copy of this schema without the column at `idx` replaced by a
  /// NULL-typed tombstone. Column positions are preserved so existing rows
  /// remain decodable (Oracle drop-column is dictionary-only).
  Schema WithDroppedColumn(size_t idx) const;

  /// True if the column at `idx` has been dropped.
  bool IsDropped(size_t idx) const { return columns_[idx].type == ValueType::kNull; }

 private:
  std::vector<ColumnDef> columns_;
};

}  // namespace stratus

#endif  // STRATUS_STORAGE_SCHEMA_H_
