#include "storage/block_store.h"

#include <mutex>

namespace stratus {

Dba BlockStore::AllocateBlock(ObjectId object_id, TenantId tenant) {
  std::unique_lock<std::shared_mutex> g(mu_);
  const Dba dba = next_dba_++;
  blocks_.push_back(std::make_unique<Block>(dba, object_id, tenant));
  return dba;
}

Block* BlockStore::GetBlock(Dba dba) const {
  if (IsTxnTableDba(dba)) return nullptr;
  std::shared_lock<std::shared_mutex> g(mu_);
  const size_t idx = dba - kTxnTableDbaCount;
  if (idx >= blocks_.size()) return nullptr;
  return blocks_[idx].get();
}

Block* BlockStore::EnsureBlock(Dba dba, ObjectId object_id, TenantId tenant) {
  if (IsTxnTableDba(dba)) return nullptr;
  {
    std::shared_lock<std::shared_mutex> g(mu_);
    const size_t idx = dba - kTxnTableDbaCount;
    if (idx < blocks_.size() && blocks_[idx] != nullptr) return blocks_[idx].get();
  }
  std::unique_lock<std::shared_mutex> g(mu_);
  const size_t idx = dba - kTxnTableDbaCount;
  while (blocks_.size() <= idx) blocks_.push_back(nullptr);
  if (blocks_[idx] == nullptr)
    blocks_[idx] = std::make_unique<Block>(dba, object_id, tenant);
  if (dba >= next_dba_) next_dba_ = dba + 1;
  return blocks_[idx].get();
}

Dba BlockStore::HighWater() const {
  std::shared_lock<std::shared_mutex> g(mu_);
  return next_dba_;
}

void BlockStore::Reset() {
  std::unique_lock<std::shared_mutex> g(mu_);
  blocks_.clear();
  next_dba_ = kTxnTableDbaCount;
}

}  // namespace stratus
