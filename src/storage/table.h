#ifndef STRATUS_STORAGE_TABLE_H_
#define STRATUS_STORAGE_TABLE_H_

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/block_store.h"
#include "storage/index.h"
#include "storage/schema.h"

namespace stratus {

/// A heap-organized table segment. The primary extends it by allocating
/// blocks from the block store; the standby's copy discovers its blocks as
/// redo apply touches them (`NoteBlock`). Block order is allocation order and
/// defines the scan order and the DBA ranges that IMCUs cover.
class Table {
 public:
  Table(ObjectId object_id, TenantId tenant, std::string name, Schema schema,
        BlockStore* store)
      : object_id_(object_id),
        tenant_(tenant),
        name_(std::move(name)),
        schema_(std::make_shared<const Schema>(std::move(schema))),
        store_(store) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  ObjectId object_id() const { return object_id_; }
  TenantId tenant() const { return tenant_; }
  const std::string& name() const { return name_; }

  /// Current schema (shared snapshot — safe against concurrent DDL swap).
  std::shared_ptr<const Schema> schema() const {
    std::shared_lock<std::shared_mutex> g(mu_);
    return schema_;
  }

  /// Installs a new schema version (dictionary-only DDL, e.g. drop column).
  void UpdateSchema(Schema schema) {
    std::unique_lock<std::shared_mutex> g(mu_);
    schema_ = std::make_shared<const Schema>(std::move(schema));
  }

  /// Primary-side: claims a (dba, slot) for a new row, extending the segment
  /// with a fresh block when the insertion block is full. Thread-safe.
  RowId AllocateInsertSlot();

  /// Standby-side: records that `dba` belongs to this segment (first time a
  /// redo change vector references it). Idempotent, thread-safe.
  void NoteBlock(Dba dba);

  /// Stable snapshot of the segment's block list, in scan order.
  std::vector<Dba> SnapshotBlocks() const;

  /// Number of blocks currently in the segment.
  size_t BlockCount() const;

  /// Attaches a unique ordered index on column 0 (the identity column).
  void CreateIdentityIndex() { index_ = std::make_unique<OrderedIndex>(); }
  OrderedIndex* index() const { return index_.get(); }

  /// Disk-recovery: forgets every block (and empties the identity index, if
  /// any) so the segment can be rebuilt from a checkpoint image.
  void ResetSegment();

  /// Disk-recovery: installs the block list captured by SnapshotBlocks().
  /// Order matters — NoteBlock records blocks in apply-discovery order, so
  /// scan order is only reproducible from the recorded list itself.
  void RestoreBlocks(const std::vector<Dba>& dbas);

 private:
  ObjectId object_id_;
  TenantId tenant_;
  std::string name_;
  std::shared_ptr<const Schema> schema_;
  BlockStore* store_;

  mutable std::shared_mutex mu_;
  std::vector<Dba> blocks_;
  std::unordered_set<Dba> block_set_;  // Membership mirror of blocks_.
  SlotId next_slot_ = kRowsPerBlock;  // Forces first insert to extend.

  std::unique_ptr<OrderedIndex> index_;
};

}  // namespace stratus

#endif  // STRATUS_STORAGE_TABLE_H_
