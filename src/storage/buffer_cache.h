#ifndef STRATUS_STORAGE_BUFFER_CACHE_H_
#define STRATUS_STORAGE_BUFFER_CACHE_H_

#include <atomic>
#include <cstdint>

#include "common/types.h"
#include "storage/block.h"
#include "storage/block_store.h"

namespace stratus {

/// Access statistics for one buffer cache.
struct BufferCacheStats {
  uint64_t logical_gets = 0;   ///< Block lookups served from memory.
  uint64_t misses = 0;         ///< Lookups of never-created blocks.
};

/// Oracle's buffer cache [13] fronting the row store. The paper's evaluation
/// sizes the cache so no physical I/O ever occurs; accordingly this cache is
/// a counting pass-through over the in-memory `BlockStore` — every get is a
/// logical get — and exists so the row-path cost and statistics mirror the
/// real system's "buffer gets" accounting.
class BufferCache {
 public:
  explicit BufferCache(BlockStore* store) : store_(store) {}

  BufferCache(const BufferCache&) = delete;
  BufferCache& operator=(const BufferCache&) = delete;

  /// Gets (pins) the block at `dba`; nullptr if it does not exist.
  Block* Get(Dba dba) const {
    Block* b = store_->GetBlock(dba);
    if (b != nullptr) {
      logical_gets_.fetch_add(1, std::memory_order_relaxed);
    } else {
      misses_.fetch_add(1, std::memory_order_relaxed);
    }
    return b;
  }

  BufferCacheStats stats() const {
    return {logical_gets_.load(std::memory_order_relaxed),
            misses_.load(std::memory_order_relaxed)};
  }

  void ResetStats() {
    logical_gets_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
  }

  BlockStore* store() const { return store_; }

 private:
  BlockStore* store_;
  mutable std::atomic<uint64_t> logical_gets_{0};
  mutable std::atomic<uint64_t> misses_{0};
};

}  // namespace stratus

#endif  // STRATUS_STORAGE_BUFFER_CACHE_H_
