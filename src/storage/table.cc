#include "storage/table.h"

namespace stratus {

RowId Table::AllocateInsertSlot() {
  std::unique_lock<std::shared_mutex> g(mu_);
  if (next_slot_ >= kRowsPerBlock) {
    const Dba dba = store_->AllocateBlock(object_id_, tenant_);
    blocks_.push_back(dba);
    block_set_.insert(dba);
    next_slot_ = 0;
  }
  return RowId{blocks_.back(), next_slot_++};
}

void Table::NoteBlock(Dba dba) {
  {
    std::shared_lock<std::shared_mutex> g(mu_);
    if (block_set_.contains(dba)) return;
  }
  std::unique_lock<std::shared_mutex> g(mu_);
  if (block_set_.insert(dba).second) blocks_.push_back(dba);
}

std::vector<Dba> Table::SnapshotBlocks() const {
  std::shared_lock<std::shared_mutex> g(mu_);
  return blocks_;
}

size_t Table::BlockCount() const {
  std::shared_lock<std::shared_mutex> g(mu_);
  return blocks_.size();
}

void Table::ResetSegment() {
  std::unique_lock<std::shared_mutex> g(mu_);
  blocks_.clear();
  block_set_.clear();
  next_slot_ = kRowsPerBlock;
  if (index_ != nullptr) index_ = std::make_unique<OrderedIndex>();
}

void Table::RestoreBlocks(const std::vector<Dba>& dbas) {
  std::unique_lock<std::shared_mutex> g(mu_);
  blocks_ = dbas;
  block_set_.clear();
  block_set_.insert(dbas.begin(), dbas.end());
  next_slot_ = kRowsPerBlock;  // Standby segments never self-extend.
}

}  // namespace stratus
