#include "storage/buffer_cache.h"

// Header-only; anchors the translation unit.
namespace stratus {}  // namespace stratus
