#ifndef STRATUS_RAC_TRANSPORT_H_
#define STRATUS_RAC_TRANSPORT_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "common/types.h"
#include "imadg/invalidation.h"
#include "imcs/im_store.h"
#include "imcs/population.h"
#include "net/channel.h"
#include "txn/txn_table.h"

namespace stratus {

/// A non-master standby RAC instance endpoint (Section III.F). Under Single
/// Instance Redo Apply only the master mines and flushes; this instance hosts
/// its share of the IMCS, applies the invalidation groups the master
/// transmits, and runs a local recovery coordinator that re-publishes the
/// QuerySCN it receives from the master.
///
/// It also doubles as the instance's population SnapshotSource: snapshot
/// capture + SMU registration are serialized against batch application, and a
/// replay buffer of groups received since the last publish closes the window
/// where an in-flight batch could miss a just-registered SMU (see DESIGN.md).
class RemoteInstance : public SnapshotSource {
 public:
  RemoteInstance(InstanceId id, ImStore* store, const TxnTable* txn_table)
      : id_(id), store_(store), txn_table_(txn_table) {}

  InstanceId id() const { return id_; }
  ImStore* store() const { return store_; }

  /// Delivery callbacks (invoked by the interconnect, in send order).
  void OnGroups(const std::vector<InvalidationGroup>& groups);
  void OnCoarse(TenantId tenant);
  void OnPublish(Scn query_scn);

  /// The instance-local QuerySCN exposed to queries served here.
  Scn query_scn() const { return query_scn_.load(std::memory_order_acquire); }

  // SnapshotSource:
  Scn CaptureSnapshot(const std::function<void(Scn)>& register_fn) override;
  const VisibilityResolver* resolver() const override { return txn_table_; }

  uint64_t groups_applied() const { return groups_applied_.load(std::memory_order_relaxed); }

 private:
  void ApplyGroupsLocked(const std::vector<InvalidationGroup>& groups);

  InstanceId id_;
  ImStore* store_;
  const TxnTable* txn_table_;

  std::mutex mu_;  ///< Orders batch application, publish, and snapshot capture.
  std::vector<InvalidationGroup> pending_;  ///< Groups since the last publish.
  std::atomic<Scn> query_scn_{kInvalidScn};
  std::atomic<uint64_t> groups_applied_{0};
};

/// Interconnect behavior knobs (the Section III.F ablation).
struct TransportOptions {
  /// One-way message latency (microseconds).
  int64_t latency_us = 200;
  /// Max invalidation groups coalesced into one message (batching).
  size_t max_batch_groups = 64;
  /// Pipelined transmission: up to `pipeline_depth` messages share one
  /// round-trip wait. false = stop-and-wait (one RTT per message).
  bool pipelined = true;
  size_t pipeline_depth = 8;
  /// The wire each master→remote link rides (one net::Channel per remote).
  /// kLoopback preserves the historical direct-call delivery.
  net::ChannelOptions channel;
};

/// Standby-interconnect frame sink for one remote instance: decodes
/// kInvalidation frames and dispatches them to the remote's delivery
/// callbacks.
class InvalidationReceiver : public net::FrameSink {
 public:
  explicit InvalidationReceiver(RemoteInstance* remote) : remote_(remote) {}

  void OnFrame(const net::Frame& frame) override;

  uint64_t decode_failures() const {
    return decode_failures_.load(std::memory_order_relaxed);
  }

 private:
  RemoteInstance* remote_;
  std::atomic<uint64_t> decode_failures_{0};
};

/// Transport statistics.
struct TransportStats {
  uint64_t messages_sent = 0;
  uint64_t groups_sent = 0;
  uint64_t rows_sent = 0;
  uint64_t coarse_sent = 0;
  uint64_t publishes_sent = 0;
  uint64_t rtt_waits = 0;  ///< Round-trip waits incurred (the ablation metric).
};

/// The master→remote invalidation channel: batches invalidation groups into
/// messages, applies the configured interconnect latency (stop-and-wait or
/// pipelined), and delivers to every remote instance in order. `Drained()`
/// is the master's "all remote flushes acknowledged" gate before publishing
/// a new QuerySCN.
class InvalidationChannel {
 public:
  InvalidationChannel(std::vector<RemoteInstance*> remotes,
                      const TransportOptions& options);
  ~InvalidationChannel();

  InvalidationChannel(const InvalidationChannel&) = delete;
  InvalidationChannel& operator=(const InvalidationChannel&) = delete;

  void Start();
  void Stop();

  void SendGroups(std::vector<InvalidationGroup> groups);
  void SendCoarse(TenantId tenant);
  void SendObjectDrop(ObjectId object_id);
  void SendPublish(Scn query_scn);

  /// True when every queued message has been delivered and acknowledged —
  /// including by the per-remote wire channels underneath.
  bool Drained() const;

  TransportStats stats() const;

  /// The wire under the link to `remotes[i]` (fault injection, stats).
  net::Channel* wire_channel(size_t i) { return wire_channels_[i].get(); }
  size_t wire_channel_count() const { return wire_channels_.size(); }

 private:
  struct Message {
    enum class Kind : uint8_t { kGroups, kCoarse, kObjectDrop, kPublish } kind;
    std::vector<InvalidationGroup> groups;
    TenantId tenant = kDefaultTenant;
    ObjectId object_id = kInvalidObjectId;
    Scn scn = kInvalidScn;
  };

  void Run();
  void Enqueue(Message msg);

  std::vector<RemoteInstance*> remotes_;
  TransportOptions options_;
  std::vector<std::unique_ptr<InvalidationReceiver>> receivers_;
  std::vector<std::unique_ptr<net::Channel>> wire_channels_;

  std::thread thread_;
  std::atomic<bool> stop_{false};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  std::atomic<size_t> in_flight_{0};

  std::atomic<uint64_t> messages_sent_{0};
  std::atomic<uint64_t> groups_sent_{0};
  std::atomic<uint64_t> rows_sent_{0};
  std::atomic<uint64_t> coarse_sent_{0};
  std::atomic<uint64_t> publishes_sent_{0};
  std::atomic<uint64_t> rtt_waits_{0};
};

}  // namespace stratus

#endif  // STRATUS_RAC_TRANSPORT_H_
