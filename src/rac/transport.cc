#include "rac/transport.h"

#include <chrono>
#include <string>
#include <utility>

#include "net/codec.h"

namespace stratus {

void RemoteInstance::ApplyGroupsLocked(const std::vector<InvalidationGroup>& groups) {
  for (const InvalidationGroup& g : groups) {
    for (const auto& [dba, slot] : g.rows) {
      store_->MarkRowInvalid(dba, slot);
    }
  }
  groups_applied_.fetch_add(groups.size(), std::memory_order_relaxed);
}

void RemoteInstance::OnGroups(const std::vector<InvalidationGroup>& groups) {
  std::lock_guard<std::mutex> g(mu_);
  ApplyGroupsLocked(groups);
  // Retain for replay into SMUs registered before the next publish.
  pending_.insert(pending_.end(), groups.begin(), groups.end());
}

void RemoteInstance::OnCoarse(TenantId tenant) {
  std::lock_guard<std::mutex> g(mu_);
  store_->CoarseInvalidateTenant(tenant);
}

void RemoteInstance::OnPublish(Scn query_scn) {
  std::lock_guard<std::mutex> g(mu_);
  query_scn_.store(query_scn, std::memory_order_release);
  pending_.clear();  // Everything retained is now covered by the QuerySCN.
}

Scn RemoteInstance::CaptureSnapshot(const std::function<void(Scn)>& register_fn) {
  std::lock_guard<std::mutex> g(mu_);
  const Scn scn = query_scn_.load(std::memory_order_acquire);
  if (scn == kInvalidScn) return kInvalidScn;
  register_fn(scn);
  // Replay groups delivered since the last publish: their commits are beyond
  // `scn`, so the fresh SMU needs their bits (idempotent if re-marked later).
  ApplyGroupsLocked(pending_);
  return scn;
}

void InvalidationReceiver::OnFrame(const net::Frame& frame) {
  if (frame.type != net::FrameType::kInvalidation) return;
  net::InvalidationMessage msg;
  if (!net::DecodeInvalidationMessage(frame.payload, &msg).ok()) {
    decode_failures_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  switch (msg.kind) {
    case net::InvalKind::kGroups:
      remote_->OnGroups(msg.groups);
      break;
    case net::InvalKind::kCoarse:
      remote_->OnCoarse(msg.tenant);
      break;
    case net::InvalKind::kObjectDrop:
      remote_->store()->DropObject(msg.object_id);
      break;
    case net::InvalKind::kPublish:
      remote_->OnPublish(msg.scn);
      break;
  }
}

InvalidationChannel::InvalidationChannel(std::vector<RemoteInstance*> remotes,
                                         const TransportOptions& options)
    : remotes_(std::move(remotes)), options_(options) {
  receivers_.reserve(remotes_.size());
  wire_channels_.reserve(remotes_.size());
  for (RemoteInstance* remote : remotes_) {
    receivers_.push_back(std::make_unique<InvalidationReceiver>(remote));
    net::ChannelOptions copts = options_.channel;
    if (copts.name.empty()) {
      copts.name = "inval-" + std::to_string(remote->id());
    }
    wire_channels_.push_back(
        net::CreateChannel(copts, receivers_.back().get()));
  }
}

InvalidationChannel::~InvalidationChannel() {
  if (thread_.joinable()) Stop();
}

void InvalidationChannel::Start() {
  stop_.store(false, std::memory_order_release);
  for (auto& channel : wire_channels_) channel->Start();
  thread_ = std::thread([this] { Run(); });
}

void InvalidationChannel::Stop() {
  {
    std::lock_guard<std::mutex> g(mu_);
    stop_.store(true, std::memory_order_release);
    cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
  // Drain and close the wires (idempotent; no-op if never started).
  for (auto& channel : wire_channels_) channel->Stop();
}

void InvalidationChannel::Enqueue(Message msg) {
  std::lock_guard<std::mutex> g(mu_);
  queue_.push_back(std::move(msg));
  cv_.notify_one();
}

void InvalidationChannel::SendGroups(std::vector<InvalidationGroup> groups) {
  if (remotes_.empty() || groups.empty()) return;
  Message msg;
  msg.kind = Message::Kind::kGroups;
  msg.groups = std::move(groups);
  Enqueue(std::move(msg));
}

void InvalidationChannel::SendCoarse(TenantId tenant) {
  if (remotes_.empty()) return;
  Message msg;
  msg.kind = Message::Kind::kCoarse;
  msg.tenant = tenant;
  Enqueue(std::move(msg));
}

void InvalidationChannel::SendObjectDrop(ObjectId object_id) {
  if (remotes_.empty()) return;
  Message msg;
  msg.kind = Message::Kind::kObjectDrop;
  msg.object_id = object_id;
  Enqueue(std::move(msg));
}

void InvalidationChannel::SendPublish(Scn query_scn) {
  if (remotes_.empty()) return;
  Message msg;
  msg.kind = Message::Kind::kPublish;
  msg.scn = query_scn;
  Enqueue(std::move(msg));
}

bool InvalidationChannel::Drained() const {
  if (remotes_.empty()) return true;
  {
    std::lock_guard<std::mutex> g(mu_);
    if (!queue_.empty() || in_flight_.load(std::memory_order_acquire) != 0) {
      return false;
    }
  }
  for (const auto& channel : wire_channels_) {
    if (!channel->Idle()) return false;
  }
  return true;
}

void InvalidationChannel::Run() {
  size_t window = 0;  // Messages sent since the last round-trip wait.
  while (true) {
    Message msg;
    {
      std::unique_lock<std::mutex> g(mu_);
      cv_.wait_for(g, std::chrono::milliseconds(1), [&] {
        return !queue_.empty() || stop_.load(std::memory_order_relaxed);
      });
      if (queue_.empty()) {
        if (stop_.load(std::memory_order_relaxed)) break;
        window = 0;  // Idle: the pipeline drains.
        continue;
      }
      msg = std::move(queue_.front());
      queue_.pop_front();
      // Batching: coalesce consecutive group messages up to the batch limit.
      while (msg.kind == Message::Kind::kGroups && !queue_.empty() &&
             queue_.front().kind == Message::Kind::kGroups &&
             msg.groups.size() + queue_.front().groups.size() <=
                 options_.max_batch_groups) {
        auto& next = queue_.front();
        msg.groups.insert(msg.groups.end(),
                          std::make_move_iterator(next.groups.begin()),
                          std::make_move_iterator(next.groups.end()));
        queue_.pop_front();
      }
      in_flight_.fetch_add(1, std::memory_order_acq_rel);
    }

    // Interconnect latency model: stop-and-wait pays one round trip per
    // message; pipelining amortizes the round trip over a window of
    // `pipeline_depth` in-flight messages.
    const bool pay_rtt =
        !options_.pipelined || (++window >= options_.pipeline_depth);
    if (pay_rtt) {
      window = 0;
      rtt_waits_.fetch_add(1, std::memory_order_relaxed);
      if (options_.latency_us > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(2 * options_.latency_us));
      }
    }

    // Encode once, ship a copy down every remote's wire. The channel (and
    // its receiver) preserves per-link order; the loopback wire delivers
    // synchronously right here, keeping the historical semantics.
    net::InvalidationMessage wire_msg;
    switch (msg.kind) {
      case Message::Kind::kGroups:
        wire_msg.kind = net::InvalKind::kGroups;
        wire_msg.groups = std::move(msg.groups);
        break;
      case Message::Kind::kCoarse:
        wire_msg.kind = net::InvalKind::kCoarse;
        wire_msg.tenant = msg.tenant;
        break;
      case Message::Kind::kObjectDrop:
        wire_msg.kind = net::InvalKind::kObjectDrop;
        wire_msg.object_id = msg.object_id;
        break;
      case Message::Kind::kPublish:
        wire_msg.kind = net::InvalKind::kPublish;
        wire_msg.scn = msg.scn;
        break;
    }
    std::string payload;
    net::EncodeInvalidationMessage(wire_msg, &payload);
    if (msg.kind == Message::Kind::kGroups) msg.groups = std::move(wire_msg.groups);
    for (size_t i = 0; i < wire_channels_.size(); ++i) {
      std::string copy = payload;
      wire_channels_[i]->Send(net::FrameType::kInvalidation,
                              static_cast<uint32_t>(remotes_[i]->id()),
                              wire_msg.scn, std::move(copy));
    }
    messages_sent_.fetch_add(1, std::memory_order_relaxed);
    if (msg.kind == Message::Kind::kGroups) {
      groups_sent_.fetch_add(msg.groups.size(), std::memory_order_relaxed);
      uint64_t rows = 0;
      for (const auto& g : msg.groups) rows += g.rows.size();
      rows_sent_.fetch_add(rows, std::memory_order_relaxed);
    } else if (msg.kind == Message::Kind::kCoarse) {
      coarse_sent_.fetch_add(1, std::memory_order_relaxed);
    } else if (msg.kind == Message::Kind::kPublish) {
      publishes_sent_.fetch_add(1, std::memory_order_relaxed);
    }
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

TransportStats InvalidationChannel::stats() const {
  TransportStats s;
  s.messages_sent = messages_sent_.load(std::memory_order_relaxed);
  s.groups_sent = groups_sent_.load(std::memory_order_relaxed);
  s.rows_sent = rows_sent_.load(std::memory_order_relaxed);
  s.coarse_sent = coarse_sent_.load(std::memory_order_relaxed);
  s.publishes_sent = publishes_sent_.load(std::memory_order_relaxed);
  s.rtt_waits = rtt_waits_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace stratus
