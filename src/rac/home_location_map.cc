#include "rac/home_location_map.h"

// Header-only; anchors the translation unit.
namespace stratus {}  // namespace stratus
