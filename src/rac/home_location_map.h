#ifndef STRATUS_RAC_HOME_LOCATION_MAP_H_
#define STRATUS_RAC_HOME_LOCATION_MAP_H_

#include <cstdint>

#include "common/types.h"

namespace stratus {

/// The home-location map (Section III.F, [5]): deterministically assigns
/// each IMCU chunk of each object to the standby RAC instance that hosts it,
/// by hashing (object, chunk ordinal) across instances. Population on every
/// instance consults the same map, so the IMCS is distributed without
/// coordination: each chunk is built exactly once, on its home instance.
class HomeLocationMap {
 public:
  explicit HomeLocationMap(uint32_t num_instances)
      : num_instances_(num_instances == 0 ? 1 : num_instances) {}

  InstanceId HomeOf(ObjectId object_id, uint64_t chunk_ordinal) const {
    // Fibonacci-style mix so consecutive chunks spread across instances.
    const uint64_t h =
        (object_id * 0x9E3779B97F4A7C15ull) ^ (chunk_ordinal * 0xC2B2AE3D27D4EB4Full);
    return static_cast<InstanceId>((h >> 17) % num_instances_);
  }

  uint32_t num_instances() const { return num_instances_; }

 private:
  uint32_t num_instances_;
};

}  // namespace stratus

#endif  // STRATUS_RAC_HOME_LOCATION_MAP_H_
