#include "chaos/chaos_harness.h"

#include <sstream>
#include <string>

namespace stratus::chaos {

CrashCycleDriver::CrashCycleDriver(AdgCluster* cluster, ChaosController* chaos,
                                   ObjectId table,
                                   const HarnessOptions& options)
    : cluster_(cluster), chaos_(chaos), table_(table), options_(options),
      auditor_(cluster->primary(), cluster->standby(), {table}),
      rng_(options.seed) {}

double CrashCycleDriver::Uniform() {
  // 53-bit mantissa; avoids std::uniform_real_distribution, whose output is
  // implementation-defined (the matrix must replay identically everywhere).
  return static_cast<double>(rng_() >> 11) * 0x1.0p-53;
}

Row CrashCycleDriver::MakeRow(int64_t key, int64_t payload) const {
  return Row{Value(key), Value(payload),
             Value(std::string("v") + std::to_string(payload % 97))};
}

uint64_t CrashCycleDriver::NthRange(CrashPoint point) const {
  // Upper bound on the armed ordinal, sized to how often each point is hit
  // in one cycle's churn so the crash usually lands mid-work.
  switch (point) {
    case CrashPoint::kDispatchHandoff: return 16;
    case CrashPoint::kWorkerDequeue: return 32;
    case CrashPoint::kWorkerApply: return 32;
    case CrashPoint::kJournalMine: return 16;
    case CrashPoint::kCommitChop: return 4;
    case CrashPoint::kQuiesceBegin: return 4;
    case CrashPoint::kQuiescePublish: return 4;
    case CrashPoint::kQuiesceEnd: return 4;
    case CrashPoint::kFlushStep: return 4;
    case CrashPoint::kPopulationSnapshot: return 2;
    case CrashPoint::kNumPoints: break;
  }
  return 8;
}

void CrashCycleDriver::Churn() {
  PrimaryDb* primary = cluster_->primary();
  for (int t = 0; t < options_.txns_per_cycle; ++t) {
    Transaction txn = primary->Begin();
    std::vector<std::pair<int64_t, RowId>> inserted;
    std::vector<std::pair<int64_t, RowId>> deleted;
    for (int op = 0; op < options_.ops_per_txn; ++op) {
      const double p = Uniform();
      if (p < options_.update_fraction && !live_.empty()) {
        const size_t i = static_cast<size_t>(rng_() % live_.size());
        const auto [key, rid] = live_[i];
        if (primary->Update(&txn, table_, rid,
                            MakeRow(key, static_cast<int64_t>(rng_() % 1000)))
                .ok()) {
          ledger_.Note(rid.dba, rid.slot);
        }
      } else if (p < options_.update_fraction + options_.delete_fraction &&
                 !live_.empty()) {
        const size_t i = static_cast<size_t>(rng_() % live_.size());
        const std::pair<int64_t, RowId> victim = live_[i];
        if (primary->Delete(&txn, table_, victim.second).ok()) {
          ledger_.Note(victim.second.dba, victim.second.slot);
          live_[i] = live_.back();
          live_.pop_back();
          deleted.push_back(victim);
        }
      } else {
        const int64_t key = next_key_++;
        RowId rid;
        if (primary->Insert(&txn, table_, MakeRow(key, key % 9), &rid).ok()) {
          ledger_.Note(rid.dba, rid.slot);
          inserted.emplace_back(key, rid);
        }
      }
    }
    // The live map tracks *committed* visibility: inserts join it only on
    // commit; an abort puts deleted victims back.
    const bool roll_back = Uniform() < options_.abort_fraction;
    const bool committed = !roll_back && primary->Commit(&txn).ok();
    if (roll_back) primary->Abort(&txn);
    if (committed) {
      live_.insert(live_.end(), inserted.begin(), inserted.end());
    } else {
      live_.insert(live_.end(), deleted.begin(), deleted.end());
    }
  }
}

void CrashCycleDriver::Converge(std::vector<std::string>* out) {
  StandbyDb* standby = cluster_->standby();
  const Scn target = cluster_->primary()->current_scn();
  const Scn reached =
      standby->WaitForQueryScn(target, options_.converge_timeout_us);
  if (reached == kInvalidScn || reached < target) {
    std::ostringstream os;
    os << "convergence: QuerySCN stalled at "
       << (reached == kInvalidScn ? 0 : reached) << " below primary SCN "
       << target;
    out->push_back(os.str());
    return;
  }
  // Full IMCS coverage so the dual-path and SMU-superset checks see real
  // columnar data, not an empty store falling back to the row path.
  try {
    const Status st = standby->PopulateNow(table_);
    (void)st;
  } catch (const CrashSignal&) {
    // Disarmed by now; a straggler fire here is handled by the next cycle.
  }
}

CycleResult CrashCycleDriver::RunCycle(CrashPoint point) {
  CycleResult result;
  result.point = point;
  StandbyDb* standby = cluster_->standby();

  if (CrashPointsCompiledIn()) {
    result.armed_nth = 1 + rng_() % NthRange(point);
    chaos_->Arm(point, result.armed_nth);
  }

  Churn();

  // Drive population so kPopulationSnapshot (and repopulation of churned
  // IMCUs) has traffic; the crash may surface right here on this thread.
  try {
    const Status st = standby->PopulateNow(table_);
    (void)st;
  } catch (const CrashSignal&) {
  }

  std::vector<std::string> converge_violations;
  if (CrashPointsCompiledIn()) {
    chaos_->WaitForFire(options_.fire_wait_us);
    if (!chaos_->fired()) {
      chaos_->Disarm();
      // Disarm does not synchronize with a Hit that already passed the armed
      // check; give such a straggler a beat to surface before converging.
      chaos_->WaitForFire(100'000);
    }
    if (chaos_->fired()) {
      result.fired = true;
      ++cycles_fired_;
      if (options_.disk_restart) {
        // Kill-and-recover-from-disk: the cluster quiesces the shippers,
        // tears the standby down without a final archive sync (so torn
        // tails are real), replays archived redo over the last checkpoint,
        // and resumes the IMCS from its snapshot.
        const Status st = cluster_->DiskRestartStandby(/*crash=*/true);
        if (!st.ok())
          converge_violations.push_back("disk restart: " + st.message());
      } else {
        standby->CrashRestart();
      }
      chaos_->Disarm();
    }
  }

  Converge(&converge_violations);

  AuditOptions audit;
  audit.min_query_scn = floor_;
  std::unordered_map<uint64_t, uint64_t> expected;
  if (options_.check_accounting) {
    expected = ledger_.Snapshot();
    audit.expected_applies = &expected;
  }
  result.report = auditor_.Run(audit);
  result.report.violations.insert(result.report.violations.begin(),
                                  converge_violations.begin(),
                                  converge_violations.end());
  result.query_scn = standby->query_scn();
  if (result.query_scn != kInvalidScn) floor_ = result.query_scn;
  return result;
}

}  // namespace stratus::chaos
