#ifndef STRATUS_CHAOS_INVARIANT_AUDITOR_H_
#define STRATUS_CHAOS_INVARIANT_AUDITOR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "db/database.h"

namespace stratus::chaos {

/// Outcome of one audit pass: every violated invariant as a human-readable
/// line. An empty report is the pass condition of the chaos matrix.
struct AuditReport {
  std::vector<std::string> violations;
  uint64_t checks_run = 0;
  uint64_t rows_compared = 0;

  bool ok() const { return violations.empty(); }
  std::string ToString() const;
};

/// Per-audit inputs that change cycle to cycle.
struct AuditOptions {
  /// QuerySCN floor: the SCN published before the crash cycle started. The
  /// restarted pipeline must republish at or above it (QuerySCN is monotone
  /// from a reader's point of view even across instance restarts, because
  /// readers only ever see published SCNs and redo re-applies past them).
  Scn min_query_scn = kInvalidScn;
  /// Expected per-(dba,slot) successful-apply counts, keyed by
  /// StandbyDb::AccountingKey. Null skips the exactly-once check (requires
  /// DatabaseOptions::apply_accounting on the standby).
  const std::unordered_map<uint64_t, uint64_t>* expected_applies = nullptr;
  /// Also compare each table's standby result against a primary flashback
  /// query at the same SCN (requires the primary's undo to still cover it).
  bool check_primary_equivalence = true;
};

/// Cross-layer invariant auditor (the chaos harness's oracle). Run after the
/// pipeline has converged — no in-flight redo — at a published QuerySCN:
///
///  I1  QuerySCN sanity: published, at or above the floor, and not above the
///      coordinator's candidate (min worker watermark).
///  I2  Dual-path equality: for every table, a forced row-store scan and an
///      IMCS-eligible scan at the QuerySCN return identical row sets.
///  I3  SMU superset: any row where the IMCU's population-time image diverges
///      from the row store at the QuerySCN must be marked invalid in the SMU.
///  I4  Commit-table chop: nothing at or below the QuerySCN is still pending
///      (its invalidations were flushed before publication).
///  I5  Journal quiescence: no live anchors once every mined transaction has
///      committed or aborted and the commit table has drained.
///  I6  Exactly-once apply: per-(dba,slot) successful-apply counters equal
///      the shipped-DML ledger — no change vector skipped or double-applied
///      across any number of crash–restart cycles.
///  I7  Primary equivalence: the standby result matches a primary flashback
///      query at the same SCN.
class InvariantAuditor {
 public:
  InvariantAuditor(PrimaryDb* primary, StandbyDb* standby,
                   std::vector<ObjectId> tables, uint32_t standby_instances = 1);

  AuditReport Run(const AuditOptions& options);

 private:
  void CheckQueryScn(const AuditOptions& options, Scn scn, AuditReport* report);
  void CheckDualPathEquality(ObjectId table, Scn scn, AuditReport* report);
  void CheckSmuSuperset(ObjectId table, Scn scn, AuditReport* report);
  void CheckCommitTableChop(Scn scn, AuditReport* report);
  void CheckJournalQuiescence(AuditReport* report);
  void CheckApplyAccounting(const AuditOptions& options, AuditReport* report);
  void CheckPrimaryEquivalence(ObjectId table, Scn scn, AuditReport* report);

  void Violation(AuditReport* report, std::string message);

  PrimaryDb* primary_;
  StandbyDb* standby_;
  std::vector<ObjectId> tables_;
  uint32_t standby_instances_;
};

}  // namespace stratus::chaos

#endif  // STRATUS_CHAOS_INVARIANT_AUDITOR_H_
