#ifndef STRATUS_CHAOS_CHAOS_HARNESS_H_
#define STRATUS_CHAOS_CHAOS_HARNESS_H_

#include <cstdint>
#include <mutex>
#include <random>
#include <unordered_map>
#include <utility>
#include <vector>

#include "chaos/crash_point.h"
#include "chaos/invariant_auditor.h"
#include "common/types.h"
#include "db/database.h"

namespace stratus::chaos {

/// Test-side ledger of every data change vector the primary shipped: one
/// count per (dba, slot), keyed like StandbyDb::AccountingKey. Redo is
/// written at DML time (write-ahead), so aborted transactions' DML counts
/// too — the standby applies those vectors physically and the abort record
/// makes them invisible, it never un-applies them.
class ApplyLedger {
 public:
  void Note(Dba dba, SlotId slot) {
    std::lock_guard<std::mutex> g(mu_);
    ++counts_[StandbyDb::AccountingKey(dba, slot)];
  }
  std::unordered_map<uint64_t, uint64_t> Snapshot() const {
    std::lock_guard<std::mutex> g(mu_);
    return counts_;
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, uint64_t> counts_;
};

/// Knobs for one crash–restart cycle driver.
struct HarnessOptions {
  uint64_t seed = 1;
  /// Primary churn per cycle.
  int txns_per_cycle = 12;
  int ops_per_txn = 6;
  double update_fraction = 0.30;
  double delete_fraction = 0.10;
  double abort_fraction = 0.15;
  /// How long to wait for the armed crash point to fire before concluding
  /// the cycle produced too few hits (the cycle still converges and audits).
  int64_t fire_wait_us = 2'000'000;
  int64_t converge_timeout_us = 30'000'000;
  /// Compare the apply-accounting counters against the shipped ledger
  /// (requires DatabaseOptions::apply_accounting on the standby).
  bool check_accounting = true;
  /// Kill-and-recover-from-disk: when a crash point fires, recover the
  /// standby from its data directory (crash teardown, archived-redo replay
  /// over the last fuzzy checkpoint, IMCS snapshot resume) via
  /// AdgCluster::DiskRestartStandby instead of the in-memory CrashRestart.
  /// Requires DatabaseOptions::persist enabled on the standby.
  bool disk_restart = false;
};

/// Outcome of one cycle.
struct CycleResult {
  CrashPoint point = CrashPoint::kNumPoints;
  uint64_t armed_nth = 0;
  bool fired = false;         ///< A pipeline thread actually crashed.
  Scn query_scn = kInvalidScn;
  AuditReport report;         ///< Full invariant catalog, post-convergence.
};

/// Drives seeded crash–restart cycles against a live cluster: churn the
/// primary, let the armed crash point kill a standby pipeline thread
/// mid-apply, crash-restart the standby, converge, and run the invariant
/// auditor. Cycles share one driver so the QuerySCN floor and the shipped
/// ledger accumulate across restarts.
class CrashCycleDriver {
 public:
  CrashCycleDriver(AdgCluster* cluster, ChaosController* chaos, ObjectId table,
                   const HarnessOptions& options);

  /// One full cycle against `point`. With crash points compiled out the
  /// arming is skipped and the cycle degenerates to churn + converge + audit.
  CycleResult RunCycle(CrashPoint point);

  const ApplyLedger& ledger() const { return ledger_; }
  Scn floor_scn() const { return floor_; }
  uint64_t cycles_fired() const { return cycles_fired_; }

 private:
  void Churn();
  /// Appends a violation to `out` if the standby fails to converge.
  void Converge(std::vector<std::string>* out);
  uint64_t NthRange(CrashPoint point) const;
  double Uniform();
  Row MakeRow(int64_t key, int64_t payload) const;

  AdgCluster* cluster_;
  ChaosController* chaos_;
  ObjectId table_;
  HarnessOptions options_;
  InvariantAuditor auditor_;
  ApplyLedger ledger_;
  std::mt19937_64 rng_;
  std::vector<std::pair<int64_t, RowId>> live_;  ///< Committed visible rows.
  int64_t next_key_ = 0;
  Scn floor_ = kInvalidScn;
  uint64_t cycles_fired_ = 0;
};

}  // namespace stratus::chaos

#endif  // STRATUS_CHAOS_CHAOS_HARNESS_H_
