#include "chaos/invariant_auditor.h"

#include <algorithm>
#include <sstream>

#include "imcs/imcu.h"
#include "imcs/smu.h"
#include "storage/block.h"
#include "storage/visibility.h"

namespace stratus::chaos {
namespace {

// A report longer than this is noise: the first violations identify the bug.
constexpr size_t kMaxViolations = 64;

/// Order- and path-independent serialization of one row for set comparison.
std::string RowKey(const Row& row) {
  std::string key;
  for (const Value& v : row) {
    key += v.ToString();
    key += '\x1f';
  }
  return key;
}

std::vector<std::string> SortedKeys(const std::vector<Row>& rows) {
  std::vector<std::string> keys;
  keys.reserve(rows.size());
  for (const Row& row : rows) keys.push_back(RowKey(row));
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// First key present in `a` but not `b` (both sorted), empty if none.
std::string FirstOnlyIn(const std::vector<std::string>& a,
                        const std::vector<std::string>& b) {
  std::vector<std::string> diff;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(diff));
  return diff.empty() ? std::string() : diff.front();
}

Value ColumnOrNull(const Row& row, size_t c) {
  return c < row.size() ? row[c] : Value::Null();
}

}  // namespace

std::string AuditReport::ToString() const {
  std::ostringstream os;
  os << "audit: " << checks_run << " checks, " << rows_compared
     << " rows compared, " << violations.size() << " violation(s)";
  for (const std::string& v : violations) os << "\n  - " << v;
  return os.str();
}

InvariantAuditor::InvariantAuditor(PrimaryDb* primary, StandbyDb* standby,
                                   std::vector<ObjectId> tables,
                                   uint32_t standby_instances)
    : primary_(primary), standby_(standby), tables_(std::move(tables)),
      standby_instances_(standby_instances == 0 ? 1 : standby_instances) {}

void InvariantAuditor::Violation(AuditReport* report, std::string message) {
  if (report->violations.size() < kMaxViolations)
    report->violations.push_back(std::move(message));
  else if (report->violations.size() == kMaxViolations)
    report->violations.push_back("... further violations suppressed");
}

AuditReport InvariantAuditor::Run(const AuditOptions& options) {
  AuditReport report;
  const Scn scn = standby_->query_scn();
  CheckQueryScn(options, scn, &report);
  if (scn == kInvalidScn) return report;  // Nothing else is well-defined.
  for (ObjectId table : tables_) {
    CheckDualPathEquality(table, scn, &report);
    CheckSmuSuperset(table, scn, &report);
    if (options.check_primary_equivalence)
      CheckPrimaryEquivalence(table, scn, &report);
  }
  CheckCommitTableChop(scn, &report);
  CheckJournalQuiescence(&report);
  CheckApplyAccounting(options, &report);
  return report;
}

void InvariantAuditor::CheckQueryScn(const AuditOptions& options, Scn scn,
                                     AuditReport* report) {
  ++report->checks_run;
  if (scn == kInvalidScn) {
    Violation(report, "I1: no QuerySCN published after convergence");
    return;
  }
  if (options.min_query_scn != kInvalidScn && scn < options.min_query_scn) {
    std::ostringstream os;
    os << "I1: QuerySCN regressed: published " << scn << " < floor "
       << options.min_query_scn;
    Violation(report, os.str());
  }
  RecoveryCoordinator* coordinator = standby_->coordinator();
  if (coordinator != nullptr) {
    const Scn candidate = coordinator->CandidateScn();
    if (candidate != kInvalidScn && scn > candidate) {
      std::ostringstream os;
      os << "I1: QuerySCN " << scn << " above min worker watermark "
         << candidate;
      Violation(report, os.str());
    }
  }
}

void InvariantAuditor::CheckDualPathEquality(ObjectId table, Scn scn,
                                             AuditReport* report) {
  ++report->checks_run;
  ScanQuery row_q;
  row_q.object = table;
  row_q.force_row_store = true;
  ScanQuery im_q;
  im_q.object = table;

  StatusOr<QueryResult> row_r = standby_->QueryAt(row_q, scn);
  StatusOr<QueryResult> im_r = standby_->QueryAt(im_q, scn);
  if (!row_r.ok() || !im_r.ok()) {
    std::ostringstream os;
    os << "I2: table " << table << ": query failed: row-store="
       << (row_r.ok() ? "ok" : row_r.status().ToString())
       << " imcs=" << (im_r.ok() ? "ok" : im_r.status().ToString());
    Violation(report, os.str());
    return;
  }
  const std::vector<std::string> row_keys = SortedKeys(row_r.value().rows);
  const std::vector<std::string> im_keys = SortedKeys(im_r.value().rows);
  report->rows_compared += row_keys.size();
  if (row_keys == im_keys) return;
  std::ostringstream os;
  os << "I2: table " << table << " @scn " << scn << ": row-store path ("
     << row_keys.size() << " rows) != IMCS path (" << im_keys.size()
     << " rows)";
  const std::string only_row = FirstOnlyIn(row_keys, im_keys);
  const std::string only_im = FirstOnlyIn(im_keys, row_keys);
  if (!only_row.empty()) os << "; row-store-only example: [" << only_row << "]";
  if (!only_im.empty()) os << "; IMCS-only example: [" << only_im << "]";
  Violation(report, os.str());
}

void InvariantAuditor::CheckSmuSuperset(ObjectId table, Scn scn,
                                        AuditReport* report) {
  ++report->checks_run;
  ReadView view;
  view.snapshot_scn = scn;
  view.resolver = standby_->txn_table();
  BlockStore* blocks = standby_->block_store();

  for (uint32_t inst = 0; inst < standby_instances_; ++inst) {
    ImStore* store = standby_->im_store(inst);
    if (store == nullptr) continue;
    for (const auto& smu : store->SmusForObject(table)) {
      if (smu->state() != SmuState::kReady) continue;
      const std::shared_ptr<const Imcu> imcu = smu->imcu();
      if (imcu == nullptr) continue;
      const Schema& schema = imcu->schema();
      const std::vector<Dba>& dbas = smu->dbas();
      for (uint32_t r = 0; r < smu->num_rows(); ++r) {
        if (smu->IsRowInvalid(r)) continue;  // Covered by invalidity.
        const Dba dba = dbas[r / kRowsPerBlock];
        const SlotId slot = static_cast<SlotId>(r % kRowsPerBlock);
        Block* block = blocks->GetBlock(dba);
        Row store_row;
        const bool store_visible =
            block != nullptr && slot < block->used_slots() &&
            block->ReadRow(slot, view, &store_row).ok();
        const bool imcu_present = imcu->Present(r);
        ++report->rows_compared;
        if (store_visible != imcu_present) {
          std::ostringstream os;
          os << "I3: table " << table << " smu@" << smu->snapshot_scn()
             << " row " << r << " (dba " << dba << " slot " << slot
             << "): row store " << (store_visible ? "visible" : "absent")
             << " vs IMCU " << (imcu_present ? "present" : "absent")
             << " @scn " << scn << " but row not marked invalid";
          Violation(report, os.str());
          continue;
        }
        if (!store_visible) continue;
        const Row imcu_row = imcu->Materialize(r);
        for (size_t c = 0; c < schema.num_columns(); ++c) {
          if (schema.IsDropped(c)) continue;
          if (ColumnOrNull(store_row, c) == ColumnOrNull(imcu_row, c)) continue;
          std::ostringstream os;
          os << "I3: table " << table << " row " << r << " (dba " << dba
             << " slot " << slot << ") col " << c << ": row store "
             << ColumnOrNull(store_row, c).ToString() << " vs IMCU "
             << ColumnOrNull(imcu_row, c).ToString()
             << " but row not marked invalid";
          Violation(report, os.str());
          break;
        }
      }
    }
  }
}

void InvariantAuditor::CheckCommitTableChop(Scn scn, AuditReport* report) {
  ++report->checks_run;
  ImAdgCommitTable* commit_table = standby_->commit_table();
  if (commit_table == nullptr) return;  // No pipeline (promoted / stopped).
  const Scn min_pending = commit_table->MinPendingScn();
  if (min_pending <= scn) {
    std::ostringstream os;
    os << "I4: commit table still holds SCN " << min_pending
       << " at or below published QuerySCN " << scn
       << " (its invalidations were never flushed)";
    Violation(report, os.str());
  }
}

void InvariantAuditor::CheckJournalQuiescence(AuditReport* report) {
  ++report->checks_run;
  ImAdgJournal* journal = standby_->journal();
  ImAdgCommitTable* commit_table = standby_->commit_table();
  if (journal == nullptr) return;
  // Only meaningful once the commit table has drained: a still-pending commit
  // legitimately anchors its journal records.
  if (commit_table != nullptr && commit_table->MinPendingScn() != kMaxScn)
    return;
  const size_t anchors = journal->live_anchors();
  if (anchors != 0) {
    std::ostringstream os;
    os << "I5: " << anchors
       << " live journal anchor(s) with an empty commit table (leaked "
          "per-transaction journal state)";
    Violation(report, os.str());
  }
}

void InvariantAuditor::CheckApplyAccounting(const AuditOptions& options,
                                            AuditReport* report) {
  if (options.expected_applies == nullptr) return;
  ++report->checks_run;
  const std::unordered_map<uint64_t, uint64_t> applied =
      standby_->ApplyAccountingSnapshot();
  const std::unordered_map<uint64_t, uint64_t>& expected =
      *options.expected_applies;
  for (const auto& [key, want] : expected) {
    const auto it = applied.find(key);
    const uint64_t got = it == applied.end() ? 0 : it->second;
    if (got == want) continue;
    std::ostringstream os;
    os << "I6: dba " << (key >> 20) << " slot " << (key & 0xfffff) << ": "
       << want << " change vector(s) shipped, " << got << " applied ("
       << (got < want ? "skipped" : "double-applied") << ")";
    Violation(report, os.str());
  }
  for (const auto& [key, got] : applied) {
    if (expected.count(key) != 0) continue;
    std::ostringstream os;
    os << "I6: dba " << (key >> 20) << " slot " << (key & 0xfffff) << ": "
       << got << " apply(ies) recorded for a row no shipped change vector "
       << "targeted";
    Violation(report, os.str());
  }
  report->rows_compared += expected.size();
}

void InvariantAuditor::CheckPrimaryEquivalence(ObjectId table, Scn scn,
                                               AuditReport* report) {
  ++report->checks_run;
  ScanQuery q;
  q.object = table;
  q.force_row_store = true;
  StatusOr<QueryResult> primary_r = primary_->QueryAt(q, scn);
  StatusOr<QueryResult> standby_r = standby_->QueryAt(q, scn);
  if (!primary_r.ok() || !standby_r.ok()) {
    std::ostringstream os;
    os << "I7: table " << table << ": query failed: primary="
       << (primary_r.ok() ? "ok" : primary_r.status().ToString())
       << " standby=" << (standby_r.ok() ? "ok" : standby_r.status().ToString());
    Violation(report, os.str());
    return;
  }
  const std::vector<std::string> primary_keys =
      SortedKeys(primary_r.value().rows);
  const std::vector<std::string> standby_keys =
      SortedKeys(standby_r.value().rows);
  report->rows_compared += primary_keys.size();
  if (primary_keys == standby_keys) return;
  std::ostringstream os;
  os << "I7: table " << table << " @scn " << scn << ": primary ("
     << primary_keys.size() << " rows) != standby (" << standby_keys.size()
     << " rows)";
  const std::string only_p = FirstOnlyIn(primary_keys, standby_keys);
  const std::string only_s = FirstOnlyIn(standby_keys, primary_keys);
  if (!only_p.empty()) os << "; primary-only example: [" << only_p << "]";
  if (!only_s.empty()) os << "; standby-only example: [" << only_s << "]";
  Violation(report, os.str());
}

}  // namespace stratus::chaos
