#include "chaos/crash_point.h"

#include <chrono>

namespace stratus {
namespace chaos {

const char* CrashPointName(CrashPoint point) {
  switch (point) {
    case CrashPoint::kDispatchHandoff: return "dispatch_handoff";
    case CrashPoint::kWorkerDequeue: return "worker_dequeue";
    case CrashPoint::kWorkerApply: return "worker_apply";
    case CrashPoint::kJournalMine: return "journal_mine";
    case CrashPoint::kCommitChop: return "commit_chop";
    case CrashPoint::kQuiesceBegin: return "quiesce_begin";
    case CrashPoint::kQuiescePublish: return "quiesce_publish";
    case CrashPoint::kQuiesceEnd: return "quiesce_end";
    case CrashPoint::kFlushStep: return "flush_step";
    case CrashPoint::kPopulationSnapshot: return "population_snapshot";
    case CrashPoint::kNumPoints: return "invalid";
  }
  return "invalid";
}

void ChaosController::Arm(CrashPoint point, uint64_t nth) {
  if (nth == 0) nth = 1;
  fired_.store(false, std::memory_order_release);
  fired_point_.store(static_cast<uint8_t>(CrashPoint::kNumPoints),
                     std::memory_order_release);
  fired_hit_.store(0, std::memory_order_release);
  countdown_.store(nth, std::memory_order_release);
  armed_point_.store(static_cast<uint8_t>(point), std::memory_order_release);
  // armed_ last: a Hit racing with Arm sees either fully-armed or not armed.
  armed_.store(true, std::memory_order_release);
}

void ChaosController::Disarm() { armed_.store(false, std::memory_order_release); }

void ChaosController::Hit(CrashPoint point) {
  const uint64_t hit =
      hits_[static_cast<size_t>(point)].fetch_add(1, std::memory_order_relaxed) + 1;
  if (!armed_.load(std::memory_order_acquire)) return;
  if (armed_point_.load(std::memory_order_acquire) !=
      static_cast<uint8_t>(point)) {
    return;
  }
  // Exactly one thread observes the countdown reach zero and fires; the
  // controller disarms itself so draining/teardown never re-throws.
  if (countdown_.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  armed_.store(false, std::memory_order_release);
  fired_point_.store(static_cast<uint8_t>(point), std::memory_order_release);
  fired_hit_.store(hit, std::memory_order_release);
  {
    std::lock_guard<std::mutex> g(fire_mu_);
    fired_.store(true, std::memory_order_release);
    fire_cv_.notify_all();
  }
  throw CrashSignal{point, hit};
}

bool ChaosController::WaitForFire(int64_t timeout_us) const {
  std::unique_lock<std::mutex> g(fire_mu_);
  fire_cv_.wait_for(g, std::chrono::microseconds(timeout_us),
                    [&] { return fired_.load(std::memory_order_acquire); });
  return fired_.load(std::memory_order_acquire);
}

void ChaosController::ArmApplyError(uint64_t nth) {
  if (nth == 0) nth = 1;
  apply_error_countdown_.store(static_cast<int64_t>(nth),
                               std::memory_order_release);
}

bool ChaosController::ShouldFailApply() {
  if (apply_error_countdown_.load(std::memory_order_acquire) <= 0) return false;
  if (apply_error_countdown_.fetch_sub(1, std::memory_order_acq_rel) != 1)
    return false;
  apply_errors_injected_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace chaos
}  // namespace stratus
