#ifndef STRATUS_CHAOS_CRASH_POINT_H_
#define STRATUS_CHAOS_CRASH_POINT_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace stratus {
namespace chaos {

/// Every instrumented location in the standby apply path. A crash point is a
/// place where a real standby instance could die (SIGKILL, power loss) with
/// observable intermediate state: the registry lets a test kill the pipeline
/// at exactly that state, deterministically, and then prove the restart
/// protocol (Section III.E) still converges to a correct database.
enum class CrashPoint : uint8_t {
  /// Dispatcher about to pull the next record from the log merger. Fires with
  /// no record in flight (the merger pops destructively only at emission).
  kDispatchHandoff = 0,
  /// Recovery worker popped an entry but has not yet applied or mined it.
  kWorkerDequeue,
  /// Recovery worker about to apply a change vector to the physical database.
  kWorkerApply,
  /// Mining Component about to buffer an invalidation record in the journal
  /// (the change vector is already applied physically — the window where the
  /// journal's record set goes partial, Section III.E).
  kJournalMine,
  /// Coordinator about to chop the IM-ADG Commit Table for an advancement.
  kCommitChop,
  /// Coordinator about to enter the Quiesce Period (exclusive lock not yet
  /// held).
  kQuiesceBegin,
  /// Invalidation flush drained; the new QuerySCN not yet published (still
  /// inside the Quiesce Period).
  kQuiescePublish,
  /// QuerySCN published, Quiesce Period just ended; OnPublished/listeners not
  /// yet notified.
  kQuiesceEnd,
  /// A flusher (coordinator or cooperative recovery worker) holding a
  /// detached worklink batch, about to process its next node.
  kFlushStep,
  /// Population captured a snapshot SCN and registered the SMU, but the IMCU
  /// column data is not built yet (the SMU-first window of Section III.A).
  kPopulationSnapshot,
  kNumPoints,
};

inline constexpr size_t kNumCrashPoints =
    static_cast<size_t>(CrashPoint::kNumPoints);

const char* CrashPointName(CrashPoint point);

/// Thrown out of an armed crash point. Deliberately not derived from
/// std::exception: nothing in the pipeline may catch it accidentally — only
/// the per-thread chaos handlers (which rethrow or record the crash) name it.
struct CrashSignal {
  CrashPoint point = CrashPoint::kNumPoints;
  uint64_t hit = 0;  ///< The per-point hit ordinal that fired (1-based).
};

/// True when STRATUS_CRASH_POINT compiles to a real hit (debug/CI builds).
/// Release builds compile the macro to nothing; chaos tests that depend on a
/// signal actually firing gate themselves on this.
constexpr bool CrashPointsCompiledIn() {
#ifdef STRATUS_CHAOS_POINTS
  return true;
#else
  return false;
#endif
}

/// Deterministic, seeded crash injection for one standby instance.
///
/// Instance-scoped (not a process singleton): primary and standby share one
/// process here, and only the standby's pipeline threads must ever observe an
/// armed point. The controller is threaded through DatabaseOptions into the
/// standby's apply engine, coordinator, mining, flush and population.
///
/// Arming is one-shot: the Nth hit of the armed point (counted from the
/// moment of arming) throws a CrashSignal in whichever pipeline thread
/// reached it, and the controller disarms itself so teardown/drain never
/// re-fires. The fast path for an un-armed point is one relaxed atomic
/// increment.
class ChaosController {
 public:
  ChaosController() = default;
  ChaosController(const ChaosController&) = delete;
  ChaosController& operator=(const ChaosController&) = delete;

  /// Arms `point` to fire at its `nth` hit from now (1 = the very next hit).
  /// Clears any previous fire state.
  void Arm(CrashPoint point, uint64_t nth);
  void Disarm();

  /// Called by STRATUS_CRASH_POINT. Throws CrashSignal when this hit is the
  /// armed one.
  void Hit(CrashPoint point);

  bool armed() const { return armed_.load(std::memory_order_acquire); }
  bool fired() const { return fired_.load(std::memory_order_acquire); }
  CrashPoint fired_point() const {
    return static_cast<CrashPoint>(fired_point_.load(std::memory_order_acquire));
  }
  uint64_t fired_hit() const { return fired_hit_.load(std::memory_order_acquire); }

  /// Blocks until an armed point fires or `timeout_us` elapses; returns
  /// fired().
  bool WaitForFire(int64_t timeout_us) const;

  /// Lifetime hit counter for `point` (never reset by Arm/Disarm).
  uint64_t hits(CrashPoint point) const {
    return hits_[static_cast<size_t>(point)].load(std::memory_order_relaxed);
  }

  /// Arms the Nth *data change-vector apply* from now to report a failed
  /// Status even though the physical apply succeeded (the swallowed-error
  /// satellite: proves a failing apply quarantines its IMCU instead of
  /// silently serving stale columnar data). One-shot, like Arm().
  void ArmApplyError(uint64_t nth);
  /// Consumed by the standby's ApplyCv; true exactly once, at the armed hit.
  bool ShouldFailApply();
  uint64_t apply_errors_injected() const {
    return apply_errors_injected_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> armed_{false};
  std::atomic<uint8_t> armed_point_{static_cast<uint8_t>(CrashPoint::kNumPoints)};
  std::atomic<uint64_t> countdown_{0};

  std::atomic<bool> fired_{false};
  std::atomic<uint8_t> fired_point_{static_cast<uint8_t>(CrashPoint::kNumPoints)};
  std::atomic<uint64_t> fired_hit_{0};

  mutable std::mutex fire_mu_;
  mutable std::condition_variable fire_cv_;

  std::array<std::atomic<uint64_t>, kNumCrashPoints> hits_{};

  std::atomic<int64_t> apply_error_countdown_{0};  ///< 0 = disarmed.
  std::atomic<uint64_t> apply_errors_injected_{0};
};

}  // namespace chaos
}  // namespace stratus

/// Compiled into the apply path. `controller` is a chaos::ChaosController*
/// (may be null: production wiring passes none and the check folds to a
/// single branch). In release builds (STRATUS_CHAOS=OFF) the macro is a no-op
/// and the whole registry costs nothing.
#ifdef STRATUS_CHAOS_POINTS
#define STRATUS_CRASH_POINT(controller, point)               \
  do {                                                       \
    if ((controller) != nullptr) (controller)->Hit(point);   \
  } while (0)
#else
#define STRATUS_CRASH_POINT(controller, point) \
  do {                                         \
  } while (0)
#endif

#endif  // STRATUS_CHAOS_CRASH_POINT_H_
