#ifndef STRATUS_TXN_TXN_MANAGER_H_
#define STRATUS_TXN_TXN_MANAGER_H_

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "redo/redo_log.h"
#include "storage/block_store.h"
#include "storage/table.h"
#include "txn/txn_table.h"

namespace stratus {

/// A transaction handle on the primary. Bound to one redo thread (RAC
/// instance) and one tenant, as in Oracle.
struct Transaction {
  Xid xid = kInvalidXid;
  RedoThreadId thread = 0;
  TenantId tenant = kDefaultTenant;
  bool begun = false;        ///< Begin control CV emitted (lazily, on first DML).
  bool touched_im = false;   ///< Modified an object enabled for the standby IMCS.
  bool finished = false;
  /// Rows modified in objects populated in the *primary's* IMCS; the DBIM
  /// Transaction Manager invalidates them in the column store at commit.
  std::vector<std::pair<ObjectId, RowId>> im_touches;
};

/// Commit-time integration of the primary's DBIM Transaction Manager: marking
/// the committed rows invalid in the primary IMCS must be mutually exclusive
/// with a population snapshot capture (see `PrimaryImSync`). The three calls
/// are made in order, all inside the commit critical section, with the
/// commitSCN already assigned when OnCommit runs.
class CommitHooks {
 public:
  virtual ~CommitHooks() = default;
  virtual void PreCommitLock() = 0;
  virtual void OnCommit(const Transaction& txn, Scn commit_scn) = 0;
  virtual void PostCommitUnlock() = 0;
};

/// Tracks snapshots held open by running queries so version-chain GC never
/// prunes a version a live query could still need.
class SnapshotRegistry {
 public:
  void Register(Scn scn);
  void Unregister(Scn scn);
  /// Smallest registered snapshot, or kMaxScn when none is active.
  Scn LowWatermark() const;

 private:
  mutable std::mutex mu_;
  std::multiset<Scn> active_;
};

/// RAII registration of a query snapshot.
class SnapshotGuard {
 public:
  SnapshotGuard(SnapshotRegistry* reg, Scn scn) : reg_(reg), scn_(scn) {
    if (reg_ != nullptr) reg_->Register(scn_);
  }
  ~SnapshotGuard() {
    if (reg_ != nullptr) reg_->Unregister(scn_);
  }
  SnapshotGuard(const SnapshotGuard&) = delete;
  SnapshotGuard& operator=(const SnapshotGuard&) = delete;

 private:
  SnapshotRegistry* reg_;
  Scn scn_;
};

/// The primary database's transaction manager: begins transactions, applies
/// DML to blocks under row locks (no-wait), generates the redo change vectors
/// the standby consumes, and commits/aborts through the transaction table.
///
/// Specialized redo generation (Section III.E): commit records carry the
/// `im_flag` annotation when the transaction modified any object enabled for
/// population into an IMCS, so the standby can avoid pessimistic coarse
/// invalidation after a restart. Controlled by `set_specialized_redo`.
class TxnManager {
 public:
  /// `logs[i]` is redo thread i's stream. `im_object_checker` answers "is
  /// this object enabled for population into any In-Memory Column Store?".
  TxnManager(ScnAllocator* scns, TxnTable* txn_table, BlockStore* store,
             std::vector<RedoLog*> logs,
             std::function<bool(ObjectId)> im_object_checker);

  TxnManager(const TxnManager&) = delete;
  TxnManager& operator=(const TxnManager&) = delete;

  Transaction Begin(RedoThreadId thread = 0, TenantId tenant = kDefaultTenant);

  /// Inserts `row` into `table`; returns the new row's address via `*rid`.
  Status Insert(Transaction* txn, Table* table, Row row, RowId* rid);

  /// Updates the row at `rid` to the full after-image `row`. Fails with
  /// Aborted on a row-lock conflict (no-wait), leaving the transaction alive.
  Status Update(Transaction* txn, Table* table, RowId rid, Row row);

  /// Deletes the row at `rid`.
  Status Delete(Transaction* txn, Table* table, RowId rid);

  /// Commits; returns the commitSCN.
  StatusOr<Scn> Commit(Transaction* txn);
  void Abort(Transaction* txn);

  /// Highest SCN whose commits are guaranteed visible to new snapshots.
  Scn visible_scn() const { return visible_scn_.load(std::memory_order_acquire); }

  /// A read view for a new query (or for `txn`'s own reads).
  ReadView MakeReadView(const Transaction* txn = nullptr) const;

  TxnTable* txn_table() const { return txn_table_; }
  SnapshotRegistry* snapshots() { return &snapshots_; }

  /// GC low watermark: no snapshot at or below it is active.
  Scn GcLowWatermark() const;

  void set_specialized_redo(bool on) { specialized_redo_ = on; }
  bool specialized_redo() const { return specialized_redo_; }

  /// Failover bootstrap: resume visibility at the promoted database's last
  /// QuerySCN and XID allocation above everything the redo stream carried.
  void Bootstrap(Scn visible_scn, Xid next_xid) {
    visible_scn_.store(visible_scn, std::memory_order_release);
    next_xid_.store(next_xid, std::memory_order_release);
  }

  /// Wires the primary-IMCS commit integration. `touch_checker` answers "is
  /// this object populated in the primary's own IMCS?" (touch collection);
  /// `hooks` performs the commit-time invalidation. Set before traffic starts.
  void SetPrimaryImIntegration(std::function<bool(ObjectId)> touch_checker,
                               CommitHooks* hooks) {
    touch_checker_ = std::move(touch_checker);
    commit_hooks_ = hooks;
  }

  uint64_t commits() const { return commits_.load(std::memory_order_relaxed); }
  uint64_t aborts() const { return aborts_.load(std::memory_order_relaxed); }

 private:
  Status EnsureBegun(Transaction* txn);
  RedoLog* LogFor(const Transaction& txn) const { return logs_[txn.thread]; }
  void NoteImTouch(Transaction* txn, ObjectId object_id, RowId rid);

  ScnAllocator* scns_;
  TxnTable* txn_table_;
  BlockStore* store_;
  std::vector<RedoLog*> logs_;
  std::function<bool(ObjectId)> im_object_checker_;
  std::function<bool(ObjectId)> touch_checker_;
  CommitHooks* commit_hooks_ = nullptr;

  std::atomic<Xid> next_xid_{1};
  std::atomic<Scn> visible_scn_{kInvalidScn};
  std::mutex commit_mu_;
  SnapshotRegistry snapshots_;
  bool specialized_redo_ = true;

  std::atomic<uint64_t> commits_{0};
  std::atomic<uint64_t> aborts_{0};
};

}  // namespace stratus

#endif  // STRATUS_TXN_TXN_MANAGER_H_
