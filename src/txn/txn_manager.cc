#include "txn/txn_manager.h"

#include <algorithm>

#include "obs/trace.h"

namespace stratus {

void SnapshotRegistry::Register(Scn scn) {
  std::lock_guard<std::mutex> g(mu_);
  active_.insert(scn);
}

void SnapshotRegistry::Unregister(Scn scn) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = active_.find(scn);
  if (it != active_.end()) active_.erase(it);
}

Scn SnapshotRegistry::LowWatermark() const {
  std::lock_guard<std::mutex> g(mu_);
  return active_.empty() ? kMaxScn : *active_.begin();
}

TxnManager::TxnManager(ScnAllocator* scns, TxnTable* txn_table, BlockStore* store,
                       std::vector<RedoLog*> logs,
                       std::function<bool(ObjectId)> im_object_checker)
    : scns_(scns),
      txn_table_(txn_table),
      store_(store),
      logs_(std::move(logs)),
      im_object_checker_(std::move(im_object_checker)) {}

Transaction TxnManager::Begin(RedoThreadId thread, TenantId tenant) {
  Transaction txn;
  txn.xid = next_xid_.fetch_add(1, std::memory_order_relaxed);
  txn.thread = thread;
  txn.tenant = tenant;
  return txn;
}

Status TxnManager::EnsureBegun(Transaction* txn) {
  if (txn->finished) return Status::FailedPrecondition("transaction finished");
  if (txn->begun) return Status::OK();
  txn_table_->Begin(txn->xid);
  ChangeVector cv;
  cv.kind = CvKind::kTxnBegin;
  cv.xid = txn->xid;
  cv.dba = TxnTableDbaFor(txn->xid);
  cv.tenant = txn->tenant;
  LogFor(*txn)->Append({std::move(cv)});
  txn->begun = true;
  return Status::OK();
}

void TxnManager::NoteImTouch(Transaction* txn, ObjectId object_id, RowId rid) {
  if (!txn->touched_im && im_object_checker_ && im_object_checker_(object_id))
    txn->touched_im = true;
  if (touch_checker_ && touch_checker_(object_id))
    txn->im_touches.emplace_back(object_id, rid);
}

Status TxnManager::Insert(Transaction* txn, Table* table, Row row, RowId* rid) {
  STRATUS_RETURN_IF_ERROR(EnsureBegun(txn));
  STRATUS_RETURN_IF_ERROR(table->schema()->ValidateRow(row));
  const RowId target = table->AllocateInsertSlot();
  Block* block = store_->GetBlock(target.dba);
  if (block == nullptr) return Status::Internal("allocated block missing");
  STRATUS_RETURN_IF_ERROR(
      block->ApplyInsert(target.slot, txn->xid, row, /*scn=*/kInvalidScn));
  if (table->index() != nullptr && !row.empty() && row[0].type() == ValueType::kInt)
    table->index()->Insert(row[0].as_int(), target);

  ChangeVector cv;
  cv.kind = CvKind::kInsert;
  cv.xid = txn->xid;
  cv.dba = target.dba;
  cv.object_id = table->object_id();
  cv.tenant = txn->tenant;
  cv.slot = target.slot;
  cv.after = std::move(row);
  LogFor(*txn)->Append({std::move(cv)});
  NoteImTouch(txn, table->object_id(), target);
  if (rid != nullptr) *rid = target;
  return Status::OK();
}

Status TxnManager::Update(Transaction* txn, Table* table, RowId rid, Row row) {
  STRATUS_RETURN_IF_ERROR(EnsureBegun(txn));
  STRATUS_RETURN_IF_ERROR(table->schema()->ValidateRow(row));
  Block* block = store_->GetBlock(rid.dba);
  if (block == nullptr) return Status::NotFound("no block at dba");
  STRATUS_RETURN_IF_ERROR(block->UpdateChecked(rid.slot, txn->xid, row,
                                               /*scn=*/kInvalidScn, *txn_table_));
  ChangeVector cv;
  cv.kind = CvKind::kUpdate;
  cv.xid = txn->xid;
  cv.dba = rid.dba;
  cv.object_id = table->object_id();
  cv.tenant = txn->tenant;
  cv.slot = rid.slot;
  cv.after = std::move(row);
  LogFor(*txn)->Append({std::move(cv)});
  NoteImTouch(txn, table->object_id(), rid);
  return Status::OK();
}

Status TxnManager::Delete(Transaction* txn, Table* table, RowId rid) {
  STRATUS_RETURN_IF_ERROR(EnsureBegun(txn));
  Block* block = store_->GetBlock(rid.dba);
  if (block == nullptr) return Status::NotFound("no block at dba");
  STRATUS_RETURN_IF_ERROR(
      block->DeleteChecked(rid.slot, txn->xid, /*scn=*/kInvalidScn, *txn_table_));
  ChangeVector cv;
  cv.kind = CvKind::kDelete;
  cv.xid = txn->xid;
  cv.dba = rid.dba;
  cv.object_id = table->object_id();
  cv.tenant = txn->tenant;
  cv.slot = rid.slot;
  LogFor(*txn)->Append({std::move(cv)});
  NoteImTouch(txn, table->object_id(), rid);
  return Status::OK();
}

StatusOr<Scn> TxnManager::Commit(Transaction* txn) {
  if (txn->finished) return Status::FailedPrecondition("transaction finished");
  txn->finished = true;
  if (!txn->begun) {
    // Read-only transaction: nothing to commit, no redo.
    return visible_scn();
  }
  ChangeVector cv;
  cv.kind = CvKind::kTxnCommit;
  cv.xid = txn->xid;
  cv.dba = TxnTableDbaFor(txn->xid);
  cv.tenant = txn->tenant;
  // Specialized redo generation (Section III.E): annotate the commit record.
  // When disabled, the standby must pessimistically assume every transaction
  // may have touched IMCS objects.
  cv.im_flag = specialized_redo_ ? txn->touched_im : true;

  // The commit mutex serializes (append commit CV → mark committed → advance
  // the visible SCN) so snapshots taken at visible_scn() always see a prefix
  // of commits in commitSCN order.
  STRATUS_SPAN(obs::Stage::kRedoGenerate, txn->xid);
  std::lock_guard<std::mutex> g(commit_mu_);
  if (commit_hooks_ != nullptr) commit_hooks_->PreCommitLock();
  const Scn commit_scn = LogFor(*txn)->Append({std::move(cv)});
  txn_table_->Commit(txn->xid, commit_scn);
  // Primary DBIM maintenance: invalidate the committed rows in the primary's
  // own column store before the commit becomes visible to new snapshots.
  if (commit_hooks_ != nullptr) commit_hooks_->OnCommit(*txn, commit_scn);
  visible_scn_.store(commit_scn, std::memory_order_release);
  if (commit_hooks_ != nullptr) commit_hooks_->PostCommitUnlock();
  commits_.fetch_add(1, std::memory_order_relaxed);
  return commit_scn;
}

void TxnManager::Abort(Transaction* txn) {
  if (txn->finished) return;
  txn->finished = true;
  if (!txn->begun) return;
  ChangeVector cv;
  cv.kind = CvKind::kTxnAbort;
  cv.xid = txn->xid;
  cv.dba = TxnTableDbaFor(txn->xid);
  cv.tenant = txn->tenant;
  LogFor(*txn)->Append({std::move(cv)});
  txn_table_->Abort(txn->xid);
  aborts_.fetch_add(1, std::memory_order_relaxed);
}

ReadView TxnManager::MakeReadView(const Transaction* txn) const {
  ReadView view;
  view.snapshot_scn = visible_scn();
  view.self_xid = txn != nullptr ? txn->xid : kInvalidXid;
  view.resolver = txn_table_;
  return view;
}

Scn TxnManager::GcLowWatermark() const {
  const Scn active = snapshots_.LowWatermark();
  const Scn visible = visible_scn();
  return active == kMaxScn ? visible : std::min(active, visible);
}

}  // namespace stratus
