#ifndef STRATUS_TXN_TXN_TABLE_H_
#define STRATUS_TXN_TXN_TABLE_H_

#include <array>
#include <atomic>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.h"
#include "storage/visibility.h"

namespace stratus {

/// The transaction table: XID → state (+ commitSCN). Row-version visibility
/// resolves through it (see `storage/visibility.h`).
///
/// On the primary it is maintained by the transaction manager; on the standby
/// it is maintained physically, by recovery workers applying the begin /
/// commit / abort control change vectors — which is why a standby query at
/// the QuerySCN sees exactly the transactions whose commit CV has been
/// applied, the core of the consistency argument in Section II.A.
class TxnTable : public VisibilityResolver {
 public:
  TxnTable() = default;

  void Begin(Xid xid);
  void Commit(Xid xid, Scn commit_scn);
  void Abort(Xid xid);

  TxnStatusInfo Resolve(Xid xid) const override;

  /// Number of transactions ever registered (diagnostics).
  size_t size() const;

  /// Highest XID ever observed — a promoted standby's transaction manager
  /// resumes XID allocation above it (failover bootstrap).
  Xid max_xid() const { return max_xid_.load(std::memory_order_acquire); }

  /// Drops entries of terminal transactions with commitSCN <= `low_watermark`
  /// whose versions have all been pruned. Conservative helper for long runs;
  /// the caller asserts no version can still reference these XIDs.
  size_t Sweep(Scn low_watermark);

  /// Checkpoint capture: every entry, shard by shard. Taken at checkpoint end
  /// so it covers every control CV applied before any block was captured.
  std::vector<std::pair<Xid, TxnStatusInfo>> Snapshot() const;

  /// Recovery: reloads a Snapshot() capture (the table must be fresh/Reset).
  void Restore(const std::vector<std::pair<Xid, TxnStatusInfo>>& entries);

  /// Drops every entry and rewinds max_xid. Disk-recovery only.
  void Reset();

 private:
  static constexpr size_t kShards = 16;
  struct Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<Xid, TxnStatusInfo> map;
  };
  Shard& ShardFor(Xid xid) const {
    return shards_[xid % kShards];
  }

  void NoteXid(Xid xid) {
    Xid prev = max_xid_.load(std::memory_order_relaxed);
    while (prev < xid &&
           !max_xid_.compare_exchange_weak(prev, xid, std::memory_order_acq_rel)) {
    }
  }

  mutable std::array<Shard, kShards> shards_;
  std::atomic<Xid> max_xid_{0};
};

}  // namespace stratus

#endif  // STRATUS_TXN_TXN_TABLE_H_
