#include "txn/txn_table.h"

#include <mutex>

namespace stratus {

void TxnTable::Begin(Xid xid) {
  NoteXid(xid);
  Shard& s = ShardFor(xid);
  std::unique_lock<std::shared_mutex> g(s.mu);
  s.map.try_emplace(xid, TxnStatusInfo{TxnState::kActive, kInvalidScn});
}

void TxnTable::Commit(Xid xid, Scn commit_scn) {
  NoteXid(xid);
  Shard& s = ShardFor(xid);
  std::unique_lock<std::shared_mutex> g(s.mu);
  s.map[xid] = TxnStatusInfo{TxnState::kCommitted, commit_scn};
}

void TxnTable::Abort(Xid xid) {
  Shard& s = ShardFor(xid);
  std::unique_lock<std::shared_mutex> g(s.mu);
  s.map[xid] = TxnStatusInfo{TxnState::kAborted, kInvalidScn};
}

TxnStatusInfo TxnTable::Resolve(Xid xid) const {
  const Shard& s = ShardFor(xid);
  std::shared_lock<std::shared_mutex> g(s.mu);
  auto it = s.map.find(xid);
  // Unknown XIDs are treated as active: on the standby a DML change vector
  // can be applied by its recovery worker before another worker applies the
  // transaction's begin CV. Such a version must simply not be visible yet.
  if (it == s.map.end()) return TxnStatusInfo{TxnState::kActive, kInvalidScn};
  return it->second;
}

size_t TxnTable::size() const {
  size_t n = 0;
  for (const Shard& s : shards_) {
    std::shared_lock<std::shared_mutex> g(s.mu);
    n += s.map.size();
  }
  return n;
}

size_t TxnTable::Sweep(Scn low_watermark) {
  // Only aborted entries are swept: their versions are unlinked by block
  // pruning, and an unknown XID resolves to kActive (invisible) anyway.
  // Committed entries are retained — a cold (never-read) committed version
  // resolves through the table at any later time.
  size_t removed = 0;
  for (Shard& s : shards_) {
    std::unique_lock<std::shared_mutex> g(s.mu);
    for (auto it = s.map.begin(); it != s.map.end();) {
      if (it->second.state == TxnState::kAborted) {
        it = s.map.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
  }
  (void)low_watermark;
  return removed;
}

std::vector<std::pair<Xid, TxnStatusInfo>> TxnTable::Snapshot() const {
  std::vector<std::pair<Xid, TxnStatusInfo>> out;
  for (const Shard& s : shards_) {
    std::shared_lock<std::shared_mutex> g(s.mu);
    for (const auto& [xid, info] : s.map) out.emplace_back(xid, info);
  }
  return out;
}

void TxnTable::Restore(const std::vector<std::pair<Xid, TxnStatusInfo>>& entries) {
  for (const auto& [xid, info] : entries) {
    NoteXid(xid);
    Shard& s = ShardFor(xid);
    std::unique_lock<std::shared_mutex> g(s.mu);
    s.map[xid] = info;
  }
}

void TxnTable::Reset() {
  for (Shard& s : shards_) {
    std::unique_lock<std::shared_mutex> g(s.mu);
    s.map.clear();
  }
  max_xid_.store(0, std::memory_order_release);
}

}  // namespace stratus
