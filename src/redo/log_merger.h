#ifndef STRATUS_REDO_LOG_MERGER_H_
#define STRATUS_REDO_LOG_MERGER_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "redo/log_shipping.h"

namespace stratus {

/// The standby Log Merger (Section II.A): re-establishes total SCN order over
/// the redo streams shipped from each primary instance. A record with SCN `s`
/// is emitted only once every other stream is known to have no pending record
/// with a smaller SCN (its delivered watermark has passed `s`); idle streams
/// advance via shipper heartbeats.
class LogMerger {
 public:
  explicit LogMerger(std::vector<ReceivedLog*> streams)
      : streams_(std::move(streams)) {}

  LogMerger(const LogMerger&) = delete;
  LogMerger& operator=(const LogMerger&) = delete;

  /// Produces the next record in global SCN order. Blocks up to `timeout_us`
  /// waiting for progress. Returns false if nothing could be emitted (caller
  /// checks `Finished()` to distinguish end-of-stream from a stall).
  bool Next(RedoRecord* out, int64_t timeout_us);

  /// True when every stream is closed and drained.
  bool Finished() const;

  /// Smallest delivered watermark across streams: the SCN up to which the
  /// merged order is complete.
  Scn MergedWatermark() const;

  uint64_t emitted_records() const { return emitted_; }

 private:
  std::vector<ReceivedLog*> streams_;
  uint64_t emitted_ = 0;
};

}  // namespace stratus

#endif  // STRATUS_REDO_LOG_MERGER_H_
