#ifndef STRATUS_REDO_LOG_SHIPPING_H_
#define STRATUS_REDO_LOG_SHIPPING_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.h"
#include "net/channel.h"
#include "redo/change_vector.h"
#include "redo/redo_log.h"

namespace stratus {

/// Standby-side landing area for one shipped redo stream. Records arrive in
/// per-stream SCN order (shipping preserves append order); the log merger
/// consumes them.
class ReceivedLog {
 public:
  void Deliver(std::vector<RedoRecord> records);
  void Close();
  /// Clears the closed flag so a rejoining shipper can deliver again (fleet
  /// standby restart). Queue and watermark are preserved: the watermark is
  /// what makes redelivery across the restart idempotent.
  void Reopen();

  /// Installs a durability tee: every delivered batch is handed to `sink`
  /// (the persist layer's redo archive) under the stream lock BEFORE it is
  /// enqueued for apply, so anything the merger can consume is already on its
  /// way to disk. Pass nullptr to remove. Install only while quiescent.
  void SetDurableSink(std::function<void(const std::vector<RedoRecord>&)> sink);

  /// Disk-restart reset: drops any queued-but-unapplied records and winds the
  /// delivered watermark back to `watermark` (the persisted durable SCN), so
  /// a rejoining shipper redelivers exactly the redo that recovery has not
  /// already replayed from the archive. Also clears the closed flag.
  void ResetToWatermark(Scn watermark);

  /// SCN of the next record, or kInvalidScn if the queue is empty.
  Scn PeekScn() const;
  /// Pops the head record; returns false if empty.
  bool Pop(RedoRecord* out);

  /// Highest SCN delivered into this stream so far (including heartbeats) —
  /// the merger may emit any record with SCN <= this stream's watermark.
  Scn DeliveredWatermark() const {
    return watermark_.load(std::memory_order_acquire);
  }
  bool closed() const { return closed_.load(std::memory_order_acquire); }
  bool Empty() const;

  /// Blocks until the queue is non-empty, the watermark exceeds
  /// `min_watermark`, or the stream closes; bounded by `timeout_us`.
  void WaitForProgress(Scn min_watermark, int64_t timeout_us) const;

  uint64_t delivered_records() const {
    return delivered_records_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::deque<RedoRecord> queue_;
  std::function<void(const std::vector<RedoRecord>&)> durable_sink_;
  std::atomic<Scn> watermark_{kInvalidScn};
  std::atomic<bool> closed_{false};
  std::atomic<uint64_t> delivered_records_{0};
};

/// Options for one redo-transport connection.
struct ShipperOptions {
  /// Fallback idle-poll bound. The shipper normally sleeps on the redo log's
  /// append condition variable and wakes the moment a record lands; this
  /// interval only paces the paused state and caps condvar-miss latency.
  int64_t poll_interval_us = 200;
  /// Simulated one-way network latency applied to every batch. Folded into
  /// the channel's fault delay (kept for back-compat with older configs).
  int64_t network_latency_us = 0;
  /// Max records pulled per batch.
  size_t max_batch = 512;
  /// Emit an SCN heartbeat when idle at least this often, so the standby's
  /// merger (and hence the QuerySCN) can advance across idle streams.
  int64_t heartbeat_interval_us = 2000;
  /// The wire this stream rides. The default kLoopback keeps the historical
  /// deterministic in-process path; kSocket ships every batch over real TCP.
  net::ChannelOptions channel;
  /// Fan-out: id of a persistent RedoLog cursor owned by the caller (the
  /// fleet keeps one per standby so redo is retained across a standby's
  /// kill/rejoin cycle). 0 = the shipper registers its own ephemeral cursor
  /// and unregisters it on Stop — the historical single-standby behavior,
  /// where stopping the shipper releases all retention.
  uint64_t cursor_id = 0;
  /// Durability gate for cursor advancement. When set, the shipper advances
  /// its cursor only past batches whose SCN the standby reports durable
  /// (persist layer fsync watermark) — so if the standby dies after receiving
  /// but before archiving, the primary still retains that redo and the
  /// rejoining shipper redelivers it from the cursor. Unset = advance on
  /// send, the historical behavior.
  std::function<Scn()> durable_floor;
  /// Observer of cursor advancement: called with the new cursor sequence
  /// after every AdvanceCursor. The fleet feeds this into the standby's
  /// persist metadata (NoteCursorSeq) so a disk-restarted node re-registers
  /// its cursor at disk truth. Called from the shipper thread.
  std::function<void(uint64_t)> cursor_note;
};

/// Standby-side frame sink for one redo stream: decodes kRedoBatch frames,
/// drops records at or below the stream's delivered-SCN watermark (idempotent
/// redelivery — the channel may replay batches across reconnects), and lands
/// the rest in the ReceivedLog. Channel close closes the stream.
class RedoStreamReceiver : public net::FrameSink {
 public:
  explicit RedoStreamReceiver(ReceivedLog* dest) : dest_(dest) {}

  void OnFrame(const net::Frame& frame) override;
  void OnChannelClose() override;

  /// Frames whose payload failed to decode (dropped; never delivered).
  uint64_t decode_failures() const {
    return decode_failures_.load(std::memory_order_relaxed);
  }

 private:
  ReceivedLog* dest_;
  std::atomic<uint64_t> decode_failures_{0};
};

/// Ships one primary redo stream to one standby `ReceivedLog` over a
/// net::Channel: a background thread pulls appended records (condvar wakeup,
/// poll fallback), encodes them with the wire codec, and Send()s them; the
/// channel's receiver end decodes and delivers. Backpressure from the channel
/// (full send window, partition) blocks the shipper thread.
class LogShipper {
 public:
  LogShipper(RedoLog* source, ReceivedLog* dest, const ShipperOptions& options);
  ~LogShipper();

  LogShipper(const LogShipper&) = delete;
  LogShipper& operator=(const LogShipper&) = delete;

  void Start();
  /// Drains everything appended before the call through the channel
  /// (retransmitting as needed), then stops and closes the destination
  /// stream.
  void Stop();

  /// Fault-injection hook: while paused the shipper pulls nothing and emits
  /// no heartbeats, so transport lag accumulates on the standby (used by the
  /// lag-monitor tests and failure drills). Stop() overrides a pause and
  /// still drains.
  void set_paused(bool paused) {
    paused_.store(paused, std::memory_order_release);
  }
  bool paused() const { return paused_.load(std::memory_order_acquire); }

  /// Encoded wire bytes accepted by the channel (frame overhead included).
  uint64_t bytes_shipped() const { return channel_->stats().bytes_sent; }
  uint64_t records_shipped() const { return records_shipped_.load(std::memory_order_relaxed); }
  Scn last_shipped_scn() const { return last_shipped_scn_.load(std::memory_order_relaxed); }

  /// The wire underneath (fault injection, stats, metrics export).
  net::Channel* channel() { return channel_.get(); }
  const net::Channel* channel() const { return channel_.get(); }

 private:
  void Run();

  RedoLog* source_;
  ReceivedLog* dest_;
  ShipperOptions options_;
  RedoStreamReceiver receiver_;
  std::unique_ptr<net::Channel> channel_;

  std::thread thread_;
  uint64_t cursor_id_ = 0;      ///< RedoLog cursor this shipper advances.
  bool owns_cursor_ = false;    ///< Ephemeral cursor: unregistered on Stop.
  std::atomic<bool> stop_{false};
  std::atomic<bool> paused_{false};
  std::atomic<uint64_t> records_shipped_{0};
  std::atomic<Scn> last_shipped_scn_{kInvalidScn};
};

}  // namespace stratus

#endif  // STRATUS_REDO_LOG_SHIPPING_H_
