#include "redo/redo_log.h"

#include <chrono>

namespace stratus {

Scn RedoLog::Append(std::vector<ChangeVector> cvs) {
  std::lock_guard<std::mutex> g(mu_);
  const Scn scn = scns_->Next();
  RedoRecord rec;
  rec.scn = scn;
  rec.thread = thread_;
  rec.cvs = std::move(cvs);
  for (ChangeVector& cv : rec.cvs) cv.scn = scn;
  records_.push_back(std::move(rec));
  last_scn_.store(scn, std::memory_order_release);
  total_records_.fetch_add(1, std::memory_order_relaxed);
  append_cv_.notify_all();
  return scn;
}

Scn RedoLog::AppendHeartbeat() {
  std::lock_guard<std::mutex> g(mu_);
  const Scn scn = scns_->Next();
  RedoRecord rec;
  rec.scn = scn;
  rec.thread = thread_;
  ChangeVector hb;
  hb.kind = CvKind::kHeartbeat;
  hb.scn = scn;
  rec.cvs.push_back(std::move(hb));
  records_.push_back(std::move(rec));
  last_scn_.store(scn, std::memory_order_release);
  total_records_.fetch_add(1, std::memory_order_relaxed);
  append_cv_.notify_all();
  return scn;
}

uint64_t RedoLog::ReadFrom(uint64_t from_seq, size_t max,
                           std::vector<RedoRecord>* out) const {
  std::lock_guard<std::mutex> g(mu_);
  uint64_t seq = from_seq;
  if (seq < base_seq_) seq = base_seq_;  // Trimmed: resume at oldest retained.
  const uint64_t end_seq = base_seq_ + records_.size();
  while (seq < end_seq && out->size() < max) {
    out->push_back(records_[seq - base_seq_]);
    ++seq;
  }
  return seq;
}

void RedoLog::Trim(uint64_t before_seq) {
  std::lock_guard<std::mutex> g(mu_);
  while (base_seq_ < before_seq && !records_.empty()) {
    records_.pop_front();
    ++base_seq_;
  }
}

uint64_t RedoLog::NextSeq() const {
  std::lock_guard<std::mutex> g(mu_);
  return base_seq_ + records_.size();
}

bool RedoLog::WaitForAppend(uint64_t from_seq, int64_t timeout_us) const {
  std::unique_lock<std::mutex> l(mu_);
  if (base_seq_ + records_.size() > from_seq) return true;
  // A single bounded wait, deliberately without a predicate loop: any notify
  // (append, or WakeWaiters at shutdown) ends the wait so the caller can
  // re-check its own state; the timeout is the fallback poll.
  append_cv_.wait_for(l, std::chrono::microseconds(timeout_us));
  return base_seq_ + records_.size() > from_seq;
}

void RedoLog::WakeWaiters() const { append_cv_.notify_all(); }

}  // namespace stratus
