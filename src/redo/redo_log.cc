#include "redo/redo_log.h"

#include <algorithm>
#include <chrono>

#include "common/clock.h"

namespace stratus {

Scn RedoLog::Append(std::vector<ChangeVector> cvs) {
  std::lock_guard<std::mutex> g(mu_);
  const Scn scn = scns_->Next();
  RedoRecord rec;
  rec.scn = scn;
  rec.thread = thread_;
  rec.cvs = std::move(cvs);
  for (ChangeVector& cv : rec.cvs) cv.scn = scn;
  records_.push_back(std::move(rec));
  last_scn_.store(scn, std::memory_order_release);
  total_records_.fetch_add(1, std::memory_order_relaxed);
  last_append_us_ = NowMicros();
  append_cv_.notify_all();
  return scn;
}

Scn RedoLog::AppendHeartbeat() {
  std::lock_guard<std::mutex> g(mu_);
  const Scn scn = scns_->Next();
  RedoRecord rec;
  rec.scn = scn;
  rec.thread = thread_;
  ChangeVector hb;
  hb.kind = CvKind::kHeartbeat;
  hb.scn = scn;
  rec.cvs.push_back(std::move(hb));
  records_.push_back(std::move(rec));
  last_scn_.store(scn, std::memory_order_release);
  total_records_.fetch_add(1, std::memory_order_relaxed);
  last_append_us_ = NowMicros();
  append_cv_.notify_all();
  return scn;
}

Scn RedoLog::AppendHeartbeatIfQuiet(int64_t quiet_us) {
  {
    std::lock_guard<std::mutex> g(mu_);
    const uint64_t now = NowMicros();
    if (last_append_us_ != 0 &&
        now < last_append_us_ + static_cast<uint64_t>(quiet_us)) {
      return kInvalidScn;
    }
  }
  // Quiet: emit one heartbeat. A racing shipper may emit another between the
  // check and the append — harmless (heartbeats are idempotent SCN ticks),
  // and the quiet window then silences both for the next interval.
  return AppendHeartbeat();
}

uint64_t RedoLog::ReadFrom(uint64_t from_seq, size_t max,
                           std::vector<RedoRecord>* out) const {
  std::lock_guard<std::mutex> g(mu_);
  uint64_t seq = from_seq;
  if (seq < base_seq_) seq = base_seq_;  // Trimmed: resume at oldest retained.
  const uint64_t end_seq = base_seq_ + records_.size();
  while (seq < end_seq && out->size() < max) {
    out->push_back(records_[seq - base_seq_]);
    ++seq;
  }
  return seq;
}

uint64_t RedoLog::RegisterCursor(uint64_t start_seq) {
  std::lock_guard<std::mutex> g(mu_);
  const uint64_t id = next_cursor_id_++;
  cursors_[id] = start_seq;
  return id;
}

void RedoLog::UnregisterCursor(uint64_t id) {
  std::lock_guard<std::mutex> g(mu_);
  cursors_.erase(id);
}

void RedoLog::AdvanceCursor(uint64_t id, uint64_t seq) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = cursors_.find(id);
  if (it == cursors_.end()) return;
  if (seq > it->second) it->second = seq;
  TrimLocked(seq);
}

uint64_t RedoLog::CursorSeq(uint64_t id) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = cursors_.find(id);
  return it == cursors_.end() ? 0 : it->second;
}

size_t RedoLog::cursor_count() const {
  std::lock_guard<std::mutex> g(mu_);
  return cursors_.size();
}

uint64_t RedoLog::MinCursorLocked() const {
  uint64_t min_seq = UINT64_MAX;
  for (const auto& [id, seq] : cursors_) min_seq = std::min(min_seq, seq);
  return min_seq;
}

void RedoLog::TrimLocked(uint64_t before_seq) {
  before_seq = std::min(before_seq, MinCursorLocked());
  while (base_seq_ < before_seq && !records_.empty()) {
    records_.pop_front();
    ++base_seq_;
  }
}

void RedoLog::Trim(uint64_t before_seq) {
  std::lock_guard<std::mutex> g(mu_);
  TrimLocked(before_seq);
}

uint64_t RedoLog::NextSeq() const {
  std::lock_guard<std::mutex> g(mu_);
  return base_seq_ + records_.size();
}

bool RedoLog::WaitForAppend(uint64_t from_seq, int64_t timeout_us) const {
  std::unique_lock<std::mutex> l(mu_);
  if (base_seq_ + records_.size() > from_seq) return true;
  // A single bounded wait, deliberately without a predicate loop: any notify
  // (append, or WakeWaiters at shutdown) ends the wait so the caller can
  // re-check its own state; the timeout is the fallback poll. With several
  // shippers parked here, Append/WakeWaiters notify_all wakes every one —
  // each re-checks its own cursor and stop flag independently.
  append_cv_.wait_for(l, std::chrono::microseconds(timeout_us));
  return base_seq_ + records_.size() > from_seq;
}

void RedoLog::WakeWaiters() const { append_cv_.notify_all(); }

}  // namespace stratus
