#include "redo/redo_log.h"

namespace stratus {

Scn RedoLog::Append(std::vector<ChangeVector> cvs) {
  std::lock_guard<std::mutex> g(mu_);
  const Scn scn = scns_->Next();
  RedoRecord rec;
  rec.scn = scn;
  rec.thread = thread_;
  rec.cvs = std::move(cvs);
  for (ChangeVector& cv : rec.cvs) cv.scn = scn;
  records_.push_back(std::move(rec));
  last_scn_.store(scn, std::memory_order_release);
  total_records_.fetch_add(1, std::memory_order_relaxed);
  return scn;
}

Scn RedoLog::AppendHeartbeat() {
  std::lock_guard<std::mutex> g(mu_);
  const Scn scn = scns_->Next();
  RedoRecord rec;
  rec.scn = scn;
  rec.thread = thread_;
  ChangeVector hb;
  hb.kind = CvKind::kHeartbeat;
  hb.scn = scn;
  rec.cvs.push_back(std::move(hb));
  records_.push_back(std::move(rec));
  last_scn_.store(scn, std::memory_order_release);
  total_records_.fetch_add(1, std::memory_order_relaxed);
  return scn;
}

uint64_t RedoLog::ReadFrom(uint64_t from_seq, size_t max,
                           std::vector<RedoRecord>* out) const {
  std::lock_guard<std::mutex> g(mu_);
  uint64_t seq = from_seq;
  if (seq < base_seq_) seq = base_seq_;  // Trimmed: resume at oldest retained.
  const uint64_t end_seq = base_seq_ + records_.size();
  while (seq < end_seq && out->size() < max) {
    out->push_back(records_[seq - base_seq_]);
    ++seq;
  }
  return seq;
}

void RedoLog::Trim(uint64_t before_seq) {
  std::lock_guard<std::mutex> g(mu_);
  while (base_seq_ < before_seq && !records_.empty()) {
    records_.pop_front();
    ++base_seq_;
  }
}

uint64_t RedoLog::NextSeq() const {
  std::lock_guard<std::mutex> g(mu_);
  return base_seq_ + records_.size();
}

}  // namespace stratus
