#ifndef STRATUS_REDO_REDO_LOG_H_
#define STRATUS_REDO_REDO_LOG_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "redo/change_vector.h"

namespace stratus {

/// Allocates SCNs for one primary database. Shared by all redo threads (RAC
/// instances synchronize the SCN; we share the atomic counter).
class ScnAllocator {
 public:
  /// Returns the next SCN (strictly increasing, starting at 1).
  Scn Next() { return next_.fetch_add(1, std::memory_order_relaxed); }

  /// Highest SCN allocated so far.
  Scn Current() const { return next_.load(std::memory_order_relaxed) - 1; }

  /// Failover bootstrap: resume allocation strictly above `scn`.
  void AdvancePast(Scn scn) {
    Scn prev = next_.load(std::memory_order_relaxed);
    while (prev <= scn &&
           !next_.compare_exchange_weak(prev, scn + 1, std::memory_order_acq_rel)) {
    }
  }

 private:
  std::atomic<Scn> next_{1};
};

/// One redo thread's log stream on the primary. Records are appended with an
/// SCN allocated *under the log mutex*, so each stream is SCN-monotone — the
/// property the standby log merger relies on. Different streams interleave
/// arbitrarily; the merger re-establishes total SCN order.
class RedoLog {
 public:
  explicit RedoLog(RedoThreadId thread, ScnAllocator* scns)
      : thread_(thread), scns_(scns) {}

  RedoLog(const RedoLog&) = delete;
  RedoLog& operator=(const RedoLog&) = delete;

  RedoThreadId thread() const { return thread_; }

  /// Appends a record containing `cvs`, allocating and stamping a fresh SCN
  /// on the record and every CV. Returns the assigned SCN.
  Scn Append(std::vector<ChangeVector> cvs);

  /// Appends a heartbeat record (fresh SCN, no payload) so downstream
  /// consumers can advance past idle periods. Returns the assigned SCN.
  Scn AppendHeartbeat();

  /// Fan-out-aware heartbeat: appends one only if nothing (record or
  /// heartbeat) has landed within the last `quiet_us`. With N shippers
  /// attached to one log, each paces its own heartbeat timer; this collapses
  /// their idle ticks into one log-level heartbeat per interval instead of N.
  /// Returns the assigned SCN, or kInvalidScn when the log was not quiet.
  Scn AppendHeartbeatIfQuiet(int64_t quiet_us);

  /// Copies up to `max` records with sequence >= `from_seq` into `*out`.
  /// Returns the sequence one past the last copied record. Non-blocking.
  uint64_t ReadFrom(uint64_t from_seq, size_t max, std::vector<RedoRecord>* out) const;

  /// Blocks until a record with sequence >= `from_seq` exists (i.e. there is
  /// something for a cursor at `from_seq` to read), any waiter wakeup fires,
  /// or `timeout_us` elapses. Returns true when there is something to read.
  /// Shippers use this instead of a fixed-interval idle poll: Append wakes
  /// them immediately.
  bool WaitForAppend(uint64_t from_seq, int64_t timeout_us) const;

  /// Wakes all WaitForAppend waiters without appending (shipper shutdown).
  void WakeWaiters() const;

  // --- Fan-out cursors -------------------------------------------------------
  // One RedoLog can feed N shippers (one per standby). Each registers a
  // cursor; records are retained until EVERY registered cursor has passed
  // them, so a fast shipper can never trim redo a slow (or temporarily
  // disconnected) shipper still needs. A cursor can outlive its shipper: the
  // fleet keeps one per standby across kill/rejoin cycles, which is the
  // retention that lets a restarted standby catch up from the log.

  /// Registers a cursor positioned at `start_seq` and returns its id.
  uint64_t RegisterCursor(uint64_t start_seq = 0);
  /// Drops the cursor; retained records may trim up to the next-slowest one.
  void UnregisterCursor(uint64_t id);
  /// Advances the cursor to `seq` (monotonic; lower values are ignored) and
  /// trims records every registered cursor has passed.
  void AdvanceCursor(uint64_t id, uint64_t seq);
  /// The cursor's current sequence (a resuming shipper starts reading here).
  uint64_t CursorSeq(uint64_t id) const;
  size_t cursor_count() const;

  /// Discards retained records with sequence < `before_seq` (already
  /// shipped). Clamped so no registered cursor is ever trimmed past.
  void Trim(uint64_t before_seq);

  /// Sequence one past the last appended record.
  uint64_t NextSeq() const;

  /// SCN of the most recently appended record (kInvalidScn if none).
  Scn LastScn() const { return last_scn_.load(std::memory_order_acquire); }

  uint64_t TotalRecords() const { return total_records_.load(std::memory_order_relaxed); }

 private:
  RedoThreadId thread_;
  ScnAllocator* scns_;

  /// Requires mu_. Drops records below min(before_seq, every cursor).
  void TrimLocked(uint64_t before_seq);
  /// Requires mu_. Smallest registered cursor, or UINT64_MAX with none.
  uint64_t MinCursorLocked() const;

  mutable std::mutex mu_;
  mutable std::condition_variable append_cv_;
  std::deque<RedoRecord> records_;
  uint64_t base_seq_ = 0;  ///< Sequence of records_.front().
  uint64_t last_append_us_ = 0;   ///< Guarded by mu_ (heartbeat quiet check).
  uint64_t next_cursor_id_ = 1;   ///< Guarded by mu_.
  std::unordered_map<uint64_t, uint64_t> cursors_;  ///< id -> seq; mu_.
  std::atomic<Scn> last_scn_{kInvalidScn};
  std::atomic<uint64_t> total_records_{0};
};

}  // namespace stratus

#endif  // STRATUS_REDO_REDO_LOG_H_
