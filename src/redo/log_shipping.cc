#include "redo/log_shipping.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "common/clock.h"
#include "net/codec.h"
#include "obs/trace.h"

namespace stratus {

void ReceivedLog::Deliver(std::vector<RedoRecord> records) {
  if (records.empty()) return;
  std::lock_guard<std::mutex> g(mu_);
  // Archive-first: the durable tee sees the batch before the merger can.
  if (durable_sink_) durable_sink_(records);
  for (RedoRecord& rec : records) {
    if (rec.scn > watermark_.load(std::memory_order_relaxed))
      watermark_.store(rec.scn, std::memory_order_release);
    queue_.push_back(std::move(rec));
    delivered_records_.fetch_add(1, std::memory_order_relaxed);
  }
  cv_.notify_all();
}

void ReceivedLog::Close() {
  std::lock_guard<std::mutex> g(mu_);
  closed_.store(true, std::memory_order_release);
  cv_.notify_all();
}

void ReceivedLog::Reopen() {
  std::lock_guard<std::mutex> g(mu_);
  closed_.store(false, std::memory_order_release);
  cv_.notify_all();
}

void ReceivedLog::SetDurableSink(
    std::function<void(const std::vector<RedoRecord>&)> sink) {
  std::lock_guard<std::mutex> g(mu_);
  durable_sink_ = std::move(sink);
}

void ReceivedLog::ResetToWatermark(Scn watermark) {
  std::lock_guard<std::mutex> g(mu_);
  queue_.clear();
  watermark_.store(watermark, std::memory_order_release);
  closed_.store(false, std::memory_order_release);
  cv_.notify_all();
}

Scn ReceivedLog::PeekScn() const {
  std::lock_guard<std::mutex> g(mu_);
  return queue_.empty() ? kInvalidScn : queue_.front().scn;
}

bool ReceivedLog::Pop(RedoRecord* out) {
  std::lock_guard<std::mutex> g(mu_);
  if (queue_.empty()) return false;
  *out = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

bool ReceivedLog::Empty() const {
  std::lock_guard<std::mutex> g(mu_);
  return queue_.empty();
}

void ReceivedLog::WaitForProgress(Scn min_watermark, int64_t timeout_us) const {
  std::unique_lock<std::mutex> g(mu_);
  cv_.wait_for(g, std::chrono::microseconds(timeout_us), [&] {
    return !queue_.empty() ||
           watermark_.load(std::memory_order_relaxed) > min_watermark ||
           closed_.load(std::memory_order_relaxed);
  });
}

void RedoStreamReceiver::OnFrame(const net::Frame& frame) {
  if (frame.type != net::FrameType::kRedoBatch) return;
  std::vector<RedoRecord> batch;
  Status s = net::DecodeRedoBatch(frame.payload, &batch);
  if (!s.ok()) {
    // The frame CRC passed but the payload is malformed — a codec bug, not a
    // wire fault. Count it and drop the batch rather than crash the standby.
    decode_failures_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Idempotent redelivery: the channel may replay whole batches after a
  // reconnect; anything at or below the stream's delivered watermark has
  // already landed. (kInvalidScn == 0 and real SCNs start at 1, so a fresh
  // stream keeps everything.)
  const Scn watermark = dest_->DeliveredWatermark();
  batch.erase(std::remove_if(batch.begin(), batch.end(),
                             [&](const RedoRecord& rec) {
                               return rec.scn <= watermark;
                             }),
              batch.end());
  if (!batch.empty()) dest_->Deliver(std::move(batch));
}

void RedoStreamReceiver::OnChannelClose() { dest_->Close(); }

namespace {

net::ChannelOptions ResolveChannelOptions(const ShipperOptions& options,
                                          RedoThreadId thread) {
  net::ChannelOptions channel = options.channel;
  if (channel.name.empty()) {
    channel.name = "redo-" + std::to_string(thread);
  }
  // Back-compat: the legacy simulated latency knob becomes a wire delay.
  if (options.network_latency_us > 0 && channel.faults.delay_us == 0) {
    channel.faults.delay_us = options.network_latency_us;
  }
  return channel;
}

}  // namespace

LogShipper::LogShipper(RedoLog* source, ReceivedLog* dest,
                       const ShipperOptions& options)
    : source_(source),
      dest_(dest),
      options_(options),
      receiver_(dest),
      channel_(net::CreateChannel(ResolveChannelOptions(options, source->thread()),
                                  &receiver_)) {
  if (options_.cursor_id != 0) {
    cursor_id_ = options_.cursor_id;  // Caller-owned: survives this shipper.
  } else {
    cursor_id_ = source_->RegisterCursor(0);
    owns_cursor_ = true;
  }
}

LogShipper::~LogShipper() { Stop(); }

void LogShipper::Start() {
  stop_.store(false, std::memory_order_release);
  channel_->Start();
  thread_ = std::thread([this] { Run(); });
}

void LogShipper::Stop() {
  stop_.store(true, std::memory_order_release);
  source_->WakeWaiters();  // End any idle condvar wait immediately.
  if (thread_.joinable()) thread_.join();
  if (owns_cursor_) {
    // Ephemeral cursor: releasing it lets the log trim everything this
    // shipper retained. A fleet-owned cursor stays put so a restarted
    // standby can resume from exactly where its last shipper left off.
    source_->UnregisterCursor(cursor_id_);
    owns_cursor_ = false;
  }
  // Drains the wire (retransmitting as needed), then closes the stream via
  // RedoStreamReceiver::OnChannelClose. Idempotent.
  channel_->Stop();
}

void LogShipper::Run() {
  // Resume from the cursor: 0 for a fresh ephemeral cursor, or wherever the
  // previous shipper on this (standby, thread) pair left a persistent one.
  uint64_t next_seq = source_->CursorSeq(cursor_id_);
  uint64_t last_heartbeat_us = NowMicros();
  // Durability-gated cursor advancement: sent batches park here until the
  // standby reports their SCN durable; only then may the cursor pass them.
  std::deque<std::pair<uint64_t, Scn>> unacked;  // (seq_end, batch scn)
  bool draining = false;
  // Once stop is requested we drain up to the tail observed AT THAT MOMENT,
  // not the live tail: under a hot appender the live tail recedes forever
  // and a Stop() could otherwise never return.
  uint64_t drain_target = 0;
  while (true) {
    if (!draining && stop_.load(std::memory_order_acquire)) {
      draining = true;
      drain_target = source_->NextSeq();
    }
    if (draining && next_seq >= drain_target) break;

    if (!draining && paused_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(options_.poll_interval_us));
      continue;
    }

    std::vector<RedoRecord> batch;
    next_seq = source_->ReadFrom(next_seq, options_.max_batch, &batch);

    if (batch.empty()) {
      if (draining) break;
      const uint64_t now = NowMicros();
      const uint64_t heartbeat_due =
          last_heartbeat_us + static_cast<uint64_t>(options_.heartbeat_interval_us);
      if (now >= heartbeat_due) {
        // Idle: tick the SCN so the standby merger / QuerySCN can advance.
        // With N shippers fanned out from this log, only one heartbeat per
        // quiet interval actually lands; the others see a non-quiet log
        // (something — possibly a sibling's heartbeat — arrived recently,
        // which also means there is a record for us to pull).
        const Scn hb =
            source_->AppendHeartbeatIfQuiet(options_.heartbeat_interval_us);
        last_heartbeat_us = now;
        if (hb != kInvalidScn) continue;  // Pull it on the next iteration.
      }
      // Sleep until the next heartbeat is due — or until Append wakes us,
      // which is what makes shipping latency independent of any poll
      // interval. poll_interval_us floors the wait as the fallback poll.
      // (last_heartbeat_us may have just advanced above; recompute the due
      // time so a suppressed heartbeat doesn't underflow the wait.)
      const uint64_t next_due =
          last_heartbeat_us + static_cast<uint64_t>(options_.heartbeat_interval_us);
      const int64_t until_due =
          next_due > now ? static_cast<int64_t>(next_due - now) : 0;
      const int64_t wait_us =
          std::max<int64_t>(options_.poll_interval_us, until_due);
      source_->WaitForAppend(next_seq, wait_us);
      continue;
    }

    // Serialize with the wire codec and hand the batch to the channel; Send
    // blocks when the send window is full, propagating wire backpressure
    // straight to the shipper (and, via the redo log, to the primary).
    STRATUS_SPAN(obs::Stage::kLogShip, batch.back().scn);
    std::string payload;
    net::EncodeRedoBatch(batch, &payload);
    const size_t batch_records = batch.size();
    const Scn batch_scn = batch.back().scn;
    Status s = channel_->Send(net::FrameType::kRedoBatch, source_->thread(),
                              batch_scn, std::move(payload));
    if (!s.ok()) break;  // Channel already stopped under us.
    records_shipped_.fetch_add(batch_records, std::memory_order_relaxed);
    last_shipped_scn_.store(batch_scn, std::memory_order_relaxed);
    // Advance our cursor; the log trims only what EVERY attached cursor has
    // passed, so a slow sibling shipper never loses records to a fast one.
    // With a durable floor configured, sent-but-not-yet-fsynced batches stay
    // behind the cursor: a standby crash between receive and archive only
    // costs a redelivery, never the redo itself.
    if (options_.durable_floor) {
      unacked.emplace_back(next_seq, batch_scn);
      const Scn floor = options_.durable_floor();
      uint64_t advance_to = 0;
      while (!unacked.empty() && unacked.front().second <= floor) {
        advance_to = unacked.front().first;
        unacked.pop_front();
      }
      if (advance_to != 0) {
        source_->AdvanceCursor(cursor_id_, advance_to);
        if (options_.cursor_note) options_.cursor_note(advance_to);
      }
    } else {
      source_->AdvanceCursor(cursor_id_, next_seq);
      if (options_.cursor_note) options_.cursor_note(next_seq);
    }
  }
  // Final gate check at drain: the standby may have archived everything
  // between our last send and now (the channel drain in Stop() happens after
  // this thread exits, so anything still unacked here stays retained).
  if (options_.durable_floor && !unacked.empty()) {
    const Scn floor = options_.durable_floor();
    uint64_t advance_to = 0;
    while (!unacked.empty() && unacked.front().second <= floor) {
      advance_to = unacked.front().first;
      unacked.pop_front();
    }
    if (advance_to != 0) {
      source_->AdvanceCursor(cursor_id_, advance_to);
      if (options_.cursor_note) options_.cursor_note(advance_to);
    }
  }
}

}  // namespace stratus
