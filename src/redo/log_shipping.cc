#include "redo/log_shipping.h"

#include <chrono>

#include "common/clock.h"
#include "obs/trace.h"

namespace stratus {

void ReceivedLog::Deliver(std::vector<RedoRecord> records) {
  if (records.empty()) return;
  std::lock_guard<std::mutex> g(mu_);
  for (RedoRecord& rec : records) {
    if (rec.scn > watermark_.load(std::memory_order_relaxed))
      watermark_.store(rec.scn, std::memory_order_release);
    queue_.push_back(std::move(rec));
    delivered_records_.fetch_add(1, std::memory_order_relaxed);
  }
  cv_.notify_all();
}

void ReceivedLog::Close() {
  std::lock_guard<std::mutex> g(mu_);
  closed_.store(true, std::memory_order_release);
  cv_.notify_all();
}

Scn ReceivedLog::PeekScn() const {
  std::lock_guard<std::mutex> g(mu_);
  return queue_.empty() ? kInvalidScn : queue_.front().scn;
}

bool ReceivedLog::Pop(RedoRecord* out) {
  std::lock_guard<std::mutex> g(mu_);
  if (queue_.empty()) return false;
  *out = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

bool ReceivedLog::Empty() const {
  std::lock_guard<std::mutex> g(mu_);
  return queue_.empty();
}

void ReceivedLog::WaitForProgress(Scn min_watermark, int64_t timeout_us) const {
  std::unique_lock<std::mutex> g(mu_);
  cv_.wait_for(g, std::chrono::microseconds(timeout_us), [&] {
    return !queue_.empty() ||
           watermark_.load(std::memory_order_relaxed) > min_watermark ||
           closed_.load(std::memory_order_relaxed);
  });
}

LogShipper::LogShipper(RedoLog* source, ReceivedLog* dest,
                       const ShipperOptions& options)
    : source_(source), dest_(dest), options_(options) {}

LogShipper::~LogShipper() {
  if (thread_.joinable()) Stop();
}

void LogShipper::Start() {
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Run(); });
}

void LogShipper::Stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

void LogShipper::Run() {
  uint64_t next_seq = 0;
  uint64_t last_heartbeat_us = NowMicros();
  bool draining = false;
  while (true) {
    if (!draining && stop_.load(std::memory_order_acquire)) draining = true;

    if (!draining && paused_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(options_.poll_interval_us));
      continue;
    }

    std::vector<RedoRecord> batch;
    next_seq = source_->ReadFrom(next_seq, options_.max_batch, &batch);

    if (batch.empty()) {
      if (draining) break;
      const uint64_t now = NowMicros();
      if (now - last_heartbeat_us >=
          static_cast<uint64_t>(options_.heartbeat_interval_us)) {
        // Idle: tick the SCN so the standby merger / QuerySCN can advance.
        source_->AppendHeartbeat();
        last_heartbeat_us = now;
        continue;  // Pull the heartbeat on the next iteration.
      }
      std::this_thread::sleep_for(std::chrono::microseconds(options_.poll_interval_us));
      continue;
    }

    // Serialize (the wire format) and account bytes, as the real transport
    // ships archived/online redo bytes.
    STRATUS_SPAN(obs::Stage::kLogShip, batch.back().scn);
    std::string wire;
    for (const RedoRecord& rec : batch) EncodeRedoRecord(rec, &wire);
    bytes_shipped_.fetch_add(wire.size(), std::memory_order_relaxed);
    records_shipped_.fetch_add(batch.size(), std::memory_order_relaxed);
    last_shipped_scn_.store(batch.back().scn, std::memory_order_relaxed);

    if (options_.network_latency_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(options_.network_latency_us));
    }
    dest_->Deliver(std::move(batch));
    source_->Trim(next_seq);
  }
  dest_->Close();
}

}  // namespace stratus
