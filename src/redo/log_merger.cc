#include "redo/log_merger.h"

#include <algorithm>

namespace stratus {

bool LogMerger::Next(RedoRecord* out, int64_t timeout_us) {
  // Pick the stream whose head record has the smallest SCN; it is emittable
  // iff every *other* stream either has a head (its head SCN is larger) or
  // has a delivered watermark past the candidate (no smaller record can ever
  // arrive on it) or is closed and drained.
  int best = -1;
  Scn best_scn = kMaxScn;
  bool safe = true;
  for (size_t i = 0; i < streams_.size(); ++i) {
    const Scn head = streams_[i]->PeekScn();
    if (head != kInvalidScn && head < best_scn) {
      best_scn = head;
      best = static_cast<int>(i);
    }
  }
  if (best >= 0) {
    for (size_t i = 0; i < streams_.size(); ++i) {
      if (static_cast<int>(i) == best) continue;
      if (streams_[i]->PeekScn() != kInvalidScn) continue;  // Head is > best_scn.
      if (streams_[i]->closed() && streams_[i]->Empty()) continue;
      if (streams_[i]->DeliveredWatermark() >= best_scn) continue;
      safe = false;
      break;
    }
    if (safe && streams_[best]->Pop(out)) {
      ++emitted_;
      return true;
    }
  }
  // Stalled: wait for any stream to make progress, then let the caller retry.
  if (!streams_.empty()) {
    const Scn wm = MergedWatermark();
    streams_[0]->WaitForProgress(wm, timeout_us);
  }
  return false;
}

bool LogMerger::Finished() const {
  for (ReceivedLog* s : streams_) {
    if (!s->closed() || !s->Empty()) return false;
  }
  return true;
}

Scn LogMerger::MergedWatermark() const {
  Scn wm = kMaxScn;
  for (ReceivedLog* s : streams_) wm = std::min(wm, s->DeliveredWatermark());
  return wm == kMaxScn ? kInvalidScn : wm;
}

}  // namespace stratus
