#include "redo/change_vector.h"

#include <cstring>

namespace stratus {
namespace {

void PutU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

bool GetU8(const std::string& buf, size_t* pos, uint8_t* v) {
  if (*pos + 1 > buf.size()) return false;
  *v = static_cast<uint8_t>(buf[(*pos)++]);
  return true;
}

bool GetU32(const std::string& buf, size_t* pos, uint32_t* v) {
  if (*pos + 4 > buf.size()) return false;
  std::memcpy(v, buf.data() + *pos, 4);
  *pos += 4;
  return true;
}

bool GetU64(const std::string& buf, size_t* pos, uint64_t* v) {
  if (*pos + 8 > buf.size()) return false;
  std::memcpy(v, buf.data() + *pos, 8);
  *pos += 8;
  return true;
}

bool GetString(const std::string& buf, size_t* pos, std::string* s) {
  uint32_t len = 0;
  if (!GetU32(buf, pos, &len)) return false;
  if (*pos + len > buf.size()) return false;
  s->assign(buf.data() + *pos, len);
  *pos += len;
  return true;
}

void EncodeValue(const Value& v, std::string* out) {
  PutU8(out, static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      PutU64(out, static_cast<uint64_t>(v.as_int()));
      break;
    case ValueType::kString:
      PutString(out, v.as_string());
      break;
  }
}

bool DecodeValue(const std::string& buf, size_t* pos, Value* out) {
  uint8_t tag = 0;
  if (!GetU8(buf, pos, &tag)) return false;
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      *out = Value::Null();
      return true;
    case ValueType::kInt: {
      uint64_t v = 0;
      if (!GetU64(buf, pos, &v)) return false;
      *out = Value(static_cast<int64_t>(v));
      return true;
    }
    case ValueType::kString: {
      std::string s;
      if (!GetString(buf, pos, &s)) return false;
      *out = Value(std::move(s));
      return true;
    }
  }
  return false;
}

void EncodeCv(const ChangeVector& cv, std::string* out) {
  PutU8(out, static_cast<uint8_t>(cv.kind));
  PutU64(out, cv.scn);
  PutU64(out, cv.xid);
  PutU64(out, cv.dba);
  PutU64(out, cv.object_id);
  PutU32(out, cv.tenant);
  PutU32(out, cv.slot);
  PutU8(out, cv.im_flag ? 1 : 0);
  PutU32(out, static_cast<uint32_t>(cv.after.size()));
  for (const Value& v : cv.after) EncodeValue(v, out);
  PutU8(out, static_cast<uint8_t>(cv.ddl.op));
  PutU64(out, cv.ddl.object_id);
  PutU32(out, cv.ddl.tenant);
  PutU32(out, cv.ddl.column_idx);
  PutU8(out, cv.ddl.im_service);
}

bool DecodeCv(const std::string& buf, size_t* pos, ChangeVector* cv) {
  uint8_t kind = 0, flag = 0, ddl_op = 0, im_service = 0;
  uint32_t arity = 0;
  if (!GetU8(buf, pos, &kind)) return false;
  cv->kind = static_cast<CvKind>(kind);
  if (!GetU64(buf, pos, &cv->scn)) return false;
  if (!GetU64(buf, pos, &cv->xid)) return false;
  if (!GetU64(buf, pos, &cv->dba)) return false;
  if (!GetU64(buf, pos, &cv->object_id)) return false;
  if (!GetU32(buf, pos, &cv->tenant)) return false;
  if (!GetU32(buf, pos, &cv->slot)) return false;
  if (!GetU8(buf, pos, &flag)) return false;
  cv->im_flag = flag != 0;
  if (!GetU32(buf, pos, &arity)) return false;
  cv->after.clear();
  cv->after.reserve(arity);
  for (uint32_t i = 0; i < arity; ++i) {
    Value v;
    if (!DecodeValue(buf, pos, &v)) return false;
    cv->after.push_back(std::move(v));
  }
  if (!GetU8(buf, pos, &ddl_op)) return false;
  cv->ddl.op = static_cast<DdlOp>(ddl_op);
  if (!GetU64(buf, pos, &cv->ddl.object_id)) return false;
  if (!GetU32(buf, pos, &cv->ddl.tenant)) return false;
  if (!GetU32(buf, pos, &cv->ddl.column_idx)) return false;
  if (!GetU8(buf, pos, &im_service)) return false;
  cv->ddl.im_service = im_service;
  return true;
}

}  // namespace

void EncodeRedoRecord(const RedoRecord& rec, std::string* out) {
  PutU64(out, rec.scn);
  PutU32(out, rec.thread);
  PutU32(out, static_cast<uint32_t>(rec.cvs.size()));
  for (const ChangeVector& cv : rec.cvs) EncodeCv(cv, out);
}

Status DecodeRedoRecord(const std::string& buf, size_t* pos, RedoRecord* out) {
  uint32_t n = 0;
  if (!GetU64(buf, pos, &out->scn) || !GetU32(buf, pos, &out->thread) ||
      !GetU32(buf, pos, &n)) {
    return Status::Corruption("truncated redo record header");
  }
  out->cvs.clear();
  out->cvs.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ChangeVector cv;
    if (!DecodeCv(buf, pos, &cv)) return Status::Corruption("truncated change vector");
    out->cvs.push_back(std::move(cv));
  }
  return Status::OK();
}

size_t EncodedSize(const RedoRecord& rec) {
  std::string tmp;
  EncodeRedoRecord(rec, &tmp);
  return tmp.size();
}

}  // namespace stratus
