#include "imcs/smu.h"

namespace stratus {

Smu::Smu(ObjectId object_id, TenantId tenant, Scn snapshot_scn,
         std::vector<Dba> dbas)
    : object_id_(object_id),
      tenant_(tenant),
      snapshot_scn_(snapshot_scn),
      dbas_(std::move(dbas)),
      num_rows_(dbas_.size() * kRowsPerBlock),
      invalid_rows_(num_rows_),
      invalid_blocks_(dbas_.size()) {
  dba_index_.reserve(dbas_.size());
  for (uint32_t i = 0; i < dbas_.size(); ++i) dba_index_[dbas_[i]] = i;
}

void Smu::AttachImcu(std::shared_ptr<const Imcu> imcu) {
  {
    std::lock_guard<std::mutex> g(imcu_mu_);
    imcu_ = std::move(imcu);
  }
  set_state(SmuState::kReady);
}

std::shared_ptr<const Imcu> Smu::imcu() const {
  std::lock_guard<std::mutex> g(imcu_mu_);
  return imcu_;
}

bool Smu::MarkRowInvalid(Dba dba, SlotId slot) {
  const uint32_t row = RowIndexFor(dba, slot);
  if (row == kNoImcuRow || row >= num_rows_) return false;
  if (invalid_rows_.Set(row)) invalid_count_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool Smu::MarkBlockInvalid(Dba dba) {
  auto it = dba_index_.find(dba);
  if (it == dba_index_.end()) return false;
  if (invalid_blocks_.Set(it->second))
    invalid_count_.fetch_add(kRowsPerBlock, std::memory_order_relaxed);
  return true;
}

void Smu::MarkAllInvalid() {
  all_invalid_.store(true, std::memory_order_release);
  invalid_count_.store(num_rows_, std::memory_order_relaxed);
}

void Smu::ForEachInvalidRow(const std::function<void(uint32_t)>& f) const {
  static_assert(kRowsPerBlock % 64 == 0, "block bitmap words must align");
  constexpr size_t kWordsPerBlock = kRowsPerBlock / 64;
  if (all_invalid_.load(std::memory_order_acquire)) {
    for (uint32_t r = 0; r < num_rows_; ++r) f(r);
    return;
  }
  for (size_t b = 0; b < dbas_.size(); ++b) {
    if (invalid_blocks_.Test(b)) {
      const uint32_t base = static_cast<uint32_t>(b) * kRowsPerBlock;
      for (uint32_t s = 0; s < kRowsPerBlock; ++s) f(base + s);
      continue;
    }
    for (size_t w = 0; w < kWordsPerBlock; ++w) {
      uint64_t word = invalid_rows_.Word(b * kWordsPerBlock + w);
      while (word != 0) {
        const unsigned bit = static_cast<unsigned>(__builtin_ctzll(word));
        f(static_cast<uint32_t>(b * kRowsPerBlock + w * 64 + bit));
        word &= word - 1;
      }
    }
  }
}

void Smu::SnapshotInvalid(std::vector<uint64_t>* words) const {
  static_assert(kRowsPerBlock % 64 == 0, "block bitmap words must align");
  constexpr size_t kWordsPerBlock = kRowsPerBlock / 64;
  const size_t n_words = (num_rows_ + 63) / 64;
  words->assign(n_words, 0);
  if (all_invalid_.load(std::memory_order_acquire)) {
    words->assign(n_words, ~0ull);
    return;
  }
  for (size_t w = 0; w < n_words; ++w) (*words)[w] = invalid_rows_.Word(w);
  for (size_t b = 0; b < dbas_.size(); ++b) {
    if (!invalid_blocks_.Test(b)) continue;
    for (size_t w = 0; w < kWordsPerBlock; ++w)
      (*words)[b * kWordsPerBlock + w] = ~0ull;
  }
}

double Smu::InvalidFraction() const {
  if (num_rows_ == 0) return 0.0;
  const uint64_t n = invalid_count_.load(std::memory_order_relaxed);
  return static_cast<double>(n > num_rows_ ? num_rows_ : n) /
         static_cast<double>(num_rows_);
}

}  // namespace stratus
