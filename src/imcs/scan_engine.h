#ifndef STRATUS_IMCS_SCAN_ENGINE_H_
#define STRATUS_IMCS_SCAN_ENGINE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "imcs/expression.h"
#include "imcs/im_store.h"
#include "storage/buffer_cache.h"
#include "storage/table.h"
#include "storage/visibility.h"

namespace stratus {

/// One conjunct of a scan filter: `column op value`.
struct Predicate {
  uint32_t column = 0;
  PredOp op = PredOp::kEq;
  Value value;
};

/// Evaluates one predicate against a materialized row (NULLs never match).
bool EvalPredicate(const Row& row, const Predicate& pred);
/// Conjunction over all predicates.
bool EvalPredicates(const Row& row, const std::vector<Predicate>& preds);

/// Per-scan statistics: where the rows actually came from.
struct ScanStats {
  uint64_t rows_from_imcs = 0;
  uint64_t rows_from_rowstore = 0;
  uint64_t imcus_scanned = 0;
  uint64_t imcus_pruned = 0;      ///< Skipped whole via storage index.
  uint64_t imcus_skipped = 0;     ///< Not usable (populating / too new).
  uint64_t blocks_rowpath = 0;    ///< Blocks scanned through the buffer cache.
  uint64_t invalid_rowpath = 0;   ///< Invalid IMCU rows re-fetched from blocks.
};

/// Rows matching the scan are streamed into this callback.
using RowSink = std::function<void(const Row& row)>;

/// Aggregation push-down hook ([11], "Accelerating Joins and Aggregations on
/// the Oracle In-Memory Database"): when supplied, matching rows served from
/// the IMCS invoke this hook with the IMCU and local row index instead of the
/// sink — the aggregate reads the encoded column directly, skipping row
/// materialization entirely. Row-path matches still flow through the sink.
using ImcsMatchHook = std::function<void(const Imcu& imcu, uint32_t row)>;

/// The In-Memory Scan Engine (Section II.B): serves valid rows from the
/// compressed IMCUs with predicate evaluation on encoded data and storage-
/// index pruning, and reconciles with each IMCU's SMU so that invalid or
/// stale rows are delivered from the database buffer cache (the row store)
/// instead — never from the IMCS.
class ScanEngine {
 public:
  /// Scans `table` at `view`, consulting the column stores in `stores`
  /// (possibly spanning RAC instances; pass empty to force the row path).
  /// Emits every visible row satisfying all `preds` exactly once.
  /// `needs_rows = false` (count-style aggregates) skips materializing
  /// matching IMCS rows: the sink receives an empty Row per match.
  /// `expressions` (may be null): In-Memory Expressions registered for the
  /// table. Predicates may address them as virtual columns at index
  /// schema-arity + position; row-path rows are extended with the evaluated
  /// expression values so predicates and sinks see a uniform layout. IMCUs
  /// that predate an expression registration are skipped to the row path.
  /// `imcs_hook` (may be null): aggregation push-down (see ImcsMatchHook).
  Status Scan(const Table& table, const std::vector<Predicate>& preds,
              const ReadView& view, const std::vector<const ImStore*>& stores,
              const BufferCache& cache, const RowSink& sink,
              ScanStats* stats, bool needs_rows = true,
              const std::vector<Expression>* expressions = nullptr,
              const ImcsMatchHook* imcs_hook = nullptr) const;

 private:
  void ScanBlockRowPath(Dba dba, const std::vector<Predicate>& preds,
                        const ReadView& view, const BufferCache& cache,
                        const RowSink& sink, ScanStats* stats,
                        const std::vector<Expression>* expressions) const;
};

}  // namespace stratus

#endif  // STRATUS_IMCS_SCAN_ENGINE_H_
