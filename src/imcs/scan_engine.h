#ifndef STRATUS_IMCS_SCAN_ENGINE_H_
#define STRATUS_IMCS_SCAN_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "imcs/expression.h"
#include "imcs/im_store.h"
#include "storage/buffer_cache.h"
#include "storage/table.h"
#include "storage/visibility.h"

namespace stratus {

class ThreadPool;

/// One conjunct of a scan filter: `column op value`.
struct Predicate {
  uint32_t column = 0;
  PredOp op = PredOp::kEq;
  Value value;
};

/// Evaluates one predicate against a single column value. This is the one
/// place holding the SQL three-valued-logic rules — a NULL on either side
/// never matches, and a type mismatch never matches — shared by the row path
/// (`EvalPredicate`) and the columnar remaining-conjunct recheck, so the two
/// paths cannot drift.
bool EvalPredicateValue(const Value& v, const Predicate& pred);

/// Evaluates one predicate against a materialized row (NULLs never match).
bool EvalPredicate(const Row& row, const Predicate& pred);
/// Conjunction over all predicates.
bool EvalPredicates(const Row& row, const std::vector<Predicate>& preds);

/// Aggregate applied to the matching rows (push-down: the scan engine folds
/// per-worker partials off the encoded columns, [11]).
enum class AggKind : uint8_t { kNone = 0, kCount, kSum, kMin, kMax };

/// Aggregation push-down request: which aggregate over which column (schema
/// or In-Memory-Expression virtual column; integer columns for kSum/kMin/kMax).
struct ScanAggregate {
  AggKind kind = AggKind::kNone;
  uint32_t column = 0;
};

/// A partial (per-worker) or final aggregate accumulator.
///
/// kSum runs over an exact 128-bit running sum; `acc` is its projection into
/// int64 (saturated at the range bounds, with `overflow` set). Because the
/// exact sum — not the saturation — is what accumulates, the outcome depends
/// only on the multiset of folded inputs, never on fold or merge order:
/// intermediate excursions past the int64 range that later cancel do not
/// latch the flag, so IMCS, row-path, and every kernel variant at every DOP
/// produce identical (acc, overflow) pairs.
struct AggState {
  uint64_t count = 0;     ///< Matching rows (all paths).
  int64_t acc = 0;        ///< kSum/kMin/kMax accumulator (kSum: saturated).
  bool started = false;   ///< A non-null integer input reached the fold.
  bool overflow = false;  ///< kSum only: exact sum left the int64 range.

  void Fold(AggKind kind, int64_t x) {
    if (kind == AggKind::kSum) {
      sum_hi_ += x < 0 ? -1 : 0;
      const uint64_t lo = sum_lo_ + static_cast<uint64_t>(x);
      sum_hi_ += lo < sum_lo_ ? 1 : 0;  // Carry out of the low word.
      sum_lo_ = lo;
      started = true;
      ProjectSum();
      return;
    }
    if (!started) {
      acc = x;
      started = true;
    } else if (kind == AggKind::kMin) {
      acc = acc < x ? acc : x;
    } else if (kind == AggKind::kMax) {
      acc = acc < x ? x : acc;
    }
  }

  /// Folds another partial in. COUNT/MIN/MAX are associative and commutative,
  /// and kSum merges the exact 128-bit partial sums, so merging in
  /// deterministic task order reproduces the serial result exactly.
  void Merge(AggKind kind, const AggState& other) {
    count += other.count;
    if (!other.started) return;
    if (kind == AggKind::kSum) {
      sum_hi_ += other.sum_hi_;
      const uint64_t lo = sum_lo_ + other.sum_lo_;
      sum_hi_ += lo < sum_lo_ ? 1 : 0;
      sum_lo_ = lo;
      started = true;
      ProjectSum();
      return;
    }
    if (!started) {
      acc = other.acc;
      started = true;
    } else if (kind == AggKind::kMin) {
      acc = acc < other.acc ? acc : other.acc;
    } else if (kind == AggKind::kMax) {
      acc = acc < other.acc ? other.acc : acc;
    }
  }

 private:
  void ProjectSum() {
    // The exact sum fits int64 iff the high word is a pure sign extension of
    // the low word's top bit.
    const uint64_t sign_ext = sum_lo_ >> 63 ? ~uint64_t{0} : 0;
    if (sum_hi_ == sign_ext) {
      acc = static_cast<int64_t>(sum_lo_);
      overflow = false;
    } else if (static_cast<int64_t>(sum_hi_) < 0) {
      acc = INT64_MIN;
      overflow = true;
    } else {
      acc = INT64_MAX;
      overflow = true;
    }
  }

  // Exact kSum running sum as a two-word (128-bit) two's-complement integer.
  // With at most 2^64 folded rows of |x| <= 2^63 the true sum stays well
  // inside 128 bits.
  uint64_t sum_lo_ = 0;
  uint64_t sum_hi_ = 0;
};

/// Per-scan statistics: where the rows actually came from.
struct ScanStats {
  uint64_t rows_from_imcs = 0;
  uint64_t rows_from_rowstore = 0;
  uint64_t imcus_scanned = 0;
  uint64_t imcus_pruned = 0;      ///< Skipped whole via storage index.
  uint64_t imcus_skipped = 0;     ///< Not usable (populating / too new).
  uint64_t blocks_rowpath = 0;    ///< Blocks scanned through the buffer cache.
  uint64_t invalid_rowpath = 0;   ///< Invalid IMCU rows re-fetched from blocks.
  uint64_t parallel_tasks = 0;    ///< Scan tasks (per-IMCU + row-path chunks);
                                  ///< identical at every DOP by construction.
  // Which filter kernel built the match bitmaps (attribution of work done;
  // these are the only fields allowed to differ across kernel variants).
  uint64_t kernel_swar_words = 0;   ///< Bitmap words built by SWAR compares.
  uint64_t kernel_avx2_words = 0;   ///< Bitmap words built by AVX2 compares.
  uint64_t kernel_scalar_rows = 0;  ///< Rows evaluated one Get() at a time.

  void Add(const ScanStats& o) {
    rows_from_imcs += o.rows_from_imcs;
    rows_from_rowstore += o.rows_from_rowstore;
    imcus_scanned += o.imcus_scanned;
    imcus_pruned += o.imcus_pruned;
    imcus_skipped += o.imcus_skipped;
    blocks_rowpath += o.blocks_rowpath;
    invalid_rowpath += o.invalid_rowpath;
    parallel_tasks += o.parallel_tasks;
    kernel_swar_words += o.kernel_swar_words;
    kernel_avx2_words += o.kernel_avx2_words;
    kernel_scalar_rows += o.kernel_scalar_rows;
  }
};

/// Rows matching the scan are streamed into this callback. With DOP > 1 the
/// sink is only ever invoked from the calling thread, during the ordered
/// merge after the parallel barrier — it needs no synchronization.
using RowSink = std::function<void(const Row& row)>;

/// Execution record of one scan task, filled only when the caller passes
/// `ScanOptions::profile` (the null default costs the scan nothing).
struct ScanTaskProfile {
  uint32_t worker = 0;         ///< Executing thread's dense obs ordinal.
  bool imcu_task = false;      ///< Per-IMCU task vs row-path chunk.
  uint64_t queue_wait_us = 0;  ///< Task start − scan submit.
  uint64_t exec_us = 0;        ///< Task run time.
};

/// Per-scan execution profile: one entry per task, in task (merge) order.
struct ScanProfile {
  std::vector<ScanTaskProfile> tasks;
};

/// Parallel-execution knobs for one scan.
struct ScanOptions {
  /// Degree of parallelism: maximum threads scanning concurrently (the
  /// caller plus dop-1 pool workers). <= 1 runs the scan inline on the
  /// caller with rows streamed straight into the sink (no buffering).
  size_t dop = 1;
  /// Pool to borrow workers from; null means ThreadPool::Shared().
  ThreadPool* pool = nullptr;
  /// Uncovered row-store blocks are chunked into tasks of at most this many
  /// blocks (chunks also break at IMCU coverage boundaries to preserve
  /// global block order). Fixed-size (not DOP-derived) so the task
  /// decomposition — and therefore `ScanStats::parallel_tasks` and the merge
  /// order — is identical at every DOP.
  size_t rowpath_chunk_blocks = 8;
  /// When non-null, receives per-task worker/wait/run records for this scan
  /// (appended; the QueryProfile plumbing passes a fresh one per query).
  ScanProfile* profile = nullptr;
  /// Batch emission for operator-tree consumers: when set, matching rows are
  /// delivered here instead of through the per-row sink, in the same global
  /// (block, slot) order. The parallel path hands over each task's private
  /// buffer by move — no per-row copy at the merge boundary — and the inline
  /// path flushes every `batch_rows`. Batches are only ever delivered from
  /// the calling thread.
  std::function<void(std::vector<Row>&&)> batch_sink;
  /// Inline-path flush threshold for `batch_sink` (parallel batches are task
  /// buffers, whatever size the task produced).
  size_t batch_rows = 1024;
};

/// The In-Memory Scan Engine (Section II.B): serves valid rows from the
/// compressed IMCUs with predicate evaluation on encoded data and storage-
/// index pruning, and reconciles with each IMCU's SMU so that invalid or
/// stale rows are delivered from the database buffer cache (the row store)
/// instead — never from the IMCS.
///
/// Execution decomposes into one task per usable IMCU (columnar pass plus
/// that IMCU's invalid-row reconciliation, sharing one invalidity snapshot)
/// and one task per chunk of uncovered row-store blocks, ordered by block
/// position in the table's block list. Tasks run on a ThreadPool at
/// `options.dop`, each accumulating into private ScanStats / row buffer /
/// partial aggregate; partials are merged on the calling thread in task
/// order after the barrier. Each task emits in ascending (block, slot)
/// order, so the merged output is the table's global (block, slot) order —
/// reproducible at any DOP and independent of which path serves a row.
class ScanEngine {
 public:
  /// Scans `table` at `view`, consulting the column stores in `stores`
  /// (possibly spanning RAC instances; pass empty to force the row path).
  /// Emits every visible row satisfying all `preds` exactly once.
  /// `needs_rows = false` (count-style aggregates) skips materializing
  /// matching IMCS rows: the sink receives an empty Row per match.
  /// `expressions` (may be null): In-Memory Expressions registered for the
  /// table. Predicates may address them as virtual columns at index
  /// schema-arity + position; row-path rows are extended with the evaluated
  /// expression values so predicates and sinks see a uniform layout. IMCUs
  /// that predate an expression registration are skipped to the row path.
  /// `agg` + `agg_out`: aggregation push-down. When `agg.kind != kNone` and
  /// `agg_out != nullptr`, every match is counted (and kSum/kMin/kMax folded
  /// — off the encoded column for IMCS-served rows, off the materialized row
  /// otherwise) into `agg_out` instead of reaching the sink.
  Status Scan(const Table& table, const std::vector<Predicate>& preds,
              const ReadView& view, const std::vector<const ImStore*>& stores,
              const BufferCache& cache, const RowSink& sink,
              ScanStats* stats, bool needs_rows = true,
              const std::vector<Expression>* expressions = nullptr,
              const ScanAggregate& agg = {}, AggState* agg_out = nullptr,
              const ScanOptions& options = {}) const;

 private:
  /// One per-IMCU task: columnar pass over the valid rows plus the invalid-
  /// row reconciliation pass, both under one SMU invalidity snapshot, merged
  /// into ascending row-index order before emission.
  void ScanSmuTask(const Smu& smu, const std::vector<Predicate>& preds,
                   const ReadView& view, const BufferCache& cache,
                   const std::vector<Expression>* expressions, bool needs_rows,
                   const ScanAggregate& agg, const RowSink& emit,
                   ScanStats* stats, AggState* agg_out) const;

  void ScanBlockRowPath(Dba dba, const std::vector<Predicate>& preds,
                        const ReadView& view, const BufferCache& cache,
                        const std::vector<Expression>* expressions,
                        const ScanAggregate& agg, const RowSink& emit,
                        ScanStats* stats, AggState* agg_out) const;
};

}  // namespace stratus

#endif  // STRATUS_IMCS_SCAN_ENGINE_H_
