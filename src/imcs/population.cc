#include "imcs/population.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "obs/trace.h"

namespace stratus {

Populator::Populator(ImStore* store, SnapshotSource* snapshot_source,
                     BlockStore* blocks, const PopulationOptions& options)
    : store_(store), snapshot_source_(snapshot_source), blocks_(blocks),
      options_(options) {}

Populator::~Populator() {
  if (thread_.joinable()) Stop();
}

void Populator::EnableObject(Table* table) {
  std::lock_guard<std::mutex> g(mu_);
  objects_.try_emplace(table->object_id(), ObjectState{table, 0, nullptr, 0});
}

void Populator::SeedCoverageFromStore() {
  std::lock_guard<std::mutex> g(mu_);
  const size_t bpi = static_cast<size_t>(options_.blocks_per_imcu);
  for (auto& [oid, state] : objects_) {
    if (state.full_covered != 0 || state.tail_smu != nullptr) continue;
    const std::vector<Dba> blocks = state.table->SnapshotBlocks();
    std::vector<std::shared_ptr<Smu>> ready;
    for (const auto& smu : store_->SmusForObject(oid)) {
      if (smu->state() == SmuState::kReady) ready.push_back(smu);
    }
    if (ready.empty()) continue;
    // Chunks are consecutive DBA slices of the scan-order block list, so a
    // loaded SMU counts only when its DBAs match the list exactly at the
    // running offset.
    std::unordered_map<Dba, std::shared_ptr<Smu>> by_first;
    for (const auto& smu : ready) {
      if (!smu->dbas().empty()) by_first.emplace(smu->dbas().front(), smu);
    }
    std::unordered_set<const Smu*> matched;
    size_t pos = 0;
    while (pos < blocks.size()) {
      auto it = by_first.find(blocks[pos]);
      if (it == by_first.end()) break;
      const std::shared_ptr<Smu>& smu = it->second;
      const std::vector<Dba>& dbas = smu->dbas();
      const size_t n = dbas.size();
      if (n == 0 || pos + n > blocks.size() ||
          !std::equal(dbas.begin(), dbas.end(), blocks.begin() + pos)) {
        break;
      }
      matched.insert(smu.get());
      if (n == bpi) {
        state.full_covered += n;
        pos += n;
        continue;
      }
      // Undersized chunk: adopt it as the partial tail. If the table grew
      // past it after the snapshot, the normal pass extends or promotes it
      // through the repopulating BuildChunk (replaces = the tail).
      state.tail_smu = smu;
      state.tail_blocks = n;
      break;
    }
    for (const auto& smu : ready) {
      if (matched.count(smu.get()) == 0) store_->AbandonSmu(smu);
    }
  }
}

void Populator::DisableObject(ObjectId object_id) {
  std::lock_guard<std::mutex> g(mu_);
  objects_.erase(object_id);
  store_->DropObject(object_id);
}

void Populator::Start() {
  stop_.store(false, std::memory_order_release);
  crashed_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { ManagerLoop(); });
}

void Populator::Stop() {
  {
    std::lock_guard<std::mutex> g(stop_mu_);
    stop_.store(true, std::memory_order_release);
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Populator::ManagerLoop() {
  try {
    while (!stop_.load(std::memory_order_acquire)) {
      RunOnePass();
      // Interruptible sleep: Stop() must not stall a restart for up to a
      // whole manager interval.
      std::unique_lock<std::mutex> lock(stop_mu_);
      stop_cv_.wait_for(
          lock, std::chrono::microseconds(options_.manager_interval_us),
          [this] { return stop_.load(std::memory_order_acquire); });
    }
  } catch (const chaos::CrashSignal&) {
    // The population "process" dies here, possibly having registered an SMU
    // whose IMCU data was never built (the SMU-first window). The restart
    // clears the whole ImStore, so the orphan never serves a query.
    crashed_.store(true, std::memory_order_release);
  }
}

void Populator::RunOnePass() {
  std::lock_guard<std::mutex> g(mu_);
  for (auto& [oid, state] : objects_) PassOverObject(&state);
}

Status Populator::PopulateNow(ObjectId object_id) {
  for (int attempt = 0; attempt < 2000; ++attempt) {
    {
      std::lock_guard<std::mutex> g(mu_);
      auto it = objects_.find(object_id);
      if (it == objects_.end())
        return Status::NotFound("object not enabled for population");
      if (!PassOverObject(&it->second)) {
        const size_t total = it->second.table->SnapshotBlocks().size();
        if (it->second.full_covered + it->second.tail_blocks >= total)
          return Status::OK();
        // Coverage incomplete: the consistency point is not available yet or
        // another instance owns the tail chunk. Retry below.
      }
    }
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  return Status::Unavailable("population could not complete (no consistency point?)");
}

InstanceId Populator::HomeOf(ObjectId object_id, uint64_t chunk_ordinal) const {
  if (!options_.home_fn) return store_->instance();
  return options_.home_fn(object_id, chunk_ordinal);
}

bool Populator::PassOverObject(ObjectState* state) {
  bool worked = false;
  Table* table = state->table;
  const ObjectId oid = table->object_id();
  const std::vector<Dba> blocks = table->SnapshotBlocks();
  const size_t bpi = static_cast<size_t>(options_.blocks_per_imcu);

  // A tail that has grown to a full chunk is simply promoted.
  if (state->tail_smu != nullptr && state->tail_blocks == bpi) {
    state->full_covered += bpi;
    state->tail_smu.reset();
    state->tail_blocks = 0;
  }

  // Cover complete chunks.
  while (blocks.size() - state->full_covered >= bpi) {
    const uint64_t ordinal = state->full_covered / bpi;
    if (HomeOf(oid, ordinal) != store_->instance()) {
      // Chunk homed on another instance; it populates, we just account.
      state->full_covered += bpi;
      state->tail_smu.reset();
      state->tail_blocks = 0;
      continue;
    }
    std::vector<Dba> dbas(blocks.begin() + state->full_covered,
                          blocks.begin() + state->full_covered + bpi);
    // Any partial tail is a prefix of this chunk and is replaced by it.
    if (!BuildChunk(state, dbas, state->tail_smu, /*is_tail=*/false,
                    /*is_repop=*/state->tail_smu != nullptr)) {
      return worked;
    }
    state->full_covered += bpi;
    state->tail_smu.reset();
    state->tail_blocks = 0;
    worked = true;
  }

  // Cover (or extend) the partial tail — the "edge IMCU" of Section IV.A.2.
  const size_t rem = blocks.size() - state->full_covered;
  if (rem > 0 && rem != state->tail_blocks) {
    const uint64_t ordinal = state->full_covered / bpi;
    if (HomeOf(oid, ordinal) == store_->instance()) {
      std::vector<Dba> dbas(blocks.begin() + state->full_covered, blocks.end());
      if (BuildChunk(state, dbas, state->tail_smu, /*is_tail=*/true,
                     /*is_repop=*/state->tail_smu != nullptr)) {
        worked = true;
      }
    }
  }

  // Repopulation of heavily invalidated IMCUs (Section II.B heuristics):
  // either the invalid fraction crossed the threshold, or the SMU is stale
  // (old enough with any invalidity at all — drains residual staleness).
  for (const auto& smu : store_->SmusForObject(oid)) {
    if (smu->state() != SmuState::kReady) continue;
    const bool over_threshold =
        smu->InvalidFraction() >= options_.repop_invalid_threshold ||
        smu->AllInvalid();
    const bool stale =
        options_.repop_staleness_us > 0 && smu->invalid_count() > 0 &&
        NowMicros() - smu->created_us() >
            static_cast<uint64_t>(options_.repop_staleness_us);
    if (!over_threshold && !stale) continue;
    if (!smu->TrySetRepopScheduled()) continue;
    const bool is_tail = smu == state->tail_smu;
    std::vector<Dba> dbas = smu->dbas();
    if (BuildChunk(state, dbas, smu, is_tail, /*is_repop=*/true)) {
      std::lock_guard<std::mutex> g(stats_mu_);
      ++stats_.repopulations;
      worked = true;
    } else {
      smu->ClearRepopScheduled();
    }
  }
  return worked;
}

bool Populator::BuildChunk(ObjectState* state, const std::vector<Dba>& dbas,
                           const std::shared_ptr<Smu>& replaces, bool is_tail,
                           bool is_repop) {
  STRATUS_SPAN(obs::Stage::kPopulation, state->table->object_id());
  Table* table = state->table;
  std::shared_ptr<Smu> smu;

  // Snapshot capture + SMU registration are one protected step: once the SMU
  // is in the DBA map, every invalidation flush for commits beyond the
  // snapshot reaches it; changes at or before the snapshot are in the data.
  const Scn snapshot = snapshot_source_->CaptureSnapshot([&](Scn scn) {
    smu = std::make_shared<Smu>(table->object_id(), table->tenant(), scn, dbas);
    store_->RegisterSmu(smu, replaces);
  });
  if (snapshot == kInvalidScn) {
    std::lock_guard<std::mutex> g(stats_mu_);
    ++stats_.snapshot_retries;
    return false;
  }
  // Fires with the SMU registered (receiving invalidations) but its IMCU not
  // yet built — the crash leaves a kPopulating SMU with no columnar data,
  // which the restart's ImStore::Clear must fully discard. Placed after
  // CaptureSnapshot returns so the quiesce/sync guard is already released.
  STRATUS_CRASH_POINT(options_.chaos, chaos::CrashPoint::kPopulationSnapshot);

  // Build the columnar data, reading rows as of the snapshot. Population is
  // completely online: no lock on the blocks beyond per-read latches.
  ReadView view;
  view.snapshot_scn = snapshot;
  view.resolver = snapshot_source_->resolver();

  const size_t n_rows = dbas.size() * kRowsPerBlock;
  std::vector<Row> rows(n_rows);
  std::vector<bool> present(n_rows, false);
  size_t present_rows = 0;
  for (size_t b = 0; b < dbas.size(); ++b) {
    Block* block = blocks_->GetBlock(dbas[b]);
    if (block == nullptr) continue;
    const SlotId used = block->used_slots();
    for (SlotId slot = 0; slot < used; ++slot) {
      const size_t idx = b * kRowsPerBlock + slot;
      if (block->ReadRow(slot, view, &rows[idx]).ok()) {
        present[idx] = true;
        ++present_rows;
      }
    }
  }

  const std::shared_ptr<const Schema> schema_ptr = table->schema();
  const Schema& schema = *schema_ptr;
  auto imcu = std::make_shared<Imcu>(table->object_id(), table->tenant(),
                                     snapshot, dbas, schema);
  std::vector<std::unique_ptr<ColumnVector>> cols;
  cols.reserve(schema.num_columns());
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    const bool dropped = schema.IsDropped(c);
    cols.push_back(BuildColumnVector(
        dropped ? ValueType::kInt : schema.column(c).type, n_rows,
        [&](size_t i) -> const Value* {
          if (dropped || !present[i] || c >= rows[i].size()) return nullptr;
          return &rows[i][c];
        }));
  }
  // In-Memory Expressions: evaluate once per present row at population and
  // store the results as additional encoded virtual columns (Section V, [1]).
  if (options_.expressions != nullptr) {
    const std::vector<Expression> exprs =
        options_.expressions->For(table->object_id());
    std::vector<Value> computed(n_rows);
    for (const Expression& expr : exprs) {
      ValueType type = expr.ResultType(schema);
      if (type == ValueType::kNull) type = ValueType::kInt;
      for (size_t i = 0; i < n_rows; ++i) {
        computed[i] = present[i] ? expr.Eval(rows[i]) : Value::Null();
      }
      cols.push_back(BuildColumnVector(type, n_rows, [&](size_t i) -> const Value* {
        return computed[i].is_null() ? nullptr : &computed[i];
      }));
    }
  }
  for (size_t i = 0; i < n_rows; ++i) {
    if (present[i]) imcu->SetPresent(static_cast<uint32_t>(i));
  }
  imcu->SetColumns(std::move(cols));

  if (store_->WouldExceedCapacity(imcu->ApproxBytes())) {
    store_->AbandonSmu(smu);
    std::lock_guard<std::mutex> g(stats_mu_);
    ++stats_.capacity_rejections;
    return false;
  }
  store_->AttachImcu(smu, std::move(imcu), replaces);

  if (is_tail) {
    state->tail_smu = smu;
    state->tail_blocks = dbas.size();
  } else if (replaces != nullptr && replaces == state->tail_smu) {
    state->tail_smu.reset();
    state->tail_blocks = 0;
  }

  std::lock_guard<std::mutex> g(stats_mu_);
  ++stats_.imcus_populated;
  if (is_tail && !is_repop) ++stats_.tail_extensions;
  stats_.rows_populated += present_rows;
  return true;
}

PopulationStats Populator::stats() const {
  std::lock_guard<std::mutex> g(stats_mu_);
  return stats_;
}

}  // namespace stratus
