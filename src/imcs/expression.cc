#include "imcs/expression.h"

namespace stratus {

Expression Expression::Column(uint32_t column) {
  Expression e;
  e.op_ = Op::kColumn;
  e.column_ = column;
  return e;
}

Expression Expression::Const(Value v) {
  Expression e;
  e.op_ = Op::kConst;
  e.constant_ = std::move(v);
  return e;
}

Expression Expression::Node(Op op, Expression l) {
  Expression e;
  e.op_ = op;
  e.left_ = std::make_shared<const Expression>(std::move(l));
  return e;
}

Expression Expression::Node(Op op, Expression l, Expression r) {
  Expression e;
  e.op_ = op;
  e.left_ = std::make_shared<const Expression>(std::move(l));
  e.right_ = std::make_shared<const Expression>(std::move(r));
  return e;
}

Value Expression::Eval(const Row& row) const {
  switch (op_) {
    case Op::kColumn:
      if (column_ >= row.size()) return Value::Null();
      return row[column_];
    case Op::kConst:
      return constant_;
    case Op::kLength: {
      const Value v = left_->Eval(row);
      if (v.type() != ValueType::kString) return Value::Null();
      return Value(static_cast<int64_t>(v.as_string().size()));
    }
    case Op::kConcat: {
      const Value l = left_->Eval(row);
      const Value r = right_->Eval(row);
      if (l.type() != ValueType::kString || r.type() != ValueType::kString)
        return Value::Null();
      return Value(l.as_string() + r.as_string());
    }
    default: {
      const Value l = left_->Eval(row);
      const Value r = right_->Eval(row);
      if (l.type() != ValueType::kInt || r.type() != ValueType::kInt)
        return Value::Null();
      const int64_t a = l.as_int();
      const int64_t b = r.as_int();
      switch (op_) {
        case Op::kAdd: return Value(a + b);
        case Op::kSub: return Value(a - b);
        case Op::kMul: return Value(a * b);
        case Op::kDiv: return b == 0 ? Value::Null() : Value(a / b);
        case Op::kMod: return b == 0 ? Value::Null() : Value(a % b);
        default: return Value::Null();
      }
    }
  }
}

ValueType Expression::ResultType(const Schema& schema) const {
  switch (op_) {
    case Op::kColumn:
      if (column_ >= schema.num_columns()) return ValueType::kNull;
      return schema.column(column_).type;
    case Op::kConst:
      return constant_.type();
    case Op::kLength:
      return ValueType::kInt;
    case Op::kConcat:
      return ValueType::kString;
    default:
      return ValueType::kInt;
  }
}

std::string Expression::ToString(const Schema& schema) const {
  switch (op_) {
    case Op::kColumn:
      return column_ < schema.num_columns() ? schema.column(column_).name
                                            : "col?" + std::to_string(column_);
    case Op::kConst:
      return constant_.ToString();
    case Op::kLength:
      return "length(" + left_->ToString(schema) + ")";
    case Op::kConcat:
      return left_->ToString(schema) + " || " + right_->ToString(schema);
    case Op::kAdd:
      return "(" + left_->ToString(schema) + " + " + right_->ToString(schema) + ")";
    case Op::kSub:
      return "(" + left_->ToString(schema) + " - " + right_->ToString(schema) + ")";
    case Op::kMul:
      return "(" + left_->ToString(schema) + " * " + right_->ToString(schema) + ")";
    case Op::kDiv:
      return "(" + left_->ToString(schema) + " / " + right_->ToString(schema) + ")";
    case Op::kMod:
      return "(" + left_->ToString(schema) + " % " + right_->ToString(schema) + ")";
  }
  return "?";
}

Status Expression::Validate(const Schema& schema) const {
  switch (op_) {
    case Op::kColumn:
      if (column_ >= schema.num_columns())
        return Status::InvalidArgument("expression references column " +
                                       std::to_string(column_) +
                                       " beyond schema arity");
      if (schema.IsDropped(column_))
        return Status::InvalidArgument("expression references dropped column");
      return Status::OK();
    case Op::kConst:
      return Status::OK();
    case Op::kLength:
      return left_->Validate(schema);
    default: {
      STRATUS_RETURN_IF_ERROR(left_->Validate(schema));
      if (right_ != nullptr) STRATUS_RETURN_IF_ERROR(right_->Validate(schema));
      return Status::OK();
    }
  }
}

StatusOr<uint32_t> ImExpressionRegistry::Register(ObjectId object,
                                                  const Schema& schema,
                                                  Expression expr) {
  STRATUS_RETURN_IF_ERROR(expr.Validate(schema));
  std::lock_guard<std::mutex> g(mu_);
  auto& list = exprs_[object];
  list.push_back(std::move(expr));
  return static_cast<uint32_t>(schema.num_columns() + list.size() - 1);
}

std::vector<Expression> ImExpressionRegistry::For(ObjectId object) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = exprs_.find(object);
  return it == exprs_.end() ? std::vector<Expression>{} : it->second;
}

void ImExpressionRegistry::Drop(ObjectId object) {
  std::lock_guard<std::mutex> g(mu_);
  exprs_.erase(object);
}

size_t ImExpressionRegistry::CountFor(ObjectId object) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = exprs_.find(object);
  return it == exprs_.end() ? 0 : it->second.size();
}

}  // namespace stratus
