#include "imcs/column_vector.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/checksum.h"

namespace stratus {

uint8_t BitPackedArray::WidthFor(uint64_t max_value) {
  uint8_t w = 0;
  while (max_value != 0) {
    ++w;
    max_value >>= 1;
  }
  return w;
}

BitPackedArray BitPackedArray::Pack(const std::vector<uint64_t>& values,
                                    uint8_t width) {
  BitPackedArray arr;
  arr.size_ = values.size();
  arr.width_ = width;
  arr.mask_ = width >= 64 ? ~0ull : ((1ull << width) - 1);
  if (width == 0) return arr;
  arr.words_.assign((values.size() * width + 63) / 64 + 1, 0);
  for (size_t i = 0; i < values.size(); ++i) {
    const uint64_t v = values[i] & arr.mask_;
    const size_t bit = i * width;
    const size_t word = bit >> 6;
    const unsigned shift = bit & 63;
    arr.words_[word] |= v << shift;
    if (shift + width > 64) arr.words_[word + 1] |= v >> (64 - shift);
  }
  return arr;
}

void BitPackedArray::Serialize(std::string* out) const {
  PutVarint64(out, size_);
  out->push_back(static_cast<char>(width_));
  PutVarint64(out, words_.size());
  // Raw little-endian words: the dense physical form, appended wholesale so
  // resume avoids per-element varint work.
  out->append(reinterpret_cast<const char*>(words_.data()),
              words_.size() * sizeof(uint64_t));
}

bool BitPackedArray::Deserialize(const std::string& buf, size_t* pos,
                                 BitPackedArray* out) {
  uint64_t n = 0;
  if (!GetVarint64(buf, pos, &n)) return false;
  if (*pos >= buf.size()) return false;
  const uint8_t width = static_cast<uint8_t>(buf[(*pos)++]);
  if (width > 64) return false;
  uint64_t nwords = 0;
  if (!GetVarint64(buf, pos, &nwords)) return false;
  const size_t bytes = nwords * sizeof(uint64_t);
  if (*pos + bytes > buf.size()) return false;
  // A width-w array over n values needs this many words (see Pack).
  if (width != 0 && nwords != (n * width + 63) / 64 + 1) return false;
  if (width == 0 && nwords != 0) return false;
  out->size_ = n;
  out->width_ = width;
  out->mask_ = width == 0 ? 0 : (width >= 64 ? ~0ull : ((1ull << width) - 1));
  out->words_.resize(nwords);
  if (bytes != 0) std::memcpy(out->words_.data(), buf.data() + *pos, bytes);
  *pos += bytes;
  return true;
}

namespace {

std::vector<uint64_t> MakeNullBitmap(size_t n) {
  return std::vector<uint64_t>((n + 63) / 64, 0);
}

// Column serialization type tags (on-disk; append-only list).
inline constexpr uint8_t kColTagInt = 1;
inline constexpr uint8_t kColTagString = 2;

void PutRawWords(std::string* out, const std::vector<uint64_t>& words) {
  out->append(reinterpret_cast<const char*>(words.data()),
              words.size() * sizeof(uint64_t));
}

bool GetRawWords(const std::string& buf, size_t* pos, size_t nwords,
                 std::vector<uint64_t>* out) {
  const size_t bytes = nwords * sizeof(uint64_t);
  if (*pos + bytes > buf.size()) return false;
  out->resize(nwords);
  if (bytes != 0) std::memcpy(out->data(), buf.data() + *pos, bytes);
  *pos += bytes;
  return true;
}

void SetBit(std::vector<uint64_t>* bm, size_t i) {
  (*bm)[i >> 6] |= 1ull << (i & 63);
}

/// True if a code satisfying `op pivot_code` can exist given whether the
/// probe value itself is present in the domain; used by both filter kernels.
bool AnyBitSet(const std::vector<uint64_t>& words) {
  for (uint64_t w : words) {
    if (w != 0) return true;
  }
  return false;
}

template <bool kHasNulls, typename Emit>
void FilterCodesImpl(const BitPackedArray& packed, const std::vector<uint64_t>& nulls,
                     size_t n, PredOp op, uint64_t pivot, bool pivot_exact,
                     const Emit& emit) {
  for (size_t i = 0; i < n; ++i) {
    if constexpr (kHasNulls) {
      if ((nulls[i >> 6] >> (i & 63)) & 1) continue;
    }
    const uint64_t c = packed.Get(i);
    bool match = false;
    switch (op) {
      case PredOp::kEq: match = pivot_exact && c == pivot; break;
      case PredOp::kNe: match = !pivot_exact || c != pivot; break;
      case PredOp::kLt: match = c < pivot; break;
      case PredOp::kLe: match = c <= pivot; break;
      case PredOp::kGt: match = c > pivot; break;
      case PredOp::kGe: match = c >= pivot; break;
    }
    if (match) emit(static_cast<uint32_t>(i));
  }
}

/// pivot is in code space. For kEq with !pivot_exact there is no match; for
/// ordered ops with !pivot_exact, pivot is the lower-bound code and the
/// comparisons are adjusted by the caller before calling.
template <typename Emit>
void FilterCodes(const BitPackedArray& packed, const std::vector<uint64_t>& nulls,
                 size_t n, PredOp op, uint64_t pivot, bool pivot_exact,
                 const Emit& emit) {
  if (AnyBitSet(nulls)) {
    FilterCodesImpl<true>(packed, nulls, n, op, pivot, pivot_exact, emit);
  } else {
    FilterCodesImpl<false>(packed, nulls, n, op, pivot, pivot_exact, emit);
  }
}

}  // namespace

IntColumnVector::IntColumnVector(const std::vector<std::optional<int64_t>>& values)
    : n_(values.size()), nulls_(MakeNullBitmap(values.size())) {
  for (const auto& v : values) {
    if (!v.has_value()) continue;
    if (all_null_) {
      min_ = max_ = *v;
      all_null_ = false;
    } else {
      min_ = std::min(min_, *v);
      max_ = std::max(max_, *v);
    }
  }
  base_ = min_;
  std::vector<uint64_t> deltas(n_, 0);
  for (size_t i = 0; i < n_; ++i) {
    if (values[i].has_value()) {
      deltas[i] = static_cast<uint64_t>(values[i].value() - base_);
    } else {
      SetBit(&nulls_, i);
    }
  }
  const uint8_t width =
      all_null_ ? 0 : BitPackedArray::WidthFor(static_cast<uint64_t>(max_ - min_));
  packed_ = BitPackedArray::Pack(deltas, width);
}

Value IntColumnVector::Get(size_t row) const {
  if (IsNull(row)) return Value::Null();
  return Value(GetInt(row));
}

size_t IntColumnVector::ApproxBytes() const {
  return packed_.ApproxBytes() + nulls_.capacity() * 8 + sizeof(*this);
}

bool IntColumnVector::MightMatch(PredOp op, const Value& value) const {
  if (all_null_ || value.type() != ValueType::kInt) return false;
  const int64_t v = value.as_int();
  switch (op) {
    case PredOp::kEq: return v >= min_ && v <= max_;
    case PredOp::kNe: return true;
    case PredOp::kLt: return min_ < v;
    case PredOp::kLe: return min_ <= v;
    case PredOp::kGt: return max_ > v;
    case PredOp::kGe: return max_ >= v;
  }
  return true;
}

void IntColumnVector::Filter(PredOp op, const Value& value,
                             std::vector<uint32_t>* out) const {
  if (all_null_ || value.type() != ValueType::kInt) return;
  const int64_t v = value.as_int();
  // Translate into code (delta) space, clamping out-of-frame pivots.
  if (!MightMatch(op, value) && op != PredOp::kNe) return;
  int64_t pivot_signed;
  bool exact = true;
  if (v < min_) {
    // All codes are > pivot.
    switch (op) {
      case PredOp::kEq: return;
      case PredOp::kLt: case PredOp::kLe: return;
      case PredOp::kNe: case PredOp::kGt: case PredOp::kGe:
        pivot_signed = 0;
        // Every non-null row matches >= min, encode as c >= 0.
        FilterCodes(packed_, nulls_, n_, PredOp::kGe, 0, true,
                    [&](uint32_t i) { out->push_back(i); });
        return;
    }
  }
  if (v > max_) {
    switch (op) {
      case PredOp::kEq: return;
      case PredOp::kGt: case PredOp::kGe: return;
      case PredOp::kNe: case PredOp::kLt: case PredOp::kLe:
        FilterCodes(packed_, nulls_, n_, PredOp::kGe, 0, true,
                    [&](uint32_t i) { out->push_back(i); });
        return;
    }
  }
  pivot_signed = v - base_;
  const uint64_t pivot = static_cast<uint64_t>(pivot_signed);
  FilterCodes(packed_, nulls_, n_, op, pivot, exact,
              [&](uint32_t i) { out->push_back(i); });
}

void IntColumnVector::SerializeTo(std::string* out) const {
  out->push_back(static_cast<char>(kColTagInt));
  PutVarint64(out, n_);
  out->push_back(all_null_ ? 1 : 0);
  PutVarint64(out, ZigzagEncode(base_));
  PutVarint64(out, ZigzagEncode(min_));
  PutVarint64(out, ZigzagEncode(max_));
  packed_.Serialize(out);
  PutRawWords(out, nulls_);
}

std::unique_ptr<IntColumnVector> IntColumnVector::Deserialize(
    const std::string& buf, size_t* pos) {
  std::unique_ptr<IntColumnVector> col(new IntColumnVector());
  uint64_t v = 0;
  if (!GetVarint64(buf, pos, &v)) return nullptr;
  col->n_ = v;
  if (*pos >= buf.size()) return nullptr;
  col->all_null_ = buf[(*pos)++] != 0;
  if (!GetVarint64(buf, pos, &v)) return nullptr;
  col->base_ = ZigzagDecode(v);
  if (!GetVarint64(buf, pos, &v)) return nullptr;
  col->min_ = ZigzagDecode(v);
  if (!GetVarint64(buf, pos, &v)) return nullptr;
  col->max_ = ZigzagDecode(v);
  if (!BitPackedArray::Deserialize(buf, pos, &col->packed_)) return nullptr;
  if (col->packed_.size() != col->n_) return nullptr;
  if (!GetRawWords(buf, pos, (col->n_ + 63) / 64, &col->nulls_)) return nullptr;
  return col;
}

StringColumnVector::StringColumnVector(const std::vector<const std::string*>& values)
    : n_(values.size()), nulls_(MakeNullBitmap(values.size())) {
  dict_ = Dictionary::Build(values);
  all_null_ = dict_.empty();
  std::vector<uint64_t> codes(n_, 0);
  for (size_t i = 0; i < n_; ++i) {
    if (values[i] == nullptr) {
      SetBit(&nulls_, i);
    } else {
      codes[i] = dict_.Lookup(*values[i]).value();
    }
  }
  const uint8_t width =
      dict_.size() <= 1 ? 0 : BitPackedArray::WidthFor(dict_.size() - 1);
  codes_ = BitPackedArray::Pack(codes, width);
}

Value StringColumnVector::Get(size_t row) const {
  if (IsNull(row)) return Value::Null();
  return Value(dict_.Decode(static_cast<uint32_t>(codes_.Get(row))));
}

size_t StringColumnVector::ApproxBytes() const {
  return codes_.ApproxBytes() + dict_.ApproxBytes() + nulls_.capacity() * 8 +
         sizeof(*this);
}

bool StringColumnVector::MightMatch(PredOp op, const Value& value) const {
  if (all_null_ || value.type() != ValueType::kString) return false;
  const std::string& v = value.as_string();
  switch (op) {
    case PredOp::kEq: return v >= dict_.MinValue() && v <= dict_.MaxValue();
    case PredOp::kNe: return true;
    case PredOp::kLt: return dict_.MinValue() < v;
    case PredOp::kLe: return dict_.MinValue() <= v;
    case PredOp::kGt: return dict_.MaxValue() > v;
    case PredOp::kGe: return dict_.MaxValue() >= v;
  }
  return true;
}

void StringColumnVector::Filter(PredOp op, const Value& value,
                                std::vector<uint32_t>* out) const {
  if (all_null_ || value.type() != ValueType::kString) return;
  const std::string& v = value.as_string();
  const std::optional<uint32_t> code = dict_.Lookup(v);
  // Order-preserving codes: translate the string comparison into a code
  // comparison against the lower bound.
  const uint32_t lb = dict_.LowerBound(v);
  switch (op) {
    case PredOp::kEq:
      if (!code.has_value()) return;
      FilterCodes(codes_, nulls_, n_, PredOp::kEq, *code, true,
                  [&](uint32_t i) { out->push_back(i); });
      return;
    case PredOp::kNe:
      FilterCodes(codes_, nulls_, n_, PredOp::kNe, code.value_or(0),
                  code.has_value(), [&](uint32_t i) { out->push_back(i); });
      return;
    case PredOp::kLt:
      // value < v  ⇔  code < lb.
      FilterCodes(codes_, nulls_, n_, PredOp::kLt, lb, true,
                  [&](uint32_t i) { out->push_back(i); });
      return;
    case PredOp::kLe:
      // value <= v ⇔ code < lb, or code == lb when dict[lb] == v.
      FilterCodes(codes_, nulls_, n_,
                  code.has_value() ? PredOp::kLe : PredOp::kLt, lb, true,
                  [&](uint32_t i) { out->push_back(i); });
      return;
    case PredOp::kGt:
      // value > v ⇔ code > lb when dict[lb]==v, else code >= lb.
      FilterCodes(codes_, nulls_, n_,
                  code.has_value() ? PredOp::kGt : PredOp::kGe, lb, true,
                  [&](uint32_t i) { out->push_back(i); });
      return;
    case PredOp::kGe:
      FilterCodes(codes_, nulls_, n_, PredOp::kGe, lb, true,
                  [&](uint32_t i) { out->push_back(i); });
      return;
  }
}

void StringColumnVector::SerializeTo(std::string* out) const {
  out->push_back(static_cast<char>(kColTagString));
  PutVarint64(out, n_);
  out->push_back(all_null_ ? 1 : 0);
  dict_.Serialize(out);
  codes_.Serialize(out);
  PutRawWords(out, nulls_);
}

std::unique_ptr<StringColumnVector> StringColumnVector::Deserialize(
    const std::string& buf, size_t* pos) {
  std::unique_ptr<StringColumnVector> col(new StringColumnVector());
  uint64_t v = 0;
  if (!GetVarint64(buf, pos, &v)) return nullptr;
  col->n_ = v;
  if (*pos >= buf.size()) return nullptr;
  col->all_null_ = buf[(*pos)++] != 0;
  if (!Dictionary::Deserialize(buf, pos, &col->dict_)) return nullptr;
  if (col->all_null_ != col->dict_.empty()) return nullptr;
  if (!BitPackedArray::Deserialize(buf, pos, &col->codes_)) return nullptr;
  if (col->codes_.size() != col->n_) return nullptr;
  if (!GetRawWords(buf, pos, (col->n_ + 63) / 64, &col->nulls_)) return nullptr;
  // Every stored code must land inside the dictionary, else Get() would read
  // out of bounds on a damaged (CRC-passing but decoder-mismatched) file.
  const uint64_t max_code = col->codes_.width() >= 64
                                ? ~0ull
                                : (1ull << col->codes_.width()) - 1;
  if (!col->dict_.empty() && max_code >= col->dict_.size()) {
    for (size_t i = 0; i < col->n_; ++i) {
      if (col->IsNull(i)) continue;
      if (col->codes_.Get(i) >= col->dict_.size()) return nullptr;
    }
  }
  return col;
}

std::unique_ptr<ColumnVector> DeserializeColumnVector(const std::string& buf,
                                                      size_t* pos) {
  if (*pos >= buf.size()) return nullptr;
  const uint8_t tag = static_cast<uint8_t>(buf[(*pos)++]);
  if (tag == kColTagInt) return IntColumnVector::Deserialize(buf, pos);
  if (tag == kColTagString) return StringColumnVector::Deserialize(buf, pos);
  return nullptr;
}

std::unique_ptr<ColumnVector> BuildColumnVector(
    ValueType type, size_t n, const std::function<const Value*(size_t)>& get) {
  if (type == ValueType::kString) {
    std::vector<const std::string*> vals(n, nullptr);
    for (size_t i = 0; i < n; ++i) {
      const Value* v = get(i);
      if (v != nullptr && v->type() == ValueType::kString) vals[i] = &v->as_string();
    }
    return std::make_unique<StringColumnVector>(vals);
  }
  std::vector<std::optional<int64_t>> vals(n);
  for (size_t i = 0; i < n; ++i) {
    const Value* v = get(i);
    if (v != nullptr && v->type() == ValueType::kInt) vals[i] = v->as_int();
  }
  return std::make_unique<IntColumnVector>(vals);
}

}  // namespace stratus
