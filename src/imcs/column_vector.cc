#include "imcs/column_vector.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/checksum.h"

namespace stratus {

uint8_t BitPackedArray::WidthFor(uint64_t max_value) {
  uint8_t w = 0;
  while (max_value != 0) {
    ++w;
    max_value >>= 1;
  }
  return w;
}

BitPackedArray BitPackedArray::Pack(const std::vector<uint64_t>& values,
                                    uint8_t width) {
  BitPackedArray arr;
  arr.size_ = values.size();
  arr.width_ = width;
  arr.mask_ = width >= 64 ? ~0ull : ((1ull << width) - 1);
  if (width == 0) return arr;
  arr.words_.assign((values.size() * width + 63) / 64 + 1, 0);
  for (size_t i = 0; i < values.size(); ++i) {
    const uint64_t v = values[i] & arr.mask_;
    const size_t bit = i * width;
    const size_t word = bit >> 6;
    const unsigned shift = bit & 63;
    arr.words_[word] |= v << shift;
    if (shift + width > 64) arr.words_[word + 1] |= v >> (64 - shift);
  }
  return arr;
}

void BitPackedArray::Serialize(std::string* out) const {
  PutVarint64(out, size_);
  out->push_back(static_cast<char>(width_));
  PutVarint64(out, words_.size());
  // Raw little-endian words: the dense physical form, appended wholesale so
  // resume avoids per-element varint work.
  out->append(reinterpret_cast<const char*>(words_.data()),
              words_.size() * sizeof(uint64_t));
}

bool BitPackedArray::Deserialize(const std::string& buf, size_t* pos,
                                 BitPackedArray* out) {
  uint64_t n = 0;
  if (!GetVarint64(buf, pos, &n)) return false;
  if (*pos >= buf.size()) return false;
  const uint8_t width = static_cast<uint8_t>(buf[(*pos)++]);
  if (width > 64) return false;
  uint64_t nwords = 0;
  if (!GetVarint64(buf, pos, &nwords)) return false;
  const size_t bytes = nwords * sizeof(uint64_t);
  if (*pos + bytes > buf.size()) return false;
  // A width-w array over n values needs this many words (see Pack).
  if (width != 0 && nwords != (n * width + 63) / 64 + 1) return false;
  if (width == 0 && nwords != 0) return false;
  out->size_ = n;
  out->width_ = width;
  out->mask_ = width == 0 ? 0 : (width >= 64 ? ~0ull : ((1ull << width) - 1));
  out->words_.resize(nwords);
  if (bytes != 0) std::memcpy(out->words_.data(), buf.data() + *pos, bytes);
  *pos += bytes;
  return true;
}

namespace {

std::vector<uint64_t> MakeNullBitmap(size_t n) {
  return std::vector<uint64_t>((n + 63) / 64, 0);
}

// Column serialization type tags (on-disk; append-only list).
inline constexpr uint8_t kColTagInt = 1;
inline constexpr uint8_t kColTagString = 2;

void PutRawWords(std::string* out, const std::vector<uint64_t>& words) {
  out->append(reinterpret_cast<const char*>(words.data()),
              words.size() * sizeof(uint64_t));
}

bool GetRawWords(const std::string& buf, size_t* pos, size_t nwords,
                 std::vector<uint64_t>* out) {
  const size_t bytes = nwords * sizeof(uint64_t);
  if (*pos + bytes > buf.size()) return false;
  out->resize(nwords);
  if (bytes != 0) std::memcpy(out->data(), buf.data() + *pos, bytes);
  *pos += bytes;
  return true;
}

void SetBit(std::vector<uint64_t>* bm, size_t i) {
  (*bm)[i >> 6] |= 1ull << (i & 63);
}

/// Shared tail of both FilterBitmap implementations: run the requested
/// kernel over the packed codes, then mask out the NULL rows (a negated
/// range would otherwise resurrect them — NULLs never match).
void FilterCodesWithNulls(const BitPackedArray& packed, size_t n,
                          const std::vector<uint64_t>& nulls,
                          const CodeRange& range, ScanKernel kernel,
                          uint64_t* out, KernelCounters* counters) {
  FilterCodesBitmap(packed, n, range, kernel, out, counters);
  BitmapAndNot(out, nulls.data(), std::min(BitmapWords(n), nulls.size()));
}

}  // namespace

IntColumnVector::IntColumnVector(const std::vector<std::optional<int64_t>>& values)
    : n_(values.size()), nulls_(MakeNullBitmap(values.size())) {
  for (const auto& v : values) {
    if (!v.has_value()) continue;
    if (all_null_) {
      min_ = max_ = *v;
      all_null_ = false;
    } else {
      min_ = std::min(min_, *v);
      max_ = std::max(max_, *v);
    }
  }
  base_ = min_;
  std::vector<uint64_t> deltas(n_, 0);
  for (size_t i = 0; i < n_; ++i) {
    if (values[i].has_value()) {
      deltas[i] = static_cast<uint64_t>(values[i].value() - base_);
    } else {
      SetBit(&nulls_, i);
    }
  }
  const uint8_t width =
      all_null_ ? 0 : BitPackedArray::WidthFor(static_cast<uint64_t>(max_ - min_));
  packed_ = BitPackedArray::Pack(deltas, width);
}

Value IntColumnVector::Get(size_t row) const {
  if (IsNull(row)) return Value::Null();
  return Value(GetInt(row));
}

size_t IntColumnVector::ApproxBytes() const {
  return packed_.ApproxBytes() + nulls_.capacity() * 8 + sizeof(*this);
}

bool IntColumnVector::MightMatch(PredOp op, const Value& value) const {
  if (all_null_ || value.type() != ValueType::kInt) return false;
  const int64_t v = value.as_int();
  switch (op) {
    case PredOp::kEq: return v >= min_ && v <= max_;
    // A constant column equal to the probe can't satisfy !=; everything else
    // might (some row may differ even when the probe is inside [min, max]).
    case PredOp::kNe: return !(min_ == max_ && v == min_);
    case PredOp::kLt: return min_ < v;
    case PredOp::kLe: return min_ <= v;
    case PredOp::kGt: return max_ > v;
    case PredOp::kGe: return max_ >= v;
  }
  return true;
}

void IntColumnVector::Filter(PredOp op, const Value& value,
                             std::vector<uint32_t>* out) const {
  if (n_ == 0) return;
  std::vector<uint64_t> bm(BitmapWords(n_));
  FilterBitmap(op, value, ActiveScanKernel(), bm.data(), nullptr);
  BitmapToRows(bm.data(), bm.size(), out);
}

void IntColumnVector::FilterBitmap(PredOp op, const Value& value,
                                   ScanKernel kernel, uint64_t* out,
                                   KernelCounters* counters) const {
  if (n_ == 0) return;
  if (all_null_ || value.type() != ValueType::kInt) {
    BitmapFill(out, n_, false);
    return;
  }
  const int64_t v = value.as_int();
  // Translate the pivot into code (delta) space once, clamping out-of-frame
  // values to all/none. Unsigned subtraction: the difference of two in-frame
  // int64s can overflow a signed subtraction, and wrap is defined here.
  const uint64_t c =
      static_cast<uint64_t>(v) - static_cast<uint64_t>(base_);
  const uint64_t max_code =
      static_cast<uint64_t>(max_) - static_cast<uint64_t>(min_);
  CodeRange range = CodeRange::None();
  switch (op) {
    case PredOp::kEq:
      if (v >= min_ && v <= max_) range = CodeRange::Exact(c);
      break;
    case PredOp::kNe:
      if (v < min_ || v > max_) {
        range = CodeRange::All();
      } else if (min_ != max_) {
        range = CodeRange::Exact(c);
        range.negate = true;
      }  // else: constant column equal to the probe — nothing matches.
      break;
    case PredOp::kLt:
      if (v > max_) range = CodeRange::All();
      else if (v > min_) range = CodeRange{0, c - 1, false, false};
      break;
    case PredOp::kLe:
      if (v >= max_) range = CodeRange::All();
      else if (v >= min_) range = CodeRange{0, c, false, false};
      break;
    case PredOp::kGt:
      if (v < min_) range = CodeRange::All();
      else if (v < max_) range = CodeRange{c + 1, max_code, false, false};
      break;
    case PredOp::kGe:
      if (v <= min_) range = CodeRange::All();
      else if (v <= max_) range = CodeRange{c, max_code, false, false};
      break;
  }
  FilterCodesWithNulls(packed_, n_, nulls_, range, kernel, out, counters);
}

void IntColumnVector::SerializeTo(std::string* out) const {
  out->push_back(static_cast<char>(kColTagInt));
  PutVarint64(out, n_);
  out->push_back(all_null_ ? 1 : 0);
  PutVarint64(out, ZigzagEncode(base_));
  PutVarint64(out, ZigzagEncode(min_));
  PutVarint64(out, ZigzagEncode(max_));
  packed_.Serialize(out);
  PutRawWords(out, nulls_);
}

std::unique_ptr<IntColumnVector> IntColumnVector::Deserialize(
    const std::string& buf, size_t* pos) {
  std::unique_ptr<IntColumnVector> col(new IntColumnVector());
  uint64_t v = 0;
  if (!GetVarint64(buf, pos, &v)) return nullptr;
  col->n_ = v;
  if (*pos >= buf.size()) return nullptr;
  col->all_null_ = buf[(*pos)++] != 0;
  if (!GetVarint64(buf, pos, &v)) return nullptr;
  col->base_ = ZigzagDecode(v);
  if (!GetVarint64(buf, pos, &v)) return nullptr;
  col->min_ = ZigzagDecode(v);
  if (!GetVarint64(buf, pos, &v)) return nullptr;
  col->max_ = ZigzagDecode(v);
  if (!BitPackedArray::Deserialize(buf, pos, &col->packed_)) return nullptr;
  if (col->packed_.size() != col->n_) return nullptr;
  if (!GetRawWords(buf, pos, (col->n_ + 63) / 64, &col->nulls_)) return nullptr;
  return col;
}

StringColumnVector::StringColumnVector(const std::vector<const std::string*>& values)
    : n_(values.size()), nulls_(MakeNullBitmap(values.size())) {
  dict_ = Dictionary::Build(values);
  all_null_ = dict_.empty();
  std::vector<uint64_t> codes(n_, 0);
  for (size_t i = 0; i < n_; ++i) {
    if (values[i] == nullptr) {
      SetBit(&nulls_, i);
    } else {
      codes[i] = dict_.Lookup(*values[i]).value();
    }
  }
  const uint8_t width =
      dict_.size() <= 1 ? 0 : BitPackedArray::WidthFor(dict_.size() - 1);
  codes_ = BitPackedArray::Pack(codes, width);
}

Value StringColumnVector::Get(size_t row) const {
  if (IsNull(row)) return Value::Null();
  return Value(dict_.Decode(static_cast<uint32_t>(codes_.Get(row))));
}

size_t StringColumnVector::ApproxBytes() const {
  return codes_.ApproxBytes() + dict_.ApproxBytes() + nulls_.capacity() * 8 +
         sizeof(*this);
}

bool StringColumnVector::MightMatch(PredOp op, const Value& value) const {
  if (all_null_ || value.type() != ValueType::kString) return false;
  const std::string& v = value.as_string();
  switch (op) {
    case PredOp::kEq: return v >= dict_.MinValue() && v <= dict_.MaxValue();
    // A single-entry dictionary equal to the probe can't satisfy !=.
    case PredOp::kNe: return !(dict_.size() == 1 && dict_.MinValue() == v);
    case PredOp::kLt: return dict_.MinValue() < v;
    case PredOp::kLe: return dict_.MinValue() <= v;
    case PredOp::kGt: return dict_.MaxValue() > v;
    case PredOp::kGe: return dict_.MaxValue() >= v;
  }
  return true;
}

void StringColumnVector::Filter(PredOp op, const Value& value,
                                std::vector<uint32_t>* out) const {
  if (n_ == 0) return;
  std::vector<uint64_t> bm(BitmapWords(n_));
  FilterBitmap(op, value, ActiveScanKernel(), bm.data(), nullptr);
  BitmapToRows(bm.data(), bm.size(), out);
}

void StringColumnVector::FilterBitmap(PredOp op, const Value& value,
                                      ScanKernel kernel, uint64_t* out,
                                      KernelCounters* counters) const {
  if (n_ == 0) return;
  if (all_null_ || value.type() != ValueType::kString) {
    BitmapFill(out, n_, false);
    return;
  }
  const std::string& v = value.as_string();
  const std::optional<uint32_t> code = dict_.Lookup(v);
  // Order-preserving codes: the string comparison becomes a code-range check
  // against the lower bound (smallest code whose string is >= v; dict size
  // when every entry is smaller).
  const uint64_t lb = dict_.LowerBound(v);
  const uint64_t max_code = dict_.size() - 1;
  CodeRange range = CodeRange::None();
  switch (op) {
    case PredOp::kEq:
      if (code.has_value()) range = CodeRange::Exact(*code);
      break;
    case PredOp::kNe:
      if (!code.has_value()) {
        range = CodeRange::All();
      } else if (dict_.size() > 1) {
        range = CodeRange::Exact(*code);
        range.negate = true;
      }  // else: single-entry dictionary equal to the probe — no match.
      break;
    case PredOp::kLt:
      // value < v ⇔ code < lb.
      if (lb > 0) range = CodeRange{0, lb - 1, false, false};
      break;
    case PredOp::kLe:
      // value <= v ⇔ code <= lb when dict[lb] == v, else code < lb.
      if (code.has_value()) range = CodeRange{0, lb, false, false};
      else if (lb > 0) range = CodeRange{0, lb - 1, false, false};
      break;
    case PredOp::kGt: {
      // value > v ⇔ code > lb when dict[lb] == v, else code >= lb.
      const uint64_t first = code.has_value() ? lb + 1 : lb;
      if (first <= max_code) range = CodeRange{first, max_code, false, false};
      break;
    }
    case PredOp::kGe:
      if (lb <= max_code) range = CodeRange{lb, max_code, false, false};
      break;
  }
  FilterCodesWithNulls(codes_, n_, nulls_, range, kernel, out, counters);
}

void StringColumnVector::SerializeTo(std::string* out) const {
  out->push_back(static_cast<char>(kColTagString));
  PutVarint64(out, n_);
  out->push_back(all_null_ ? 1 : 0);
  dict_.Serialize(out);
  codes_.Serialize(out);
  PutRawWords(out, nulls_);
}

std::unique_ptr<StringColumnVector> StringColumnVector::Deserialize(
    const std::string& buf, size_t* pos) {
  std::unique_ptr<StringColumnVector> col(new StringColumnVector());
  uint64_t v = 0;
  if (!GetVarint64(buf, pos, &v)) return nullptr;
  col->n_ = v;
  if (*pos >= buf.size()) return nullptr;
  col->all_null_ = buf[(*pos)++] != 0;
  if (!Dictionary::Deserialize(buf, pos, &col->dict_)) return nullptr;
  if (col->all_null_ != col->dict_.empty()) return nullptr;
  if (!BitPackedArray::Deserialize(buf, pos, &col->codes_)) return nullptr;
  if (col->codes_.size() != col->n_) return nullptr;
  if (!GetRawWords(buf, pos, (col->n_ + 63) / 64, &col->nulls_)) return nullptr;
  // Every stored code must land inside the dictionary, else Get() would read
  // out of bounds on a damaged (CRC-passing but decoder-mismatched) file.
  const uint64_t max_code = col->codes_.width() >= 64
                                ? ~0ull
                                : (1ull << col->codes_.width()) - 1;
  if (!col->dict_.empty() && max_code >= col->dict_.size()) {
    for (size_t i = 0; i < col->n_; ++i) {
      if (col->IsNull(i)) continue;
      if (col->codes_.Get(i) >= col->dict_.size()) return nullptr;
    }
  }
  return col;
}

std::unique_ptr<ColumnVector> DeserializeColumnVector(const std::string& buf,
                                                      size_t* pos) {
  if (*pos >= buf.size()) return nullptr;
  const uint8_t tag = static_cast<uint8_t>(buf[(*pos)++]);
  if (tag == kColTagInt) return IntColumnVector::Deserialize(buf, pos);
  if (tag == kColTagString) return StringColumnVector::Deserialize(buf, pos);
  return nullptr;
}

std::unique_ptr<ColumnVector> BuildColumnVector(
    ValueType type, size_t n, const std::function<const Value*(size_t)>& get) {
  if (type == ValueType::kString) {
    std::vector<const std::string*> vals(n, nullptr);
    for (size_t i = 0; i < n; ++i) {
      const Value* v = get(i);
      if (v != nullptr && v->type() == ValueType::kString) vals[i] = &v->as_string();
    }
    return std::make_unique<StringColumnVector>(vals);
  }
  std::vector<std::optional<int64_t>> vals(n);
  for (size_t i = 0; i < n; ++i) {
    const Value* v = get(i);
    if (v != nullptr && v->type() == ValueType::kInt) vals[i] = v->as_int();
  }
  return std::make_unique<IntColumnVector>(vals);
}

}  // namespace stratus
