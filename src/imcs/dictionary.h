#ifndef STRATUS_IMCS_DICTIONARY_H_
#define STRATUS_IMCS_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace stratus {

/// Order-preserving string dictionary used by string column vectors inside
/// IMCUs. Codes are assigned in sorted order, so range predicates on strings
/// translate to range predicates on codes.
class Dictionary {
 public:
  /// Builds a dictionary over the distinct non-null strings in `values`.
  static Dictionary Build(const std::vector<const std::string*>& values);

  /// Code for `s`, or nullopt if `s` is not in the dictionary.
  std::optional<uint32_t> Lookup(const std::string& s) const;

  /// Smallest code whose string is >= `s` (for range predicates); equals
  /// size() when every entry is < `s`.
  uint32_t LowerBound(const std::string& s) const;

  const std::string& Decode(uint32_t code) const { return entries_[code]; }
  uint32_t size() const { return static_cast<uint32_t>(entries_.size()); }
  bool empty() const { return entries_.empty(); }

  const std::string& MinValue() const { return entries_.front(); }
  const std::string& MaxValue() const { return entries_.back(); }

  size_t ApproxBytes() const;

  /// Appends the sorted entry list to `*out` (IMCS snapshot persistence).
  void Serialize(std::string* out) const;
  /// Reads a Serialize()d dictionary back; false on truncation or if the
  /// entries are not sorted-unique (decoder mismatch guard).
  static bool Deserialize(const std::string& buf, size_t* pos, Dictionary* out);

 private:
  std::vector<std::string> entries_;  // Sorted, unique.
};

}  // namespace stratus

#endif  // STRATUS_IMCS_DICTIONARY_H_
