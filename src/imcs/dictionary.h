#ifndef STRATUS_IMCS_DICTIONARY_H_
#define STRATUS_IMCS_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace stratus {

/// Order-preserving string dictionary used by string column vectors inside
/// IMCUs. Codes are assigned in sorted order, so range predicates on strings
/// translate to range predicates on codes.
class Dictionary {
 public:
  /// Builds a dictionary over the distinct non-null strings in `values`.
  static Dictionary Build(const std::vector<const std::string*>& values);

  /// Code for `s`, or nullopt if `s` is not in the dictionary.
  std::optional<uint32_t> Lookup(const std::string& s) const;

  /// Smallest code whose string is >= `s` (for range predicates); equals
  /// size() when every entry is < `s`.
  uint32_t LowerBound(const std::string& s) const;

  const std::string& Decode(uint32_t code) const { return entries_[code]; }
  uint32_t size() const { return static_cast<uint32_t>(entries_.size()); }
  bool empty() const { return entries_.empty(); }

  const std::string& MinValue() const { return entries_.front(); }
  const std::string& MaxValue() const { return entries_.back(); }

  size_t ApproxBytes() const;

 private:
  std::vector<std::string> entries_;  // Sorted, unique.
};

}  // namespace stratus

#endif  // STRATUS_IMCS_DICTIONARY_H_
