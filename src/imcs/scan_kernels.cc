#include "imcs/scan_kernels.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>

#include "imcs/column_vector.h"

// The AVX2 specialization is compile-time gated to x86-64 GCC/Clang (the
// target attribute + runtime __builtin_cpu_supports check); everything else
// builds only the portable SWAR path.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define STRATUS_SCAN_AVX2 1
#include <immintrin.h>
#else
#define STRATUS_SCAN_AVX2 0
#endif

namespace stratus {

const char* ScanKernelName(ScanKernel k) {
  switch (k) {
    case ScanKernel::kScalar: return "scalar";
    case ScanKernel::kSwar: return "swar";
    case ScanKernel::kAvx2: return "avx2";
  }
  return "unknown";
}

bool Avx2Supported() {
#if STRATUS_SCAN_AVX2
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

namespace {

std::atomic<int> g_kernel_override{-1};

ScanKernel DispatchFromEnv() {
  const char* force = std::getenv("STRATUS_FORCE_SCALAR");
  if (force != nullptr && force[0] == '1') return ScanKernel::kScalar;
  const char* sel = std::getenv("STRATUS_SCAN_KERNEL");
  if (sel != nullptr) {
    const std::string s(sel);
    if (s == "scalar") return ScanKernel::kScalar;
    if (s == "swar") return ScanKernel::kSwar;
    if (s == "avx2") return Avx2Supported() ? ScanKernel::kAvx2 : ScanKernel::kSwar;
  }
  return Avx2Supported() ? ScanKernel::kAvx2 : ScanKernel::kSwar;
}

}  // namespace

ScanKernel ActiveScanKernel() {
  const int ov = g_kernel_override.load(std::memory_order_relaxed);
  if (ov >= 0) return static_cast<ScanKernel>(ov);
  static const ScanKernel env_kernel = DispatchFromEnv();
  return env_kernel;
}

void ForceScanKernel(ScanKernel k) {
  g_kernel_override.store(static_cast<int>(k), std::memory_order_relaxed);
}

void ClearScanKernelOverride() {
  g_kernel_override.store(-1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Bitmap helpers.

void BitmapFill(uint64_t* bm, size_t n, bool value) {
  std::fill(bm, bm + BitmapWords(n), value ? ~uint64_t{0} : uint64_t{0});
  if (value) BitmapClearTail(bm, n);
}

void BitmapAnd(uint64_t* dst, const uint64_t* src, size_t words) {
  for (size_t i = 0; i < words; ++i) dst[i] &= src[i];
}

void BitmapAndNot(uint64_t* dst, const uint64_t* src, size_t words) {
  for (size_t i = 0; i < words; ++i) dst[i] &= ~src[i];
}

bool BitmapAny(const uint64_t* bm, size_t words) {
  for (size_t i = 0; i < words; ++i) {
    if (bm[i] != 0) return true;
  }
  return false;
}

uint64_t BitmapCount(const uint64_t* bm, size_t words) {
  uint64_t c = 0;
  for (size_t i = 0; i < words; ++i) {
    c += static_cast<uint64_t>(__builtin_popcountll(bm[i]));
  }
  return c;
}

void BitmapToRows(const uint64_t* bm, size_t words, std::vector<uint32_t>* out) {
  ForEachSetBit(bm, words, [out](uint32_t r) { out->push_back(r); });
}

// ---------------------------------------------------------------------------
// Kernels. All compute, for each of the first n codes c, the bit
// (lo <= c && c <= hi) — callers express this as the branchless unsigned
// check (c - lo) <= (hi - lo). Negation and NULL masking happen above.

namespace {

/// Match bits for one group of up to 64 rows starting at `row0`, any width.
/// The cursor extraction reads two words per field: the straddle term is
/// written `(p[1] << 1) << (63 - sh)` because `p[1] << (64 - sh)` is UB at
/// sh == 0; BitPackedArray::Pack allocates a trailing guard word so p[1] is
/// always readable, including for the very last field.
template <unsigned W>
uint64_t BlockMatch64T(const uint64_t* words, size_t row0, unsigned count,
                       uint64_t lo, uint64_t span) {
  constexpr uint64_t kMask =
      W >= 64 ? ~uint64_t{0} : ((uint64_t{1} << W) - 1);
  uint64_t bm = 0;
  size_t bit = row0 * W;
  for (unsigned i = 0; i < count; ++i, bit += W) {
    const uint64_t* p = words + (bit >> 6);
    const unsigned sh = static_cast<unsigned>(bit & 63);
    const uint64_t v = ((p[0] >> sh) | ((p[1] << 1) << (63 - sh))) & kMask;
    bm |= static_cast<uint64_t>((v - lo) <= span) << i;
  }
  return bm;
}

uint64_t BlockMatch64Rt(unsigned w, const uint64_t* words, size_t row0,
                        unsigned count, uint64_t lo, uint64_t span) {
  const uint64_t mask = w >= 64 ? ~uint64_t{0} : ((uint64_t{1} << w) - 1);
  uint64_t bm = 0;
  size_t bit = row0 * w;
  for (unsigned i = 0; i < count; ++i, bit += w) {
    const uint64_t* p = words + (bit >> 6);
    const unsigned sh = static_cast<unsigned>(bit & 63);
    const uint64_t v = ((p[0] >> sh) | ((p[1] << 1) << (63 - sh))) & mask;
    bm |= static_cast<uint64_t>((v - lo) <= span) << i;
  }
  return bm;
}

uint64_t BlockMatch64(unsigned w, const uint64_t* words, size_t row0,
                      unsigned count, uint64_t lo, uint64_t span) {
  switch (w) {
#define STRATUS_BM_CASE(W) \
  case W:                  \
    return BlockMatch64T<W>(words, row0, count, lo, span);
    STRATUS_BM_CASE(1)
    STRATUS_BM_CASE(2)
    STRATUS_BM_CASE(3)
    STRATUS_BM_CASE(4)
    STRATUS_BM_CASE(5)
    STRATUS_BM_CASE(6)
    STRATUS_BM_CASE(7)
    STRATUS_BM_CASE(8)
    STRATUS_BM_CASE(9)
    STRATUS_BM_CASE(10)
    STRATUS_BM_CASE(11)
    STRATUS_BM_CASE(12)
    STRATUS_BM_CASE(13)
    STRATUS_BM_CASE(14)
    STRATUS_BM_CASE(15)
    STRATUS_BM_CASE(16)
    STRATUS_BM_CASE(17)
    STRATUS_BM_CASE(18)
    STRATUS_BM_CASE(19)
    STRATUS_BM_CASE(20)
    STRATUS_BM_CASE(21)
    STRATUS_BM_CASE(22)
    STRATUS_BM_CASE(23)
    STRATUS_BM_CASE(24)
    STRATUS_BM_CASE(25)
    STRATUS_BM_CASE(26)
    STRATUS_BM_CASE(27)
    STRATUS_BM_CASE(28)
    STRATUS_BM_CASE(29)
    STRATUS_BM_CASE(30)
    STRATUS_BM_CASE(31)
    STRATUS_BM_CASE(32)
#undef STRATUS_BM_CASE
    default:
      return BlockMatch64Rt(w, words, row0, count, lo, span);
  }
}

/// Extracts bits at even positions into the low 32 bits.
inline uint64_t CompactEven(uint64_t x) {
  x &= 0x5555555555555555ull;
  x = (x | (x >> 1)) & 0x3333333333333333ull;
  x = (x | (x >> 2)) & 0x0F0F0F0F0F0F0F0Full;
  x = (x | (x >> 4)) & 0x00FF00FF00FF00FFull;
  x = (x | (x >> 8)) & 0x0000FFFF0000FFFFull;
  x = (x | (x >> 16)) & 0x00000000FFFFFFFFull;
  return x;
}

/// Compacts the per-field top bits (positions k*w + w-1) of one packed word
/// into the low 64/w bits, field order preserved. w ∈ {2, 4, 8, 16, 32}.
/// The w=8/16 multipliers place top bit k at output position k with all
/// cross products landing at distinct positions (no carries).
inline uint64_t CompactTop(uint64_t t, unsigned w) {
  switch (w) {
    case 2:
      return CompactEven(t >> 1);
    case 4:
      return CompactEven(CompactEven(t >> 3));
    case 8:
      return (t * 0x0002040810204081ull) >> 56;
    case 16:
      return (t * 0x0000200040008001ull) >> 60;
    default:  // 32
      return ((t >> 31) & 1) | ((t >> 62) & 2);
  }
}

/// Width-1 fast path: each packed word IS 64 codes in {0, 1}.
void SwarFilterWidth1(const uint64_t* words, size_t full_groups, uint64_t lo,
                      uint64_t hi, uint64_t* out) {
  const uint64_t if0 = lo == 0 ? ~uint64_t{0} : 0;       // 0 in [lo, hi]
  const uint64_t if1 = (lo <= 1 && hi >= 1) ? ~uint64_t{0} : 0;
  for (size_t g = 0; g < full_groups; ++g) {
    const uint64_t x = words[g];
    out[g] = (if0 & ~x) | (if1 & x);
  }
}

/// Lamport's word-parallel unsigned compare for widths dividing 64
/// (w ∈ {2, 4, 8, 16, 32}): one packed word holds 64/w complete fields, a
/// 64-row group is exactly w words, and the in-range top bits of each word
/// compact into 64/w output bits — no field ever straddles a word.
void SwarFilterAligned(const uint64_t* words, size_t full_groups, unsigned w,
                       uint64_t lo, uint64_t hi, uint64_t* out) {
  const uint64_t mask = (uint64_t{1} << w) - 1;
  const uint64_t mult = ~uint64_t{0} / mask;           // broadcast multiplier
  const uint64_t H = (uint64_t{1} << (w - 1)) * mult;  // per-field top bits
  const uint64_t LO = lo * mult;
  const uint64_t HI = hi * mult;
  const uint64_t lo_low = LO & ~H;  // LO with top bits cleared
  const uint64_t hi_top = HI | H;   // HI with top bits forced
  const unsigned f = 64 / w;
  for (size_t g = 0; g < full_groups; ++g) {
    const uint64_t* p = words + g * w;
    uint64_t res = 0;
    for (unsigned s = 0; s < w; ++s) {
      const uint64_t x = p[s];
      // ge(x, LO): subtract low halves with the top bit forced so no borrow
      // crosses fields; combine with the top-bit comparison.
      const uint64_t d1 = (x | H) - lo_low;
      const uint64_t ge = ((x & ~LO) | (d1 & ~(x ^ LO))) & H;
      // ge(HI, x), i.e. x <= hi, same identity with the operands swapped.
      const uint64_t d2 = hi_top - (x & ~H);
      const uint64_t le = ((HI & ~x) | (d2 & ~(x ^ HI))) & H;
      res |= CompactTop(ge & le, w) << (s * f);
    }
    out[g] = res;
  }
}

void SwarFilter(const BitPackedArray& packed, size_t n, uint64_t lo,
                uint64_t hi, uint64_t* out) {
  const unsigned w = packed.width();
  const uint64_t* words = packed.words();
  const uint64_t span = hi - lo;
  const size_t full = n >> 6;
  if (w == 1) {
    SwarFilterWidth1(words, full, lo, hi, out);
  } else if (w <= 32 && 64 % w == 0) {
    SwarFilterAligned(words, full, w, lo, hi, out);
  } else {
    for (size_t g = 0; g < full; ++g) {
      out[g] = BlockMatch64(w, words, g * 64, 64, lo, span);
    }
  }
  const unsigned tail = static_cast<unsigned>(n & 63);
  // The tail group always runs the guarded block kernel: a full-group
  // word-parallel pass would read packed words past the last row.
  if (tail != 0) out[full] = BlockMatch64(w, words, full * 64, tail, lo, span);
}

#if STRATUS_SCAN_AVX2

/// 256-bit version of SwarFilterAligned for w ∈ {4, 8, 16, 32}: the field
/// arithmetic stays inside 64-bit lanes (w divides 64), so epi64 adds give
/// the same bits as the scalar SWAR. w is a multiple of 4, so the 4-word
/// loads never cross a 64-row group boundary.
__attribute__((target("avx2"))) void Avx2FilterAligned(
    const uint64_t* words, size_t full_groups, unsigned w, uint64_t lo,
    uint64_t hi, uint64_t* out) {
  const uint64_t mask = (uint64_t{1} << w) - 1;
  const uint64_t mult = ~uint64_t{0} / mask;
  const uint64_t H = (uint64_t{1} << (w - 1)) * mult;
  const uint64_t LO = lo * mult;
  const uint64_t HI = hi * mult;
  const __m256i vH = _mm256_set1_epi64x(static_cast<long long>(H));
  const __m256i vLO = _mm256_set1_epi64x(static_cast<long long>(LO));
  const __m256i vHI = _mm256_set1_epi64x(static_cast<long long>(HI));
  const __m256i vLoLow = _mm256_set1_epi64x(static_cast<long long>(LO & ~H));
  const __m256i vHiTop = _mm256_set1_epi64x(static_cast<long long>(HI | H));
  const unsigned f = 64 / w;
  for (size_t g = 0; g < full_groups; ++g) {
    const uint64_t* p = words + g * w;
    uint64_t res = 0;
    unsigned outsh = 0;
    for (unsigned s = 0; s < w; s += 4, outsh += 4 * f) {
      const __m256i x =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + s));
      const __m256i d1 = _mm256_sub_epi64(_mm256_or_si256(x, vH), vLoLow);
      const __m256i ge = _mm256_and_si256(
          _mm256_or_si256(_mm256_andnot_si256(vLO, x),
                          _mm256_andnot_si256(_mm256_xor_si256(x, vLO), d1)),
          vH);
      const __m256i d2 = _mm256_sub_epi64(vHiTop, _mm256_andnot_si256(vH, x));
      const __m256i le = _mm256_and_si256(
          _mm256_or_si256(_mm256_andnot_si256(x, vHI),
                          _mm256_andnot_si256(_mm256_xor_si256(x, vHI), d2)),
          vH);
      const __m256i in = _mm256_and_si256(ge, le);
      if (w == 8) {
        // Top bits sit at byte MSBs: movemask compacts all 32 rows at once.
        res |= static_cast<uint64_t>(static_cast<uint32_t>(
                   _mm256_movemask_epi8(in)))
               << outsh;
      } else {
        const __m128i lo128 = _mm256_castsi256_si128(in);
        const __m128i hi128 = _mm256_extracti128_si256(in, 1);
        const uint64_t l0 = static_cast<uint64_t>(_mm_cvtsi128_si64(lo128));
        const uint64_t l1 =
            static_cast<uint64_t>(_mm_extract_epi64(lo128, 1));
        const uint64_t l2 = static_cast<uint64_t>(_mm_cvtsi128_si64(hi128));
        const uint64_t l3 =
            static_cast<uint64_t>(_mm_extract_epi64(hi128, 1));
        res |= CompactTop(l0, w) << outsh;
        res |= CompactTop(l1, w) << (outsh + f);
        res |= CompactTop(l2, w) << (outsh + 2 * f);
        res |= CompactTop(l3, w) << (outsh + 3 * f);
      }
    }
    out[g] = res;
  }
}

#endif  // STRATUS_SCAN_AVX2

/// True if the AVX2 kernel handled this (compiled in, CPU support, friendly
/// width); false sends the caller to SWAR.
bool Avx2FilterCodes(const BitPackedArray& packed, size_t n, uint64_t lo,
                     uint64_t hi, uint64_t* out) {
#if STRATUS_SCAN_AVX2
  const unsigned w = packed.width();
  if (!(w == 4 || w == 8 || w == 16 || w == 32)) return false;
  if (!Avx2Supported()) return false;
  const uint64_t* words = packed.words();
  const size_t full = n >> 6;
  Avx2FilterAligned(words, full, w, lo, hi, out);
  const unsigned tail = static_cast<unsigned>(n & 63);
  if (tail != 0) {
    out[full] = BlockMatch64(w, words, full * 64, tail, lo, hi - lo);
  }
  return true;
#else
  (void)packed;
  (void)n;
  (void)lo;
  (void)hi;
  (void)out;
  return false;
#endif
}

}  // namespace

void FilterCodesBitmap(const BitPackedArray& packed, size_t n,
                       const CodeRange& range, ScanKernel kernel,
                       uint64_t* out, KernelCounters* counters) {
  if (n == 0) return;
  const size_t nwords = BitmapWords(n);
  if (range.empty) {
    BitmapFill(out, n, range.negate);
    return;
  }
  if (packed.width() == 0) {
    // Constant column: every code is 0.
    BitmapFill(out, n, (range.lo == 0) != range.negate);
    return;
  }
  std::fill(out, out + nwords, uint64_t{0});
  switch (kernel) {
    case ScanKernel::kScalar: {
      const uint64_t span = range.hi - range.lo;
      for (size_t i = 0; i < n; ++i) {
        out[i >> 6] |=
            static_cast<uint64_t>((packed.Get(i) - range.lo) <= span)
            << (i & 63);
      }
      if (counters != nullptr) counters->scalar_rows += n;
      break;
    }
    case ScanKernel::kAvx2:
      if (Avx2FilterCodes(packed, n, range.lo, range.hi, out)) {
        if (counters != nullptr) counters->avx2_words += nwords;
        break;
      }
      [[fallthrough]];
    case ScanKernel::kSwar:
      SwarFilter(packed, n, range.lo, range.hi, out);
      if (counters != nullptr) counters->swar_words += nwords;
      break;
  }
  if (range.negate) {
    for (size_t i = 0; i < nwords; ++i) out[i] = ~out[i];
  }
  BitmapClearTail(out, n);
}

}  // namespace stratus
