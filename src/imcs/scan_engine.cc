#include "imcs/scan_engine.h"

#include <unordered_map>
#include <unordered_set>

namespace stratus {

namespace {

bool CompareValues(const Value& a, PredOp op, const Value& b) {
  switch (op) {
    case PredOp::kEq: return a == b;
    case PredOp::kNe: return !(a == b);
    case PredOp::kLt: return a < b;
    case PredOp::kLe: return a < b || a == b;
    case PredOp::kGt: return b < a;
    case PredOp::kGe: return b < a || a == b;
  }
  return false;
}

}  // namespace

bool EvalPredicate(const Row& row, const Predicate& pred) {
  if (pred.column >= row.size()) return false;
  const Value& v = row[pred.column];
  if (v.is_null() || pred.value.is_null()) return false;  // SQL 3VL: unknown.
  if (v.type() != pred.value.type()) return false;
  return CompareValues(v, pred.op, pred.value);
}

bool EvalPredicates(const Row& row, const std::vector<Predicate>& preds) {
  for (const Predicate& p : preds) {
    if (!EvalPredicate(row, p)) return false;
  }
  return true;
}

namespace {

/// Appends the evaluated In-Memory Expression values as virtual columns so
/// row-path rows share the IMCU layout (schema columns + expression columns).
void ExtendWithExpressions(const std::vector<Expression>* expressions, Row* row) {
  if (expressions == nullptr || expressions->empty()) return;
  const Row& base = *row;
  row->reserve(row->size() + expressions->size());
  for (const Expression& e : *expressions) row->push_back(e.Eval(base));
}

}  // namespace

void ScanEngine::ScanBlockRowPath(Dba dba, const std::vector<Predicate>& preds,
                                  const ReadView& view, const BufferCache& cache,
                                  const RowSink& sink, ScanStats* stats,
                                  const std::vector<Expression>* expressions) const {
  Block* block = cache.Get(dba);
  if (block == nullptr) return;
  ++stats->blocks_rowpath;
  const SlotId used = block->used_slots();
  Row row;
  for (SlotId slot = 0; slot < used; ++slot) {
    if (!block->ReadRow(slot, view, &row).ok()) continue;
    ExtendWithExpressions(expressions, &row);
    if (EvalPredicates(row, preds)) {
      ++stats->rows_from_rowstore;
      sink(row);
    }
  }
}

Status ScanEngine::Scan(const Table& table, const std::vector<Predicate>& preds,
                        const ReadView& view,
                        const std::vector<const ImStore*>& stores,
                        const BufferCache& cache, const RowSink& sink,
                        ScanStats* stats, bool needs_rows,
                        const std::vector<Expression>* expressions,
                        const ImcsMatchHook* imcs_hook) const {
  ScanStats local;
  if (stats == nullptr) stats = &local;
  const std::vector<Dba> blocks = table.SnapshotBlocks();

  // Gather the usable SMUs covering this table across the given stores.
  // "Usable" = ready, with a snapshot no newer than the read view (an IMCU
  // populated beyond the query snapshot would contain future changes).
  std::vector<std::shared_ptr<Smu>> usable;
  std::unordered_set<Dba> covered;
  for (const ImStore* store : stores) {
    if (store == nullptr) continue;
    for (const auto& smu : store->SmusForObject(table.object_id())) {
      if (smu->state() != SmuState::kReady) {
        ++stats->imcus_skipped;
        continue;
      }
      if (smu->AllInvalid()) {
        ++stats->imcus_skipped;
        continue;  // Coarse-invalidated: whole range goes to the row path.
      }
      auto imcu = smu->imcu();
      if (imcu == nullptr || imcu->snapshot_scn() > view.snapshot_scn) {
        ++stats->imcus_skipped;
        continue;
      }
      // An IMCU built before an expression was registered lacks the virtual
      // column a predicate may reference: serve its range from the row path
      // until repopulation rebuilds it with the expression column.
      bool missing_column = false;
      for (const Predicate& p : preds) {
        if (p.column >= imcu->num_columns()) {
          missing_column = true;
          break;
        }
      }
      if (missing_column) {
        ++stats->imcus_skipped;
        continue;
      }
      bool duplicate = false;
      for (Dba dba : smu->dbas()) {
        if (covered.contains(dba)) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;  // Defensive: ranges should be disjoint.
      for (Dba dba : smu->dbas()) covered.insert(dba);
      usable.push_back(smu);
    }
  }

  // Columnar portion.
  std::vector<uint64_t> invalid;  // Per-SMU invalidity snapshot (see below).
  for (const auto& smu : usable) {
    const auto imcu = smu->imcu();
    ++stats->imcus_scanned;

    // One consistent snapshot of the SMU's invalidity partitions the rows
    // between the columnar pass and the row-store reconciliation pass; bits
    // set by concurrent flushes (commits beyond this scan's snapshot SCN)
    // must not split a row across both passes.
    smu->SnapshotInvalid(&invalid);
    const auto is_invalid = [&](uint32_t r) {
      return ((invalid[r >> 6] >> (r & 63)) & 1) != 0;
    };

    // Storage index (min/max) pruning of the valid portion.
    bool might_match = true;
    for (const Predicate& p : preds) {
      if (p.column >= imcu->num_columns() ||
          !imcu->column(p.column).MightMatch(p.op, p.value)) {
        might_match = false;
        break;
      }
    }

    if (might_match) {
      // Candidate rows from the encoded first predicate (or all present rows
      // for an unfiltered scan), re-checked against the remaining conjuncts.
      std::vector<uint32_t> candidates;
      if (!preds.empty()) {
        imcu->column(preds[0].column).Filter(preds[0].op, preds[0].value,
                                             &candidates);
      } else {
        candidates.reserve(imcu->num_rows());
        for (uint32_t r = 0; r < imcu->num_rows(); ++r) candidates.push_back(r);
      }
      for (uint32_t r : candidates) {
        if (!imcu->Present(r)) continue;
        if (is_invalid(r)) continue;  // Served by the row path below.
        bool ok = true;
        for (size_t pi = 1; pi < preds.size(); ++pi) {
          const Predicate& p = preds[pi];
          if (p.column >= imcu->num_columns()) { ok = false; break; }
          const Value v = imcu->column(p.column).Get(r);
          if (v.is_null() || !(v.type() == p.value.type() &&
                               CompareValues(v, p.op, p.value))) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        ++stats->rows_from_imcs;
        if (imcs_hook != nullptr) {
          (*imcs_hook)(*imcu, r);
        } else if (needs_rows) {
          sink(imcu->Materialize(r));
        } else {
          static const Row kEmpty;
          sink(kEmpty);
        }
      }
    } else {
      ++stats->imcus_pruned;
    }

    // Invalid rows (changed after the IMCU snapshot) always re-fetch from the
    // row store at the query snapshot — including rows absent at population
    // time that a later insert invalidated. Word-wise iteration keeps this
    // reconciliation cheap when invalidity is sparse.
    Row row;
    Dba cached_dba = kInvalidDba;
    Block* cached_block = nullptr;
    for (size_t w = 0; w < invalid.size(); ++w) {
      uint64_t word = invalid[w];
      while (word != 0) {
        const unsigned bit = static_cast<unsigned>(__builtin_ctzll(word));
        word &= word - 1;
        const uint32_t r = static_cast<uint32_t>(w * 64 + bit);
        if (r >= smu->num_rows()) break;
        const Dba dba = smu->dbas()[r / kRowsPerBlock];
        const SlotId slot = r % kRowsPerBlock;
        if (dba != cached_dba) {
          cached_dba = dba;
          cached_block = cache.Get(dba);
        }
        if (cached_block == nullptr) continue;
        if (!cached_block->ReadRow(slot, view, &row).ok()) continue;
        ++stats->invalid_rowpath;
        ExtendWithExpressions(expressions, &row);
        if (EvalPredicates(row, preds)) {
          ++stats->rows_from_rowstore;
          sink(row);
        }
      }
    }
  }

  // Row-path portion: blocks not covered by any usable IMCU.
  for (Dba dba : blocks) {
    if (covered.contains(dba)) continue;
    ScanBlockRowPath(dba, preds, view, cache, sink, stats, expressions);
  }
  return Status::OK();
}

}  // namespace stratus
