#include "imcs/scan_engine.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/clock.h"
#include "common/thread_pool.h"
#include "obs/trace.h"

namespace stratus {

namespace {

bool CompareValues(const Value& a, PredOp op, const Value& b) {
  // Value is a total order (NULL first, then by type tag, then by payload),
  // and NULL / type-mismatched operands were rejected before we get here, so
  // kLe/kGe are single complemented comparisons.
  switch (op) {
    case PredOp::kEq: return a == b;
    case PredOp::kNe: return !(a == b);
    case PredOp::kLt: return a < b;
    case PredOp::kLe: return !(b < a);
    case PredOp::kGt: return b < a;
    case PredOp::kGe: return !(a < b);
  }
  return false;
}

}  // namespace

bool EvalPredicateValue(const Value& v, const Predicate& pred) {
  if (v.is_null() || pred.value.is_null()) return false;  // SQL 3VL: unknown.
  if (v.type() != pred.value.type()) return false;
  return CompareValues(v, pred.op, pred.value);
}

bool EvalPredicate(const Row& row, const Predicate& pred) {
  if (pred.column >= row.size()) return false;
  return EvalPredicateValue(row[pred.column], pred);
}

bool EvalPredicates(const Row& row, const std::vector<Predicate>& preds) {
  for (const Predicate& p : preds) {
    if (!EvalPredicate(row, p)) return false;
  }
  return true;
}

namespace {

/// Appends the evaluated In-Memory Expression values as virtual columns so
/// row-path rows share the IMCU layout (schema columns + expression columns).
void ExtendWithExpressions(const std::vector<Expression>* expressions, Row* row) {
  if (expressions == nullptr || expressions->empty()) return;
  const Row& base = *row;
  row->reserve(row->size() + expressions->size());
  for (const Expression& e : *expressions) row->push_back(e.Eval(base));
}

/// Counts/folds one matching row-path row into an aggregate partial: every
/// match counts; kSum/kMin/kMax additionally fold an in-range integer value.
void FoldRowMatch(const ScanAggregate& agg, const Row& row, AggState* out) {
  ++out->count;
  if (agg.kind == AggKind::kNone || agg.kind == AggKind::kCount) return;
  if (agg.column >= row.size()) return;
  const Value& v = row[agg.column];
  if (v.type() == ValueType::kInt) out->Fold(agg.kind, v.as_int());
}

}  // namespace

void ScanEngine::ScanBlockRowPath(Dba dba, const std::vector<Predicate>& preds,
                                  const ReadView& view, const BufferCache& cache,
                                  const std::vector<Expression>* expressions,
                                  const ScanAggregate& agg, const RowSink& emit,
                                  ScanStats* stats, AggState* agg_out) const {
  Block* block = cache.Get(dba);
  if (block == nullptr) return;
  ++stats->blocks_rowpath;
  const SlotId used = block->used_slots();
  Row row;
  for (SlotId slot = 0; slot < used; ++slot) {
    if (!block->ReadRow(slot, view, &row).ok()) continue;
    ExtendWithExpressions(expressions, &row);
    if (!EvalPredicates(row, preds)) continue;
    ++stats->rows_from_rowstore;
    if (agg.kind != AggKind::kNone) {
      FoldRowMatch(agg, row, agg_out);
    } else {
      emit(row);
    }
  }
}

void ScanEngine::ScanSmuTask(const Smu& smu, const std::vector<Predicate>& preds,
                             const ReadView& view, const BufferCache& cache,
                             const std::vector<Expression>* expressions,
                             bool needs_rows, const ScanAggregate& agg,
                             const RowSink& emit, ScanStats* stats,
                             AggState* agg_out) const {
  const auto imcu = smu.imcu();

  // Storage-index (min/max) pruning short-circuits before any vector work:
  // a pruned IMCU contributes no columnar pass at all (its invalid rows are
  // still reconciled below). Pruned IMCUs do not count as scanned.
  bool might_match = true;
  for (const Predicate& p : preds) {
    if (p.column >= imcu->num_columns() ||
        !imcu->column(p.column).MightMatch(p.op, p.value)) {
      might_match = false;
      break;
    }
  }
  if (might_match) {
    ++stats->imcus_scanned;
  } else {
    ++stats->imcus_pruned;
  }

  // One consistent snapshot of the SMU's invalidity partitions the rows
  // between the columnar pass and the row-store reconciliation pass; bits
  // set by concurrent flushes (commits beyond this scan's snapshot SCN)
  // must not split a row across both passes.
  std::vector<uint64_t> invalid;
  smu.SnapshotInvalid(&invalid);

  const size_t num_rows = smu.num_rows();
  const size_t num_words = BitmapWords(num_rows);

  // Columnar pass: every conjunct's encoded predicate becomes a match
  // bitmap (pivot translated into code space once per IMCU, packed codes
  // compared word-at-a-time by the active kernel), conjuncts AND together,
  // then one AND keeps present rows and one AND-NOT hands invalid rows to
  // reconciliation — no per-candidate rechecks, no row-id lists until the
  // merge boundary below.
  std::vector<uint64_t> match;
  if (might_match) {
    const ScanKernel kernel = ActiveScanKernel();
    KernelCounters kc;
    match.assign(num_words, 0);
    if (preds.empty()) {
      BitmapFill(match.data(), num_rows, true);
    } else {
      imcu->column(preds[0].column)
          .FilterBitmap(preds[0].op, preds[0].value, kernel, match.data(),
                        &kc);
      std::vector<uint64_t> conjunct;
      for (size_t pi = 1;
           pi < preds.size() && BitmapAny(match.data(), num_words); ++pi) {
        conjunct.resize(num_words);
        imcu->column(preds[pi].column)
            .FilterBitmap(preds[pi].op, preds[pi].value, kernel,
                          conjunct.data(), &kc);
        BitmapAnd(match.data(), conjunct.data(), num_words);
      }
    }
    BitmapAnd(match.data(), imcu->present_words().data(),
              std::min(num_words, imcu->present_words().size()));
    BitmapAndNot(match.data(), invalid.data(),
                 std::min(num_words, invalid.size()));
    stats->kernel_swar_words += kc.swar_words;
    stats->kernel_avx2_words += kc.avx2_words;
    stats->kernel_scalar_rows += kc.scalar_rows;
  }

  // Reconciliation pass: invalid rows (changed after the IMCU snapshot)
  // always re-fetch from the row store at the query snapshot — including
  // rows absent at population time that a later insert invalidated.
  // Word-wise iteration keeps this cheap when invalidity is sparse.
  std::vector<std::pair<uint32_t, Row>> reconciled;
  {
    Row row;
    Dba cached_dba = kInvalidDba;
    Block* cached_block = nullptr;
    for (size_t w = 0; w < invalid.size() && w < num_words; ++w) {
      uint64_t word = invalid[w];
      if (w + 1 == num_words && (num_rows & 63) != 0) {
        // Mask the tail word once: bits at or past num_rows have no backing
        // row and must not be visited.
        word &= (uint64_t{1} << (num_rows & 63)) - 1;
      }
      while (word != 0) {
        const unsigned bit = static_cast<unsigned>(__builtin_ctzll(word));
        word &= word - 1;
        const uint32_t r = static_cast<uint32_t>(w * 64 + bit);
        const Dba dba = smu.dbas()[r / kRowsPerBlock];
        const SlotId slot = r % kRowsPerBlock;
        if (dba != cached_dba) {
          cached_dba = dba;
          cached_block = cache.Get(dba);
        }
        if (cached_block == nullptr) continue;
        if (!cached_block->ReadRow(slot, view, &row).ok()) continue;
        ++stats->invalid_rowpath;
        ExtendWithExpressions(expressions, &row);
        if (EvalPredicates(row, preds)) reconciled.emplace_back(r, row);
      }
    }
  }

  // Aggregation push-down ([11]): fold straight off the bitmap and the
  // encoded column — COUNT by popcount, kSum/kMin/kMax off the packed codes
  // via GetInt, with no Value materialization and no row-id list. Folding
  // all columnar rows before the reconciled rows is safe: Fold is
  // commutative and associative, so the result matches row-order folding.
  if (agg.kind != AggKind::kNone) {
    if (!match.empty()) {
      const uint64_t mcount = BitmapCount(match.data(), num_words);
      stats->rows_from_imcs += mcount;
      agg_out->count += mcount;
      if (agg.kind != AggKind::kCount && mcount != 0 &&
          agg.column < imcu->num_columns()) {
        const ColumnVector& col = imcu->column(agg.column);
        if (col.type() == ValueType::kInt) {
          const auto& icol = static_cast<const IntColumnVector&>(col);
          ForEachSetBit(match.data(), num_words, [&](uint32_t r) {
            if (!icol.IsNull(r)) agg_out->Fold(agg.kind, icol.GetInt(r));
          });
        }
      }
    }
    for (auto& pr : reconciled) {
      ++stats->rows_from_rowstore;
      FoldRowMatch(agg, pr.second, agg_out);
    }
    return;
  }

  // Row emission: the bitmap becomes a row-id list only here, at the merge
  // boundary with the reconciled rows. Both sides are ascending by row
  // index, so the IMCU's output order does not depend on *when* the
  // invalidity snapshot was taken — a row moving from the columnar pass to
  // reconciliation keeps its position.
  std::vector<uint32_t> matches;
  if (!match.empty()) BitmapToRows(match.data(), num_words, &matches);
  size_t ci = 0, ri = 0;
  static const Row kEmpty;
  while (ci < matches.size() || ri < reconciled.size()) {
    const bool columnar =
        ri >= reconciled.size() ||
        (ci < matches.size() && matches[ci] < reconciled[ri].first);
    if (columnar) {
      const uint32_t r = matches[ci++];
      ++stats->rows_from_imcs;
      if (needs_rows) {
        emit(imcu->Materialize(r));
      } else {
        emit(kEmpty);
      }
    } else {
      Row& row = reconciled[ri++].second;
      ++stats->rows_from_rowstore;
      emit(row);
    }
  }
}

Status ScanEngine::Scan(const Table& table, const std::vector<Predicate>& preds,
                        const ReadView& view,
                        const std::vector<const ImStore*>& stores,
                        const BufferCache& cache, const RowSink& sink,
                        ScanStats* stats, bool needs_rows,
                        const std::vector<Expression>* expressions,
                        const ScanAggregate& agg, AggState* agg_out,
                        const ScanOptions& options) const {
  ScanStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  AggState local_agg;
  if (agg_out == nullptr) agg_out = &local_agg;
  const std::vector<Dba> blocks = table.SnapshotBlocks();

  // Gather the usable SMUs covering this table across the given stores.
  // "Usable" = ready, with a snapshot no newer than the read view (an IMCU
  // populated beyond the query snapshot would contain future changes).
  std::vector<std::shared_ptr<Smu>> usable;
  std::unordered_set<Dba> covered;
  for (const ImStore* store : stores) {
    if (store == nullptr) continue;
    for (const auto& smu : store->SmusForObject(table.object_id())) {
      if (smu->state() != SmuState::kReady) {
        ++stats->imcus_skipped;
        continue;
      }
      if (smu->AllInvalid()) {
        ++stats->imcus_skipped;
        continue;  // Coarse-invalidated: whole range goes to the row path.
      }
      auto imcu = smu->imcu();
      if (imcu == nullptr || imcu->snapshot_scn() > view.snapshot_scn) {
        ++stats->imcus_skipped;
        continue;
      }
      // An IMCU built before an expression was registered lacks the virtual
      // column a predicate may reference: serve its range from the row path
      // until repopulation rebuilds it with the expression column.
      bool missing_column = false;
      for (const Predicate& p : preds) {
        if (p.column >= imcu->num_columns()) {
          missing_column = true;
          break;
        }
      }
      if (missing_column) {
        ++stats->imcus_skipped;
        continue;
      }
      bool duplicate = false;
      for (Dba dba : smu->dbas()) {
        if (covered.contains(dba)) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;  // Defensive: ranges should be disjoint.
      for (Dba dba : smu->dbas()) covered.insert(dba);
      usable.push_back(smu);
    }
  }

  // Task decomposition: one task per usable IMCU plus fixed-size chunks of
  // uncovered row-store blocks, ordered by each task's first block position
  // in the table's block list (chunks break at coverage boundaries). Every
  // task emits its matches in ascending (block, slot) order, so the merged
  // output is the table's global (block, slot) order — independent of DOP,
  // of which path serves a row, and of how population groups blocks into
  // IMCUs. The task list is a function of the snapshot only, never of DOP.
  struct Task {
    const Smu* smu = nullptr;        ///< Per-IMCU task when non-null…
    std::vector<Dba> chunk_blocks;   ///< …row-path chunk otherwise.
  };
  std::vector<Task> tasks;
  {
    std::unordered_map<Dba, size_t> pos;
    pos.reserve(blocks.size());
    for (size_t i = 0; i < blocks.size(); ++i) pos.emplace(blocks[i], i);
    // Events on the block-position axis: each uncovered block, and each
    // usable SMU anchored at its first covered position.
    struct Event {
      size_t position;
      const Smu* smu;  ///< Null for an uncovered block.
      Dba dba;
    };
    std::vector<Event> events;
    events.reserve(blocks.size());
    for (size_t i = 0; i < blocks.size(); ++i) {
      if (!covered.contains(blocks[i]))
        events.push_back(Event{i, nullptr, blocks[i]});
    }
    for (const auto& smu : usable) {
      size_t key = blocks.size();  // Defensive: unknown blocks sort last.
      for (Dba dba : smu->dbas()) {
        auto it = pos.find(dba);
        if (it != pos.end()) key = std::min(key, it->second);
      }
      events.push_back(Event{key, smu.get(), kInvalidDba});
    }
    std::sort(events.begin(), events.end(),
              [](const Event& a, const Event& b) {
                if (a.position != b.position) return a.position < b.position;
                return (a.smu != nullptr) > (b.smu != nullptr);
              });
    const size_t chunk = std::max<size_t>(1, options.rowpath_chunk_blocks);
    for (const Event& e : events) {
      if (e.smu != nullptr) {
        tasks.push_back(Task{e.smu, {}});
        continue;
      }
      if (tasks.empty() || tasks.back().smu != nullptr ||
          tasks.back().chunk_blocks.size() >= chunk) {
        tasks.push_back(Task{nullptr, {}});
      }
      tasks.back().chunk_blocks.push_back(e.dba);
    }
  }
  stats->parallel_tasks += tasks.size();
  const size_t num_tasks = tasks.size();

  const auto run_task = [&](size_t t, const RowSink& emit, ScanStats* tstats,
                            AggState* tagg) {
    const Task& task = tasks[t];
    if (task.smu != nullptr) {
      ScanSmuTask(*task.smu, preds, view, cache, expressions, needs_rows, agg,
                  emit, tstats, tagg);
    } else {
      for (Dba dba : task.chunk_blocks) {
        ScanBlockRowPath(dba, preds, view, cache, expressions, agg, emit,
                         tstats, tagg);
      }
    }
  };

  // Per-task profiling (worker ordinal, queue wait, run time) is opt-in:
  // with no profile requested neither path touches the clock per task.
  ScanProfile* profile = options.profile;
  const uint64_t submit_us = profile != nullptr ? NowMicros() : 0;
  std::vector<ScanTaskProfile> task_profiles(
      profile != nullptr ? num_tasks : 0);
  const auto record_task = [&](size_t t, uint64_t start_us) {
    ScanTaskProfile& tp = task_profiles[t];
    tp.worker = obs::internal::ThreadOrdinal();
    tp.imcu_task = tasks[t].smu != nullptr;
    tp.queue_wait_us = start_us > submit_us ? start_us - submit_us : 0;
    const uint64_t end_us = NowMicros();
    tp.exec_us = end_us > start_us ? end_us - start_us : 0;
  };
  const auto finish_profile = [&] {
    if (profile == nullptr) return;
    profile->tasks.insert(profile->tasks.end(), task_profiles.begin(),
                          task_profiles.end());
  };

  const size_t dop = std::max<size_t>(1, options.dop);
  if (dop == 1 || num_tasks <= 1) {
    // Inline path: stream straight into the sink — no buffering, no barrier.
    // A batch consumer gets fixed-size flushes instead of per-row calls.
    std::vector<Row> batch;
    const size_t batch_rows = std::max<size_t>(1, options.batch_rows);
    RowSink batched;
    if (options.batch_sink) {
      batch.reserve(batch_rows);
      batched = [&](const Row& row) {
        batch.push_back(row);
        if (batch.size() >= batch_rows) {
          options.batch_sink(std::move(batch));
          batch.clear();
          batch.reserve(batch_rows);
        }
      };
    }
    const RowSink& emit = options.batch_sink ? batched : sink;
    for (size_t t = 0; t < num_tasks; ++t) {
      const uint64_t start_us = profile != nullptr ? NowMicros() : 0;
      run_task(t, emit, stats, agg_out);
      if (profile != nullptr) record_task(t, start_us);
    }
    if (options.batch_sink && !batch.empty())
      options.batch_sink(std::move(batch));
    finish_profile();
    return Status::OK();
  }

  // Parallel path: every worker accumulates into private partials; the
  // calling thread merges them in task order after the barrier, reproducing
  // the inline path's output exactly.
  struct TaskOut {
    ScanStats stats;
    AggState agg;
    std::vector<Row> rows;
  };
  std::vector<TaskOut> outs(num_tasks);
  ThreadPool* pool =
      options.pool != nullptr ? options.pool : ThreadPool::Shared();
  pool->ParallelFor(num_tasks, dop, [&](size_t t) {
    TaskOut& out = outs[t];
    const uint64_t start_us = profile != nullptr ? NowMicros() : 0;
    run_task(
        t, [&out](const Row& row) { out.rows.push_back(row); }, &out.stats,
        &out.agg);
    if (profile != nullptr) record_task(t, start_us);
  });

  for (TaskOut& out : outs) {
    stats->Add(out.stats);
    agg_out->Merge(agg.kind, out.agg);
    if (options.batch_sink) {
      // Batch consumers take the whole task buffer by move — the merge
      // boundary costs nothing per row.
      if (!out.rows.empty()) options.batch_sink(std::move(out.rows));
    } else {
      for (const Row& row : out.rows) sink(row);
    }
  }
  finish_profile();
  return Status::OK();
}

}  // namespace stratus
