#include "imcs/im_store.h"

#include <algorithm>
#include <mutex>

namespace stratus {

Status ImStore::RegisterSmu(std::shared_ptr<Smu> smu,
                            const std::shared_ptr<Smu>& replaces) {
  std::unique_lock<std::shared_mutex> g(mu_);
  for (Dba dba : smu->dbas()) dba_map_[dba].push_back(smu);
  if (replaces == nullptr) {
    objects_[smu->object_id()].push_back(std::move(smu));
  }
  // Repopulation: stays out of the scan list until AttachImcu swaps it in.
  return Status::OK();
}

Status ImStore::AttachImcu(const std::shared_ptr<Smu>& smu,
                           std::shared_ptr<const Imcu> imcu,
                           const std::shared_ptr<Smu>& replaces) {
  const size_t bytes = imcu->ApproxBytes();
  smu->AttachImcu(std::move(imcu));  // Also flips state to kReady.
  used_bytes_.fetch_add(bytes, std::memory_order_relaxed);

  if (replaces != nullptr) {
    std::unique_lock<std::shared_mutex> g(mu_);
    auto& list = objects_[smu->object_id()];
    // Swap the scan-list entry: new SMU in, old out, atomically under the
    // store lock so no scan observes both (or neither) as scannable.
    bool swapped = false;
    for (auto& entry : list) {
      if (entry == replaces) {
        entry = smu;
        swapped = true;
        break;
      }
    }
    if (!swapped) list.push_back(smu);
    UnmapSmuLocked(replaces);
    replaces->set_state(SmuState::kDropped);
    const auto old_imcu = replaces->imcu();
    if (old_imcu != nullptr)
      used_bytes_.fetch_sub(old_imcu->ApproxBytes(), std::memory_order_relaxed);
  }
  return Status::OK();
}

void ImStore::UnmapSmuLocked(const std::shared_ptr<Smu>& smu) {
  for (Dba dba : smu->dbas()) {
    auto it = dba_map_.find(dba);
    if (it == dba_map_.end()) continue;
    auto& vec = it->second;
    vec.erase(std::remove(vec.begin(), vec.end(), smu), vec.end());
    if (vec.empty()) dba_map_.erase(it);
  }
}

std::vector<std::shared_ptr<Smu>> ImStore::FindSmus(Dba dba) const {
  std::shared_lock<std::shared_mutex> g(mu_);
  auto it = dba_map_.find(dba);
  if (it == dba_map_.end()) return {};
  return it->second;
}

std::vector<std::shared_ptr<Smu>> ImStore::SmusForObject(ObjectId object_id) const {
  std::shared_lock<std::shared_mutex> g(mu_);
  auto it = objects_.find(object_id);
  if (it == objects_.end()) return {};
  return it->second;
}

std::vector<std::shared_ptr<Smu>> ImStore::AllSmus() const {
  std::shared_lock<std::shared_mutex> g(mu_);
  std::vector<std::shared_ptr<Smu>> out;
  for (const auto& [oid, smus] : objects_)
    out.insert(out.end(), smus.begin(), smus.end());
  return out;
}

size_t ImStore::MarkRowInvalid(Dba dba, SlotId slot) {
  size_t marked = 0;
  for (const auto& smu : FindSmus(dba)) {
    if (smu->MarkRowInvalid(dba, slot)) ++marked;
  }
  if (marked > 0) row_invalidations_.fetch_add(1, std::memory_order_relaxed);
  return marked;
}

void ImStore::AbandonSmu(const std::shared_ptr<Smu>& smu) {
  std::unique_lock<std::shared_mutex> g(mu_);
  UnmapSmuLocked(smu);
  auto it = objects_.find(smu->object_id());
  if (it != objects_.end()) {
    auto& vec = it->second;
    vec.erase(std::remove(vec.begin(), vec.end(), smu), vec.end());
  }
  smu->set_state(SmuState::kDropped);
  // Pre-attach abandons have no IMCU yet; an already-attached SMU (the
  // seed-coverage pass retiring a mismatched snapshot SMU) gives back its
  // accounted memory here.
  const auto imcu = smu->imcu();
  if (imcu != nullptr)
    used_bytes_.fetch_sub(imcu->ApproxBytes(), std::memory_order_relaxed);
}

void ImStore::DropObject(ObjectId object_id) {
  std::unique_lock<std::shared_mutex> g(mu_);
  auto it = objects_.find(object_id);
  if (it == objects_.end()) return;
  for (const auto& smu : it->second) {
    UnmapSmuLocked(smu);
    smu->set_state(SmuState::kDropped);
    const auto imcu = smu->imcu();
    if (imcu != nullptr)
      used_bytes_.fetch_sub(imcu->ApproxBytes(), std::memory_order_relaxed);
  }
  objects_.erase(it);
}

void ImStore::CoarseInvalidateTenant(TenantId tenant) {
  std::shared_lock<std::shared_mutex> g(mu_);
  for (auto& [oid, list] : objects_) {
    for (const auto& smu : list) {
      if (smu->tenant() == tenant) smu->MarkAllInvalid();
    }
  }
  coarse_invalidations_.fetch_add(1, std::memory_order_relaxed);
}

void ImStore::Clear() {
  std::unique_lock<std::shared_mutex> g(mu_);
  for (auto& [oid, list] : objects_) {
    for (const auto& smu : list) smu->set_state(SmuState::kDropped);
  }
  objects_.clear();
  dba_map_.clear();
  used_bytes_.store(0, std::memory_order_relaxed);
}

ImStoreStats ImStore::Stats() const {
  std::shared_lock<std::shared_mutex> g(mu_);
  ImStoreStats stats;
  for (const auto& [oid, list] : objects_) {
    for (const auto& smu : list) {
      ++stats.smus_total;
      if (smu->state() == SmuState::kReady) ++stats.smus_ready;
    }
  }
  stats.used_bytes = used_bytes_.load(std::memory_order_relaxed);
  stats.row_invalidations = row_invalidations_.load(std::memory_order_relaxed);
  stats.coarse_invalidations = coarse_invalidations_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace stratus
