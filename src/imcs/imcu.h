#ifndef STRATUS_IMCS_IMCU_H_
#define STRATUS_IMCS_IMCU_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "imcs/column_vector.h"
#include "storage/block.h"
#include "storage/schema.h"

namespace stratus {

/// Sentinel for "this (dba, slot) is not covered by the IMCU".
inline constexpr uint32_t kNoImcuRow = 0xFFFFFFFFu;

/// An In-Memory Columnar Unit (Section II.B): an immutable, compressed,
/// columnar snapshot of a contiguous run of a table's data blocks, consistent
/// as of `snapshot_scn`. Geometry is fixed: row index = block position ×
/// kRowsPerBlock + slot, with a present-bitmap marking slots that held a
/// visible row at the snapshot. Synchronization with later changes lives in
/// the accompanying SMU, never here.
class Imcu {
 public:
  Imcu(ObjectId object_id, TenantId tenant, Scn snapshot_scn,
       std::vector<Dba> dbas, Schema schema);

  ObjectId object_id() const { return object_id_; }
  TenantId tenant() const { return tenant_; }
  Scn snapshot_scn() const { return snapshot_scn_; }
  const std::vector<Dba>& dbas() const { return dbas_; }
  const Schema& schema() const { return schema_; }

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  /// Local row index for (dba, slot), or kNoImcuRow if dba is not covered.
  uint32_t RowIndexFor(Dba dba, SlotId slot) const {
    auto it = dba_index_.find(dba);
    if (it == dba_index_.end()) return kNoImcuRow;
    return it->second * kRowsPerBlock + slot;
  }

  /// True if `row` held a visible row at the snapshot.
  bool Present(uint32_t row) const {
    return (present_[row >> 6] >> (row & 63)) & 1;
  }

  /// Present bitmap words ((num_rows + 63) / 64 of them) for the scan
  /// engine's word-wise AND with predicate match bitmaps.
  const std::vector<uint64_t>& present_words() const { return present_; }

  const ColumnVector& column(size_t i) const { return *columns_[i]; }

  /// Decodes the full row at local index `row`.
  Row Materialize(uint32_t row) const;

  /// Number of present rows.
  size_t PresentCount() const { return present_count_; }

  size_t ApproxBytes() const;

  /// Construction hooks used by the population builder.
  void SetPresent(uint32_t row);
  void SetColumns(std::vector<std::unique_ptr<ColumnVector>> columns);

 private:
  ObjectId object_id_;
  TenantId tenant_;
  Scn snapshot_scn_;
  std::vector<Dba> dbas_;
  Schema schema_;
  size_t num_rows_;

  std::unordered_map<Dba, uint32_t> dba_index_;
  std::vector<uint64_t> present_;
  size_t present_count_ = 0;
  std::vector<std::unique_ptr<ColumnVector>> columns_;
};

}  // namespace stratus

#endif  // STRATUS_IMCS_IMCU_H_
