#ifndef STRATUS_IMCS_IM_STORE_H_
#define STRATUS_IMCS_IM_STORE_H_

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "imcs/smu.h"

namespace stratus {

/// Aggregate statistics of one In-Memory Column Store.
struct ImStoreStats {
  size_t smus_total = 0;
  size_t smus_ready = 0;
  size_t used_bytes = 0;
  uint64_t row_invalidations = 0;
  uint64_t coarse_invalidations = 0;
};

/// One instance's In-Memory Column Store area (the "in-memory pool"): the
/// registry of SMU/IMCU pairs, the DBA→SMU lookup used by invalidation flush,
/// and memory accounting against a configured capacity.
///
/// During repopulation two SMUs may be registered for the same DBA (the old
/// one keeps serving scans, the new one accumulates invalidations from its
/// snapshot onward); lookups return all of them and flush marks all of them.
class ImStore {
 public:
  ImStore(InstanceId instance, size_t capacity_bytes)
      : instance_(instance), capacity_bytes_(capacity_bytes) {}

  ImStore(const ImStore&) = delete;
  ImStore& operator=(const ImStore&) = delete;

  InstanceId instance() const { return instance_; }

  /// Registers a freshly created (populating) SMU. If `replaces` is non-null
  /// this is a repopulation: the new SMU joins the DBA map alongside the old
  /// one but does not enter the scan list until its IMCU attaches.
  Status RegisterSmu(std::shared_ptr<Smu> smu, const std::shared_ptr<Smu>& replaces);

  /// Attaches the built IMCU, accounts its memory, makes the SMU scannable,
  /// and (for repopulation) retires `replaces`.
  Status AttachImcu(const std::shared_ptr<Smu>& smu,
                    std::shared_ptr<const Imcu> imcu,
                    const std::shared_ptr<Smu>& replaces);

  /// All SMUs currently registered for `dba` (0, 1 or 2 entries).
  std::vector<std::shared_ptr<Smu>> FindSmus(Dba dba) const;

  /// Scannable SMU list for an object (kReady and kPopulating; scans skip the
  /// latter's blocks to the row path).
  std::vector<std::shared_ptr<Smu>> SmusForObject(ObjectId object_id) const;

  /// Every SMU in the scan lists, all objects (IMCS snapshot capture).
  std::vector<std::shared_ptr<Smu>> AllSmus() const;

  /// Marks one row invalid in every SMU covering `dba`. Returns the number of
  /// SMUs that recorded it.
  size_t MarkRowInvalid(Dba dba, SlotId slot);

  /// Abandons a registered SMU: unmaps it and drops it from the scan list.
  /// Used both for failed populations (e.g. the pool is full) and to retire
  /// an attached snapshot SMU that the seed-coverage pass could not match
  /// into the table's current block tiling (its memory is un-accounted).
  void AbandonSmu(const std::shared_ptr<Smu>& smu);

  /// Drops every SMU/IMCU of an object (DDL, Section III.G).
  void DropObject(ObjectId object_id);

  /// Coarse invalidation (Section III.E): marks every IMCU of `tenant`
  /// entirely invalid. Queries stop using them until repopulated.
  void CoarseInvalidateTenant(TenantId tenant);

  /// Drops everything (standby restart loses the non-persistent IMCS).
  void Clear();

  /// True if `bytes` more would exceed capacity.
  bool WouldExceedCapacity(size_t bytes) const {
    return used_bytes_.load(std::memory_order_relaxed) + bytes > capacity_bytes_;
  }

  size_t used_bytes() const { return used_bytes_.load(std::memory_order_relaxed); }
  size_t capacity_bytes() const { return capacity_bytes_; }

  ImStoreStats Stats() const;

 private:
  void UnmapSmuLocked(const std::shared_ptr<Smu>& smu);

  InstanceId instance_;
  size_t capacity_bytes_;
  std::atomic<size_t> used_bytes_{0};

  mutable std::shared_mutex mu_;
  std::unordered_map<ObjectId, std::vector<std::shared_ptr<Smu>>> objects_;
  std::unordered_map<Dba, std::vector<std::shared_ptr<Smu>>> dba_map_;

  std::atomic<uint64_t> row_invalidations_{0};
  std::atomic<uint64_t> coarse_invalidations_{0};
};

}  // namespace stratus

#endif  // STRATUS_IMCS_IM_STORE_H_
