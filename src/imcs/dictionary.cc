#include "imcs/dictionary.h"

#include <algorithm>

namespace stratus {

Dictionary Dictionary::Build(const std::vector<const std::string*>& values) {
  Dictionary dict;
  dict.entries_.reserve(values.size());
  for (const std::string* s : values) {
    if (s != nullptr) dict.entries_.push_back(*s);
  }
  std::sort(dict.entries_.begin(), dict.entries_.end());
  dict.entries_.erase(std::unique(dict.entries_.begin(), dict.entries_.end()),
                      dict.entries_.end());
  dict.entries_.shrink_to_fit();
  return dict;
}

std::optional<uint32_t> Dictionary::Lookup(const std::string& s) const {
  auto it = std::lower_bound(entries_.begin(), entries_.end(), s);
  if (it == entries_.end() || *it != s) return std::nullopt;
  return static_cast<uint32_t>(it - entries_.begin());
}

uint32_t Dictionary::LowerBound(const std::string& s) const {
  auto it = std::lower_bound(entries_.begin(), entries_.end(), s);
  return static_cast<uint32_t>(it - entries_.begin());
}

size_t Dictionary::ApproxBytes() const {
  size_t bytes = entries_.capacity() * sizeof(std::string);
  for (const std::string& s : entries_) bytes += s.capacity();
  return bytes;
}

}  // namespace stratus
