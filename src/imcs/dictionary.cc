#include "imcs/dictionary.h"

#include <algorithm>

#include "common/checksum.h"

namespace stratus {

Dictionary Dictionary::Build(const std::vector<const std::string*>& values) {
  Dictionary dict;
  dict.entries_.reserve(values.size());
  for (const std::string* s : values) {
    if (s != nullptr) dict.entries_.push_back(*s);
  }
  std::sort(dict.entries_.begin(), dict.entries_.end());
  dict.entries_.erase(std::unique(dict.entries_.begin(), dict.entries_.end()),
                      dict.entries_.end());
  dict.entries_.shrink_to_fit();
  return dict;
}

std::optional<uint32_t> Dictionary::Lookup(const std::string& s) const {
  auto it = std::lower_bound(entries_.begin(), entries_.end(), s);
  if (it == entries_.end() || *it != s) return std::nullopt;
  return static_cast<uint32_t>(it - entries_.begin());
}

uint32_t Dictionary::LowerBound(const std::string& s) const {
  auto it = std::lower_bound(entries_.begin(), entries_.end(), s);
  return static_cast<uint32_t>(it - entries_.begin());
}

void Dictionary::Serialize(std::string* out) const {
  PutVarint64(out, entries_.size());
  for (const std::string& s : entries_) {
    PutVarint64(out, s.size());
    out->append(s);
  }
}

bool Dictionary::Deserialize(const std::string& buf, size_t* pos,
                             Dictionary* out) {
  uint64_t n = 0;
  if (!GetVarint64(buf, pos, &n)) return false;
  out->entries_.clear();
  out->entries_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t len = 0;
    if (!GetVarint64(buf, pos, &len) || *pos + len > buf.size()) return false;
    out->entries_.emplace_back(buf.data() + *pos, len);
    *pos += len;
    // Codes are order-preserving only if the entry list is sorted-unique.
    if (i > 0 && out->entries_[i - 1] >= out->entries_[i]) return false;
  }
  return true;
}

size_t Dictionary::ApproxBytes() const {
  size_t bytes = entries_.capacity() * sizeof(std::string);
  for (const std::string& s : entries_) bytes += s.capacity();
  return bytes;
}

}  // namespace stratus
