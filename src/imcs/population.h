#ifndef STRATUS_IMCS_POPULATION_H_
#define STRATUS_IMCS_POPULATION_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "adg/recovery_coordinator.h"
#include "imcs/expression.h"
#include "imcs/im_store.h"
#include "storage/block_store.h"
#include "storage/table.h"
#include "txn/txn_manager.h"

namespace stratus {

/// Role-specific capture of a population snapshot SCN. The returned SCN is a
/// consistency point; `register_fn` (which registers the new SMU) runs while
/// the capture is protected against a concurrent invalidation pass, so the
/// SMU either receives all post-snapshot invalidations or the snapshot
/// already includes the changes — never neither.
class SnapshotSource {
 public:
  virtual ~SnapshotSource() = default;
  /// Returns kInvalidScn (and does not call `register_fn`) when no
  /// consistency point is available yet.
  virtual Scn CaptureSnapshot(const std::function<void(Scn)>& register_fn) = 0;
  virtual const VisibilityResolver* resolver() const = 0;
};

/// Standby capture (Section III.A): the snapshot SCN is always the published
/// QuerySCN, captured under the shared side of the Quiesce lock — never
/// during a Quiesce Period.
class StandbySnapshotSource : public SnapshotSource {
 public:
  StandbySnapshotSource(RecoveryCoordinator* coordinator, const TxnTable* txn_table)
      : coordinator_(coordinator), txn_table_(txn_table) {}

  Scn CaptureSnapshot(const std::function<void(Scn)>& register_fn) override {
    SnapshotCaptureGuard guard(*coordinator_->quiesce());
    const Scn scn = coordinator_->query_scn();
    if (scn == kInvalidScn) return kInvalidScn;
    register_fn(scn);
    return scn;
  }

  const VisibilityResolver* resolver() const override { return txn_table_; }

 private:
  RecoveryCoordinator* coordinator_;
  const TxnTable* txn_table_;
};

/// Synchronizes the primary's IMCS maintenance: transaction commits mark
/// modified rows invalid under the shared side; population snapshot capture
/// takes the exclusive side, so a commit is either included in the captured
/// snapshot or lands in the already-registered SMU's bitmap.
class PrimaryImSync {
 public:
  void LockExclusive() { mu_.lock(); }
  void UnlockExclusive() { mu_.unlock(); }
  void LockShared() { mu_.lock_shared(); }
  void UnlockShared() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// Primary capture: the snapshot SCN is the transaction manager's visible
/// SCN, captured exclusively against commit-time invalidation.
class PrimarySnapshotSource : public SnapshotSource {
 public:
  PrimarySnapshotSource(const TxnManager* txn_mgr, PrimaryImSync* sync)
      : txn_mgr_(txn_mgr), sync_(sync) {}

  Scn CaptureSnapshot(const std::function<void(Scn)>& register_fn) override {
    sync_->LockExclusive();
    const Scn scn = txn_mgr_->visible_scn();
    if (scn != kInvalidScn) register_fn(scn);
    sync_->UnlockExclusive();
    return scn == kInvalidScn ? kInvalidScn : scn;
  }

  const VisibilityResolver* resolver() const override {
    return txn_mgr_->txn_table();
  }

 private:
  const TxnManager* txn_mgr_;
  PrimaryImSync* sync_;
};

/// Population tuning knobs.
struct PopulationOptions {
  /// Blocks per IMCU (the segment loader's chunk size).
  int blocks_per_imcu = 16;
  /// Repopulate an IMCU once this fraction of its rows is invalid.
  double repop_invalid_threshold = 0.20;
  /// Additionally repopulate any SMU older than this that has accumulated
  /// *any* invalidity — drains residual staleness once churn subsides
  /// (0 disables). Part of the paper's repopulation-frequency heuristics.
  int64_t repop_staleness_us = 2'000'000;
  /// Background manager pass interval.
  int64_t manager_interval_us = 5000;
  /// RAC home-location function: which instance populates (hosts) the chunk.
  /// Defaults to "every chunk is mine" (single-instance IMCS).
  std::function<InstanceId(ObjectId, uint64_t chunk_ordinal)> home_fn;
  /// In-Memory Expressions (Section V): when set, population appends one
  /// encoded virtual column per registered expression after the schema
  /// columns of every IMCU it builds.
  const ImExpressionRegistry* expressions = nullptr;
  /// Optional crash injection (standby only). Null in production wiring.
  chaos::ChaosController* chaos = nullptr;
};

/// Population statistics.
struct PopulationStats {
  uint64_t imcus_populated = 0;
  uint64_t repopulations = 0;
  uint64_t tail_extensions = 0;
  uint64_t rows_populated = 0;
  uint64_t snapshot_retries = 0;
  uint64_t capacity_rejections = 0;
};

/// The population infrastructure (Section III.A): a segment loader chunks
/// enabled objects into DBA ranges and builds IMCUs for them in the
/// background, entirely online — queries and redo apply never stop. The same
/// component performs repopulation (Section II.B) when SMUs accumulate
/// invalidations, and extends coverage over freshly inserted blocks (the
/// "edge IMCU" churn visible in the paper's Figure 10 experiment).
class Populator {
 public:
  Populator(ImStore* store, SnapshotSource* snapshot_source, BlockStore* blocks,
            const PopulationOptions& options);
  ~Populator();

  Populator(const Populator&) = delete;
  Populator& operator=(const Populator&) = delete;

  /// Marks `table` for population into this store. Idempotent.
  void EnableObject(Table* table);

  /// Snapshot-resume restart: adopts SMUs already attached to the store (an
  /// IMCS snapshot reloaded by disk recovery, before this populator existed)
  /// as coverage, so restart extends from the snapshot instead of rebuilding
  /// every IMCU. Ready SMUs that tile the table's block list from the front —
  /// full chunks, then at most one undersized tail — are counted (the tail is
  /// adopted and later extended in place); any loaded SMU that does not fit
  /// the tiling is retired, because population will rebuild its blocks and
  /// two scannable SMUs over one DBA would double-count rows. A no-op for
  /// objects with coverage already, and on an empty store.
  void SeedCoverageFromStore();

  /// Stops populating the object and drops its IMCUs.
  void DisableObject(ObjectId object_id);

  /// Starts / stops the background manager thread.
  void Start();
  void Stop();

  /// Runs one manager pass synchronously (deterministic tests).
  void RunOnePass();

  /// Populates everything currently uncovered for `object_id`, synchronously.
  /// Requires a consistency point to exist (standby: QuerySCN published).
  /// May propagate a CrashSignal to the caller when a population crash point
  /// is armed (the chaos harness runs population on its own thread and
  /// catches it there).
  Status PopulateNow(ObjectId object_id);

  /// True when the background manager thread was terminated by a CrashSignal.
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }

  PopulationStats stats() const;

 private:
  struct ObjectState {
    Table* table = nullptr;
    /// Blocks covered by full-size chunks (populated by any instance).
    size_t full_covered = 0;
    /// This instance's partial tail SMU, if any.
    std::shared_ptr<Smu> tail_smu;
    size_t tail_blocks = 0;
  };

  void ManagerLoop();
  /// One pass over `state`; returns true if it performed any work.
  bool PassOverObject(ObjectState* state);
  /// Builds one chunk; returns false on snapshot/capacity failure.
  bool BuildChunk(ObjectState* state, const std::vector<Dba>& dbas,
                  const std::shared_ptr<Smu>& replaces, bool is_tail,
                  bool is_repop);
  InstanceId HomeOf(ObjectId object_id, uint64_t chunk_ordinal) const;

  ImStore* store_;
  SnapshotSource* snapshot_source_;
  BlockStore* blocks_;
  PopulationOptions options_;

  mutable std::mutex mu_;  ///< Guards objects_ map shape (manager is single).
  std::unordered_map<ObjectId, ObjectState> objects_;

  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  std::atomic<bool> crashed_{false};

  mutable std::mutex stats_mu_;
  PopulationStats stats_;
};

}  // namespace stratus

#endif  // STRATUS_IMCS_POPULATION_H_
