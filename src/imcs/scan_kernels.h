#ifndef STRATUS_IMCS_SCAN_KERNELS_H_
#define STRATUS_IMCS_SCAN_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace stratus {

class BitPackedArray;

/// Which filter kernel evaluates predicates over bit-packed codes.
///
///   kScalar : per-row BitPackedArray::Get + compare — the seed behaviour,
///             kept as the baseline and the forced fallback.
///   kSwar   : portable 64-bit SWAR. Widths dividing 64 compare a whole
///             packed word of fields at once (Lamport's parallel unsigned
///             compare); other widths run an unrolled 64-row block kernel
///             with branchless range checks.
///   kAvx2   : 256-bit specialization of the SWAR compare for byte-friendly
///             widths (4/8/16/32); other widths fall back to kSwar. Only
///             reachable on x86-64 builds whose CPU reports AVX2.
///
/// All three produce bit-identical match bitmaps; tests force each in turn.
enum class ScanKernel : uint8_t { kScalar = 0, kSwar = 1, kAvx2 = 2 };

const char* ScanKernelName(ScanKernel k);

/// True when this binary carries the AVX2 kernel and the CPU supports it.
bool Avx2Supported();

/// Kernel selection for this process: a test override (ForceScanKernel) wins,
/// then env STRATUS_FORCE_SCALAR=1 / STRATUS_SCAN_KERNEL=scalar|swar|avx2
/// (read once), then AVX2 if supported, else SWAR.
ScanKernel ActiveScanKernel();

/// Test hook: pin every subsequent ActiveScanKernel() to `k` (process-wide,
/// atomic — safe to flip between quiescent scans in multi-threaded tests).
void ForceScanKernel(ScanKernel k);
/// Test hook: drop the pin and return to env/CPU dispatch.
void ClearScanKernelOverride();

/// Per-scan attribution of which kernel actually did the work (a requested
/// AVX2 scan over an AVX2-unfriendly width is counted as SWAR, truthfully).
struct KernelCounters {
  uint64_t swar_words = 0;    ///< Output bitmap words built by SWAR compares.
  uint64_t avx2_words = 0;    ///< Output bitmap words built by AVX2 compares.
  uint64_t scalar_rows = 0;   ///< Rows evaluated one Get() at a time.

  void Add(const KernelCounters& o) {
    swar_words += o.swar_words;
    avx2_words += o.avx2_words;
    scalar_rows += o.scalar_rows;
  }
};

/// A predicate translated into code space, once per IMCU column: a code c
/// matches iff (lo <= c && c <= hi) XOR negate. `empty` short-circuits the
/// vector work entirely — no code matches (or, with negate, every code
/// matches; NULL masking still applies in the caller).
struct CodeRange {
  uint64_t lo = 0;
  uint64_t hi = 0;
  bool negate = false;
  bool empty = false;

  static CodeRange None() { return CodeRange{0, 0, false, true}; }
  static CodeRange All() { return CodeRange{0, 0, true, true}; }
  static CodeRange Exact(uint64_t c) { return CodeRange{c, c, false, false}; }
};

/// Evaluates `range` over the first `n` codes of `packed` with the requested
/// kernel, writing the match bitmap into `out` (BitmapWords(n) words, fully
/// overwritten, tail bits past n cleared). NULL masking is the caller's job.
/// `counters` may be null.
void FilterCodesBitmap(const BitPackedArray& packed, size_t n,
                       const CodeRange& range, ScanKernel kernel,
                       uint64_t* out, KernelCounters* counters);

// ---------------------------------------------------------------------------
// Bitmap helpers shared by the kernels and the scan engine's AND-combining.

inline size_t BitmapWords(size_t n) { return (n + 63) / 64; }

/// Zeroes the bits at positions >= n in the last word.
inline void BitmapClearTail(uint64_t* bm, size_t n) {
  if ((n & 63) != 0) bm[n >> 6] &= (uint64_t{1} << (n & 63)) - 1;
}

void BitmapFill(uint64_t* bm, size_t n, bool value);
void BitmapAnd(uint64_t* dst, const uint64_t* src, size_t words);
void BitmapAndNot(uint64_t* dst, const uint64_t* src, size_t words);
bool BitmapAny(const uint64_t* bm, size_t words);
uint64_t BitmapCount(const uint64_t* bm, size_t words);

/// Appends the positions of set bits, ascending.
void BitmapToRows(const uint64_t* bm, size_t words, std::vector<uint32_t>* out);

/// Calls f(position) for every set bit, ascending.
template <typename F>
inline void ForEachSetBit(const uint64_t* bm, size_t words, F&& f) {
  for (size_t w = 0; w < words; ++w) {
    uint64_t word = bm[w];
    while (word != 0) {
      const unsigned bit = static_cast<unsigned>(__builtin_ctzll(word));
      word &= word - 1;
      f(static_cast<uint32_t>(w * 64 + bit));
    }
  }
}

}  // namespace stratus

#endif  // STRATUS_IMCS_SCAN_KERNELS_H_
