#ifndef STRATUS_IMCS_EXPRESSION_H_
#define STRATUS_IMCS_EXPRESSION_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace stratus {

/// In-Memory Expressions (Section V, [1] "Accelerating analytics with dynamic
/// in-memory expressions"): frequently evaluated expressions over a table's
/// columns are computed once at population time and stored as additional
/// encoded virtual columns inside the IMCU, so analytic predicates and
/// projections on them never re-evaluate per row. The paper highlights that
/// DBIM-on-ADG extends this to the standby: expression units are populated
/// and invalidated through exactly the same SMU machinery as base columns.
///
/// The expression language covers the arithmetic/string shapes the feature
/// targets: column references, constants, integer arithmetic, and simple
/// string operators.
class Expression {
 public:
  enum class Op : uint8_t {
    kColumn,   ///< Value of column `column`.
    kConst,    ///< `constant`.
    kAdd,      ///< left + right (int).
    kSub,      ///< left - right (int).
    kMul,      ///< left * right (int).
    kDiv,      ///< left / right (int; NULL on division by zero).
    kMod,      ///< left % right (int; NULL on division by zero).
    kLength,   ///< length(left) (string → int).
    kConcat,   ///< left || right (string).
  };

  /// Leaf constructors.
  static Expression Column(uint32_t column);
  static Expression Const(Value v);

  /// Node constructors.
  static Expression Add(Expression l, Expression r) { return Node(Op::kAdd, std::move(l), std::move(r)); }
  static Expression Sub(Expression l, Expression r) { return Node(Op::kSub, std::move(l), std::move(r)); }
  static Expression Mul(Expression l, Expression r) { return Node(Op::kMul, std::move(l), std::move(r)); }
  static Expression Div(Expression l, Expression r) { return Node(Op::kDiv, std::move(l), std::move(r)); }
  static Expression Mod(Expression l, Expression r) { return Node(Op::kMod, std::move(l), std::move(r)); }
  static Expression Length(Expression l) { return Node(Op::kLength, std::move(l)); }
  static Expression Concat(Expression l, Expression r) { return Node(Op::kConcat, std::move(l), std::move(r)); }

  /// Evaluates against a materialized row (NULL-propagating).
  Value Eval(const Row& row) const;

  /// Result type given the input schema (NULL ⇒ untypeable, e.g. bad column).
  ValueType ResultType(const Schema& schema) const;

  /// "col3 + 5"-style display string.
  std::string ToString(const Schema& schema) const;

  /// Validates column references against `schema`.
  Status Validate(const Schema& schema) const;

 private:
  static Expression Node(Op op, Expression l);
  static Expression Node(Op op, Expression l, Expression r);

  Op op_ = Op::kConst;
  uint32_t column_ = 0;
  Value constant_;
  std::shared_ptr<const Expression> left_;
  std::shared_ptr<const Expression> right_;
};

/// Per-object registry of In-Memory Expressions. Population reads the list
/// at build time and appends one encoded virtual column per expression after
/// the schema columns; scans address them by virtual column index
/// `schema.num_columns() + position`.
class ImExpressionRegistry {
 public:
  /// Registers an expression; returns its virtual column index.
  StatusOr<uint32_t> Register(ObjectId object, const Schema& schema,
                              Expression expr);

  /// Expressions registered for `object` (snapshot copy).
  std::vector<Expression> For(ObjectId object) const;

  /// Drops all expressions of an object (DDL).
  void Drop(ObjectId object);

  size_t CountFor(ObjectId object) const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<ObjectId, std::vector<Expression>> exprs_;
};

}  // namespace stratus

#endif  // STRATUS_IMCS_EXPRESSION_H_
