#ifndef STRATUS_IMCS_SMU_H_
#define STRATUS_IMCS_SMU_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/bitmap.h"
#include "common/clock.h"
#include "common/types.h"
#include "imcs/imcu.h"

namespace stratus {

/// Lifecycle of an SMU/IMCU pair.
enum class SmuState : uint8_t {
  /// SMU registered (receiving invalidations) but column data not yet built —
  /// scans treat the covered range as uncovered. This "SMU-first" protocol is
  /// what lets population overlap QuerySCN advancement safely: an SMU created
  /// at snapshot capture never misses a later invalidation flush.
  kPopulating = 0,
  kReady = 1,
  kDropped = 2,
};

/// Snapshot Metadata Unit (Section II.B): tracks, per row and per block, the
/// validity of the data captured in its IMCU. Invalidation flush sets bits
/// concurrently with scans reading them; the QuerySCN publication provides
/// the happens-before edge (flush completes before the QuerySCN at which a
/// query could need the bit is published).
class Smu {
 public:
  Smu(ObjectId object_id, TenantId tenant, Scn snapshot_scn, std::vector<Dba> dbas);

  ObjectId object_id() const { return object_id_; }
  TenantId tenant() const { return tenant_; }
  Scn snapshot_scn() const { return snapshot_scn_; }
  /// Wall-clock time this SMU was created (staleness-driven repopulation).
  uint64_t created_us() const { return created_us_; }
  const std::vector<Dba>& dbas() const { return dbas_; }
  size_t num_rows() const { return num_rows_; }

  SmuState state() const { return state_.load(std::memory_order_acquire); }
  void set_state(SmuState s) { state_.store(s, std::memory_order_release); }

  /// Attaches the built IMCU and makes the unit scannable.
  void AttachImcu(std::shared_ptr<const Imcu> imcu);
  /// The IMCU, or nullptr while populating / after drop.
  std::shared_ptr<const Imcu> imcu() const;

  /// Marks one row invalid. Returns false if (dba) is not covered.
  bool MarkRowInvalid(Dba dba, SlotId slot);
  /// Marks a whole block invalid (DDL / truncate-level events).
  bool MarkBlockInvalid(Dba dba);
  /// Marks everything invalid (coarse invalidation, Section III.E).
  void MarkAllInvalid();

  /// True if local row `row` must be served from the row store.
  bool IsRowInvalid(uint32_t row) const {
    if (all_invalid_.load(std::memory_order_acquire)) return true;
    if (invalid_blocks_.Test(row / kRowsPerBlock)) return true;
    return invalid_rows_.Test(row);
  }
  bool AllInvalid() const { return all_invalid_.load(std::memory_order_acquire); }

  /// Invokes `f(local_row)` for every invalid row exactly once, in row order.
  /// Word-at-a-time over the row bitmap (cheap when invalidity is sparse —
  /// the common case between repopulations); rows of fully-invalid blocks are
  /// enumerated wholesale and their row bits skipped.
  void ForEachInvalidRow(const std::function<void(uint32_t)>& f) const;

  /// Copies the current invalidity into `*words` (one bit per row, block-
  /// invalidity expanded). A scan takes this snapshot ONCE and partitions
  /// rows against it for both its columnar and reconciliation passes:
  /// otherwise a concurrent flush (for commits beyond the scan's QuerySCN)
  /// could set a bit between the passes and the row would be emitted twice.
  void SnapshotInvalid(std::vector<uint64_t>* words) const;

  uint64_t invalid_count() const { return invalid_count_.load(std::memory_order_relaxed); }

  /// Fraction of covered rows marked invalid; drives repopulation heuristics.
  double InvalidFraction() const;

  /// Local row index for (dba, slot), kNoImcuRow if not covered.
  uint32_t RowIndexFor(Dba dba, SlotId slot) const {
    auto it = dba_index_.find(dba);
    if (it == dba_index_.end()) return kNoImcuRow;
    return it->second * kRowsPerBlock + slot;
  }

  bool Covers(Dba dba) const { return dba_index_.contains(dba); }

  /// Repopulation bookkeeping (set by the populator to avoid double
  /// scheduling).
  bool TrySetRepopScheduled() {
    bool expected = false;
    return repop_scheduled_.compare_exchange_strong(expected, true);
  }
  void ClearRepopScheduled() { repop_scheduled_.store(false); }

 private:
  ObjectId object_id_;
  TenantId tenant_;
  Scn snapshot_scn_;
  std::vector<Dba> dbas_;
  size_t num_rows_;
  std::unordered_map<Dba, uint32_t> dba_index_;

  uint64_t created_us_ = NowMicros();
  std::atomic<SmuState> state_{SmuState::kPopulating};
  AtomicBitmap invalid_rows_;
  AtomicBitmap invalid_blocks_;
  std::atomic<bool> all_invalid_{false};
  std::atomic<uint64_t> invalid_count_{0};
  std::atomic<bool> repop_scheduled_{false};

  mutable std::mutex imcu_mu_;
  std::shared_ptr<const Imcu> imcu_;
};

}  // namespace stratus

#endif  // STRATUS_IMCS_SMU_H_
