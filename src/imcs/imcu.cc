#include "imcs/imcu.h"

namespace stratus {

Imcu::Imcu(ObjectId object_id, TenantId tenant, Scn snapshot_scn,
           std::vector<Dba> dbas, Schema schema)
    : object_id_(object_id),
      tenant_(tenant),
      snapshot_scn_(snapshot_scn),
      dbas_(std::move(dbas)),
      schema_(std::move(schema)),
      num_rows_(dbas_.size() * kRowsPerBlock),
      present_((num_rows_ + 63) / 64, 0) {
  dba_index_.reserve(dbas_.size());
  for (uint32_t i = 0; i < dbas_.size(); ++i) dba_index_[dbas_[i]] = i;
}

void Imcu::SetPresent(uint32_t row) {
  present_[row >> 6] |= 1ull << (row & 63);
  ++present_count_;
}

void Imcu::SetColumns(std::vector<std::unique_ptr<ColumnVector>> columns) {
  columns_ = std::move(columns);
}

Row Imcu::Materialize(uint32_t row) const {
  Row out;
  out.reserve(columns_.size());
  for (const auto& col : columns_) out.push_back(col->Get(row));
  return out;
}

size_t Imcu::ApproxBytes() const {
  size_t bytes = sizeof(*this) + present_.capacity() * 8 +
                 dbas_.capacity() * sizeof(Dba) +
                 dba_index_.size() * (sizeof(Dba) + sizeof(uint32_t) + 16);
  for (const auto& col : columns_) bytes += col->ApproxBytes();
  return bytes;
}

}  // namespace stratus
