#ifndef STRATUS_IMCS_COLUMN_VECTOR_H_
#define STRATUS_IMCS_COLUMN_VECTOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "imcs/dictionary.h"
#include "imcs/scan_kernels.h"
#include "storage/value.h"

namespace stratus {

/// Comparison operators supported by scan predicates.
enum class PredOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// Fixed-width bit-packed array of non-negative integers — the compressed
/// physical layout shared by numeric columns (frame-of-reference deltas) and
/// string columns (dictionary codes).
class BitPackedArray {
 public:
  BitPackedArray() = default;

  /// Packs `values` (each < 2^width). width 0 encodes the constant 0.
  static BitPackedArray Pack(const std::vector<uint64_t>& values, uint8_t width);

  /// Smallest width able to represent `max_value`.
  static uint8_t WidthFor(uint64_t max_value);

  uint64_t Get(size_t i) const {
    if (width_ == 0) return 0;
    const size_t bit = i * width_;
    const size_t word = bit >> 6;
    const unsigned shift = bit & 63;
    uint64_t v = words_[word] >> shift;
    if (shift + width_ > 64) v |= words_[word + 1] << (64 - shift);
    return v & mask_;
  }

  size_t size() const { return size_; }
  uint8_t width() const { return width_; }
  size_t ApproxBytes() const { return words_.capacity() * sizeof(uint64_t); }

  /// Raw packed words for the word-at-a-time kernels. Pack() appends one
  /// guard word past the data, so kernels may read words()[i + 1] for any
  /// word holding field bits. Empty when width() == 0.
  const uint64_t* words() const { return words_.data(); }

  /// Appends the packed physical form (count, width, raw words) to `*out`.
  void Serialize(std::string* out) const;
  /// Reads a Serialize()d array back; false on truncation.
  static bool Deserialize(const std::string& buf, size_t* pos,
                          BitPackedArray* out);

 private:
  std::vector<uint64_t> words_;
  size_t size_ = 0;
  uint8_t width_ = 0;
  uint64_t mask_ = 0;
};

/// An encoded, immutable column inside an IMCU. Provides point access for row
/// materialization and vectorized predicate filtering; per-column min/max
/// form the in-memory storage index used for IMCU pruning.
class ColumnVector {
 public:
  virtual ~ColumnVector() = default;

  virtual ValueType type() const = 0;
  virtual size_t size() const = 0;
  virtual bool IsNull(size_t row) const = 0;
  virtual Value Get(size_t row) const = 0;
  virtual size_t ApproxBytes() const = 0;

  /// Appends to `*out` every row id whose value satisfies `op value`.
  /// NULLs never match (SQL semantics). Rows listed in the caller's skip set
  /// are still emitted — the scan engine filters invalid rows afterwards.
  /// Implemented over FilterBitmap; kept for point lookups and tests.
  virtual void Filter(PredOp op, const Value& value,
                      std::vector<uint32_t>* out) const = 0;

  /// Writes the match bitmap for `op value` into `out` (BitmapWords(size())
  /// words, fully overwritten, tail bits cleared): the predicate constant is
  /// translated into code space once, then the requested kernel compares the
  /// bit-packed codes word-at-a-time. NULL rows never match. `counters`
  /// (may be null) is credited with the kernel that actually ran.
  virtual void FilterBitmap(PredOp op, const Value& value, ScanKernel kernel,
                            uint64_t* out, KernelCounters* counters) const = 0;

  /// Storage-index check: can any row of this column satisfy `op value`?
  /// (false ⇒ the valid portion of the IMCU can be pruned for this predicate.)
  virtual bool MightMatch(PredOp op, const Value& value) const = 0;

  /// Appends a type tag plus the ENCODED physical form (bit-packed codes,
  /// dictionary, null bitmap) to `*out`. DeserializeColumnVector() restores
  /// the vector without re-encoding — the IMCS snapshot-resume fast path.
  virtual void SerializeTo(std::string* out) const = 0;
};

/// Frame-of-reference + bit-packed integer column.
class IntColumnVector final : public ColumnVector {
 public:
  /// `values[i]` nullopt encodes NULL.
  explicit IntColumnVector(const std::vector<std::optional<int64_t>>& values);

  ValueType type() const override { return ValueType::kInt; }
  size_t size() const override { return n_; }
  bool IsNull(size_t row) const override {
    return (nulls_[row >> 6] >> (row & 63)) & 1;
  }
  Value Get(size_t row) const override;
  int64_t GetInt(size_t row) const { return base_ + static_cast<int64_t>(packed_.Get(row)); }
  size_t ApproxBytes() const override;

  void Filter(PredOp op, const Value& value, std::vector<uint32_t>* out) const override;
  void FilterBitmap(PredOp op, const Value& value, ScanKernel kernel,
                    uint64_t* out, KernelCounters* counters) const override;
  bool MightMatch(PredOp op, const Value& value) const override;

  int64_t min_value() const { return min_; }
  int64_t max_value() const { return max_; }

  void SerializeTo(std::string* out) const override;
  /// nullptr on truncation/corruption.
  static std::unique_ptr<IntColumnVector> Deserialize(const std::string& buf,
                                                      size_t* pos);

 private:
  IntColumnVector() = default;

  size_t n_ = 0;
  int64_t base_ = 0;  ///< Frame of reference (== min_).
  int64_t min_ = 0;
  int64_t max_ = 0;
  bool all_null_ = true;
  BitPackedArray packed_;
  std::vector<uint64_t> nulls_;
};

/// Dictionary-encoded string column.
class StringColumnVector final : public ColumnVector {
 public:
  explicit StringColumnVector(const std::vector<const std::string*>& values);

  ValueType type() const override { return ValueType::kString; }
  size_t size() const override { return n_; }
  bool IsNull(size_t row) const override {
    return (nulls_[row >> 6] >> (row & 63)) & 1;
  }
  Value Get(size_t row) const override;
  size_t ApproxBytes() const override;

  void Filter(PredOp op, const Value& value, std::vector<uint32_t>* out) const override;
  void FilterBitmap(PredOp op, const Value& value, ScanKernel kernel,
                    uint64_t* out, KernelCounters* counters) const override;
  bool MightMatch(PredOp op, const Value& value) const override;

  const Dictionary& dictionary() const { return dict_; }

  void SerializeTo(std::string* out) const override;
  /// nullptr on truncation/corruption.
  static std::unique_ptr<StringColumnVector> Deserialize(const std::string& buf,
                                                         size_t* pos);

 private:
  StringColumnVector() = default;

  size_t n_ = 0;
  bool all_null_ = true;
  Dictionary dict_;
  BitPackedArray codes_;
  std::vector<uint64_t> nulls_;
};

/// Builds the encoded column for `type` from a generic value accessor.
std::unique_ptr<ColumnVector> BuildColumnVector(
    ValueType type, size_t n, const std::function<const Value*(size_t)>& get);

/// Restores a column appended by ColumnVector::SerializeTo (tag dispatch).
/// nullptr on truncation, corruption, or an unknown type tag.
std::unique_ptr<ColumnVector> DeserializeColumnVector(const std::string& buf,
                                                      size_t* pos);

}  // namespace stratus

#endif  // STRATUS_IMCS_COLUMN_VECTOR_H_
