#ifndef STRATUS_IMADG_DDL_TABLE_H_
#define STRATUS_IMADG_DDL_TABLE_H_

#include <mutex>
#include <vector>

#include "common/types.h"
#include "redo/change_vector.h"

namespace stratus {

/// The DDL Information Table (Section III.G): buffers DDL redo markers mined
/// by the Mining Component, SCN-ordered, until QuerySCN advancement reaches
/// them — at which point the affected objects' IMCUs are dropped and the
/// dictionary change takes effect for queries.
class DdlInfoTable {
 public:
  struct Entry {
    Scn scn = kInvalidScn;
    DdlMarker marker;
  };

  void Insert(Scn scn, const DdlMarker& marker);

  /// Removes and returns (in SCN order) every marker with scn <= `upto`.
  std::vector<Entry> Extract(Scn upto);

  void Clear();
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::vector<Entry> entries_;  // Kept sorted by scn.
};

}  // namespace stratus

#endif  // STRATUS_IMADG_DDL_TABLE_H_
