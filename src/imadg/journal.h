#ifndef STRATUS_IMADG_JOURNAL_H_
#define STRATUS_IMADG_JOURNAL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/latch.h"
#include "common/types.h"
#include "imadg/invalidation.h"

namespace stratus {

/// The IM-ADG Journal (Section III.C, Figure 7): an in-memory hash table
/// mapping a transaction to its buffered invalidation records.
///
/// Concurrency design follows the paper exactly:
///  - The table is sized to the redo-apply parallelism so recovery workers
///    rarely collide on a bucket; hash chains are protected by a per-bucket
///    latch ("bucket latch").
///  - Each anchor node gives every recovery worker its own record area, so
///    the common operation — multiple workers mining records for the same
///    transaction — needs no synchronization at all.
class ImAdgJournal {
 public:
  /// An anchor node: the per-transaction hub for invalidation records.
  struct AnchorNode {
    explicit AnchorNode(Xid x, size_t num_workers) : xid(x), areas(num_workers) {}

    Xid xid;
    /// Set when the transaction-begin control record is mined. A missing
    /// begin at flush time means the record set is (at most) partial — the
    /// standby restarted mid-transaction (Section III.E).
    std::atomic<bool> has_begin{false};
    std::atomic<bool> aborted{false};
    /// areas[w] is appended to exclusively by recovery worker w.
    std::vector<std::vector<InvalidationRecord>> areas;
    AnchorNode* next = nullptr;  ///< Hash-chain link, guarded by bucket latch.
  };

  ImAdgJournal(size_t num_buckets, size_t num_workers);
  ~ImAdgJournal();

  ImAdgJournal(const ImAdgJournal&) = delete;
  ImAdgJournal& operator=(const ImAdgJournal&) = delete;

  /// Finds or creates the anchor for `xid` (bucket latch held briefly).
  AnchorNode* GetOrCreateAnchor(Xid xid);

  /// Finds the anchor for `xid`, or nullptr.
  AnchorNode* Find(Xid xid) const;

  /// Buffers one invalidation record mined by `worker` (lock-free append to
  /// the worker's own area after the anchor lookup).
  void AddRecord(Xid xid, WorkerId worker, InvalidationRecord rec);

  /// Control-information mining.
  void MarkBegin(Xid xid);
  void MarkAborted(Xid xid);

  /// Unlinks and frees the anchor after its records were flushed/discarded.
  void RemoveAnchor(Xid xid);

  /// Drops everything (standby restart: the journal has no persistence).
  void Clear();

  size_t num_buckets() const { return buckets_.size(); }
  size_t num_workers() const { return num_workers_; }
  uint64_t anchors_created() const { return anchors_created_.load(std::memory_order_relaxed); }
  uint64_t records_buffered() const { return records_buffered_.load(std::memory_order_relaxed); }
  size_t live_anchors() const { return live_anchors_.load(std::memory_order_relaxed); }
  /// Total contended bucket-latch acquisitions (drives the journal ablation).
  uint64_t bucket_contention() const;

 private:
  struct Bucket {
    mutable Latch latch;
    AnchorNode* head = nullptr;
  };
  Bucket& BucketFor(Xid xid) { return buckets_[xid % buckets_.size()]; }
  const Bucket& BucketFor(Xid xid) const { return buckets_[xid % buckets_.size()]; }

  size_t num_workers_;
  std::vector<Bucket> buckets_;
  std::atomic<uint64_t> anchors_created_{0};
  std::atomic<uint64_t> records_buffered_{0};
  std::atomic<size_t> live_anchors_{0};
};

}  // namespace stratus

#endif  // STRATUS_IMADG_JOURNAL_H_
