#include "imadg/ddl_table.h"

#include <algorithm>

namespace stratus {

void DdlInfoTable::Insert(Scn scn, const DdlMarker& marker) {
  std::lock_guard<std::mutex> g(mu_);
  Entry e{scn, marker};
  auto it = std::upper_bound(entries_.begin(), entries_.end(), scn,
                             [](Scn s, const Entry& x) { return s < x.scn; });
  entries_.insert(it, e);
}

std::vector<DdlInfoTable::Entry> DdlInfoTable::Extract(Scn upto) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = std::upper_bound(entries_.begin(), entries_.end(), upto,
                             [](Scn s, const Entry& x) { return s < x.scn; });
  std::vector<Entry> out(entries_.begin(), it);
  entries_.erase(entries_.begin(), it);
  return out;
}

void DdlInfoTable::Clear() {
  std::lock_guard<std::mutex> g(mu_);
  entries_.clear();
}

size_t DdlInfoTable::size() const {
  std::lock_guard<std::mutex> g(mu_);
  return entries_.size();
}

}  // namespace stratus
