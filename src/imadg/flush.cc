#include "imadg/flush.h"

#include "obs/trace.h"

namespace stratus {

InvalidationFlushComponent::InvalidationFlushComponent(
    ImAdgJournal* journal, ImAdgCommitTable* commit_table,
    DdlInfoTable* ddl_table, InvalidationApplier* applier,
    const FlushOptions& options)
    : journal_(journal), commit_table_(commit_table), ddl_table_(ddl_table),
      applier_(applier), options_(options) {}

void InvalidationFlushComponent::PrepareAdvance(Scn target) {
  // DDL markers first: object drops take effect at this consistency point
  // (any row invalidations for the dropped object become no-ops afterwards).
  for (const DdlInfoTable::Entry& e : ddl_table_->Extract(target)) {
    applier_->ApplyDdl(e.marker);
  }

  STRATUS_CRASH_POINT(chaos_, chaos::CrashPoint::kCommitChop);
  ImAdgCommitTable::Node* chain = commit_table_->Chop(target);
  size_t count = 0;
  for (ImAdgCommitTable::Node* n = chain; n != nullptr; n = n->next) ++count;
  {
    LatchGuard g(worklink_latch_);
    worklink_ = chain;
  }
  pending_.store(count, std::memory_order_release);
}

ImAdgCommitTable::Node* InvalidationFlushComponent::PopBatch(size_t max,
                                                             size_t* popped) {
  LatchGuard g(worklink_latch_);
  ImAdgCommitTable::Node* first = worklink_;
  if (first == nullptr) {
    *popped = 0;
    return nullptr;
  }
  ImAdgCommitTable::Node* last = first;
  size_t n = 1;
  while (n < max && last->next != nullptr) {
    last = last->next;
    ++n;
  }
  worklink_ = last->next;
  last->next = nullptr;
  *popped = n;
  // in_flight must rise before pending falls, or AdvanceComplete could
  // observe (pending==0, in_flight==0) mid-batch.
  in_flight_.fetch_add(n, std::memory_order_acq_rel);
  pending_.fetch_sub(n, std::memory_order_acq_rel);
  return first;
}

bool InvalidationFlushComponent::FlushStep(WorkerId invoker) {
  size_t popped = 0;
  ImAdgCommitTable::Node* batch = PopBatch(options_.batch_size, &popped);
  if (batch == nullptr) return false;
  STRATUS_SPAN(obs::Stage::kInvalidationFlush, static_cast<uint64_t>(popped));
  if (invoker == kMaxWorkerId) {
    coordinator_steps_.fetch_add(1, std::memory_order_relaxed);
  } else {
    cooperative_steps_.fetch_add(1, std::memory_order_relaxed);
  }
  try {
    while (batch != nullptr) {
      // The crash point sits INSIDE the node loop so `batch` always heads the
      // unprocessed remainder when the signal fires.
      STRATUS_CRASH_POINT(chaos_, chaos::CrashPoint::kFlushStep);
      ImAdgCommitTable::Node* next = batch->next;
      ProcessNode(batch);
      delete batch;
      batch = next;
    }
  } catch (const chaos::CrashSignal&) {
    // A flusher (coordinator or cooperative recovery worker) died holding a
    // detached batch. The remainder must go BACK on the worklink, not be
    // freed: if it were dropped, the surviving coordinator could observe
    // AdvanceComplete and publish a QuerySCN whose invalidations were lost —
    // stale IMCS rows served as valid. Re-add to pending BEFORE releasing
    // in_flight, preserving the AdvanceComplete ordering invariant.
    if (batch != nullptr) {
      size_t returned = 1;
      ImAdgCommitTable::Node* last = batch;
      while (last->next != nullptr) {
        last = last->next;
        ++returned;
      }
      {
        LatchGuard g(worklink_latch_);
        last->next = worklink_;
        worklink_ = batch;
      }
      pending_.fetch_add(returned, std::memory_order_acq_rel);
    }
    in_flight_.fetch_sub(popped, std::memory_order_acq_rel);
    throw;
  }
  in_flight_.fetch_sub(popped, std::memory_order_acq_rel);
  return pending_.load(std::memory_order_acquire) > 0;
}

void InvalidationFlushComponent::AbandonAdvance() {
  ImAdgCommitTable::Node* chain = nullptr;
  {
    LatchGuard g(worklink_latch_);
    chain = worklink_;
    worklink_ = nullptr;
  }
  size_t freed = 0;
  while (chain != nullptr) {
    ImAdgCommitTable::Node* next = chain->next;
    delete chain;
    chain = next;
    ++freed;
  }
  if (freed > 0) pending_.fetch_sub(freed, std::memory_order_acq_rel);
}

void InvalidationFlushComponent::ProcessNode(ImAdgCommitTable::Node* node) {
  // Re-resolve the anchor now instead of trusting the pointer captured when
  // the commit/abort record was mined: with parallel apply, another recovery
  // worker can mine this transaction's DML at a lower SCN — creating the
  // anchor — *after* the commit was mined. By flush time every worker's
  // watermark has passed the chop target (≥ this commit SCN), so the
  // journal's view is complete; the mine-time snapshot may be null or miss
  // the begin mark, which would leak the anchor and coarse-invalidate
  // needlessly.
  ImAdgJournal::AnchorNode* anchor = journal_->Find(node->xid);
  if (node->aborted) {
    // Rolled back: the changes were never visible; discard buffered records.
    if (anchor != nullptr) journal_->RemoveAnchor(node->xid);
    aborted_discards_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (anchor == nullptr || !anchor->has_begin.load(std::memory_order_acquire)) {
    // Missing/partial record set — possible only when mining state was lost
    // (standby restart, Section III.E). The commit record's flag tells us
    // whether IMCS data may actually be stale.
    if (node->im_flag) {
      applier_->ApplyCoarseInvalidation(node->tenant);
      coarse_invalidations_.fetch_add(1, std::memory_order_relaxed);
    }
    if (anchor != nullptr) journal_->RemoveAnchor(node->xid);
    return;
  }

  // Gather all per-worker areas and chunk into invalidation groups by object.
  std::vector<InvalidationGroup> groups;
  uint64_t records = 0;
  for (const auto& area : anchor->areas) {
    for (const InvalidationRecord& rec : area) {
      InvalidationGroup* group = nullptr;
      for (auto& g : groups) {
        if (g.object_id == rec.object_id && g.tenant == rec.tenant) {
          group = &g;
          break;
        }
      }
      if (group == nullptr) {
        groups.push_back(InvalidationGroup{rec.object_id, rec.tenant, {}});
        group = &groups.back();
      }
      group->rows.emplace_back(rec.dba, rec.slot);
      ++records;
    }
  }
  if (!groups.empty()) {
    flushed_groups_.fetch_add(groups.size(), std::memory_order_relaxed);
    applier_->ApplyGroups(std::move(groups));
  }
  flushed_records_.fetch_add(records, std::memory_order_relaxed);
  flushed_txns_.fetch_add(1, std::memory_order_relaxed);
  journal_->RemoveAnchor(node->xid);
}

bool InvalidationFlushComponent::AdvanceComplete() const {
  return pending_.load(std::memory_order_acquire) == 0 &&
         in_flight_.load(std::memory_order_acquire) == 0 && applier_->Drained();
}

void InvalidationFlushComponent::OnPublished(Scn published) {
  applier_->OnPublished(published);
}

FlushStats InvalidationFlushComponent::stats() const {
  FlushStats s;
  s.flushed_txns = flushed_txns_.load(std::memory_order_relaxed);
  s.flushed_records = flushed_records_.load(std::memory_order_relaxed);
  s.flushed_groups = flushed_groups_.load(std::memory_order_relaxed);
  s.coarse_invalidations = coarse_invalidations_.load(std::memory_order_relaxed);
  s.aborted_discards = aborted_discards_.load(std::memory_order_relaxed);
  s.cooperative_steps = cooperative_steps_.load(std::memory_order_relaxed);
  s.coordinator_steps = coordinator_steps_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace stratus
