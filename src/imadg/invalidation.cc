#include "imadg/invalidation.h"

// Interface-only header; this anchors the translation unit.
namespace stratus {}  // namespace stratus
