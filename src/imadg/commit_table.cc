#include "imadg/commit_table.h"

namespace stratus {

ImAdgCommitTable::ImAdgCommitTable(size_t partitions)
    : parts_(partitions == 0 ? 1 : partitions) {}

ImAdgCommitTable::~ImAdgCommitTable() { Clear(); }

void ImAdgCommitTable::Insert(Xid xid, Scn commit_scn, bool im_flag,
                              bool aborted, TenantId tenant,
                              ImAdgJournal::AnchorNode* anchor) {
  auto* node = new Node{xid, commit_scn, im_flag, aborted, tenant, anchor, nullptr};
  Partition& part = PartitionFor(xid);
  LatchGuard g(part.latch);
  inserts_.fetch_add(1, std::memory_order_relaxed);
  live_nodes_.fetch_add(1, std::memory_order_relaxed);
  if (part.tail == nullptr) {
    part.head = part.tail = node;
    return;
  }
  if (part.tail->commit_scn <= commit_scn) {  // Common case: in-order commit.
    part.tail->next = node;
    part.tail = node;
    return;
  }
  // Out-of-order: walk from the head to the insertion point.
  Node** link = &part.head;
  uint64_t steps = 0;
  while (*link != nullptr && (*link)->commit_scn <= commit_scn) {
    link = &(*link)->next;
    ++steps;
  }
  insert_walk_steps_.fetch_add(steps, std::memory_order_relaxed);
  node->next = *link;
  *link = node;
  if (node->next == nullptr) part.tail = node;
}

ImAdgCommitTable::Node* ImAdgCommitTable::Chop(Scn target) {
  Node* result = nullptr;
  Node* result_tail = nullptr;
  for (Partition& part : parts_) {
    LatchGuard g(part.latch);
    if (part.head == nullptr || part.head->commit_scn > target) continue;
    // The prefix [head .. last <= target] comes off in one cut — this is the
    // paper's "chop off the Commit Table and create a Worklink".
    Node* first = part.head;
    Node* last = first;
    size_t chopped = 1;
    while (last->next != nullptr && last->next->commit_scn <= target) {
      last = last->next;
      ++chopped;
    }
    live_nodes_.fetch_sub(chopped, std::memory_order_relaxed);
    part.head = last->next;
    if (part.head == nullptr) part.tail = nullptr;
    last->next = nullptr;
    if (result == nullptr) {
      result = first;
    } else {
      result_tail->next = first;
    }
    result_tail = last;
  }
  return result;
}

void ImAdgCommitTable::Clear() {
  for (Partition& part : parts_) {
    LatchGuard g(part.latch);
    Node* n = part.head;
    while (n != nullptr) {
      Node* next = n->next;
      delete n;
      live_nodes_.fetch_sub(1, std::memory_order_relaxed);
      n = next;
    }
    part.head = part.tail = nullptr;
  }
}

Scn ImAdgCommitTable::MinPendingScn() const {
  Scn min_scn = kMaxScn;
  for (const Partition& part : parts_) {
    LatchGuard g(part.latch);
    // Partitions are sorted ascending, so the head is the partition minimum.
    if (part.head != nullptr && part.head->commit_scn < min_scn)
      min_scn = part.head->commit_scn;
  }
  return min_scn;
}

uint64_t ImAdgCommitTable::partition_contention() const {
  uint64_t total = 0;
  for (const Partition& p : parts_) total += p.latch.contended();
  return total;
}

}  // namespace stratus
