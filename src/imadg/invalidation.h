#ifndef STRATUS_IMADG_INVALIDATION_H_
#define STRATUS_IMADG_INVALIDATION_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.h"
#include "redo/change_vector.h"

namespace stratus {

/// An Invalidation Record (Section III.B, Figure 6): the tuple the Mining
/// Component notes down when a sniffed change vector modifies an object
/// populated in the standby's IMCS — object, tenant, block, and changed row.
/// It is associated with its transaction through the IM-ADG Journal anchor
/// node it is buffered under.
struct InvalidationRecord {
  ObjectId object_id = kInvalidObjectId;
  TenantId tenant = kDefaultTenant;
  Dba dba = kInvalidDba;
  SlotId slot = 0;
};

/// An Invalidation Group (Section III.D): invalidation records of one object
/// chunked together so the flush to SMUs — possibly across the RAC
/// interconnect — is a batched, cheap operation.
struct InvalidationGroup {
  ObjectId object_id = kInvalidObjectId;
  TenantId tenant = kDefaultTenant;
  std::vector<std::pair<Dba, SlotId>> rows;
};

/// Where the Invalidation Flush Component lands its work. Implemented by the
/// standby database: locally it marks SMU rows invalid; under RAC it routes
/// each group to the instance the home-location map names and the publish
/// notification to every non-master instance.
class InvalidationApplier {
 public:
  virtual ~InvalidationApplier() = default;

  /// Applies a batch of invalidation groups (marks rows invalid in SMUs,
  /// possibly forwarding to remote instances).
  virtual void ApplyGroups(std::vector<InvalidationGroup> groups) = 0;

  /// Coarse invalidation (Section III.E): every IMCU of `tenant` becomes
  /// invalid, on every instance.
  virtual void ApplyCoarseInvalidation(TenantId tenant) = 0;

  /// A mined DDL redo marker reached its QuerySCN: drop the object's IMCUs
  /// (and apply the dictionary change).
  virtual void ApplyDdl(const DdlMarker& marker) = 0;

  /// True once all forwarded work (remote invalidation groups) has been
  /// acknowledged; the QuerySCN may not publish before this.
  virtual bool Drained() const = 0;

  /// The new QuerySCN was published on the master.
  virtual void OnPublished(Scn query_scn) = 0;
};

}  // namespace stratus

#endif  // STRATUS_IMADG_INVALIDATION_H_
