#ifndef STRATUS_IMADG_COMMIT_TABLE_H_
#define STRATUS_IMADG_COMMIT_TABLE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/latch.h"
#include "common/types.h"
#include "imadg/journal.h"

namespace stratus {

/// The IM-ADG Commit Table (Section III.D.1, Figure 8): sorted linked lists
/// of (transaction, commitSCN) built as the Mining Component mines commit (or
/// abort) control records, with a direct reference to the transaction's
/// IM-ADG Journal anchor node for one-step access during flush.
///
/// To relieve the single-sorted-list insertion bottleneck, the table can be
/// partitioned (by XID hash) into several independently latched sorted lists;
/// QuerySCN advancement chops each partition and concatenates the prefixes
/// into the worklink.
class ImAdgCommitTable {
 public:
  /// A Commit Table node. After a chop, nodes travel the worklink and are
  /// freed by the flusher that consumed them.
  struct Node {
    Xid xid = kInvalidXid;
    Scn commit_scn = kInvalidScn;
    bool im_flag = false;
    bool aborted = false;
    TenantId tenant = kDefaultTenant;
    ImAdgJournal::AnchorNode* anchor = nullptr;
    Node* next = nullptr;
  };

  explicit ImAdgCommitTable(size_t partitions);
  ~ImAdgCommitTable();

  ImAdgCommitTable(const ImAdgCommitTable&) = delete;
  ImAdgCommitTable& operator=(const ImAdgCommitTable&) = delete;

  /// Inserts a node, keeping its partition sorted ascending by commitSCN.
  /// Commits are mined roughly in SCN order, so the common case is an O(1)
  /// tail append; out-of-order inserts walk from the head (counted, for the
  /// partitioning ablation).
  void Insert(Xid xid, Scn commit_scn, bool im_flag, bool aborted,
              TenantId tenant, ImAdgJournal::AnchorNode* anchor);

  /// Chops every partition at `target`: detaches all nodes with
  /// commitSCN <= target and returns them concatenated (ascending within each
  /// partition). Caller owns the returned chain.
  Node* Chop(Scn target);

  /// Frees all nodes (standby restart).
  void Clear();

  /// Smallest commitSCN still awaiting flush (kMaxScn when empty). The
  /// invariant auditor checks this stays ABOVE the published QuerySCN: every
  /// commit at or below the consistency point must already have been chopped
  /// and flushed.
  Scn MinPendingScn() const;

  size_t partitions() const { return parts_.size(); }
  uint64_t inserts() const { return inserts_.load(std::memory_order_relaxed); }
  /// Head-walk steps taken by out-of-order inserts (contention/locality
  /// metric for the ablation bench).
  uint64_t insert_walk_steps() const {
    return insert_walk_steps_.load(std::memory_order_relaxed);
  }
  uint64_t partition_contention() const;
  size_t live_nodes() const { return live_nodes_.load(std::memory_order_relaxed); }

 private:
  struct Partition {
    mutable Latch latch;
    Node* head = nullptr;
    Node* tail = nullptr;
  };
  Partition& PartitionFor(Xid xid) { return parts_[xid % parts_.size()]; }

  std::vector<Partition> parts_;
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> insert_walk_steps_{0};
  std::atomic<size_t> live_nodes_{0};
};

}  // namespace stratus

#endif  // STRATUS_IMADG_COMMIT_TABLE_H_
