#ifndef STRATUS_IMADG_MINING_H_
#define STRATUS_IMADG_MINING_H_

#include <atomic>
#include <functional>

#include "adg/recovery_worker.h"
#include "imadg/commit_table.h"
#include "imadg/ddl_table.h"
#include "imadg/journal.h"

namespace stratus {

/// Answers "is this object enabled for population into the standby's IMCS?".
/// (Exactly the set the primary's specialized redo flag covers.)
using ImEnabledChecker = std::function<bool(ObjectId, TenantId)>;

/// The DBIM-on-ADG Mining Component (Section III.B): piggybacks on the
/// recovery workers (via the ApplyHooks interface) to sniff every applied
/// change vector.
///
///  - A data CV against an IM-enabled object yields an Invalidation Record,
///    buffered in the IM-ADG Journal under the transaction's anchor node.
///  - Control CVs (begin / commit / abort) maintain the anchors and the
///    IM-ADG Commit Table, associating invalidation records with the
///    transaction's commitSCN.
///  - DDL redo markers are buffered in the DDL Information Table.
class MiningComponent : public ApplyHooks {
 public:
  MiningComponent(ImAdgJournal* journal, ImAdgCommitTable* commit_table,
                  DdlInfoTable* ddl_table, ImEnabledChecker checker)
      : journal_(journal), commit_table_(commit_table), ddl_table_(ddl_table),
        checker_(std::move(checker)) {}

  /// Optional crash injection; must be set before the pipeline starts.
  void set_chaos(chaos::ChaosController* chaos) { chaos_ = chaos; }

  void OnCvApplied(const ChangeVector& cv, WorkerId worker) override;

  uint64_t mined_records() const { return mined_records_.load(std::memory_order_relaxed); }
  uint64_t mined_commits() const { return mined_commits_.load(std::memory_order_relaxed); }
  uint64_t mined_ddl() const { return mined_ddl_.load(std::memory_order_relaxed); }

 private:
  ImAdgJournal* journal_;
  ImAdgCommitTable* commit_table_;
  DdlInfoTable* ddl_table_;
  ImEnabledChecker checker_;
  chaos::ChaosController* chaos_ = nullptr;

  std::atomic<uint64_t> mined_records_{0};
  std::atomic<uint64_t> mined_commits_{0};
  std::atomic<uint64_t> mined_ddl_{0};
};

}  // namespace stratus

#endif  // STRATUS_IMADG_MINING_H_
