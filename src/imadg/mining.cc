#include "imadg/mining.h"

namespace stratus {

void MiningComponent::OnCvApplied(const ChangeVector& cv, WorkerId worker) {
  switch (cv.kind) {
    case CvKind::kInsert:
    case CvKind::kUpdate:
    case CvKind::kDelete: {
      if (!checker_(cv.object_id, cv.tenant)) return;
      InvalidationRecord rec;
      rec.object_id = cv.object_id;
      rec.tenant = cv.tenant;
      rec.dba = cv.dba;
      rec.slot = cv.slot;
      journal_->AddRecord(cv.xid, worker, rec);
      mined_records_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    case CvKind::kTxnBegin:
      journal_->MarkBegin(cv.xid);
      return;
    case CvKind::kTxnCommit: {
      ImAdgJournal::AnchorNode* anchor = journal_->Find(cv.xid);
      // Only transactions that matter to the IMCS enter the Commit Table:
      // those whose commit record carries the IM flag (Section III.E) or for
      // which an anchor exists (its resources must be reclaimed at flush).
      if (anchor == nullptr && !cv.im_flag) return;
      commit_table_->Insert(cv.xid, cv.scn, cv.im_flag, /*aborted=*/false,
                            cv.tenant, anchor);
      mined_commits_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    case CvKind::kTxnAbort: {
      ImAdgJournal::AnchorNode* anchor = journal_->Find(cv.xid);
      if (anchor == nullptr) return;
      journal_->MarkAborted(cv.xid);
      // Aborts ride the Commit Table too, so the anchor (and its buffered
      // records) is reclaimed once the QuerySCN passes the abort — by which
      // point no recovery worker can still be appending to it.
      commit_table_->Insert(cv.xid, cv.scn, /*im_flag=*/false, /*aborted=*/true,
                            cv.tenant, anchor);
      return;
    }
    case CvKind::kDdlMarker:
      ddl_table_->Insert(cv.scn, cv.ddl);
      mined_ddl_.fetch_add(1, std::memory_order_relaxed);
      return;
    case CvKind::kHeartbeat:
      return;
  }
}

}  // namespace stratus
