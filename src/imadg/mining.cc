#include "imadg/mining.h"

namespace stratus {

void MiningComponent::OnCvApplied(const ChangeVector& cv, WorkerId worker) {
  switch (cv.kind) {
    case CvKind::kInsert:
    case CvKind::kUpdate:
    case CvKind::kDelete: {
      if (!checker_(cv.object_id, cv.tenant)) return;
      // Fires AFTER the worker applied the CV physically but BEFORE its
      // invalidation record reaches the journal: the exact window where the
      // journal record set goes partial (Section III.E). Losing the record is
      // safe — the restart discards the whole journal and the flush falls
      // back to coarse invalidation — and the worker will not re-apply the CV
      // (applied=true suppresses the requeue), so no double apply either.
      STRATUS_CRASH_POINT(chaos_, chaos::CrashPoint::kJournalMine);
      InvalidationRecord rec;
      rec.object_id = cv.object_id;
      rec.tenant = cv.tenant;
      rec.dba = cv.dba;
      rec.slot = cv.slot;
      journal_->AddRecord(cv.xid, worker, rec);
      mined_records_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    case CvKind::kTxnBegin:
      journal_->MarkBegin(cv.xid);
      return;
    case CvKind::kTxnCommit: {
      ImAdgJournal::AnchorNode* anchor = journal_->Find(cv.xid);
      // Only transactions that matter to the IMCS enter the Commit Table:
      // those whose commit record carries the IM flag (Section III.E) or for
      // which an anchor exists (its resources must be reclaimed at flush).
      if (anchor == nullptr && !cv.im_flag) return;
      commit_table_->Insert(cv.xid, cv.scn, cv.im_flag, /*aborted=*/false,
                            cv.tenant, anchor);
      mined_commits_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    case CvKind::kTxnAbort: {
      ImAdgJournal::AnchorNode* anchor = journal_->Find(cv.xid);
      if (anchor != nullptr) journal_->MarkAborted(cv.xid);
      // Aborts ride the Commit Table even when no anchor exists *yet*: with
      // parallel apply, another worker can mine this transaction's DML
      // (creating the anchor) after the abort is mined here. The flush
      // re-resolves the anchor at chop time — by which point every worker's
      // watermark has passed the abort and no one can still be appending —
      // and reclaims it.
      commit_table_->Insert(cv.xid, cv.scn, /*im_flag=*/false, /*aborted=*/true,
                            cv.tenant, anchor);
      return;
    }
    case CvKind::kDdlMarker:
      ddl_table_->Insert(cv.scn, cv.ddl);
      mined_ddl_.fetch_add(1, std::memory_order_relaxed);
      return;
    case CvKind::kHeartbeat:
      return;
  }
}

}  // namespace stratus
