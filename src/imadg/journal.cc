#include "imadg/journal.h"

#include "obs/trace.h"

namespace stratus {

ImAdgJournal::ImAdgJournal(size_t num_buckets, size_t num_workers)
    : num_workers_(num_workers), buckets_(num_buckets == 0 ? 1 : num_buckets) {}

ImAdgJournal::~ImAdgJournal() { Clear(); }

ImAdgJournal::AnchorNode* ImAdgJournal::GetOrCreateAnchor(Xid xid) {
  Bucket& bucket = BucketFor(xid);
  LatchGuard g(bucket.latch);
  for (AnchorNode* n = bucket.head; n != nullptr; n = n->next) {
    if (n->xid == xid) return n;
  }
  auto* node = new AnchorNode(xid, num_workers_);
  node->next = bucket.head;
  bucket.head = node;
  anchors_created_.fetch_add(1, std::memory_order_relaxed);
  live_anchors_.fetch_add(1, std::memory_order_relaxed);
  return node;
}

ImAdgJournal::AnchorNode* ImAdgJournal::Find(Xid xid) const {
  const Bucket& bucket = BucketFor(xid);
  LatchGuard g(bucket.latch);
  for (AnchorNode* n = bucket.head; n != nullptr; n = n->next) {
    if (n->xid == xid) return n;
  }
  return nullptr;
}

void ImAdgJournal::AddRecord(Xid xid, WorkerId worker, InvalidationRecord rec) {
  STRATUS_SPAN(obs::Stage::kJournalAppend, xid);
  AnchorNode* anchor = GetOrCreateAnchor(xid);
  // The paper's key trick: each worker owns areas[worker]; appends need no
  // synchronization even when several workers mine the same transaction.
  anchor->areas[worker % num_workers_].push_back(rec);
  records_buffered_.fetch_add(1, std::memory_order_relaxed);
}

void ImAdgJournal::MarkBegin(Xid xid) {
  GetOrCreateAnchor(xid)->has_begin.store(true, std::memory_order_release);
}

void ImAdgJournal::MarkAborted(Xid xid) {
  AnchorNode* anchor = Find(xid);
  if (anchor != nullptr) anchor->aborted.store(true, std::memory_order_release);
}

void ImAdgJournal::RemoveAnchor(Xid xid) {
  Bucket& bucket = BucketFor(xid);
  LatchGuard g(bucket.latch);
  AnchorNode** link = &bucket.head;
  while (*link != nullptr) {
    if ((*link)->xid == xid) {
      AnchorNode* victim = *link;
      *link = victim->next;
      delete victim;
      live_anchors_.fetch_sub(1, std::memory_order_relaxed);
      return;
    }
    link = &(*link)->next;
  }
}

void ImAdgJournal::Clear() {
  for (Bucket& bucket : buckets_) {
    LatchGuard g(bucket.latch);
    AnchorNode* n = bucket.head;
    while (n != nullptr) {
      AnchorNode* next = n->next;
      delete n;
      n = next;
      live_anchors_.fetch_sub(1, std::memory_order_relaxed);
    }
    bucket.head = nullptr;
  }
}

uint64_t ImAdgJournal::bucket_contention() const {
  uint64_t total = 0;
  for (const Bucket& b : buckets_) total += b.latch.contended();
  return total;
}

}  // namespace stratus
