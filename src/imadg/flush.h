#ifndef STRATUS_IMADG_FLUSH_H_
#define STRATUS_IMADG_FLUSH_H_

#include <atomic>
#include <cstdint>

#include "adg/recovery_coordinator.h"
#include "adg/recovery_worker.h"
#include "common/latch.h"
#include "imadg/commit_table.h"
#include "imadg/ddl_table.h"
#include "imadg/invalidation.h"
#include "imadg/journal.h"

namespace stratus {

/// Invalidation Flush tuning.
struct FlushOptions {
  /// Worklink nodes taken per flush step.
  size_t batch_size = 32;
  /// Cooperative Flush (Section III.D.2): recovery workers help drain the
  /// worklink. Disable for the serial-coordinator ablation.
  bool cooperative = true;
};

/// Flush statistics.
struct FlushStats {
  uint64_t flushed_txns = 0;
  uint64_t flushed_records = 0;
  uint64_t flushed_groups = 0;
  uint64_t coarse_invalidations = 0;
  uint64_t aborted_discards = 0;
  uint64_t cooperative_steps = 0;
  uint64_t coordinator_steps = 0;
};

/// The DBIM-on-ADG Invalidation Flush Component (Section III.D).
///
/// At each QuerySCN advancement the recovery coordinator (through the
/// FlushDriver interface) chops the IM-ADG Commit Table at the target SCN,
/// forming the Worklink. Worklink nodes are drained in batches — by the
/// coordinator and, cooperatively, by the recovery workers (through the
/// FlushParticipant interface) — grouping each transaction's invalidation
/// records into Invalidation Groups and landing them on SMUs via the
/// InvalidationApplier (locally, or across the RAC interconnect).
///
/// A committed node whose journal anchor is missing its transaction-begin
/// control record signals a standby restart lost part of the record set: if
/// the commit record's IM flag is set, the component falls back to coarse
/// invalidation of the tenant's IMCUs (Section III.E).
class InvalidationFlushComponent : public FlushDriver, public FlushParticipant {
 public:
  InvalidationFlushComponent(ImAdgJournal* journal, ImAdgCommitTable* commit_table,
                             DdlInfoTable* ddl_table, InvalidationApplier* applier,
                             const FlushOptions& options);

  /// Optional crash injection; must be set before the pipeline starts.
  void set_chaos(chaos::ChaosController* chaos) { chaos_ = chaos; }

  // FlushDriver:
  void PrepareAdvance(Scn target) override;
  bool FlushStep(WorkerId invoker) override;
  bool AdvanceComplete() const override;
  void OnPublished(Scn published) override;
  /// Crash teardown: frees chopped-but-unflushed worklink nodes of an
  /// abandoned advancement. The anchors they reference live in the journal,
  /// which the restart clears separately.
  void AbandonAdvance() override;

  // FlushParticipant:
  bool WantsHelp() const override {
    return options_.cooperative &&
           pending_.load(std::memory_order_acquire) > 0;
  }

  FlushStats stats() const;

 private:
  /// Detaches up to `max` nodes from the worklink head.
  ImAdgCommitTable::Node* PopBatch(size_t max, size_t* popped);
  void ProcessNode(ImAdgCommitTable::Node* node);

  ImAdgJournal* journal_;
  ImAdgCommitTable* commit_table_;
  DdlInfoTable* ddl_table_;
  InvalidationApplier* applier_;
  FlushOptions options_;
  chaos::ChaosController* chaos_ = nullptr;

  Latch worklink_latch_;
  ImAdgCommitTable::Node* worklink_ = nullptr;
  std::atomic<size_t> pending_{0};
  std::atomic<size_t> in_flight_{0};

  mutable std::atomic<uint64_t> flushed_txns_{0};
  mutable std::atomic<uint64_t> flushed_records_{0};
  mutable std::atomic<uint64_t> flushed_groups_{0};
  mutable std::atomic<uint64_t> coarse_invalidations_{0};
  mutable std::atomic<uint64_t> aborted_discards_{0};
  mutable std::atomic<uint64_t> cooperative_steps_{0};
  mutable std::atomic<uint64_t> coordinator_steps_{0};
};

}  // namespace stratus

#endif  // STRATUS_IMADG_FLUSH_H_
