#include "common/thread_pool.h"

#include <algorithm>
#include <string>

#include "common/clock.h"

namespace stratus {

ThreadPool::ThreadPool(size_t num_threads, obs::MetricsRegistry* registry,
                       const char* metric_prefix) {
  if (registry == nullptr) registry = &obs::MetricsRegistry::Global();
  const std::string prefix(metric_prefix);
  tasks_ = registry->GetCounter(prefix + "_tasks");
  queue_wait_us_ = registry->GetHistogram(prefix + "_task_queue_wait_us");
  task_latency_us_ = registry->GetHistogram(prefix + "_task_latency_us");
  threads_gauge_ = registry->GetGauge(prefix + "_threads");
  threads_gauge_->Set(static_cast<int64_t>(num_threads));
  active_gauge_ = registry->GetGauge(prefix + "_active_lanes");
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i)
    threads_.emplace_back([this] { WorkerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> g(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

ThreadPool* ThreadPool::Shared() {
  // Leaked on purpose: scans may run until process exit, and a static
  // destructor racing in-flight ParallelFor callers would be worse.
  static ThreadPool* pool = [] {
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 4;
    return new ThreadPool(hw > 1 ? hw - 1 : 1, &obs::MetricsRegistry::Global(),
                          "stratus_scan");
  }();
  return pool;
}

size_t ThreadPool::RunBatch(Batch* batch, bool /*is_pool_worker*/) {
  size_t ran = 0;
  active_gauge_->Add(1);
  while (true) {
    const size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch->n) break;
    const uint64_t start_us = NowMicros();
    if (start_us >= batch->enqueued_us)
      queue_wait_us_->Record(start_us - batch->enqueued_us);
    (*batch->fn)(i);
    task_latency_us_->Record(NowMicros() - start_us);
    tasks_->Inc();
    ++ran;
    // acq_rel so the caller's acquire read of the final count sees every
    // worker's writes (each fetch_add joins the release sequence).
    if (batch->done.fetch_add(1, std::memory_order_acq_rel) + 1 == batch->n) {
      std::lock_guard<std::mutex> g(batch->mu);
      batch->cv.notify_all();
    }
  }
  active_gauge_->Add(-1);
  return ran;
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> l(mu_);
  while (true) {
    std::shared_ptr<Batch> batch;
    for (auto it = queue_.begin(); it != queue_.end();) {
      Batch* b = it->get();
      if (b->next.load(std::memory_order_relaxed) >= b->n) {
        it = queue_.erase(it);  // Exhausted: the owner holds its own ref.
        continue;
      }
      if (b->pool_workers.load(std::memory_order_relaxed) <
          b->max_pool_workers) {
        b->pool_workers.fetch_add(1, std::memory_order_relaxed);
        batch = *it;
        break;
      }
      ++it;
    }
    if (batch == nullptr) {
      if (stop_) return;
      work_cv_.wait(l);
      continue;
    }
    l.unlock();
    RunBatch(batch.get(), /*is_pool_worker=*/true);
    l.lock();
  }
}

void ThreadPool::ParallelFor(size_t n, size_t max_parallel,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t pool_share =
      std::min(threads_.size(), max_parallel > 0 ? max_parallel - 1 : size_t{0});
  if (n == 1 || pool_share == 0) {
    active_gauge_->Add(1);
    for (size_t i = 0; i < n; ++i) {
      const uint64_t start_us = NowMicros();
      fn(i);
      task_latency_us_->Record(NowMicros() - start_us);
      tasks_->Inc();
    }
    active_gauge_->Add(-1);
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->fn = &fn;
  batch->n = n;
  // The caller takes one execution lane itself.
  batch->max_pool_workers = std::min(pool_share, n - 1);
  batch->enqueued_us = NowMicros();
  {
    std::lock_guard<std::mutex> g(mu_);
    queue_.push_back(batch);
  }
  work_cv_.notify_all();

  RunBatch(batch.get(), /*is_pool_worker=*/false);

  {
    std::unique_lock<std::mutex> l(batch->mu);
    batch->cv.wait(l, [&] {
      return batch->done.load(std::memory_order_acquire) == batch->n;
    });
  }
  // Drop the queue's reference if no worker pruned it yet.
  std::lock_guard<std::mutex> g(mu_);
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->get() == batch.get()) {
      queue_.erase(it);
      break;
    }
  }
}

}  // namespace stratus
