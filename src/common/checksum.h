#ifndef STRATUS_COMMON_CHECKSUM_H_
#define STRATUS_COMMON_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace stratus {

// ---------------------------------------------------------------------------
// CRC32C (Castagnoli). Software slice-by-8; no hardware dependency, identical
// results everywhere. Matches the standard CRC-32C test vectors (e.g.
// Crc32c("123456789") == 0xE3069283). Shared by the wire codec (net/wire.h)
// and the on-disk persistence formats (persist/) so a page and a frame are
// checked by the same implementation.
// ---------------------------------------------------------------------------
uint32_t Crc32c(const char* data, size_t n, uint32_t crc = 0);
inline uint32_t Crc32c(const std::string& s) { return Crc32c(s.data(), s.size()); }

// ---------------------------------------------------------------------------
// Varints (LEB128, unsigned) and zigzag for signed payloads. The wire codec
// and the persistence layer pack SCNs, DBAs, object ids and row values with
// these — redo records are mostly small integers, so the varint form is
// several times denser than a fixed-width encoding.
// ---------------------------------------------------------------------------
void PutVarint64(std::string* out, uint64_t v);
bool GetVarint64(const char* data, size_t size, size_t* pos, uint64_t* v);
inline bool GetVarint64(const std::string& buf, size_t* pos, uint64_t* v) {
  return GetVarint64(buf.data(), buf.size(), pos, v);
}

inline uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

}  // namespace stratus

#endif  // STRATUS_COMMON_CHECKSUM_H_
