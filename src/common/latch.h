#ifndef STRATUS_COMMON_LATCH_H_
#define STRATUS_COMMON_LATCH_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

namespace stratus {

/// A short-duration exclusive latch with acquisition counting, used where
/// Oracle would use a latch (journal hash buckets, SMU headers, block
/// headers). Thin wrapper over std::mutex so contention is visible in stats.
class Latch {
 public:
  Latch() = default;
  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  void Lock() {
    if (!mu_.try_lock()) {
      contended_.fetch_add(1, std::memory_order_relaxed);
      mu_.lock();
    }
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
  }
  void Unlock() { mu_.unlock(); }

  /// Total successful acquisitions (diagnostic).
  uint64_t acquisitions() const {
    return acquisitions_.load(std::memory_order_relaxed);
  }
  /// Acquisitions that had to wait (diagnostic; drives ablation benches).
  uint64_t contended() const {
    return contended_.load(std::memory_order_relaxed);
  }

 private:
  std::mutex mu_;
  std::atomic<uint64_t> acquisitions_{0};
  std::atomic<uint64_t> contended_{0};
};

/// RAII guard for `Latch`.
class LatchGuard {
 public:
  explicit LatchGuard(Latch& latch) : latch_(latch) { latch_.Lock(); }
  ~LatchGuard() { latch_.Unlock(); }
  LatchGuard(const LatchGuard&) = delete;
  LatchGuard& operator=(const LatchGuard&) = delete;

 private:
  Latch& latch_;
};

/// The Quiesce lock from the paper (Section III.A): the recovery coordinator
/// holds it exclusively while flushing invalidations and publishing a new
/// QuerySCN ("Quiesce Period"); population infrastructure holds it shared
/// while capturing an IMCU snapshot SCN, and is blocked out of capturing a
/// snapshot during the Quiesce Period.
class QuiesceLock {
 public:
  /// Begin the Quiesce Period (exclusive).
  void BeginQuiesce() {
    mu_.lock();
    in_quiesce_.store(true, std::memory_order_release);
  }
  /// End the Quiesce Period.
  void EndQuiesce() {
    in_quiesce_.store(false, std::memory_order_release);
    mu_.unlock();
  }

  /// Shared acquisition used by population while capturing a snapshot SCN.
  void EnterSnapshotCapture() { mu_.lock_shared(); }
  void ExitSnapshotCapture() { mu_.unlock_shared(); }

  /// True while the coordinator is inside a Quiesce Period. Advisory only;
  /// synchronization is via the shared lock.
  bool InQuiesce() const { return in_quiesce_.load(std::memory_order_acquire); }

 private:
  std::shared_mutex mu_;
  std::atomic<bool> in_quiesce_{false};
};

/// RAII shared-side guard of the quiesce lock for snapshot capture.
class SnapshotCaptureGuard {
 public:
  explicit SnapshotCaptureGuard(QuiesceLock& lock) : lock_(lock) {
    lock_.EnterSnapshotCapture();
  }
  ~SnapshotCaptureGuard() { lock_.ExitSnapshotCapture(); }
  SnapshotCaptureGuard(const SnapshotCaptureGuard&) = delete;
  SnapshotCaptureGuard& operator=(const SnapshotCaptureGuard&) = delete;

 private:
  QuiesceLock& lock_;
};

}  // namespace stratus

#endif  // STRATUS_COMMON_LATCH_H_
