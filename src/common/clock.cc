#include "common/clock.h"

#include <ctime>

namespace stratus {

uint64_t ThreadCpuNanos() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

}  // namespace stratus
