#ifndef STRATUS_COMMON_HISTOGRAM_H_
#define STRATUS_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"

namespace stratus {

/// Thread-safe latency recorder producing the median / average / 95th
/// percentile statistics reported throughout the paper's Section IV.
///
/// Values are recorded exactly (microseconds) and percentiles are computed on
/// a sorted copy at read time; the evaluation harnesses record at most a few
/// hundred thousand samples, so exactness is affordable and avoids bucket
/// error in the reproduced tables.
class Histogram {
 public:
  Histogram() = default;
  /// Copyable (snapshot semantics) so result structs can carry histograms.
  Histogram(const Histogram& other);
  Histogram& operator=(const Histogram& other);

  void Record(uint64_t value_us);

  /// Merges another histogram's samples into this one.
  void Merge(const Histogram& other);

  uint64_t count() const;
  double Average() const;
  /// p in [0,100]; Percentile(50) is the median.
  double Percentile(double p) const;
  uint64_t Min() const;
  uint64_t Max() const;

  void Reset();

  /// "median=…us avg=…us p95=…us (n=…)" one-line summary.
  std::string Summary() const;

 private:
  /// Returns the sorted view of samples_, rebuilding it only when samples
  /// changed since the last read (callers hold mu_). Percentile-heavy readers
  /// (Summary() computes three order statistics) sort once, not per call.
  const std::vector<uint64_t>& SortedLocked() const;

  mutable std::mutex mu_;
  std::vector<uint64_t> samples_;
  mutable std::vector<uint64_t> sorted_cache_;
  mutable bool sorted_valid_ = false;
};

/// Records the enclosing scope's duration (microseconds) into a Histogram on
/// destruction — the shared idiom for per-op latency measurement in the
/// workload drivers. A null histogram disables recording.
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(Histogram* sink) : sink_(sink) {}
  ~ScopedLatencyTimer() {
    if (sink_ != nullptr) sink_->Record(watch_.ElapsedMicros());
  }

  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

  uint64_t ElapsedMicros() const { return watch_.ElapsedMicros(); }

 private:
  Histogram* sink_;
  Stopwatch watch_;
};

}  // namespace stratus

#endif  // STRATUS_COMMON_HISTOGRAM_H_
