#ifndef STRATUS_COMMON_STATUS_H_
#define STRATUS_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>

namespace stratus {

/// Result code carried by every fallible library call. The library does not
/// throw exceptions on its regular paths; operations return a `Status` (or a
/// `StatusOr<T>`) in the RocksDB/Arrow idiom.
enum class Code {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kFailedPrecondition,
  kAborted,        ///< Transaction aborted (e.g. write-write conflict).
  kOutOfRange,
  kResourceExhausted,
  kUnavailable,    ///< Component shut down or not yet started.
  kCorruption,
  kInternal,
};

/// A lightweight success-or-error value. Cheap to copy when OK (no
/// allocation); carries a message only on error.
class Status {
 public:
  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }

  /// Human-readable "CODE: message" string for logs and test failures.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Either a value of type `T` or an error `Status`. Accessing the value of an
/// errored `StatusOr` is a programming error (asserts in debug builds).
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT implicit
    assert(!status_.ok());
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT implicit

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return value_;
  }
  const T& value() const& {
    assert(ok());
    return value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(value_);
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  T value_{};
};

/// Propagates a non-OK status to the caller.
#define STRATUS_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::stratus::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (0)

}  // namespace stratus

#endif  // STRATUS_COMMON_STATUS_H_
