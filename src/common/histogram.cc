#include "common/histogram.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

namespace stratus {

Histogram::Histogram(const Histogram& other) {
  std::lock_guard<std::mutex> g(other.mu_);
  samples_ = other.samples_;
}

Histogram& Histogram::operator=(const Histogram& other) {
  if (this == &other) return *this;
  std::vector<uint64_t> copy;
  {
    std::lock_guard<std::mutex> g(other.mu_);
    copy = other.samples_;
  }
  std::lock_guard<std::mutex> g(mu_);
  samples_ = std::move(copy);
  sorted_valid_ = false;
  return *this;
}

void Histogram::Record(uint64_t value_us) {
  std::lock_guard<std::mutex> g(mu_);
  samples_.push_back(value_us);
  sorted_valid_ = false;
}

void Histogram::Merge(const Histogram& other) {
  std::vector<uint64_t> theirs;
  {
    std::lock_guard<std::mutex> g(other.mu_);
    theirs = other.samples_;
  }
  std::lock_guard<std::mutex> g(mu_);
  samples_.insert(samples_.end(), theirs.begin(), theirs.end());
  sorted_valid_ = false;
}

uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> g(mu_);
  return samples_.size();
}

double Histogram::Average() const {
  std::lock_guard<std::mutex> g(mu_);
  if (samples_.empty()) return 0.0;
  const double sum = std::accumulate(samples_.begin(), samples_.end(), 0.0);
  return sum / static_cast<double>(samples_.size());
}

const std::vector<uint64_t>& Histogram::SortedLocked() const {
  if (!sorted_valid_) {
    sorted_cache_ = samples_;
    std::sort(sorted_cache_.begin(), sorted_cache_.end());
    sorted_valid_ = true;
  }
  return sorted_cache_;
}

double Histogram::Percentile(double p) const {
  std::lock_guard<std::mutex> g(mu_);
  if (samples_.empty()) return 0.0;
  const std::vector<uint64_t>& sorted = SortedLocked();
  if (p <= 0) return static_cast<double>(sorted.front());
  if (p >= 100) return static_cast<double>(sorted.back());
  // Nearest-rank with linear interpolation.
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return static_cast<double>(sorted[lo]) * (1.0 - frac) +
         static_cast<double>(sorted[hi]) * frac;
}

uint64_t Histogram::Min() const {
  std::lock_guard<std::mutex> g(mu_);
  if (samples_.empty()) return 0;
  return SortedLocked().front();
}

uint64_t Histogram::Max() const {
  std::lock_guard<std::mutex> g(mu_);
  if (samples_.empty()) return 0;
  return SortedLocked().back();
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> g(mu_);
  samples_.clear();
  sorted_cache_.clear();
  sorted_valid_ = false;
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "median=%.1fus avg=%.1fus p95=%.1fus (n=%llu)",
                Percentile(50), Average(), Percentile(95),
                static_cast<unsigned long long>(count()));
  return buf;
}

}  // namespace stratus
