#include "common/latch.h"

// Header-only today; this translation unit anchors the library's vtable-free
// latch types and keeps the build layout uniform (one .cc per module header).
namespace stratus {}  // namespace stratus
