#ifndef STRATUS_COMMON_TYPES_H_
#define STRATUS_COMMON_TYPES_H_

#include <cstdint>
#include <functional>
#include <limits>

namespace stratus {

/// System Change Number: the logical database clock. Every redo record is
/// stamped with the SCN at which its changes were made; a transaction becomes
/// visible at its commitSCN. SCN 0 is "before any change".
using Scn = uint64_t;

/// Sentinel for "no SCN" / "not yet committed".
inline constexpr Scn kInvalidScn = 0;
inline constexpr Scn kMaxScn = std::numeric_limits<Scn>::max();

/// Transaction identifier, unique per primary database lifetime.
using Xid = uint64_t;
inline constexpr Xid kInvalidXid = 0;

/// Database Block Address: identifies a single data block. Each redo change
/// vector applies to exactly one DBA.
using Dba = uint64_t;
inline constexpr Dba kInvalidDba = std::numeric_limits<Dba>::max();

/// Data object identifier (a table, partition, or index segment).
using ObjectId = uint64_t;
inline constexpr ObjectId kInvalidObjectId = 0;

/// Tenant (pluggable database) identifier; DBIM-on-ADG runs multi-tenant.
using TenantId = uint32_t;
inline constexpr TenantId kDefaultTenant = 1;

/// Slot of a row within its data block.
using SlotId = uint32_t;

/// A unique row address: block + slot.
struct RowId {
  Dba dba = kInvalidDba;
  SlotId slot = 0;

  friend bool operator==(const RowId&, const RowId&) = default;
  friend auto operator<=>(const RowId&, const RowId&) = default;
};

/// Identifier of a redo-generating primary instance ("redo thread" in Oracle
/// terms). A RAC primary has several.
using RedoThreadId = uint32_t;

/// Identifier of a recovery worker process on the standby.
using WorkerId = uint32_t;
/// Sentinel WorkerId used when the recovery coordinator itself (not a
/// worker) drives a flush step.
inline constexpr WorkerId kMaxWorkerId = std::numeric_limits<WorkerId>::max();

/// Identifier of a standby RAC instance. Instance 0 is the redo-apply master
/// (Single Instance Redo Apply).
using InstanceId = uint32_t;
inline constexpr InstanceId kMasterInstance = 0;

}  // namespace stratus

template <>
struct std::hash<stratus::RowId> {
  size_t operator()(const stratus::RowId& r) const noexcept {
    return std::hash<uint64_t>()(r.dba * 1000003u + r.slot);
  }
};

#endif  // STRATUS_COMMON_TYPES_H_
