#ifndef STRATUS_COMMON_RANDOM_H_
#define STRATUS_COMMON_RANDOM_H_

#include <cstdint>
#include <string>

namespace stratus {

/// Small, fast, deterministic PRNG (xorshift128+). Used by workload
/// generators and property tests; seeded explicitly so every test and bench
/// run is reproducible.
class Random {
 public:
  explicit Random(uint64_t seed) {
    // SplitMix64 expansion of the seed into two non-zero words.
    s0_ = Mix(seed + 0x9E3779B97F4A7C15ull);
    s1_ = Mix(seed + 2 * 0x9E3779B97F4A7C15ull);
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// True with probability `percent`/100.
  bool Percent(uint32_t percent) { return Uniform(100) < percent; }

  double NextDouble() {  // in [0, 1)
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Random lowercase ASCII string of exactly `len` characters.
  std::string NextString(size_t len) {
    std::string s(len, 'a');
    for (auto& c : s) c = static_cast<char>('a' + Uniform(26));
    return s;
  }

 private:
  static uint64_t Mix(uint64_t z) {
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace stratus

#endif  // STRATUS_COMMON_RANDOM_H_
