#include "common/checksum.h"

#include <array>
#include <cstring>

namespace stratus {

namespace {

// Slice-by-8 CRC32C tables, built once at first use (reflected polynomial
// 0x82F63B78).
struct Crc32cTables {
  std::array<std::array<uint32_t, 256>, 8> t;

  Crc32cTables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int j = 0; j < 8; ++j)
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0);
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (size_t k = 1; k < 8; ++k)
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFF];
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

}  // namespace

uint32_t Crc32c(const char* data, size_t n, uint32_t crc) {
  const auto& t = Tables().t;
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data);
  crc = ~crc;
  while (n >= 8) {
    const uint32_t lo = crc ^ LoadU32(reinterpret_cast<const char*>(p));
    const uint32_t hi = LoadU32(reinterpret_cast<const char*>(p) + 4);
    crc = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
          t[4][lo >> 24] ^ t[3][hi & 0xFF] ^ t[2][(hi >> 8) & 0xFF] ^
          t[1][(hi >> 16) & 0xFF] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFF];
  return ~crc;
}

void PutVarint64(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool GetVarint64(const char* data, size_t size, size_t* pos, uint64_t* v) {
  uint64_t result = 0;
  for (uint32_t shift = 0; shift <= 63 && *pos < size; shift += 7) {
    const uint8_t byte = static_cast<uint8_t>(data[(*pos)++]);
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return true;
    }
  }
  return false;  // Truncated, or more than 10 continuation bytes.
}

}  // namespace stratus
