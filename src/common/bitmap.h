#ifndef STRATUS_COMMON_BITMAP_H_
#define STRATUS_COMMON_BITMAP_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace stratus {

/// Fixed-size concurrent bitmap. Setters use `fetch_or` with release order;
/// readers use acquire loads. This is the representation behind SMU row/block
/// invalidity: invalidation flush sets bits concurrently with scans reading
/// them, and publication of the QuerySCN provides the cross-thread ordering
/// (flush happens-before publish happens-before any scan at that QuerySCN).
class AtomicBitmap {
 public:
  explicit AtomicBitmap(size_t bits)
      : bits_(bits), words_((bits + 63) / 64) {
    words_ptr_ = std::make_unique<std::atomic<uint64_t>[]>(words_);
    for (size_t i = 0; i < words_; ++i) words_ptr_[i].store(0, std::memory_order_relaxed);
  }

  AtomicBitmap(const AtomicBitmap&) = delete;
  AtomicBitmap& operator=(const AtomicBitmap&) = delete;

  size_t size() const { return bits_; }

  /// Sets bit `i`; returns true if the bit was newly set.
  bool Set(size_t i) {
    const uint64_t mask = 1ull << (i & 63);
    const uint64_t prev =
        words_ptr_[i >> 6].fetch_or(mask, std::memory_order_release);
    return (prev & mask) == 0;
  }

  bool Test(size_t i) const {
    const uint64_t mask = 1ull << (i & 63);
    return (words_ptr_[i >> 6].load(std::memory_order_acquire) & mask) != 0;
  }

  /// Raw 64-bit word access for word-at-a-time scans over sparse bitmaps.
  uint64_t Word(size_t w) const {
    return words_ptr_[w].load(std::memory_order_acquire);
  }
  size_t NumWords() const { return words_; }

  /// Sets every bit. Used by coarse invalidation (Section III.E).
  void SetAll() {
    for (size_t i = 0; i < words_; ++i)
      words_ptr_[i].store(~0ull, std::memory_order_release);
  }

  /// Number of set bits (linear scan; used for repopulation heuristics and
  /// stats, not on hot paths).
  size_t PopCount() const {
    size_t n = 0;
    for (size_t i = 0; i < words_; ++i)
      n += static_cast<size_t>(
          __builtin_popcountll(words_ptr_[i].load(std::memory_order_acquire)));
    // Bits beyond size() are never set, so no mask correction is needed.
    return n;
  }

 private:
  size_t bits_;
  size_t words_;
  std::unique_ptr<std::atomic<uint64_t>[]> words_ptr_;
};

}  // namespace stratus

#endif  // STRATUS_COMMON_BITMAP_H_
