#ifndef STRATUS_COMMON_CLOCK_H_
#define STRATUS_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace stratus {

/// Monotonic wall-clock time in nanoseconds, for latency measurement.
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Monotonic wall-clock time in microseconds.
inline uint64_t NowMicros() { return NowNanos() / 1000; }

/// CPU time consumed by the calling thread, in nanoseconds. Used by the
/// workload harness to reproduce the paper's per-role CPU-usage numbers
/// (Section IV.A/IV.B) without an external monitor.
uint64_t ThreadCpuNanos();

/// Monotonic elapsed-time measurement — the one idiom for the hand-rolled
/// `t0 = NowNanos(); ... NowNanos() - t0` pairs in the workload drivers and
/// bench harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_ns_(NowNanos()) {}

  void Reset() { start_ns_ = NowNanos(); }
  uint64_t ElapsedNanos() const { return NowNanos() - start_ns_; }
  uint64_t ElapsedMicros() const { return ElapsedNanos() / 1000; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) / 1e9;
  }

 private:
  uint64_t start_ns_;
};

/// Accumulates CPU time of a scope into a caller-provided counter (the
/// workload stats keep per-role CPU in atomics, so that is the sink type).
class ScopedCpuTimer {
 public:
  explicit ScopedCpuTimer(std::atomic<uint64_t>* sink)
      : sink_(sink), start_(ThreadCpuNanos()) {}
  ~ScopedCpuTimer() {
    sink_->fetch_add(ThreadCpuNanos() - start_, std::memory_order_relaxed);
  }
  ScopedCpuTimer(const ScopedCpuTimer&) = delete;
  ScopedCpuTimer& operator=(const ScopedCpuTimer&) = delete;

 private:
  std::atomic<uint64_t>* sink_;
  uint64_t start_;
};

}  // namespace stratus

#endif  // STRATUS_COMMON_CLOCK_H_
