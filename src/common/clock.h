#ifndef STRATUS_COMMON_CLOCK_H_
#define STRATUS_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace stratus {

/// Monotonic wall-clock time in nanoseconds, for latency measurement.
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Monotonic wall-clock time in microseconds.
inline uint64_t NowMicros() { return NowNanos() / 1000; }

/// CPU time consumed by the calling thread, in nanoseconds. Used by the
/// workload harness to reproduce the paper's per-role CPU-usage numbers
/// (Section IV.A/IV.B) without an external monitor.
uint64_t ThreadCpuNanos();

/// Accumulates CPU time of a scope into a caller-provided counter.
class ScopedCpuTimer {
 public:
  explicit ScopedCpuTimer(uint64_t* sink) : sink_(sink), start_(ThreadCpuNanos()) {}
  ~ScopedCpuTimer() { *sink_ += ThreadCpuNanos() - start_; }
  ScopedCpuTimer(const ScopedCpuTimer&) = delete;
  ScopedCpuTimer& operator=(const ScopedCpuTimer&) = delete;

 private:
  uint64_t* sink_;
  uint64_t start_;
};

}  // namespace stratus

#endif  // STRATUS_COMMON_CLOCK_H_
