#ifndef STRATUS_COMMON_THREAD_POOL_H_
#define STRATUS_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace stratus {

/// A shared fixed-size worker pool for CPU-parallel work, built around one
/// primitive: `ParallelFor`, a blocking parallel loop with an internal
/// barrier. Used by the In-Memory Scan Engine to run per-IMCU and row-path
/// chunk tasks across cores (the paper's standby analytics are served by
/// columnar scans; the engine's DOP maps onto this pool).
///
/// Design points:
///  - The *calling* thread always participates in its own batch, so a
///    ParallelFor makes progress even when every pool worker is busy (or the
///    pool has zero threads), and nested ParallelFor calls from inside a task
///    cannot deadlock.
///  - Work is claimed index-at-a-time from an atomic cursor, so task
///    granularity is the caller's decomposition and idle workers self-balance
///    across uneven tasks.
///  - Observability: every executed task counts into `<prefix>_tasks`, its
///    enqueue-to-start delay into `<prefix>_task_queue_wait_us`, and its run
///    time into `<prefix>_task_latency_us` (registered in the pool's metrics
///    registry).
class ThreadPool {
 public:
  /// `num_threads` pool workers (0 is valid: ParallelFor then runs entirely
  /// on callers). Metrics register into `registry` (null → the process-wide
  /// registry) under `metric_prefix`.
  explicit ThreadPool(size_t num_threads,
                      obs::MetricsRegistry* registry = nullptr,
                      const char* metric_prefix = "stratus_pool");
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool shared by every scan engine, lazily created with
  /// hardware_concurrency - 1 workers (callers contribute the final lane) and
  /// `stratus_scan` metric prefix in the global registry. Never destroyed.
  static ThreadPool* Shared();

  size_t num_threads() const { return threads_.size(); }

  /// Runs `fn(i)` exactly once for every i in [0, n), then returns (barrier).
  /// At most `max_parallel` executors run concurrently: up to
  /// `max_parallel - 1` pool workers plus the calling thread, which always
  /// helps. `max_parallel <= 1` or `n <= 1` runs inline on the caller with no
  /// synchronization. `fn` must be safe to invoke concurrently for distinct
  /// indices.
  void ParallelFor(size_t n, size_t max_parallel,
                   const std::function<void(size_t)>& fn);

  /// Total tasks executed (pool workers + helping callers). Diagnostic.
  uint64_t tasks_run() const { return tasks_->Value(); }

 private:
  /// One ParallelFor invocation: an index cursor plus completion accounting.
  struct Batch {
    const std::function<void(size_t)>* fn = nullptr;
    size_t n = 0;
    std::atomic<size_t> next{0};           ///< Next index to claim.
    std::atomic<size_t> done{0};           ///< Completed indices.
    std::atomic<size_t> pool_workers{0};   ///< Pool workers attached.
    size_t max_pool_workers = 0;
    uint64_t enqueued_us = 0;

    std::mutex mu;
    std::condition_variable cv;  ///< Signals the caller when done == n.
  };

  void WorkerLoop();
  /// Claims and runs indices of `batch` until exhausted. Returns the number
  /// of tasks this thread executed.
  size_t RunBatch(Batch* batch, bool record_queue_wait);

  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Batch>> queue_;
  bool stop_ = false;

  obs::Counter* tasks_ = nullptr;
  obs::LatencyHistogram* queue_wait_us_ = nullptr;
  obs::LatencyHistogram* task_latency_us_ = nullptr;
  /// Saturation pair: `<prefix>_threads` (static pool size) and
  /// `<prefix>_active_lanes` (lanes — workers plus helping callers —
  /// executing tasks right now); active/threads is the pool's utilization.
  obs::Gauge* threads_gauge_ = nullptr;
  obs::Gauge* active_gauge_ = nullptr;
};

}  // namespace stratus

#endif  // STRATUS_COMMON_THREAD_POOL_H_
