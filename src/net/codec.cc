#include "net/codec.h"

#include "net/wire.h"

namespace stratus {
namespace net {

namespace {

void PutLengthPrefixed(std::string* out, const std::string& s) {
  PutVarint64(out, s.size());
  out->append(s);
}

bool GetLengthPrefixed(const std::string& buf, size_t* pos, std::string* s) {
  uint64_t len = 0;
  if (!GetVarint64(buf, pos, &len)) return false;
  if (len > buf.size() - *pos) return false;
  s->assign(buf.data() + *pos, static_cast<size_t>(len));
  *pos += static_cast<size_t>(len);
  return true;
}

void EncodeWireValue(const Value& v, std::string* out) {
  out->push_back(static_cast<char>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      PutVarint64(out, ZigzagEncode(v.as_int()));
      break;
    case ValueType::kString:
      PutLengthPrefixed(out, v.as_string());
      break;
  }
}

bool DecodeWireValue(const std::string& buf, size_t* pos, Value* out) {
  if (*pos >= buf.size()) return false;
  const uint8_t tag = static_cast<uint8_t>(buf[(*pos)++]);
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      *out = Value::Null();
      return true;
    case ValueType::kInt: {
      uint64_t z = 0;
      if (!GetVarint64(buf, pos, &z)) return false;
      *out = Value(ZigzagDecode(z));
      return true;
    }
    case ValueType::kString: {
      std::string s;
      if (!GetLengthPrefixed(buf, pos, &s)) return false;
      *out = Value(std::move(s));
      return true;
    }
  }
  return false;
}

// CV flag byte: the im_flag plus "has a row payload" / "has a DDL payload"
// markers so control CVs pay zero bytes for fields they do not carry.
constexpr uint8_t kCvImFlag = 0x1;
constexpr uint8_t kCvHasAfter = 0x2;
constexpr uint8_t kCvHasDdl = 0x4;

void EncodeWireCv(const ChangeVector& cv, Scn record_scn, std::string* out) {
  out->push_back(static_cast<char>(cv.kind));
  // CVs almost always share their record's SCN; encode the delta.
  PutVarint64(out, ZigzagEncode(static_cast<int64_t>(cv.scn) -
                                static_cast<int64_t>(record_scn)));
  PutVarint64(out, cv.xid);
  PutVarint64(out, cv.dba == kInvalidDba ? 0 : cv.dba + 1);  // Bias: ~0 is huge.
  PutVarint64(out, cv.object_id);
  PutVarint64(out, cv.tenant);
  PutVarint64(out, cv.slot);
  uint8_t flags = 0;
  if (cv.im_flag) flags |= kCvImFlag;
  if (!cv.after.empty()) flags |= kCvHasAfter;
  if (cv.ddl.op != DdlOp::kNone) flags |= kCvHasDdl;
  out->push_back(static_cast<char>(flags));
  if (flags & kCvHasAfter) {
    PutVarint64(out, cv.after.size());
    for (const Value& v : cv.after) EncodeWireValue(v, out);
  }
  if (flags & kCvHasDdl) {
    out->push_back(static_cast<char>(cv.ddl.op));
    PutVarint64(out, cv.ddl.object_id);
    PutVarint64(out, cv.ddl.tenant);
    PutVarint64(out, cv.ddl.column_idx);
    out->push_back(static_cast<char>(cv.ddl.im_service));
  }
}

bool DecodeWireCv(const std::string& buf, size_t* pos, Scn record_scn,
                  ChangeVector* cv) {
  if (*pos >= buf.size()) return false;
  cv->kind = static_cast<CvKind>(static_cast<uint8_t>(buf[(*pos)++]));
  uint64_t scn_delta = 0, xid = 0, dba = 0, object = 0, tenant = 0, slot = 0;
  if (!GetVarint64(buf, pos, &scn_delta) || !GetVarint64(buf, pos, &xid) ||
      !GetVarint64(buf, pos, &dba) || !GetVarint64(buf, pos, &object) ||
      !GetVarint64(buf, pos, &tenant) || !GetVarint64(buf, pos, &slot)) {
    return false;
  }
  cv->scn = static_cast<Scn>(static_cast<int64_t>(record_scn) +
                             ZigzagDecode(scn_delta));
  cv->xid = xid;
  cv->dba = dba == 0 ? kInvalidDba : dba - 1;
  cv->object_id = object;
  cv->tenant = static_cast<TenantId>(tenant);
  cv->slot = static_cast<SlotId>(slot);
  if (*pos >= buf.size()) return false;
  const uint8_t flags = static_cast<uint8_t>(buf[(*pos)++]);
  cv->im_flag = (flags & kCvImFlag) != 0;
  cv->after.clear();
  if (flags & kCvHasAfter) {
    uint64_t arity = 0;
    if (!GetVarint64(buf, pos, &arity)) return false;
    if (arity > buf.size() - *pos) return false;  // ≥1 byte per value.
    cv->after.reserve(static_cast<size_t>(arity));
    for (uint64_t i = 0; i < arity; ++i) {
      Value v;
      if (!DecodeWireValue(buf, pos, &v)) return false;
      cv->after.push_back(std::move(v));
    }
  }
  cv->ddl = DdlMarker{};
  if (flags & kCvHasDdl) {
    if (*pos >= buf.size()) return false;
    cv->ddl.op = static_cast<DdlOp>(static_cast<uint8_t>(buf[(*pos)++]));
    uint64_t ddl_object = 0, ddl_tenant = 0, column = 0;
    if (!GetVarint64(buf, pos, &ddl_object) ||
        !GetVarint64(buf, pos, &ddl_tenant) ||
        !GetVarint64(buf, pos, &column)) {
      return false;
    }
    cv->ddl.object_id = ddl_object;
    cv->ddl.tenant = static_cast<TenantId>(ddl_tenant);
    cv->ddl.column_idx = static_cast<uint32_t>(column);
    if (*pos >= buf.size()) return false;
    cv->ddl.im_service = static_cast<uint8_t>(buf[(*pos)++]);
  }
  return true;
}

}  // namespace

void EncodeRedoBatch(const std::vector<RedoRecord>& batch, std::string* out) {
  PutVarint64(out, batch.size());
  Scn prev_scn = 0;
  for (const RedoRecord& rec : batch) {
    // Streams are SCN-monotone, so deltas are small and non-negative on the
    // regular path; zigzag keeps arbitrary batches (tests) legal.
    PutVarint64(out, ZigzagEncode(static_cast<int64_t>(rec.scn) -
                                  static_cast<int64_t>(prev_scn)));
    prev_scn = rec.scn;
    PutVarint64(out, rec.thread);
    PutVarint64(out, rec.cvs.size());
    for (const ChangeVector& cv : rec.cvs) EncodeWireCv(cv, rec.scn, out);
  }
}

Status DecodeRedoBatch(const std::string& payload, std::vector<RedoRecord>* out) {
  out->clear();
  size_t pos = 0;
  uint64_t count = 0;
  if (!GetVarint64(payload, &pos, &count))
    return Status::Corruption("truncated redo batch count");
  if (count > payload.size() - pos)  // ≥1 byte per record.
    return Status::Corruption("redo batch count exceeds payload");
  out->reserve(static_cast<size_t>(count));
  Scn prev_scn = 0;
  for (uint64_t i = 0; i < count; ++i) {
    RedoRecord rec;
    uint64_t scn_delta = 0, thread = 0, cvs = 0;
    if (!GetVarint64(payload, &pos, &scn_delta) ||
        !GetVarint64(payload, &pos, &thread) ||
        !GetVarint64(payload, &pos, &cvs)) {
      return Status::Corruption("truncated redo record header");
    }
    rec.scn = static_cast<Scn>(static_cast<int64_t>(prev_scn) +
                               ZigzagDecode(scn_delta));
    prev_scn = rec.scn;
    rec.thread = static_cast<RedoThreadId>(thread);
    if (cvs > payload.size() - pos)
      return Status::Corruption("change vector count exceeds payload");
    rec.cvs.reserve(static_cast<size_t>(cvs));
    for (uint64_t c = 0; c < cvs; ++c) {
      ChangeVector cv;
      if (!DecodeWireCv(payload, &pos, rec.scn, &cv))
        return Status::Corruption("truncated change vector");
      rec.cvs.push_back(std::move(cv));
    }
    out->push_back(std::move(rec));
  }
  if (pos != payload.size())
    return Status::Corruption("trailing bytes after redo batch");
  return Status::OK();
}

size_t RedoBatchWireSize(const std::vector<RedoRecord>& batch) {
  std::string tmp;
  EncodeRedoBatch(batch, &tmp);
  return tmp.size();
}

void EncodeInvalidationMessage(const InvalidationMessage& msg, std::string* out) {
  out->push_back(static_cast<char>(msg.kind));
  switch (msg.kind) {
    case InvalKind::kGroups:
      PutVarint64(out, msg.groups.size());
      for (const InvalidationGroup& g : msg.groups) {
        PutVarint64(out, g.object_id);
        PutVarint64(out, g.tenant);
        PutVarint64(out, g.rows.size());
        Dba prev_dba = 0;
        for (const auto& [dba, slot] : g.rows) {
          PutVarint64(out, ZigzagEncode(static_cast<int64_t>(dba) -
                                        static_cast<int64_t>(prev_dba)));
          prev_dba = dba;
          PutVarint64(out, slot);
        }
      }
      return;
    case InvalKind::kCoarse:
      PutVarint64(out, msg.tenant);
      return;
    case InvalKind::kObjectDrop:
      PutVarint64(out, msg.object_id);
      return;
    case InvalKind::kPublish:
      PutVarint64(out, msg.scn);
      return;
  }
}

Status DecodeInvalidationMessage(const std::string& payload,
                                 InvalidationMessage* out) {
  *out = InvalidationMessage{};
  size_t pos = 0;
  if (payload.empty()) return Status::Corruption("empty invalidation message");
  const uint8_t kind = static_cast<uint8_t>(payload[pos++]);
  switch (static_cast<InvalKind>(kind)) {
    case InvalKind::kGroups: {
      out->kind = InvalKind::kGroups;
      uint64_t groups = 0;
      if (!GetVarint64(payload, &pos, &groups))
        return Status::Corruption("truncated group count");
      if (groups > payload.size() - pos)
        return Status::Corruption("group count exceeds payload");
      out->groups.reserve(static_cast<size_t>(groups));
      for (uint64_t i = 0; i < groups; ++i) {
        InvalidationGroup g;
        uint64_t object = 0, tenant = 0, rows = 0;
        if (!GetVarint64(payload, &pos, &object) ||
            !GetVarint64(payload, &pos, &tenant) ||
            !GetVarint64(payload, &pos, &rows)) {
          return Status::Corruption("truncated invalidation group header");
        }
        g.object_id = object;
        g.tenant = static_cast<TenantId>(tenant);
        if (rows > payload.size() - pos)
          return Status::Corruption("row count exceeds payload");
        g.rows.reserve(static_cast<size_t>(rows));
        Dba prev_dba = 0;
        for (uint64_t r = 0; r < rows; ++r) {
          uint64_t dba_delta = 0, slot = 0;
          if (!GetVarint64(payload, &pos, &dba_delta) ||
              !GetVarint64(payload, &pos, &slot)) {
            return Status::Corruption("truncated invalidation row");
          }
          const Dba dba = static_cast<Dba>(static_cast<int64_t>(prev_dba) +
                                           ZigzagDecode(dba_delta));
          prev_dba = dba;
          g.rows.emplace_back(dba, static_cast<SlotId>(slot));
        }
        out->groups.push_back(std::move(g));
      }
      break;
    }
    case InvalKind::kCoarse: {
      out->kind = InvalKind::kCoarse;
      uint64_t tenant = 0;
      if (!GetVarint64(payload, &pos, &tenant))
        return Status::Corruption("truncated tenant id");
      out->tenant = static_cast<TenantId>(tenant);
      break;
    }
    case InvalKind::kObjectDrop: {
      out->kind = InvalKind::kObjectDrop;
      uint64_t object = 0;
      if (!GetVarint64(payload, &pos, &object))
        return Status::Corruption("truncated object id");
      out->object_id = object;
      break;
    }
    case InvalKind::kPublish: {
      out->kind = InvalKind::kPublish;
      uint64_t scn = 0;
      if (!GetVarint64(payload, &pos, &scn))
        return Status::Corruption("truncated publish SCN");
      out->scn = scn;
      break;
    }
    default:
      return Status::Corruption("unknown invalidation message kind");
  }
  if (pos != payload.size())
    return Status::Corruption("trailing bytes after invalidation message");
  return Status::OK();
}

}  // namespace net
}  // namespace stratus
