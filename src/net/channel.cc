#include "net/channel.h"

#include <utility>

#include "net/loopback_channel.h"
#include "net/socket_channel.h"

namespace stratus {
namespace net {

obs::Labels ChannelIdentityLabels(const ChannelOptions& options) {
  obs::Labels labels = {{"channel", options.name}};
  if (!options.peer.empty()) labels.emplace_back("standby", options.peer);
  return labels;
}

void Channel::ExportMetrics(obs::MetricsSink* sink,
                            const obs::Labels& base) const {
  obs::Labels labels = base;
  for (auto& kv : ChannelIdentityLabels(options())) {
    labels.push_back(std::move(kv));
  }
  const ChannelStats s = stats();
  sink->Counter("stratus_net_frames_sent", labels, s.frames_sent);
  sink->Counter("stratus_net_bytes_sent", labels, s.bytes_sent);
  sink->Counter("stratus_net_frames_delivered", labels, s.frames_delivered);
  sink->Counter("stratus_net_bytes_delivered", labels, s.bytes_delivered);
  sink->Counter("stratus_net_retransmits", labels, s.retransmits);
  sink->Counter("stratus_net_acks_received", labels, s.acks_received);
  sink->Counter("stratus_net_reconnects", labels, s.reconnects);
  sink->Counter("stratus_net_crc_errors", labels, s.crc_errors);
  sink->Counter("stratus_net_dup_frames_discarded", labels,
                s.dup_frames_discarded);
  sink->Counter("stratus_net_gap_frames_discarded", labels,
                s.gap_frames_discarded);
  sink->Counter("stratus_net_injected_drops", labels, s.injected_drops);
  sink->Counter("stratus_net_injected_dups", labels, s.injected_dups);
  sink->Counter("stratus_net_injected_corrupts", labels, s.injected_corrupts);
  sink->Counter("stratus_net_injected_truncates", labels, s.injected_truncates);
  sink->Gauge("stratus_net_send_queue_depth", labels,
              static_cast<double>(s.send_queue_depth));
  sink->Gauge("stratus_net_send_queue_bytes", labels,
              static_cast<double>(s.send_queue_bytes));
}

std::unique_ptr<Channel> CreateChannel(const ChannelOptions& options,
                                       FrameSink* sink) {
  switch (options.kind) {
    case ChannelKind::kLoopback:
      return std::make_unique<LoopbackChannel>(options, sink);
    case ChannelKind::kSocket:
      return std::make_unique<SocketChannel>(options, sink);
  }
  return nullptr;
}

}  // namespace net
}  // namespace stratus
