#ifndef STRATUS_NET_WIRE_H_
#define STRATUS_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/checksum.h"
#include "common/status.h"
#include "common/types.h"

namespace stratus {
namespace net {

// CRC32C, varints and zigzag live in common/checksum.h so the on-disk
// persistence formats and the wire frames share one checked implementation.
// Re-exported here so wire code keeps its historical net:: spelling.
using ::stratus::Crc32c;
using ::stratus::GetVarint64;
using ::stratus::PutVarint64;
using ::stratus::ZigzagDecode;
using ::stratus::ZigzagEncode;

// ---------------------------------------------------------------------------
// Frames: the unit of transmission. Layout (little-endian):
//
//   [u32 magic][u32 body_len][u32 crc32c(body)][body]
//   body = [u8 type][varint stream][varint seq][varint scn][payload…]
//
// The length prefix makes the stream self-framing; the CRC covers the whole
// body so any corruption — header fields or payload — is caught before a
// byte of it is interpreted. `seq` is the channel's per-connection-lifetime
// sequence number (dedup/ack key); `scn` is the highest SCN the payload
// covers (observability, SCN-watermark dedup).
// ---------------------------------------------------------------------------
enum class FrameType : uint8_t {
  kRedoBatch = 1,     ///< Payload: codec.h EncodeRedoBatch.
  kInvalidation = 2,  ///< Payload: codec.h EncodeInvalidationMessage.
  kAck = 3,           ///< Receiver → sender: cumulative ack of `seq`.
};

struct Frame {
  FrameType type = FrameType::kRedoBatch;
  uint32_t stream = 0;       ///< Source stream id (redo thread / remote id).
  uint64_t seq = 0;          ///< Channel sequence number (sender-assigned).
  Scn scn = kInvalidScn;     ///< Highest SCN covered by the payload.
  std::string payload;
};

inline constexpr uint32_t kFrameMagic = 0x53464D31;  // "1MFS"
/// Fixed prefix before the body: magic + body length + body CRC.
inline constexpr size_t kFramePrefixBytes = 12;
/// Upper bound on one frame's body; a corrupted length field can therefore
/// never make the decoder wait for gigabytes that will never arrive.
inline constexpr size_t kMaxFrameBodyBytes = 64u << 20;

void EncodeFrame(const Frame& frame, std::string* out);

/// Decodes one frame from the front of `data`. Returns:
///  - OK: `*out` filled, `*consumed` = bytes of `data` used;
///  - kOutOfRange: the buffer holds only a frame prefix/suffix — read more
///    bytes and retry (nothing consumed);
///  - kCorruption: bad magic, oversized length, CRC mismatch, or malformed
///    body. The connection's framing is no longer trustworthy; callers drop
///    the connection (the reliable channel retransmits).
Status DecodeFrame(const char* data, size_t size, Frame* out, size_t* consumed);

/// True for DecodeFrame's "incomplete, need more bytes" result.
inline bool IsIncomplete(const Status& s) { return s.code() == Code::kOutOfRange; }

}  // namespace net
}  // namespace stratus

#endif  // STRATUS_NET_WIRE_H_
