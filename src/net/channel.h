#ifndef STRATUS_NET_CHANNEL_H_
#define STRATUS_NET_CHANNEL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/types.h"
#include "net/fault_injector.h"
#include "net/wire.h"
#include "obs/metrics.h"

namespace stratus {
namespace net {

/// Which wire a channel rides.
enum class ChannelKind : uint8_t {
  kLoopback = 0,  ///< Deterministic in-process delivery (the default path).
  kSocket = 1,    ///< Real TCP over 127.0.0.1: framing, acks, reconnect.
};

struct ChannelOptions {
  ChannelKind kind = ChannelKind::kLoopback;
  /// Metric label value; empty means the creator names it ("redo-0", …).
  std::string name;
  /// Remote-endpoint identity ("sb0", …). Non-empty adds a {"standby", peer}
  /// label to every stratus_net_* series, so the N shipper channels of a
  /// fan-out fleet stay distinguishable in one registry even when their
  /// per-thread names collide.
  std::string peer;

  /// Backpressure bound: Send() blocks while this many frames are queued or
  /// in flight (unacked). The shipper stalls; the channel never buffers
  /// unboundedly.
  size_t send_window_frames = 256;
  /// Companion byte bound on the same window.
  size_t send_window_bytes = 8u << 20;

  /// Reconnect backoff: base doubles per consecutive failure up to the max,
  /// plus uniform jitter of up to half the current backoff.
  int64_t backoff_base_us = 500;
  int64_t backoff_max_us = 100'000;
  /// Unacked frames older than this are retransmitted (go-back-N).
  int64_t retransmit_timeout_us = 20'000;

  FaultOptions faults;

  /// Registry for the channel's encode/decode latency histograms and
  /// counters (exported under {"channel", name}). Null: stats only.
  obs::MetricsRegistry* registry = nullptr;
};

/// Point-in-time channel statistics (all monotonic except the queue gauges).
struct ChannelStats {
  uint64_t frames_sent = 0;       ///< Accepted by Send (unique frames).
  uint64_t bytes_sent = 0;        ///< Encoded wire bytes of accepted frames.
  uint64_t frames_delivered = 0;  ///< Handed to the sink, post-dedup.
  uint64_t bytes_delivered = 0;
  uint64_t retransmits = 0;       ///< Frame (re)transmissions beyond the first.
  uint64_t acks_received = 0;
  uint64_t reconnects = 0;        ///< Connections established after the first.
  uint64_t crc_errors = 0;        ///< Corrupt frames rejected by the receiver.
  uint64_t dup_frames_discarded = 0;  ///< Seq ≤ delivered watermark.
  uint64_t gap_frames_discarded = 0;  ///< Seq ahead of the watermark (GBN).
  uint64_t send_queue_depth = 0;  ///< Gauge: frames queued + unacked now.
  uint64_t send_queue_bytes = 0;  ///< Gauge: bytes queued + unacked now.
  uint64_t injected_drops = 0;
  uint64_t injected_dups = 0;
  uint64_t injected_corrupts = 0;
  uint64_t injected_truncates = 0;
};

/// Receives a channel's frames, in sequence order, exactly once.
class FrameSink {
 public:
  virtual ~FrameSink() = default;
  virtual void OnFrame(const Frame& frame) = 0;
  /// The channel shut down after draining; no further OnFrame calls.
  virtual void OnChannelClose() {}
};

/// One ordered, reliable, at-least-once-with-dedup message pipe between a
/// sender and a sink. Both endpoints live in this process (the standby is
/// simulated in-process), but a kSocket channel pushes every frame through a
/// real localhost TCP connection with all the failure modes that implies.
class Channel {
 public:
  virtual ~Channel() = default;

  virtual Status Start() = 0;
  /// Drains everything accepted by Send (retransmitting as needed), then
  /// closes and fires FrameSink::OnChannelClose.
  virtual void Stop() = 0;

  /// Ships one frame. Blocks while the send window is full (backpressure);
  /// returns kUnavailable after Stop.
  virtual Status Send(FrameType type, uint32_t stream, Scn scn,
                      std::string payload) = 0;

  /// True when nothing is queued or awaiting acknowledgment.
  virtual bool Idle() const = 0;

  /// Fault-injection hook: network partition on/off.
  virtual void SetPartitioned(bool partitioned) = 0;

  virtual ChannelStats stats() const = 0;
  virtual const ChannelOptions& options() const = 0;

  /// Pushes this channel's stats into `sink` as stratus_net_* series labeled
  /// {"channel", options().name} (+ {"standby", options().peer} when set)
  /// + `base`.
  void ExportMetrics(obs::MetricsSink* sink, const obs::Labels& base) const;
};

/// The identity labels every stratus_net_* series for `options` carries:
/// {"channel", name} plus {"standby", peer} when the peer is named.
obs::Labels ChannelIdentityLabels(const ChannelOptions& options);

/// Builds a channel of `options.kind` delivering into `sink`. The sink must
/// outlive the channel; OnFrame runs on a channel-internal thread (kSocket)
/// or the sender's thread (kLoopback).
std::unique_ptr<Channel> CreateChannel(const ChannelOptions& options,
                                       FrameSink* sink);

}  // namespace net
}  // namespace stratus

#endif  // STRATUS_NET_CHANNEL_H_
