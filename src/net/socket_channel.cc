#include "net/socket_channel.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/clock.h"

namespace stratus {
namespace net {

namespace {

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

SocketChannel::SocketChannel(const ChannelOptions& options, FrameSink* sink)
    : options_(options),
      sink_(sink),
      faults_(options.faults),
      backoff_rng_(options.faults.seed + 0x9e3779b9ull) {
  if (options_.registry != nullptr) {
    const obs::Labels labels = ChannelIdentityLabels(options_);
    encode_hist_ =
        options_.registry->GetHistogram("stratus_net_encode_us", labels);
    decode_hist_ =
        options_.registry->GetHistogram("stratus_net_decode_us", labels);
  }
}

SocketChannel::~SocketChannel() { Stop(); }

Status SocketChannel::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) return Status::Internal("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // Ephemeral: no port collisions between channels.
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 4) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("bind/listen failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  if (::pipe2(wake_pipe_, O_NONBLOCK) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("pipe2() failed");
  }

  {
    std::lock_guard<std::mutex> g(mu_);
    started_ = true;
    accepting_ = true;
  }
  receiver_ = std::thread([this] { ReceiverLoop(); });
  sender_ = std::thread([this] { SenderLoop(); });
  return Status::OK();
}

void SocketChannel::Stop() {
  {
    std::lock_guard<std::mutex> g(mu_);
    if (!started_ || stop_sequence_ran_) return;
    stop_sequence_ran_ = true;
    accepting_ = false;
  }
  send_cv_.notify_all();
  // Heal any injected partition so the drain below can complete.
  faults_.set_partitioned(false);
  WakeSender();
  {
    std::unique_lock<std::mutex> l(mu_);
    drain_cv_.wait(l, [&] { return pending_.empty(); });
  }
  shutdown_.store(true, std::memory_order_release);
  WakeSender();
  if (sender_.joinable()) sender_.join();
  if (receiver_.joinable()) receiver_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  sink_->OnChannelClose();
}

void SocketChannel::SetPartitioned(bool partitioned) {
  faults_.set_partitioned(partitioned);
  WakeSender();
}

void SocketChannel::WakeSender() {
  if (wake_pipe_[1] >= 0) {
    char b = 1;
    // EAGAIN (pipe full) means a wakeup is already pending.
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
  }
}

Status SocketChannel::Send(FrameType type, uint32_t stream, Scn scn,
                           std::string payload) {
  std::unique_lock<std::mutex> l(mu_);
  if (!started_) return Status::FailedPrecondition("channel not started");
  // Backpressure: admission waits for window space. Holding mu_ through the
  // wait serializes concurrent senders, so sequence numbers always match
  // queue order.
  send_cv_.wait(l, [&] {
    return !accepting_ || (pending_.size() < options_.send_window_frames &&
                           pending_bytes_ < options_.send_window_bytes);
  });
  if (!accepting_) return Status::Unavailable("channel stopped");

  Frame frame;
  frame.type = type;
  frame.stream = stream;
  frame.seq = next_seq_++;
  frame.scn = scn;
  frame.payload = std::move(payload);

  Stopwatch encode_timer;
  PendingFrame p;
  p.seq = frame.seq;
  EncodeFrame(frame, &p.wire);
  if (encode_hist_ != nullptr) encode_hist_->Record(encode_timer.ElapsedMicros());

  counters_.frames_sent.fetch_add(1, std::memory_order_relaxed);
  counters_.bytes_sent.fetch_add(p.wire.size(), std::memory_order_relaxed);
  pending_bytes_ += p.wire.size();
  pending_.push_back(std::move(p));
  l.unlock();
  WakeSender();
  return Status::OK();
}

bool SocketChannel::Idle() const {
  std::lock_guard<std::mutex> g(mu_);
  return pending_.empty();
}

ChannelStats SocketChannel::stats() const {
  ChannelStats s = counters_.Snapshot(faults_);
  std::lock_guard<std::mutex> g(mu_);
  s.send_queue_depth = pending_.size();
  s.send_queue_bytes = pending_bytes_;
  return s;
}

// ---------------------------------------------------------------------------
// Sender side.
// ---------------------------------------------------------------------------

int SocketChannel::ConnectOnce() {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) return -1;
  SetNoDelay(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port_));
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno == EINPROGRESS) {
    struct pollfd p = {fd, POLLOUT, 0};
    rc = ::poll(&p, 1, 100);
    int err = 0;
    socklen_t len = sizeof(err);
    if (rc <= 0 ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      ::close(fd);
      return -1;
    }
  } else if (rc < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void SocketChannel::CloseSenderConn() {
  if (conn_fd_ >= 0) {
    ::close(conn_fd_);
    conn_fd_ = -1;
    ack_buf_.clear();
  }
}

void SocketChannel::SenderLoop() {
  int64_t backoff_us = options_.backoff_base_us;
  bool connected_once = false;
  last_progress_us_ = static_cast<int64_t>(NowMicros());

  while (!shutdown_.load(std::memory_order_acquire)) {
    if (faults_.partitioned()) {
      CloseSenderConn();
      ReadAcks(2);  // Just waits on the wake pipe while disconnected.
      continue;
    }

    if (conn_fd_ < 0) {
      conn_fd_ = ConnectOnce();
      if (conn_fd_ < 0) {
        const int64_t jitter = static_cast<int64_t>(
            backoff_rng_.Uniform(static_cast<uint64_t>(backoff_us / 2 + 1)));
        ReadAcks(static_cast<int>((backoff_us + jitter) / 1000) + 1);
        backoff_us = std::min(backoff_us * 2, options_.backoff_max_us);
        continue;
      }
      backoff_us = options_.backoff_base_us;
      if (connected_once) {
        counters_.reconnects.fetch_add(1, std::memory_order_relaxed);
      }
      connected_once = true;
      last_progress_us_ = static_cast<int64_t>(NowMicros());
      {
        // Go-back-N: replay everything unacked on the fresh connection.
        std::lock_guard<std::mutex> g(mu_);
        inflight_ = 0;
      }
    }

    // Transmit the next not-yet-inflight frame, if any.
    PendingFrame frame;
    bool have = false;
    {
      std::lock_guard<std::mutex> g(mu_);
      if (inflight_ < pending_.size()) {
        frame = pending_[inflight_];
        have = true;
      }
    }
    if (have) {
      const uint32_t transmits_after = frame.transmits + 1;
      if (!TransmitFrame(&frame)) continue;  // Connection died; reconnect.
      {
        std::lock_guard<std::mutex> g(mu_);
        if (inflight_ < pending_.size() &&
            pending_[inflight_].seq == frame.seq) {
          pending_[inflight_].transmits = transmits_after;
          ++inflight_;
        }
      }
      ReadAcks(0);  // Opportunistic, non-blocking.
      continue;
    }

    // Fully in flight (or idle): wait for acks or a wakeup, then check for
    // an ack stall worth a go-back-N retransmission.
    ReadAcks(2);
    {
      std::lock_guard<std::mutex> g(mu_);
      if (!pending_.empty() && inflight_ == pending_.size()) {
        const int64_t now = static_cast<int64_t>(NowMicros());
        if (now - last_progress_us_ >= options_.retransmit_timeout_us) {
          inflight_ = 0;
          last_progress_us_ = now;
        }
      }
    }
  }
  CloseSenderConn();
}

bool SocketChannel::TransmitFrame(PendingFrame* frame) {
  const int64_t delay = faults_.DelayUs();
  if (delay > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay));
  }
  const int copies = faults_.ShouldDuplicate() ? 2 : 1;
  for (int i = 0; i < copies; ++i) {
    ++frame->transmits;
    if (frame->transmits > 1) {
      counters_.retransmits.fetch_add(1, std::memory_order_relaxed);
    }
    if (faults_.ShouldDrop()) continue;  // Vanishes; retransmit recovers it.
    const std::string* out = &frame->wire;
    std::string corrupted;
    if (faults_.ShouldCorrupt()) {
      corrupted = frame->wire;
      faults_.CorruptOneBit(&corrupted);
      out = &corrupted;
    }
    if (faults_.ShouldTruncate()) {
      // Connection dies mid-frame: half the bytes, then a hard close.
      WriteFull(conn_fd_, out->data(), out->size() / 2);
      CloseSenderConn();
      return false;
    }
    if (!WriteFull(conn_fd_, out->data(), out->size())) {
      CloseSenderConn();
      return false;
    }
  }
  return true;
}

bool SocketChannel::WriteFull(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w > 0) {
      off += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (shutdown_.load(std::memory_order_acquire)) return false;
      struct pollfd p = {fd, POLLOUT, 0};
      ::poll(&p, 1, 50);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool SocketChannel::ReadAcks(int timeout_ms) {
  struct pollfd fds[2];
  nfds_t n = 0;
  if (conn_fd_ >= 0) fds[n++] = {conn_fd_, POLLIN, 0};
  if (wake_pipe_[0] >= 0) fds[n++] = {wake_pipe_[0], POLLIN, 0};
  if (n == 0) return false;
  const int rc = ::poll(fds, n, timeout_ms);
  if (rc <= 0) return false;

  for (nfds_t i = 0; i < n; ++i) {
    if (fds[i].fd == wake_pipe_[0] && (fds[i].revents & POLLIN)) {
      char drain[64];
      while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
      }
    }
  }
  if (conn_fd_ < 0 || !(fds[0].revents & (POLLIN | POLLHUP | POLLERR))) {
    return false;
  }

  char chunk[4096];
  for (;;) {
    const ssize_t r = ::recv(conn_fd_, chunk, sizeof(chunk), 0);
    if (r > 0) {
      ack_buf_.append(chunk, static_cast<size_t>(r));
      if (r < static_cast<ssize_t>(sizeof(chunk))) break;
      continue;
    }
    if (r == 0) {  // Receiver closed (e.g. after a corrupt frame).
      CloseSenderConn();
      return false;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseSenderConn();
    return false;
  }

  size_t pos = 0;
  while (pos < ack_buf_.size()) {
    Frame frame;
    size_t consumed = 0;
    Status s =
        DecodeFrame(ack_buf_.data() + pos, ack_buf_.size() - pos, &frame,
                    &consumed);
    if (IsIncomplete(s)) break;
    if (!s.ok()) {  // Ack stream corrupted: drop and reconnect.
      ack_buf_.clear();
      CloseSenderConn();
      return false;
    }
    pos += consumed;
    if (frame.type == FrameType::kAck) HandleAck(frame.seq);
  }
  ack_buf_.erase(0, pos);
  return true;
}

void SocketChannel::HandleAck(uint64_t acked_seq) {
  counters_.acks_received.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> g(mu_);
  size_t popped = 0;
  while (!pending_.empty() && pending_.front().seq <= acked_seq) {
    pending_bytes_ -= pending_.front().wire.size();
    pending_.pop_front();
    ++popped;
  }
  if (popped == 0) return;
  inflight_ -= std::min(inflight_, popped);
  last_progress_us_ = static_cast<int64_t>(NowMicros());
  send_cv_.notify_all();
  if (pending_.empty()) drain_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Receiver side.
// ---------------------------------------------------------------------------

void SocketChannel::ReceiverLoop() {
  int conn = -1;
  std::string buf;
  while (!shutdown_.load(std::memory_order_acquire)) {
    struct pollfd fds[2];
    nfds_t n = 0;
    fds[n++] = {listen_fd_, POLLIN, 0};
    if (conn >= 0) fds[n++] = {conn, POLLIN, 0};
    const int rc = ::poll(fds, n, 5);
    if (rc <= 0) continue;
    if (fds[0].revents & POLLIN) {
      const int accepted = ::accept4(listen_fd_, nullptr, nullptr,
                                     SOCK_NONBLOCK);
      if (accepted >= 0) {
        // One live connection at a time; a new connect replaces the old one
        // (the sender reconnected) and any half-received frame is discarded.
        if (conn >= 0) ::close(conn);
        conn = accepted;
        buf.clear();
        SetNoDelay(conn);
      }
    }
    if (conn >= 0 && n > 1 &&
        (fds[1].revents & (POLLIN | POLLHUP | POLLERR))) {
      if (!DrainConnection(conn, &buf)) {
        ::close(conn);
        conn = -1;
        buf.clear();
      }
    }
  }
  if (conn >= 0) ::close(conn);
}

bool SocketChannel::DrainConnection(int fd, std::string* buf) {
  char chunk[16384];
  for (;;) {
    const ssize_t r = ::recv(fd, chunk, sizeof(chunk), 0);
    if (r > 0) {
      buf->append(chunk, static_cast<size_t>(r));
      if (r < static_cast<ssize_t>(sizeof(chunk))) break;
      continue;
    }
    if (r == 0) return false;  // Sender closed (reconnecting or stopping).
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }

  size_t pos = 0;
  Scn last_scn = kInvalidScn;
  bool ack_due = false;
  while (pos < buf->size()) {
    Frame frame;
    size_t consumed = 0;
    Stopwatch decode_timer;
    Status s = DecodeFrame(buf->data() + pos, buf->size() - pos, &frame,
                           &consumed);
    if (IsIncomplete(s)) break;
    if (!s.ok()) {
      // Corrupt frame: the byte stream can no longer be trusted to frame
      // correctly, so poison the whole connection. The sender reconnects and
      // replays from the last cumulative ack.
      counters_.crc_errors.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (decode_hist_ != nullptr) {
      decode_hist_->Record(decode_timer.ElapsedMicros());
    }
    pos += consumed;
    if (frame.type == FrameType::kAck) continue;  // Not valid inbound.
    if (frame.seq != expected_seq_) {
      // Duplicate (already delivered) or gap (an earlier frame was lost on
      // the wire): discard and re-ack the watermark so the sender converges.
      auto& counter = frame.seq < expected_seq_ ? counters_.dup_frames_discarded
                                                : counters_.gap_frames_discarded;
      counter.fetch_add(1, std::memory_order_relaxed);
      ack_due = true;
      continue;
    }
    counters_.frames_delivered.fetch_add(1, std::memory_order_relaxed);
    counters_.bytes_delivered.fetch_add(consumed, std::memory_order_relaxed);
    last_scn = frame.scn;
    sink_->OnFrame(frame);
    ++expected_seq_;
    ack_due = true;
  }
  buf->erase(0, pos);
  if (ack_due && expected_seq_ > 1) SendAck(fd, expected_seq_ - 1, last_scn);
  return true;
}

void SocketChannel::SendAck(int fd, uint64_t seq, Scn scn) {
  Frame ack;
  ack.type = FrameType::kAck;
  ack.stream = 0;
  ack.seq = seq;
  ack.scn = scn;
  std::string wire;
  EncodeFrame(ack, &wire);
  // Best effort: a lost ack is recovered by the next one (cumulative) or by
  // the sender's retransmit timer.
  WriteFull(fd, wire.data(), wire.size());
}

}  // namespace net
}  // namespace stratus
