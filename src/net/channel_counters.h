#ifndef STRATUS_NET_CHANNEL_COUNTERS_H_
#define STRATUS_NET_CHANNEL_COUNTERS_H_

#include <atomic>
#include <cstdint>

#include "net/channel.h"
#include "net/fault_injector.h"

namespace stratus {
namespace net {

/// Shared atomic backing for ChannelStats (channel implementations inc these
/// from their wire threads; stats() snapshots them).
struct ChannelCounters {
  std::atomic<uint64_t> frames_sent{0};
  std::atomic<uint64_t> bytes_sent{0};
  std::atomic<uint64_t> frames_delivered{0};
  std::atomic<uint64_t> bytes_delivered{0};
  std::atomic<uint64_t> retransmits{0};
  std::atomic<uint64_t> acks_received{0};
  std::atomic<uint64_t> reconnects{0};
  std::atomic<uint64_t> crc_errors{0};
  std::atomic<uint64_t> dup_frames_discarded{0};
  std::atomic<uint64_t> gap_frames_discarded{0};

  /// Queue gauges are filled in by the channel from its own bookkeeping.
  ChannelStats Snapshot(const FaultInjector& faults) const {
    ChannelStats s;
    s.frames_sent = frames_sent.load(std::memory_order_relaxed);
    s.bytes_sent = bytes_sent.load(std::memory_order_relaxed);
    s.frames_delivered = frames_delivered.load(std::memory_order_relaxed);
    s.bytes_delivered = bytes_delivered.load(std::memory_order_relaxed);
    s.retransmits = retransmits.load(std::memory_order_relaxed);
    s.acks_received = acks_received.load(std::memory_order_relaxed);
    s.reconnects = reconnects.load(std::memory_order_relaxed);
    s.crc_errors = crc_errors.load(std::memory_order_relaxed);
    s.dup_frames_discarded = dup_frames_discarded.load(std::memory_order_relaxed);
    s.gap_frames_discarded = gap_frames_discarded.load(std::memory_order_relaxed);
    s.injected_drops = faults.drops();
    s.injected_dups = faults.dups();
    s.injected_corrupts = faults.corrupts();
    s.injected_truncates = faults.truncates();
    return s;
  }
};

}  // namespace net
}  // namespace stratus

#endif  // STRATUS_NET_CHANNEL_COUNTERS_H_
