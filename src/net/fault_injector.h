#ifndef STRATUS_NET_FAULT_INJECTOR_H_
#define STRATUS_NET_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/random.h"

namespace stratus {
namespace net {

/// What can go wrong on the wire. Probabilities are percentages per frame;
/// the reliable channel (acks + retransmission + dedup) must mask all of
/// them, which is exactly what the robustness tests assert.
struct FaultOptions {
  uint32_t drop_pct = 0;      ///< Frame vanishes on the wire.
  uint32_t dup_pct = 0;       ///< Frame is transmitted twice.
  uint32_t corrupt_pct = 0;   ///< One bit of the encoded frame flips.
  uint32_t truncate_pct = 0;  ///< Connection dies mid-frame (socket only).
  int64_t delay_us = 0;       ///< Fixed one-way wire delay per frame.
  int64_t jitter_us = 0;      ///< Plus uniform extra in [0, jitter_us).
  uint64_t seed = 42;         ///< Deterministic fault schedule.

  bool any_loss() const {
    return drop_pct > 0 || dup_pct > 0 || corrupt_pct > 0 || truncate_pct > 0;
  }
  bool any() const { return any_loss() || delay_us > 0 || jitter_us > 0; }
};

/// Per-channel fault source. Decisions come from a seeded PRNG so every run
/// injects the same schedule; the partition switch is a live toggle tests
/// flip while traffic is flowing.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultOptions& options)
      : options_(options), rng_(options.seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultOptions& options() const { return options_; }

  bool ShouldDrop() { return Roll(options_.drop_pct, &drops_); }
  bool ShouldDuplicate() { return Roll(options_.dup_pct, &dups_); }
  bool ShouldCorrupt() { return Roll(options_.corrupt_pct, &corrupts_); }
  bool ShouldTruncate() { return Roll(options_.truncate_pct, &truncates_); }

  /// One-way wire delay for the next frame (fixed + jitter), microseconds.
  int64_t DelayUs() {
    int64_t d = options_.delay_us;
    if (options_.jitter_us > 0) {
      std::lock_guard<std::mutex> g(mu_);
      d += static_cast<int64_t>(
          rng_.Uniform(static_cast<uint64_t>(options_.jitter_us)));
    }
    return d;
  }

  /// Flips one deterministic-random bit of `bytes` (no-op when empty).
  void CorruptOneBit(std::string* bytes) {
    if (bytes->empty()) return;
    std::lock_guard<std::mutex> g(mu_);
    const uint64_t bit = rng_.Uniform(bytes->size() * 8);
    (*bytes)[bit / 8] = static_cast<char>(
        static_cast<uint8_t>((*bytes)[bit / 8]) ^ (1u << (bit % 8)));
  }

  /// Network partition: while set, nothing crosses the wire in either
  /// direction. Channels translate this into "connection down".
  void set_partitioned(bool partitioned) {
    partitioned_.store(partitioned, std::memory_order_release);
  }
  bool partitioned() const {
    return partitioned_.load(std::memory_order_acquire);
  }

  uint64_t drops() const { return drops_.load(std::memory_order_relaxed); }
  uint64_t dups() const { return dups_.load(std::memory_order_relaxed); }
  uint64_t corrupts() const { return corrupts_.load(std::memory_order_relaxed); }
  uint64_t truncates() const { return truncates_.load(std::memory_order_relaxed); }

 private:
  bool Roll(uint32_t pct, std::atomic<uint64_t>* counter) {
    if (pct == 0) return false;
    bool hit;
    {
      std::lock_guard<std::mutex> g(mu_);
      hit = rng_.Percent(pct);
    }
    if (hit) counter->fetch_add(1, std::memory_order_relaxed);
    return hit;
  }

  const FaultOptions options_;
  std::mutex mu_;  ///< Guards the PRNG.
  Random rng_;
  std::atomic<bool> partitioned_{false};
  std::atomic<uint64_t> drops_{0};
  std::atomic<uint64_t> dups_{0};
  std::atomic<uint64_t> corrupts_{0};
  std::atomic<uint64_t> truncates_{0};
};

}  // namespace net
}  // namespace stratus

#endif  // STRATUS_NET_FAULT_INJECTOR_H_
