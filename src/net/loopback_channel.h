#ifndef STRATUS_NET_LOOPBACK_CHANNEL_H_
#define STRATUS_NET_LOOPBACK_CHANNEL_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>

#include "net/channel.h"
#include "net/channel_counters.h"
#include "net/fault_injector.h"
#include "obs/metrics.h"

namespace stratus {
namespace net {

/// The deterministic default wire: Send() encodes the frame, runs it through
/// the fault injector, and delivers it to the sink on the caller's thread.
/// Loss faults (drop/corrupt) are resolved inline by retrying — the frame is
/// counted as retransmitted and re-sent until it survives — so delivery is
/// still exactly-once and in order, which keeps every pre-wire test and bench
/// bit-for-bit reproducible. A partition blocks Send() until healed.
class LoopbackChannel : public Channel {
 public:
  LoopbackChannel(const ChannelOptions& options, FrameSink* sink);
  ~LoopbackChannel() override;

  Status Start() override;
  void Stop() override;
  Status Send(FrameType type, uint32_t stream, Scn scn,
              std::string payload) override;
  bool Idle() const override { return true; }
  void SetPartitioned(bool partitioned) override;

  ChannelStats stats() const override;
  const ChannelOptions& options() const override { return options_; }

 private:
  const ChannelOptions options_;
  FrameSink* const sink_;
  FaultInjector faults_;
  ChannelCounters counters_;

  obs::LatencyHistogram* encode_hist_ = nullptr;  ///< Null without a registry.
  obs::LatencyHistogram* decode_hist_ = nullptr;

  mutable std::mutex mu_;  ///< Serializes Send and guards the flags below.
  std::condition_variable partition_cv_;
  uint64_t next_seq_ = 1;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace net
}  // namespace stratus

#endif  // STRATUS_NET_LOOPBACK_CHANNEL_H_
