#include "net/wire.h"

#include <array>
#include <cstring>

namespace stratus {
namespace net {

namespace {

uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

}  // namespace

void EncodeFrame(const Frame& frame, std::string* out) {
  std::string body;
  body.reserve(frame.payload.size() + 16);
  body.push_back(static_cast<char>(frame.type));
  PutVarint64(&body, frame.stream);
  PutVarint64(&body, frame.seq);
  PutVarint64(&body, frame.scn);
  body.append(frame.payload);

  out->reserve(out->size() + kFramePrefixBytes + body.size());
  PutU32(out, kFrameMagic);
  PutU32(out, static_cast<uint32_t>(body.size()));
  PutU32(out, Crc32c(body.data(), body.size()));
  out->append(body);
}

Status DecodeFrame(const char* data, size_t size, Frame* out, size_t* consumed) {
  if (size < kFramePrefixBytes)
    return Status::OutOfRange("incomplete frame prefix");
  if (LoadU32(data) != kFrameMagic)
    return Status::Corruption("bad frame magic");
  const uint32_t body_len = LoadU32(data + 4);
  if (body_len > kMaxFrameBodyBytes)
    return Status::Corruption("frame body length exceeds limit");
  if (body_len < 1)  // Body must hold at least the type byte.
    return Status::Corruption("empty frame body");
  if (size < kFramePrefixBytes + body_len)
    return Status::OutOfRange("incomplete frame body");
  const uint32_t want_crc = LoadU32(data + 8);
  const char* body = data + kFramePrefixBytes;
  if (Crc32c(body, body_len) != want_crc)
    return Status::Corruption("frame CRC mismatch");

  const uint8_t type = static_cast<uint8_t>(body[0]);
  if (type != static_cast<uint8_t>(FrameType::kRedoBatch) &&
      type != static_cast<uint8_t>(FrameType::kInvalidation) &&
      type != static_cast<uint8_t>(FrameType::kAck)) {
    return Status::Corruption("unknown frame type");
  }
  out->type = static_cast<FrameType>(type);
  size_t pos = 1;
  uint64_t stream = 0, seq = 0, scn = 0;
  if (!GetVarint64(body, body_len, &pos, &stream) ||
      !GetVarint64(body, body_len, &pos, &seq) ||
      !GetVarint64(body, body_len, &pos, &scn)) {
    return Status::Corruption("truncated frame header varints");
  }
  if (stream > std::numeric_limits<uint32_t>::max())
    return Status::Corruption("frame stream id out of range");
  out->stream = static_cast<uint32_t>(stream);
  out->seq = seq;
  out->scn = scn;
  out->payload.assign(body + pos, body_len - pos);
  *consumed = kFramePrefixBytes + body_len;
  return Status::OK();
}

}  // namespace net
}  // namespace stratus
