#include "net/loopback_channel.h"

#include <chrono>
#include <thread>
#include <utility>

#include "common/clock.h"

namespace stratus {
namespace net {

LoopbackChannel::LoopbackChannel(const ChannelOptions& options, FrameSink* sink)
    : options_(options), sink_(sink), faults_(options.faults) {
  if (options_.registry != nullptr) {
    const obs::Labels labels = ChannelIdentityLabels(options_);
    encode_hist_ =
        options_.registry->GetHistogram("stratus_net_encode_us", labels);
    decode_hist_ =
        options_.registry->GetHistogram("stratus_net_decode_us", labels);
  }
}

LoopbackChannel::~LoopbackChannel() { Stop(); }

Status LoopbackChannel::Start() {
  std::lock_guard<std::mutex> g(mu_);
  started_ = true;
  return Status::OK();
}

void LoopbackChannel::Stop() {
  {
    std::lock_guard<std::mutex> g(mu_);
    if (!started_ || stopped_) return;
    stopped_ = true;
  }
  partition_cv_.notify_all();
  sink_->OnChannelClose();
}

void LoopbackChannel::SetPartitioned(bool partitioned) {
  faults_.set_partitioned(partitioned);
  partition_cv_.notify_all();
}

Status LoopbackChannel::Send(FrameType type, uint32_t stream, Scn scn,
                             std::string payload) {
  std::unique_lock<std::mutex> lock(mu_);
  if (stopped_) return Status::Unavailable("channel stopped");

  Frame frame;
  frame.type = type;
  frame.stream = stream;
  frame.seq = next_seq_++;
  frame.scn = scn;
  frame.payload = std::move(payload);

  Stopwatch encode_timer;
  std::string wire;
  EncodeFrame(frame, &wire);
  if (encode_hist_ != nullptr) encode_hist_->Record(encode_timer.ElapsedMicros());

  counters_.frames_sent.fetch_add(1, std::memory_order_relaxed);
  counters_.bytes_sent.fetch_add(wire.size(), std::memory_order_relaxed);

  // A partition blocks the sender (exactly the backpressure a stalled TCP
  // connection exerts) until healed or the channel stops.
  partition_cv_.wait(lock, [&] { return !faults_.partitioned() || stopped_; });
  if (stopped_) return Status::Unavailable("channel stopped");

  const int64_t delay = faults_.DelayUs();
  if (delay > 0) {
    lock.unlock();
    std::this_thread::sleep_for(std::chrono::microseconds(delay));
    lock.lock();
    if (stopped_) return Status::Unavailable("channel stopped");
  }

  // Loss faults resolve inline: a dropped or corrupted transmission is
  // retried (counted as a retransmit) until one clean copy gets through, so
  // the sink still sees exactly-once in-order delivery.
  for (;;) {
    if (faults_.ShouldDrop()) {
      counters_.retransmits.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (faults_.ShouldCorrupt()) {
      std::string corrupted = wire;
      faults_.CorruptOneBit(&corrupted);
      Frame decoded;
      size_t consumed = 0;
      Status s = DecodeFrame(corrupted.data(), corrupted.size(), &decoded,
                             &consumed);
      if (!s.ok()) {
        counters_.crc_errors.fetch_add(1, std::memory_order_relaxed);
        counters_.retransmits.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      // The flipped bit survived the CRC only if it landed in the padding-free
      // encoding and still decoded — astronomically unlikely; fall through and
      // deliver the clean copy regardless.
    }
    break;
  }

  const bool duplicate = faults_.ShouldDuplicate();
  const int deliveries = duplicate ? 2 : 1;
  for (int i = 0; i < deliveries; ++i) {
    Stopwatch decode_timer;
    Frame decoded;
    size_t consumed = 0;
    Status s = DecodeFrame(wire.data(), wire.size(), &decoded, &consumed);
    if (decode_hist_ != nullptr) decode_hist_->Record(decode_timer.ElapsedMicros());
    if (!s.ok()) return s;  // Unreachable: we encoded this frame ourselves.
    if (i > 0) {
      // The receiver-side dedup a socket channel does by sequence number:
      // the second copy is discarded, not delivered.
      counters_.dup_frames_discarded.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    counters_.frames_delivered.fetch_add(1, std::memory_order_relaxed);
    counters_.bytes_delivered.fetch_add(wire.size(), std::memory_order_relaxed);
    sink_->OnFrame(decoded);
  }
  return Status::OK();
}

ChannelStats LoopbackChannel::stats() const {
  ChannelStats s = counters_.Snapshot(faults_);
  s.send_queue_depth = 0;  // Synchronous: nothing is ever queued.
  s.send_queue_bytes = 0;
  return s;
}

}  // namespace net
}  // namespace stratus
