#ifndef STRATUS_NET_SOCKET_CHANNEL_H_
#define STRATUS_NET_SOCKET_CHANNEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>

#include "common/random.h"
#include "net/channel.h"
#include "net/channel_counters.h"
#include "net/fault_injector.h"
#include "obs/metrics.h"

namespace stratus {
namespace net {

/// A real TCP wire over 127.0.0.1. The channel owns both endpoints: a
/// listener + receiver thread (the "standby" side, delivering into the sink)
/// and a sender thread that connects, ships queued frames, and reads
/// cumulative acks back over the same connection.
///
/// Reliability model: at-least-once transmission + receiver dedup =
/// exactly-once delivery.
///  - Every frame gets a monotone sequence number at Send().
///  - Unacked frames are retransmitted (go-back-N) after a reconnect or when
///    ack progress stalls past `retransmit_timeout_us`.
///  - The receiver delivers only the exact next expected sequence; duplicates
///    and out-of-order frames are discarded and re-acked.
///  - A corrupt frame (CRC/framing) poisons the connection: the receiver
///    drops it, the sender reconnects with exponential backoff + jitter and
///    replays from the last cumulative ack.
///
/// Backpressure: Send() blocks while queued+unacked frames (or bytes) exceed
/// the send window, which stalls the shipper exactly like a full TCP socket
/// to a slow standby would.
class SocketChannel : public Channel {
 public:
  SocketChannel(const ChannelOptions& options, FrameSink* sink);
  ~SocketChannel() override;

  Status Start() override;
  void Stop() override;
  Status Send(FrameType type, uint32_t stream, Scn scn,
              std::string payload) override;
  bool Idle() const override;
  void SetPartitioned(bool partitioned) override;

  ChannelStats stats() const override;
  const ChannelOptions& options() const override { return options_; }

  /// The ephemeral port the receiver is listening on (valid after Start).
  int port() const { return port_; }

 private:
  struct PendingFrame {
    uint64_t seq = 0;
    std::string wire;     ///< Fully encoded frame bytes.
    uint32_t transmits = 0;  ///< Times written so far (>1 → retransmit).
  };

  void SenderLoop();
  void ReceiverLoop();

  /// Sender-side helpers (sender thread only).
  int ConnectOnce();
  bool WriteFull(int fd, const char* data, size_t n);
  bool TransmitFrame(PendingFrame* frame);
  bool ReadAcks(int timeout_ms);
  void HandleAck(uint64_t acked_seq);
  void CloseSenderConn();
  void WakeSender();

  /// Receiver-side helpers (receiver thread only).
  bool DrainConnection(int fd, std::string* buf);
  void SendAck(int fd, uint64_t seq, Scn scn);

  const ChannelOptions options_;
  FrameSink* const sink_;
  FaultInjector faults_;
  ChannelCounters counters_;

  obs::LatencyHistogram* encode_hist_ = nullptr;
  obs::LatencyHistogram* decode_hist_ = nullptr;

  int listen_fd_ = -1;
  int port_ = 0;
  int wake_pipe_[2] = {-1, -1};  ///< Send()/Stop() → sender thread wakeup.

  mutable std::mutex mu_;
  std::condition_variable send_cv_;   ///< Window space freed / shutdown.
  std::condition_variable drain_cv_;  ///< pending_ emptied.
  std::deque<PendingFrame> pending_;  ///< Queued + unacked, seq order.
  size_t pending_bytes_ = 0;
  size_t inflight_ = 0;  ///< Prefix of pending_ transmitted on this conn.
  uint64_t next_seq_ = 1;
  bool accepting_ = false;  ///< Send() admits new frames.
  bool started_ = false;
  bool stop_sequence_ran_ = false;

  std::atomic<bool> shutdown_{false};  ///< Thread loops exit.

  // Sender-thread-only state.
  int conn_fd_ = -1;
  std::string ack_buf_;
  int64_t last_progress_us_ = 0;
  Random backoff_rng_;

  // Receiver-thread-only state.
  uint64_t expected_seq_ = 1;

  std::thread sender_;
  std::thread receiver_;
};

}  // namespace net
}  // namespace stratus

#endif  // STRATUS_NET_SOCKET_CHANNEL_H_
