#ifndef STRATUS_NET_CODEC_H_
#define STRATUS_NET_CODEC_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "imadg/invalidation.h"
#include "redo/change_vector.h"

namespace stratus {
namespace net {

// ---------------------------------------------------------------------------
// Redo batches. The wire form packs every integer field as a varint (SCNs are
// delta-encoded within a batch, values are zigzag varints) so a typical OLTP
// change vector costs a handful of bytes instead of the ~50 fixed-width bytes
// of the accounting encoding. Encode/decode are exact inverses: decoding an
// encoded batch and re-encoding it yields byte-identical output.
// ---------------------------------------------------------------------------
void EncodeRedoBatch(const std::vector<RedoRecord>& batch, std::string* out);
Status DecodeRedoBatch(const std::string& payload, std::vector<RedoRecord>* out);

/// Encoded size of one batch (bytes), without materializing twice.
size_t RedoBatchWireSize(const std::vector<RedoRecord>& batch);

// ---------------------------------------------------------------------------
// Invalidation messages (the RAC interconnect payloads): the four message
// kinds the master sends non-master standby instances.
// ---------------------------------------------------------------------------
enum class InvalKind : uint8_t {
  kGroups = 1,      ///< Batch of invalidation groups.
  kCoarse = 2,      ///< Coarse-invalidate a tenant.
  kObjectDrop = 3,  ///< Drop an object's IMCUs.
  kPublish = 4,     ///< New QuerySCN published.
};

struct InvalidationMessage {
  InvalKind kind = InvalKind::kPublish;
  std::vector<InvalidationGroup> groups;  ///< kGroups.
  TenantId tenant = kDefaultTenant;       ///< kCoarse.
  ObjectId object_id = kInvalidObjectId;  ///< kObjectDrop.
  Scn scn = kInvalidScn;                  ///< kPublish.
};

void EncodeInvalidationMessage(const InvalidationMessage& msg, std::string* out);
Status DecodeInvalidationMessage(const std::string& payload,
                                 InvalidationMessage* out);

}  // namespace net
}  // namespace stratus

#endif  // STRATUS_NET_CODEC_H_
