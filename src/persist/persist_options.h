#ifndef STRATUS_PERSIST_PERSIST_OPTIONS_H_
#define STRATUS_PERSIST_PERSIST_OPTIONS_H_

#include <cstdint>
#include <string>

namespace stratus {
namespace persist {

/// When the redo archive forces its buffered appends to stable storage.
enum class SyncMode : uint8_t {
  kNone = 0,            ///< Never fsync (OS decides). Fastest, weakest.
  kCommitBoundary = 1,  ///< fsync when a batch carries a commit CV (or on
                        ///< segment roll). The paper's group-commit analogue:
                        ///< an unsynced tail can hold only uncommitted work,
                        ///< so a crash loses no acknowledged transaction —
                        ///< but the standby must be re-shipped the tail
                        ///< (fleet cursors retain it; see LogShipper's
                        ///< durable-floor gate).
  kEveryBatch = 2,      ///< fsync every archived batch: durable == delivered,
                        ///< so recovery never depends on redelivery. Default.
};

/// Seeded disk-fault injection (mirrors net::FaultOptions for the wire).
/// All-zero percentages = no injection.
struct DiskFaultOptions {
  uint32_t short_write_pct = 0;  ///< Truncate an append (crash mid-write).
  uint32_t torn_write_pct = 0;   ///< Truncate and flip a bit in the tail
                                 ///< (sector torn across a power cut).
  uint32_t read_error_pct = 0;   ///< Fail a file read outright.
  uint32_t sync_error_pct = 0;   ///< Fail an fsync.
  uint64_t seed = 42;
};

/// Durability configuration for one standby, threaded through
/// `DatabaseOptions::persist`. Disabled by default: the historical all-RAM
/// behavior is unchanged unless a data directory is configured.
struct PersistOptions {
  bool enabled = false;
  /// Root directory for this standby's durable state:
  ///   <data_dir>/archive/s<k>/seg-NNNNNNNN.redo   redo archive, stream k
  ///   <data_dir>/ckpt-NNNNNNNN.ckpt               fuzzy checkpoints
  ///   <data_dir>/imcs-NNNNNNNN.snap               IMCS snapshots
  ///   <data_dir>/META                             manifest / watermarks
  std::string data_dir;
  SyncMode sync = SyncMode::kEveryBatch;
  /// Roll to a new archive segment past this size.
  uint64_t segment_bytes = 4ull << 20;
  /// Background checkpoint cadence. 0 = manual checkpoints only
  /// (StandbyDb::TakeCheckpoint), which keeps tests deterministic.
  int64_t checkpoint_interval_us = 0;
  /// Serialize IMCU/SMU state with each checkpoint so restart resumes
  /// population from the snapshot SCN instead of rebuilding from scratch.
  bool snapshot_imcs = true;
  /// Run recovery from <data_dir> on the first Start() of this instance.
  bool recover_on_start = true;
  /// Recycle archive segments wholly covered by checkpoint progress.
  bool recycle_segments = true;
  DiskFaultOptions faults;
};

}  // namespace persist
}  // namespace stratus

#endif  // STRATUS_PERSIST_PERSIST_OPTIONS_H_
