#include "persist/checkpoint.h"

#include <algorithm>

#include "common/checksum.h"
#include "persist/persist_io.h"

namespace stratus {
namespace persist {

namespace {

inline constexpr uint32_t kCkptMagic = 0x53504B31;  // "1KPS"

Status Corrupt(const char* what) {
  return Status::Corruption(std::string("checkpoint: bad ") + what);
}

}  // namespace

void EncodeCheckpoint(const CheckpointImage& img, std::string* out) {
  std::string body;
  PutVarint64(&body, img.seq);
  PutVarint64(&body, img.recovery_scn);
  PutVarint64(&body, img.end_scn);

  PutVarint64(&body, img.tables.size());
  for (const TableImage& t : img.tables) {
    PutVarint64(&body, t.object_id);
    PutVarint64(&body, t.tenant);
    PutLengthPrefixed(&body, t.name);
    PutVarint64(&body, t.columns.size());
    for (const ColumnDef& c : t.columns) {
      PutLengthPrefixed(&body, c.name);
      body.push_back(static_cast<char>(c.type));
    }
    body.push_back(static_cast<char>(t.im_service));
    body.push_back(t.identity_index ? 1 : 0);
    PutVarint64(&body, t.blocks.size());
    for (Dba dba : t.blocks) PutVarint64(&body, dba);
  }

  PutVarint64(&body, img.blocks.size());
  for (const BlockImage& b : img.blocks) {
    PutVarint64(&body, b.dba);
    PutVarint64(&body, b.object_id);
    PutVarint64(&body, b.tenant);
    PutVarint64(&body, b.frontier);
    PutVarint64(&body, b.chains.size());
    for (const SlotChainImage& chain : b.chains) {
      PutVarint64(&body, chain.size());
      for (const RowVersionImage& v : chain) {
        PutVarint64(&body, v.xid);
        body.push_back(v.deleted ? 1 : 0);
        PutRow(&body, v.data);
      }
    }
  }

  PutVarint64(&body, img.txns.size());
  for (const auto& [xid, info] : img.txns) {
    PutVarint64(&body, xid);
    body.push_back(static_cast<char>(info.state));
    PutVarint64(&body, info.commit_scn);
  }

  WrapChecked(kCkptMagic, body, out);
}

Status DecodeCheckpoint(const std::string& file, CheckpointImage* out) {
  std::string body;
  STRATUS_RETURN_IF_ERROR(UnwrapChecked(kCkptMagic, file, &body));
  size_t pos = 0;
  uint64_t v = 0;

  if (!GetVarint64(body, &pos, &out->seq)) return Corrupt("seq");
  if (!GetVarint64(body, &pos, &v)) return Corrupt("recovery_scn");
  out->recovery_scn = v;
  if (!GetVarint64(body, &pos, &v)) return Corrupt("end_scn");
  out->end_scn = v;

  uint64_t ntables = 0;
  if (!GetVarint64(body, &pos, &ntables)) return Corrupt("table count");
  out->tables.clear();
  out->tables.reserve(ntables);
  for (uint64_t i = 0; i < ntables; ++i) {
    TableImage t;
    if (!GetVarint64(body, &pos, &t.object_id)) return Corrupt("object id");
    if (!GetVarint64(body, &pos, &v)) return Corrupt("tenant");
    t.tenant = static_cast<TenantId>(v);
    if (!GetLengthPrefixed(body, &pos, &t.name)) return Corrupt("table name");
    uint64_t ncols = 0;
    if (!GetVarint64(body, &pos, &ncols)) return Corrupt("column count");
    for (uint64_t c = 0; c < ncols; ++c) {
      ColumnDef def;
      if (!GetLengthPrefixed(body, &pos, &def.name)) return Corrupt("column name");
      if (pos >= body.size()) return Corrupt("column type");
      def.type = static_cast<ValueType>(body[pos++]);
      t.columns.push_back(std::move(def));
    }
    if (pos + 2 > body.size()) return Corrupt("table flags");
    t.im_service = static_cast<uint8_t>(body[pos++]);
    t.identity_index = body[pos++] != 0;
    uint64_t nblocks = 0;
    if (!GetVarint64(body, &pos, &nblocks)) return Corrupt("segment size");
    for (uint64_t b = 0; b < nblocks; ++b) {
      if (!GetVarint64(body, &pos, &v)) return Corrupt("segment dba");
      t.blocks.push_back(v);
    }
    out->tables.push_back(std::move(t));
  }

  uint64_t nblocks = 0;
  if (!GetVarint64(body, &pos, &nblocks)) return Corrupt("block count");
  out->blocks.clear();
  out->blocks.reserve(nblocks);
  for (uint64_t i = 0; i < nblocks; ++i) {
    BlockImage b;
    if (!GetVarint64(body, &pos, &b.dba)) return Corrupt("block dba");
    if (!GetVarint64(body, &pos, &b.object_id)) return Corrupt("block object");
    if (!GetVarint64(body, &pos, &v)) return Corrupt("block tenant");
    b.tenant = static_cast<TenantId>(v);
    if (!GetVarint64(body, &pos, &v)) return Corrupt("block frontier");
    b.frontier = v;
    uint64_t nslots = 0;
    if (!GetVarint64(body, &pos, &nslots)) return Corrupt("slot count");
    if (nslots > kRowsPerBlock) return Corrupt("slot count range");
    b.chains.resize(nslots);
    for (uint64_t slot = 0; slot < nslots; ++slot) {
      uint64_t depth = 0;
      if (!GetVarint64(body, &pos, &depth)) return Corrupt("chain depth");
      for (uint64_t d = 0; d < depth; ++d) {
        RowVersionImage ver;
        if (!GetVarint64(body, &pos, &ver.xid)) return Corrupt("version xid");
        if (pos >= body.size()) return Corrupt("version flags");
        ver.deleted = body[pos++] != 0;
        if (!GetRow(body, &pos, &ver.data)) return Corrupt("version row");
        b.chains[slot].push_back(std::move(ver));
      }
    }
    out->blocks.push_back(std::move(b));
  }

  uint64_t ntxns = 0;
  if (!GetVarint64(body, &pos, &ntxns)) return Corrupt("txn count");
  out->txns.clear();
  out->txns.reserve(ntxns);
  for (uint64_t i = 0; i < ntxns; ++i) {
    Xid xid = 0;
    TxnStatusInfo info;
    if (!GetVarint64(body, &pos, &xid)) return Corrupt("txn xid");
    if (pos >= body.size()) return Corrupt("txn state");
    info.state = static_cast<TxnState>(body[pos++]);
    if (!GetVarint64(body, &pos, &v)) return Corrupt("txn scn");
    info.commit_scn = v;
    out->txns.emplace_back(xid, info);
  }
  return Status::OK();
}

void CaptureBlockImages(const BlockStore& store, std::vector<BlockImage>* out) {
  out->clear();
  const Dba high = store.HighWater();
  for (Dba dba = kTxnTableDbaCount; dba < high; ++dba) {
    const Block* b = store.GetBlock(dba);
    if (b == nullptr) continue;
    BlockImage img;
    img.dba = dba;
    img.object_id = b->object_id();
    img.tenant = b->tenant();
    img.frontier = b->SnapshotChains(&img.chains);
    out->push_back(std::move(img));
  }
  // "Dirty blocks ordered by LSN": oldest change frontier first, the order a
  // pagewise checkpointer would flush in.
  std::stable_sort(out->begin(), out->end(),
                   [](const BlockImage& a, const BlockImage& b) {
                     return a.frontier < b.frontier;
                   });
}

}  // namespace persist
}  // namespace stratus
