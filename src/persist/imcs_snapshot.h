#ifndef STRATUS_PERSIST_IMCS_SNAPSHOT_H_
#define STRATUS_PERSIST_IMCS_SNAPSHOT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "imcs/im_store.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace stratus {
namespace persist {

/// Serialized form of one ready SMU/IMCU pair: the columnar snapshot at its
/// pinned snapshot SCN plus the SMU's invalidity bitmap as of capture time.
/// The bitmap may run ahead of snapshot_scn (invalidation flush continued
/// while we serialized) — extra invalid bits only send reads to the row path,
/// which is always correct (invariant I3's conservative direction).
struct SmuImage {
  ObjectId object_id = 0;
  TenantId tenant = 0;
  Scn snapshot_scn = kInvalidScn;
  std::vector<Dba> dbas;
  std::vector<uint8_t> column_types;  ///< ValueType per IMCU column (schema
                                      ///< columns first, then IM expressions).
  std::vector<uint64_t> present_words;
  std::vector<uint64_t> invalid_words;
  /// Per-column ENCODED physical form (ColumnVector::SerializeTo): the
  /// bit-packed codes, dictionary and null bitmap exactly as they sat in
  /// memory. Resume deserializes these directly — no value boxing, no
  /// dictionary rebuild — which is what makes snapshot-resume beat full
  /// repopulation on restart.
  std::vector<std::string> columns;
};

/// One IMCS snapshot file. `floor_scn` = min SMU snapshot SCN: recovery
/// resumes invalidation mining from there instead of rebuilding the store.
struct ImcsSnapshotImage {
  uint64_t seq = 0;
  Scn floor_scn = kInvalidScn;
  std::vector<SmuImage> smus;
};

void EncodeImcsSnapshot(const ImcsSnapshotImage& img, std::string* out);
Status DecodeImcsSnapshot(const std::string& file, ImcsSnapshotImage* out);

/// Serializes every kReady SMU of `store`. Fuzzy like the block capture:
/// each SMU's bitmap is snapshotted atomically, the set as a whole is not —
/// safe for the same conservative reason.
void CaptureImcsSnapshot(const ImStore& store, ImcsSnapshotImage* out);

/// Rebuilds SMUs/IMCUs from `img` into `store` (recovery boot, before the
/// apply pipeline starts — no concurrency). `schema_of` supplies the current
/// schema for an object (from the restored dictionary); images of unknown
/// objects are skipped, as are images that would exceed pool capacity.
/// Returns the number of SMUs restored.
StatusOr<size_t> LoadImcsSnapshot(
    const ImcsSnapshotImage& img, ImStore* store,
    const std::function<bool(ObjectId, Schema*)>& schema_of);

}  // namespace persist
}  // namespace stratus

#endif  // STRATUS_PERSIST_IMCS_SNAPSHOT_H_
