#ifndef STRATUS_PERSIST_PERSIST_IO_H_
#define STRATUS_PERSIST_PERSIST_IO_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "persist/persist_options.h"
#include "storage/value.h"

namespace stratus {
namespace persist {

/// Seeded fault injector for the file layer, the disk twin of
/// net::FaultInjector: recovery tests drive short/torn writes and I/O errors
/// through it to prove the CRC framing detects and truncates damaged tails
/// instead of replaying them.
class DiskFaultInjector {
 public:
  explicit DiskFaultInjector(const DiskFaultOptions& options)
      : options_(options), rng_(options.seed) {}

  DiskFaultInjector(const DiskFaultInjector&) = delete;
  DiskFaultInjector& operator=(const DiskFaultInjector&) = delete;

  /// Applies write faults to `buf` in place; returns false if the append
  /// should also report an I/O error to the caller (torn writes land damaged
  /// bytes silently, like a real power cut).
  void FilterAppend(std::string* buf);

  bool FailRead();
  bool FailSync();

  uint64_t short_writes() const { return short_writes_.load(std::memory_order_relaxed); }
  uint64_t torn_writes() const { return torn_writes_.load(std::memory_order_relaxed); }
  uint64_t read_errors() const { return read_errors_.load(std::memory_order_relaxed); }
  uint64_t sync_errors() const { return sync_errors_.load(std::memory_order_relaxed); }

 private:
  bool Roll(uint32_t pct);

  DiskFaultOptions options_;
  std::mutex mu_;
  Random rng_;
  std::atomic<uint64_t> short_writes_{0};
  std::atomic<uint64_t> torn_writes_{0};
  std::atomic<uint64_t> read_errors_{0};
  std::atomic<uint64_t> sync_errors_{0};
};

/// Append-only file handle used by the redo archive. All faults are injected
/// here so the archive logic itself stays oblivious.
class AppendFile {
 public:
  ~AppendFile();
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;

  /// Opens (creating if absent) `path` for appending.
  static StatusOr<std::unique_ptr<AppendFile>> Open(const std::string& path,
                                                    DiskFaultInjector* faults);

  Status Append(const std::string& data);
  Status Sync();

  uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  AppendFile(int fd, std::string path, uint64_t size, DiskFaultInjector* faults)
      : fd_(fd), path_(std::move(path)), size_(size), faults_(faults) {}

  int fd_;
  std::string path_;
  uint64_t size_;
  DiskFaultInjector* faults_;
};

/// Reads a whole file. NotFound if absent.
Status ReadFileFully(const std::string& path, std::string* out,
                     DiskFaultInjector* faults = nullptr);

/// Crash-safe whole-file write: tmp file, fsync, rename over `path`, fsync
/// the directory. Readers see either the old contents or the new, never a
/// mix — the invariant checkpoints and the manifest rely on.
Status AtomicWriteFile(const std::string& path, const std::string& data,
                       DiskFaultInjector* faults = nullptr);

Status EnsureDir(const std::string& path);  ///< mkdir -p.
Status ListDir(const std::string& path, std::vector<std::string>* names);  ///< Sorted.
Status RemoveFile(const std::string& path);
Status TruncateFile(const std::string& path, uint64_t size);
bool FileExists(const std::string& path);

// ---------------------------------------------------------------------------
// Checked envelope shared by every whole-file persist format (checkpoint,
// IMCS snapshot, META): [u32 magic][u32 body_len][u32 crc32c(body)][body] —
// the same prefix the wire frames use, so one decoder discipline covers
// network and disk.
// ---------------------------------------------------------------------------
void WrapChecked(uint32_t magic, const std::string& body, std::string* out);
Status UnwrapChecked(uint32_t magic, const std::string& file, std::string* body);

// ---------------------------------------------------------------------------
// Value/row codec for the on-disk formats (varint + zigzag, length-prefixed
// strings). The redo payloads inside archive frames reuse the existing
// EncodeRedoRecord codec instead.
// ---------------------------------------------------------------------------
void PutLengthPrefixed(std::string* out, const std::string& s);
bool GetLengthPrefixed(const std::string& buf, size_t* pos, std::string* out);
void PutValue(std::string* out, const Value& v);
bool GetValue(const std::string& buf, size_t* pos, Value* out);
void PutRow(std::string* out, const Row& row);
bool GetRow(const std::string& buf, size_t* pos, Row* out);

}  // namespace persist
}  // namespace stratus

#endif  // STRATUS_PERSIST_PERSIST_IO_H_
