#ifndef STRATUS_PERSIST_CHECKPOINT_H_
#define STRATUS_PERSIST_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/block.h"
#include "storage/block_store.h"
#include "storage/schema.h"
#include "storage/visibility.h"

namespace stratus {
namespace persist {

/// Dictionary entry for one table: enough to re-create the standby's segment
/// (and identity index) on a cold start, plus the block list in scan order —
/// NoteBlock records blocks in apply-discovery order, so scan order is only
/// reproducible from this recorded list.
struct TableImage {
  ObjectId object_id = 0;
  TenantId tenant = 0;
  std::string name;
  std::vector<ColumnDef> columns;  ///< Current schema (dropped cols = kNull).
  uint8_t im_service = 0;          ///< db ImService enum, stored raw.
  bool identity_index = false;
  std::vector<Dba> blocks;         ///< Scan order.
};

/// Fuzzy capture of one data block: the version chains and the change
/// frontier, taken atomically under the block latch (Block::SnapshotChains).
/// Recovery replays archived redo with scn > frontier against it.
struct BlockImage {
  Dba dba = 0;
  ObjectId object_id = 0;
  TenantId tenant = 0;
  Scn frontier = kInvalidScn;
  std::vector<SlotChainImage> chains;
};

/// One fuzzy checkpoint. `recovery_scn` is the published QuerySCN at
/// checkpoint begin: the QuerySCN protocol guarantees every CV at or below
/// it was applied before any block was captured, so no block's frontier can
/// hide redo below it — replay from recovery_scn is complete. `end_scn` is
/// the QuerySCN at checkpoint end (the begin/end record pair of the classic
/// ARIES layout, collapsed into one atomically-written file).
struct CheckpointImage {
  uint64_t seq = 0;
  Scn recovery_scn = kInvalidScn;
  Scn end_scn = kInvalidScn;
  std::vector<TableImage> tables;
  std::vector<BlockImage> blocks;  ///< Dirty blocks, LSN (frontier) ascending.
  std::vector<std::pair<Xid, TxnStatusInfo>> txns;  ///< Captured at end.
};

void EncodeCheckpoint(const CheckpointImage& img, std::string* out);
Status DecodeCheckpoint(const std::string& file, CheckpointImage* out);

/// Captures every data block of `store` fuzzily — each under its own latch,
/// apply continuing throughout — and orders the images by frontier (LSN)
/// ascending, oldest dirt first.
void CaptureBlockImages(const BlockStore& store, std::vector<BlockImage>* out);

}  // namespace persist
}  // namespace stratus

#endif  // STRATUS_PERSIST_CHECKPOINT_H_
