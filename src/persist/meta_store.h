#ifndef STRATUS_PERSIST_META_STORE_H_
#define STRATUS_PERSIST_META_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "persist/persist_io.h"

namespace stratus {
namespace persist {

/// The durable manifest: a tiny key → uint64 map rewritten atomically
/// (tmp-file-then-rename) on every Flush(). It records which checkpoint and
/// IMCS snapshot are current, per-stream durable redo watermarks, and the
/// fleet shipper cursor positions — the single source of disk truth recovery
/// starts from.
///
/// Keys in use:
///   ckpt/seq, ckpt/scn          current checkpoint and its recovery SCN
///   snap/seq, snap/scn          current IMCS snapshot and its floor SCN
///   durable/s<k>                highest fsynced redo SCN, stream k
///   cursor/s<k>                 fleet shipper cursor seq, stream k
class MetaStore {
 public:
  /// Loads `path` if present and intact; a missing file starts empty, a
  /// corrupt one starts empty and counts as a corrupt load (visible to
  /// tests via corrupt_loads()).
  static StatusOr<std::unique_ptr<MetaStore>> Open(const std::string& path,
                                                   DiskFaultInjector* faults);

  MetaStore(const MetaStore&) = delete;
  MetaStore& operator=(const MetaStore&) = delete;

  uint64_t Get(const std::string& key, uint64_t def) const;
  bool Has(const std::string& key) const;
  void Set(const std::string& key, uint64_t value);

  /// Atomically rewrites the whole map.
  Status Flush();

  std::map<std::string, uint64_t> SnapshotAll() const;
  uint64_t corrupt_loads() const { return corrupt_loads_; }

 private:
  MetaStore(std::string path, DiskFaultInjector* faults)
      : path_(std::move(path)), faults_(faults) {}

  std::string path_;
  DiskFaultInjector* faults_;
  mutable std::mutex mu_;
  std::map<std::string, uint64_t> map_;
  uint64_t corrupt_loads_ = 0;
};

}  // namespace persist
}  // namespace stratus

#endif  // STRATUS_PERSIST_META_STORE_H_
