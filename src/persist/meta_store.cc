#include "persist/meta_store.h"

#include "common/checksum.h"

namespace stratus {
namespace persist {

namespace {
inline constexpr uint32_t kMetaMagic = 0x53544D31;  // "1MTS"
}  // namespace

StatusOr<std::unique_ptr<MetaStore>> MetaStore::Open(const std::string& path,
                                                     DiskFaultInjector* faults) {
  std::unique_ptr<MetaStore> store(new MetaStore(path, faults));
  std::string file;
  Status s = ReadFileFully(path, &file, faults);
  if (s.code() == Code::kNotFound) return store;
  STRATUS_RETURN_IF_ERROR(s);
  std::string body;
  s = UnwrapChecked(kMetaMagic, file, &body);
  if (!s.ok()) {
    // tmp+rename means a valid file is either old or new in full; damage here
    // is injected (or real media corruption). Start from empty disk truth.
    store->corrupt_loads_ = 1;
    return store;
  }
  size_t pos = 0;
  uint64_t count = 0;
  if (!GetVarint64(body, &pos, &count)) {
    store->corrupt_loads_ = 1;
    return store;
  }
  for (uint64_t i = 0; i < count; ++i) {
    std::string key;
    uint64_t value = 0;
    if (!GetLengthPrefixed(body, &pos, &key) || !GetVarint64(body, &pos, &value)) {
      store->map_.clear();
      store->corrupt_loads_ = 1;
      return store;
    }
    store->map_[key] = value;
  }
  return store;
}

uint64_t MetaStore::Get(const std::string& key, uint64_t def) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = map_.find(key);
  return it == map_.end() ? def : it->second;
}

bool MetaStore::Has(const std::string& key) const {
  std::lock_guard<std::mutex> g(mu_);
  return map_.count(key) != 0;
}

void MetaStore::Set(const std::string& key, uint64_t value) {
  std::lock_guard<std::mutex> g(mu_);
  map_[key] = value;
}

Status MetaStore::Flush() {
  std::string body;
  {
    std::lock_guard<std::mutex> g(mu_);
    PutVarint64(&body, map_.size());
    for (const auto& [key, value] : map_) {
      PutLengthPrefixed(&body, key);
      PutVarint64(&body, value);
    }
  }
  std::string file;
  WrapChecked(kMetaMagic, body, &file);
  return AtomicWriteFile(path_, file, faults_);
}

std::map<std::string, uint64_t> MetaStore::SnapshotAll() const {
  std::lock_guard<std::mutex> g(mu_);
  return map_;
}

}  // namespace persist
}  // namespace stratus
