#include "persist/redo_archive.h"

#include <algorithm>
#include <cstdio>

#include "net/wire.h"

namespace stratus {
namespace persist {

namespace {

bool HasCommit(const std::vector<RedoRecord>& records) {
  for (const RedoRecord& rec : records)
    for (const ChangeVector& cv : rec.cvs)
      if (cv.kind == CvKind::kTxnCommit) return true;
  return false;
}

}  // namespace

StatusOr<std::unique_ptr<RedoArchive>> RedoArchive::Open(const Options& options) {
  STRATUS_RETURN_IF_ERROR(EnsureDir(options.dir));
  std::unique_ptr<RedoArchive> archive(new RedoArchive(options));
  STRATUS_RETURN_IF_ERROR(archive->ScanExisting());
  return archive;
}

std::string RedoArchive::SegmentPath(uint64_t index) const {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%08llu.redo",
                static_cast<unsigned long long>(index));
  return options_.dir + "/" + name;
}

Status RedoArchive::ScanExisting() {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<std::string> names;
  Status s = ListDir(options_.dir, &names);
  if (!s.ok() && s.code() != Code::kNotFound) return s;
  for (const std::string& name : names) {
    unsigned long long index = 0;
    if (std::sscanf(name.c_str(), "seg-%08llu.redo", &index) != 1) continue;
    Segment seg;
    seg.index = index;
    seg.path = options_.dir + "/" + name;
    segments_.push_back(std::move(seg));
  }
  std::sort(segments_.begin(), segments_.end(),
            [](const Segment& a, const Segment& b) { return a.index < b.index; });
  uint64_t scanned_records = 0;
  uint64_t scanned_bytes = 0;
  for (Segment& seg : segments_) {
    STRATUS_RETURN_IF_ERROR(ScanSegment(&seg, nullptr, &scanned_records));
    scanned_bytes += seg.bytes;
  }
  // Counters reflect what the archive holds on disk, not just this
  // incarnation's appends, so a scrape right after restart tells the truth.
  archived_records_.store(scanned_records, std::memory_order_relaxed);
  archived_bytes_.store(scanned_bytes, std::memory_order_relaxed);
  if (segments_.empty()) {
    STRATUS_RETURN_IF_ERROR(RollLocked());
  } else {
    auto file = AppendFile::Open(segments_.back().path, options_.faults);
    STRATUS_RETURN_IF_ERROR(file.status());
    active_ = std::move(file).value();
  }
  // Everything that survived the scan is on stable storage by definition.
  durable_scn_.store(appended_scn_.load(std::memory_order_relaxed),
                     std::memory_order_release);
  return Status::OK();
}

Status RedoArchive::ScanSegment(Segment* seg, std::vector<RedoRecord>* out,
                                uint64_t* scanned_records) {
  std::string data;
  Status s = ReadFileFully(seg->path, &data, options_.faults);
  if (s.code() == Code::kNotFound) return Status::OK();
  STRATUS_RETURN_IF_ERROR(s);
  size_t pos = 0;
  while (pos < data.size()) {
    net::Frame frame;
    size_t consumed = 0;
    s = net::DecodeFrame(data.data() + pos, data.size() - pos, &frame, &consumed);
    if (!s.ok()) break;  // kOutOfRange (torn) or kCorruption — truncate here.
    // A frame that passes its CRC still guards against a decoder mismatch.
    std::vector<RedoRecord> records;
    size_t ppos = 0;
    bool payload_ok = true;
    while (ppos < frame.payload.size()) {
      RedoRecord rec;
      if (!DecodeRedoRecord(frame.payload, &ppos, &rec).ok()) {
        payload_ok = false;
        break;
      }
      records.push_back(std::move(rec));
    }
    if (!payload_ok) {
      s = Status::Corruption("archive payload decode failed");
      break;
    }
    if (scanned_records != nullptr) *scanned_records += records.size();
    for (RedoRecord& rec : records) {
      if (rec.scn > appended_scn_.load(std::memory_order_relaxed))
        appended_scn_.store(rec.scn, std::memory_order_relaxed);
      if (rec.scn > seg->max_scn) seg->max_scn = rec.scn;
      if (out != nullptr) out->push_back(std::move(rec));
    }
    if (frame.seq >= next_seq_) next_seq_ = frame.seq + 1;
    pos += consumed;
  }
  if (pos < data.size()) {
    // Damaged or torn tail: cut it off so the bad bytes are gone for good
    // and a later scan cannot trip over them.
    STRATUS_RETURN_IF_ERROR(TruncateFile(seg->path, pos));
    truncated_tails_.fetch_add(1, std::memory_order_relaxed);
  }
  seg->bytes = pos;
  return Status::OK();
}

Status RedoArchive::RollLocked() {
  const uint64_t index = segments_.empty() ? 1 : segments_.back().index + 1;
  Segment seg;
  seg.index = index;
  seg.path = SegmentPath(index);
  auto file = AppendFile::Open(seg.path, options_.faults);
  STRATUS_RETURN_IF_ERROR(file.status());
  active_ = std::move(file).value();
  segments_.push_back(std::move(seg));
  return Status::OK();
}

Status RedoArchive::Append(const std::vector<RedoRecord>& records) {
  if (records.empty()) return Status::OK();
  std::string payload;
  for (const RedoRecord& rec : records) EncodeRedoRecord(rec, &payload);

  net::Frame frame;
  frame.type = net::FrameType::kRedoBatch;
  frame.stream = options_.stream;
  frame.scn = records.back().scn;

  std::lock_guard<std::mutex> g(mu_);
  frame.seq = next_seq_++;
  std::string buf;
  frame.payload = std::move(payload);
  net::EncodeFrame(frame, &buf);

  STRATUS_RETURN_IF_ERROR(active_->Append(buf));
  Segment& seg = segments_.back();
  seg.bytes += buf.size();
  if (frame.scn > seg.max_scn) seg.max_scn = frame.scn;
  archived_records_.fetch_add(records.size(), std::memory_order_relaxed);
  archived_bytes_.fetch_add(buf.size(), std::memory_order_relaxed);
  if (frame.scn > appended_scn_.load(std::memory_order_relaxed))
    appended_scn_.store(frame.scn, std::memory_order_release);

  const bool roll = seg.bytes >= options_.segment_bytes;
  const bool sync = options_.sync == SyncMode::kEveryBatch ||
                    (options_.sync == SyncMode::kCommitBoundary &&
                     (roll || HasCommit(records)));
  if (sync) {
    STRATUS_RETURN_IF_ERROR(active_->Sync());
    fsyncs_.fetch_add(1, std::memory_order_relaxed);
    durable_scn_.store(appended_scn_.load(std::memory_order_relaxed),
                       std::memory_order_release);
  }
  if (roll) STRATUS_RETURN_IF_ERROR(RollLocked());
  return Status::OK();
}

Status RedoArchive::Sync() {
  std::lock_guard<std::mutex> g(mu_);
  if (active_ != nullptr) {
    STRATUS_RETURN_IF_ERROR(active_->Sync());
    fsyncs_.fetch_add(1, std::memory_order_relaxed);
  }
  durable_scn_.store(appended_scn_.load(std::memory_order_relaxed),
                     std::memory_order_release);
  return Status::OK();
}

StatusOr<size_t> RedoArchive::Recycle(Scn floor) {
  std::lock_guard<std::mutex> g(mu_);
  size_t recycled = 0;
  while (segments_.size() > 1 && segments_.front().max_scn != kInvalidScn &&
         segments_.front().max_scn <= floor) {
    STRATUS_RETURN_IF_ERROR(RemoveFile(segments_.front().path));
    segments_.erase(segments_.begin());
    ++recycled;
  }
  segments_recycled_.fetch_add(recycled, std::memory_order_relaxed);
  return recycled;
}

Status RedoArchive::ReadAll(std::vector<RedoRecord>* out) {
  std::lock_guard<std::mutex> g(mu_);
  out->clear();
  for (Segment& seg : segments_) STRATUS_RETURN_IF_ERROR(ScanSegment(&seg, out));
  return Status::OK();
}

size_t RedoArchive::segment_count() const {
  std::lock_guard<std::mutex> g(mu_);
  return segments_.size();
}

}  // namespace persist
}  // namespace stratus
