#include "persist/persist_controller.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "persist/persist_io.h"
#include "persist/recovery.h"

namespace stratus {
namespace persist {

namespace {

std::string StreamKey(const char* prefix, size_t stream) {
  return std::string(prefix) + "/s" + std::to_string(stream);
}

bool HasFaultConfig(const DiskFaultOptions& f) {
  return f.short_write_pct != 0 || f.torn_write_pct != 0 ||
         f.read_error_pct != 0 || f.sync_error_pct != 0;
}

}  // namespace

PersistController::PersistController(const PersistOptions& options,
                                     size_t num_streams)
    : options_(options), configured_streams_(num_streams) {
  if (HasFaultConfig(options_.faults))
    faults_ = std::make_unique<DiskFaultInjector>(options_.faults);
  cursor_seqs_.reserve(num_streams);
  for (size_t k = 0; k < num_streams; ++k)
    cursor_seqs_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
}

PersistController::~PersistController() { StopCheckpointThread(); }

Status PersistController::Open() {
  STRATUS_RETURN_IF_ERROR(EnsureDir(options_.data_dir));
  STRATUS_RETURN_IF_ERROR(EnsureDir(options_.data_dir + "/archive"));
  auto meta = MetaStore::Open(options_.data_dir + "/META", faults_.get());
  STRATUS_RETURN_IF_ERROR(meta.status());
  meta_ = std::move(meta.value());
  checkpoint_scn_.store(meta_->Get("ckpt/scn", kInvalidScn),
                        std::memory_order_release);
  snapshot_scn_.store(meta_->Get("snap/scn", kInvalidScn),
                      std::memory_order_release);
  // The seq keys count every checkpoint/snapshot ever taken against this data
  // dir, so the counters survive a restart instead of restarting from zero.
  checkpoints_.store(meta_->Get("ckpt/seq", 0), std::memory_order_relaxed);
  snapshots_.store(meta_->Get("snap/seq", 0), std::memory_order_relaxed);
  archives_.clear();
  for (size_t k = 0; k < configured_streams_; ++k) {
    RedoArchive::Options o;
    o.dir = options_.data_dir + "/archive/s" + std::to_string(k);
    o.stream = static_cast<uint32_t>(k);
    o.sync = options_.sync;
    o.segment_bytes = options_.segment_bytes;
    o.faults = faults_.get();
    auto archive = RedoArchive::Open(o);
    STRATUS_RETURN_IF_ERROR(archive.status());
    archives_.push_back(std::move(archive.value()));
    cursor_seqs_[k]->store(meta_->Get(StreamKey("cursor", k), 0),
                           std::memory_order_release);
  }
  return Status::OK();
}

void PersistController::StartCheckpointThread(
    std::function<void()> take_checkpoint) {
  if (options_.checkpoint_interval_us <= 0 || ckpt_thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(ckpt_thread_mu_);
    ckpt_thread_stop_ = false;
  }
  ckpt_thread_ = std::thread([this, fn = std::move(take_checkpoint)] {
    std::unique_lock<std::mutex> lock(ckpt_thread_mu_);
    while (!ckpt_thread_stop_) {
      if (ckpt_thread_cv_.wait_for(
              lock, std::chrono::microseconds(options_.checkpoint_interval_us),
              [this] { return ckpt_thread_stop_; })) {
        break;
      }
      lock.unlock();
      fn();
      lock.lock();
    }
  });
}

void PersistController::StopCheckpointThread() {
  {
    std::lock_guard<std::mutex> lock(ckpt_thread_mu_);
    ckpt_thread_stop_ = true;
  }
  ckpt_thread_cv_.notify_all();
  if (ckpt_thread_.joinable()) ckpt_thread_.join();
}

Status PersistController::ArchiveBatch(size_t stream,
                                       const std::vector<RedoRecord>& records) {
  if (stream >= archives_.size())
    return Status::InvalidArgument("unknown archive stream");
  return archives_[stream]->Append(records);
}

Scn PersistController::DurableScn(size_t stream) const {
  if (stream >= archives_.size()) return kInvalidScn;
  return archives_[stream]->durable_scn();
}

Scn PersistController::MinDurableScn() const {
  Scn min = kInvalidScn;
  bool first = true;
  for (const auto& a : archives_) {
    const Scn d = a->durable_scn();
    if (first || d < min) min = d;
    first = false;
  }
  return min;
}

Status PersistController::SyncAll() {
  for (const auto& a : archives_) STRATUS_RETURN_IF_ERROR(a->Sync());
  return Status::OK();
}

std::string PersistController::CkptPath(uint64_t seq) const {
  char name[32];
  std::snprintf(name, sizeof(name), "ckpt-%08" PRIu64 ".ckpt", seq);
  return options_.data_dir + "/" + name;
}

std::string PersistController::SnapPath(uint64_t seq) const {
  char name[32];
  std::snprintf(name, sizeof(name), "imcs-%08" PRIu64 ".snap", seq);
  return options_.data_dir + "/" + name;
}

void PersistController::PruneFiles(const std::string& prefix,
                                   const std::string& suffix,
                                   uint64_t keep_seq) {
  std::vector<std::string> names;
  if (!ListDir(options_.data_dir, &names).ok()) return;
  for (const std::string& name : names) {
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
      continue;
    const uint64_t seq = std::strtoull(
        name.c_str() + prefix.size(), nullptr, 10);
    if (seq != keep_seq) RemoveFile(options_.data_dir + "/" + name);
  }
}

Status PersistController::WriteCheckpoint(CheckpointImage* img) {
  img->seq = meta_->Get("ckpt/seq", 0) + 1;
  std::string file;
  EncodeCheckpoint(*img, &file);
  STRATUS_RETURN_IF_ERROR(AtomicWriteFile(CkptPath(img->seq), file, faults_.get()));
  meta_->Set("ckpt/seq", img->seq);
  meta_->Set("ckpt/scn", img->recovery_scn);
  for (size_t k = 0; k < archives_.size(); ++k) {
    meta_->Set(StreamKey("durable", k), archives_[k]->durable_scn());
    meta_->Set(StreamKey("cursor", k),
               cursor_seqs_[k]->load(std::memory_order_acquire));
  }
  STRATUS_RETURN_IF_ERROR(meta_->Flush());
  // Only after the manifest points at the new checkpoint is the old one (and
  // the redo below the new floor) dead weight.
  PruneFiles("ckpt-", ".ckpt", img->seq);
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  checkpoint_scn_.store(img->recovery_scn, std::memory_order_release);
  if (options_.recycle_segments) STRATUS_RETURN_IF_ERROR(RecycleArchives());
  return Status::OK();
}

Status PersistController::WriteImcsSnapshot(ImcsSnapshotImage* img) {
  img->seq = meta_->Get("snap/seq", 0) + 1;
  std::string file;
  EncodeImcsSnapshot(*img, &file);
  STRATUS_RETURN_IF_ERROR(AtomicWriteFile(SnapPath(img->seq), file, faults_.get()));
  meta_->Set("snap/seq", img->seq);
  meta_->Set("snap/scn", img->floor_scn);
  STRATUS_RETURN_IF_ERROR(meta_->Flush());
  PruneFiles("imcs-", ".snap", img->seq);
  snapshots_.fetch_add(1, std::memory_order_relaxed);
  snapshot_scn_.store(img->floor_scn, std::memory_order_release);
  return Status::OK();
}

Status PersistController::RecycleArchives() {
  // Redo at or below min(checkpoint recovery SCN, snapshot floor) can never
  // be replayed again; an absent snapshot (scn 0 = kInvalidScn) means the
  // checkpoint alone sets the floor.
  Scn floor = checkpoint_scn_.load(std::memory_order_acquire);
  if (floor == kInvalidScn) return Status::OK();
  const Scn snap = snapshot_scn_.load(std::memory_order_acquire);
  if (options_.snapshot_imcs && snap != kInvalidScn && snap < floor)
    floor = snap;
  for (const auto& a : archives_) {
    auto recycled = a->Recycle(floor);
    STRATUS_RETURN_IF_ERROR(recycled.status());
  }
  return Status::OK();
}

Status PersistController::LoadLatest(std::unique_ptr<CheckpointImage>* ckpt,
                                     std::unique_ptr<ImcsSnapshotImage>* snap) {
  ckpt->reset();
  snap->reset();
  const uint64_t ckpt_seq = meta_->Get("ckpt/seq", 0);
  if (ckpt_seq != 0) {
    std::string file;
    STRATUS_RETURN_IF_ERROR(ReadFileFully(CkptPath(ckpt_seq), &file, faults_.get()));
    auto img = std::make_unique<CheckpointImage>();
    STRATUS_RETURN_IF_ERROR(DecodeCheckpoint(file, img.get()));
    *ckpt = std::move(img);
  }
  const uint64_t snap_seq = meta_->Get("snap/seq", 0);
  if (snap_seq != 0 && options_.snapshot_imcs) {
    std::string file;
    STRATUS_RETURN_IF_ERROR(ReadFileFully(SnapPath(snap_seq), &file, faults_.get()));
    auto img = std::make_unique<ImcsSnapshotImage>();
    STRATUS_RETURN_IF_ERROR(DecodeImcsSnapshot(file, img.get()));
    *snap = std::move(img);
  }
  return Status::OK();
}

Status PersistController::ReadArchives(
    std::vector<std::vector<RedoRecord>>* per_stream) {
  per_stream->assign(archives_.size(), {});
  for (size_t k = 0; k < archives_.size(); ++k)
    STRATUS_RETURN_IF_ERROR(archives_[k]->ReadAll(&(*per_stream)[k]));
  return Status::OK();
}

void PersistController::NoteCursorSeq(size_t stream, uint64_t seq) {
  if (stream >= cursor_seqs_.size()) return;
  cursor_seqs_[stream]->store(seq, std::memory_order_release);
}

uint64_t PersistController::CursorSeq(size_t stream) const {
  if (stream >= cursor_seqs_.size()) return 0;
  return cursor_seqs_[stream]->load(std::memory_order_acquire);
}

void PersistController::NoteRecovery(const RecoveryResult& result) {
  recoveries_.fetch_add(1, std::memory_order_relaxed);
  replayed_records_.fetch_add(result.replayed_records,
                              std::memory_order_relaxed);
  restored_blocks_.fetch_add(result.restored_blocks, std::memory_order_relaxed);
  restored_smus_.fetch_add(result.restored_smus, std::memory_order_relaxed);
  recovered_scn_.store(result.recovered_scn, std::memory_order_release);
}

PersistStats PersistController::Stats() const {
  PersistStats s;
  for (const auto& a : archives_) {
    s.archived_records += a->archived_records();
    s.archived_bytes += a->archived_bytes();
    s.fsyncs += a->fsyncs();
    s.truncated_tails += a->truncated_tails();
    s.segments += a->segment_count();
    s.segments_recycled += a->segments_recycled();
  }
  s.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  s.snapshots = snapshots_.load(std::memory_order_relaxed);
  s.recoveries = recoveries_.load(std::memory_order_relaxed);
  s.replayed_records = replayed_records_.load(std::memory_order_relaxed);
  s.restored_blocks = restored_blocks_.load(std::memory_order_relaxed);
  s.restored_smus = restored_smus_.load(std::memory_order_relaxed);
  s.durable_scn = MinDurableScn();
  s.checkpoint_scn = checkpoint_scn_.load(std::memory_order_acquire);
  s.snapshot_scn = snapshot_scn_.load(std::memory_order_acquire);
  s.recovered_scn = recovered_scn_.load(std::memory_order_acquire);
  if (faults_ != nullptr) {
    s.faults_injected = faults_->short_writes() + faults_->torn_writes() +
                        faults_->read_errors() + faults_->sync_errors();
  }
  return s;
}

}  // namespace persist
}  // namespace stratus
