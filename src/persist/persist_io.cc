#include "persist/persist_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <dirent.h>

#include "common/checksum.h"

namespace stratus {
namespace persist {

namespace {

Status Errno(const std::string& op, const std::string& path) {
  return Status::Internal(op + " " + path + ": " + std::strerror(errno));
}

uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

Status WriteAll(int fd, const char* data, size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("write: ") + std::strerror(errno));
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// DiskFaultInjector
// ---------------------------------------------------------------------------

bool DiskFaultInjector::Roll(uint32_t pct) {
  if (pct == 0) return false;
  std::lock_guard<std::mutex> g(mu_);
  return rng_.Percent(pct);
}

void DiskFaultInjector::FilterAppend(std::string* buf) {
  if (buf->empty()) return;
  if (Roll(options_.torn_write_pct)) {
    // Keep a non-empty prefix and damage one bit inside it: the classic torn
    // sector. The CRC must catch the damage; the truncation must stop the
    // scan without consuming later (never-written) frames.
    std::lock_guard<std::mutex> g(mu_);
    const size_t keep = 1 + rng_.Uniform(buf->size());
    buf->resize(keep);
    const size_t bit = rng_.Uniform(keep * 8);
    (*buf)[bit / 8] = static_cast<char>((*buf)[bit / 8] ^ (1u << (bit % 8)));
    torn_writes_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (Roll(options_.short_write_pct)) {
    std::lock_guard<std::mutex> g(mu_);
    buf->resize(rng_.Uniform(buf->size()));  // May drop the whole append.
    short_writes_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool DiskFaultInjector::FailRead() {
  if (!Roll(options_.read_error_pct)) return false;
  read_errors_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool DiskFaultInjector::FailSync() {
  if (!Roll(options_.sync_error_pct)) return false;
  sync_errors_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

// ---------------------------------------------------------------------------
// AppendFile
// ---------------------------------------------------------------------------

AppendFile::~AppendFile() {
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<std::unique_ptr<AppendFile>> AppendFile::Open(const std::string& path,
                                                       DiskFaultInjector* faults) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return Errno("open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Errno("fstat", path);
  }
  return std::unique_ptr<AppendFile>(
      new AppendFile(fd, path, static_cast<uint64_t>(st.st_size), faults));
}

Status AppendFile::Append(const std::string& data) {
  std::string buf = data;
  if (faults_ != nullptr) faults_->FilterAppend(&buf);
  STRATUS_RETURN_IF_ERROR(WriteAll(fd_, buf.data(), buf.size()));
  size_ += buf.size();
  if (buf.size() != data.size())
    return Status::Internal("short write on " + path_);
  return Status::OK();
}

Status AppendFile::Sync() {
  if (faults_ != nullptr && faults_->FailSync())
    return Status::Internal("injected fsync failure on " + path_);
  if (::fsync(fd_) != 0) return Errno("fsync", path_);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Whole-file helpers
// ---------------------------------------------------------------------------

Status ReadFileFully(const std::string& path, std::string* out,
                     DiskFaultInjector* faults) {
  if (faults != nullptr && faults->FailRead())
    return Status::Internal("injected read failure on " + path);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Errno("open", path);
  }
  out->clear();
  char buf[64 * 1024];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Errno("read", path);
    }
    if (r == 0) break;
    out->append(buf, static_cast<size_t>(r));
  }
  ::close(fd);
  return Status::OK();
}

Status AtomicWriteFile(const std::string& path, const std::string& data,
                       DiskFaultInjector* faults) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open", tmp);
  std::string buf = data;
  if (faults != nullptr) faults->FilterAppend(&buf);
  Status s = WriteAll(fd, buf.data(), buf.size());
  if (s.ok() && faults != nullptr && faults->FailSync())
    s = Status::Internal("injected fsync failure on " + tmp);
  if (s.ok() && ::fsync(fd) != 0) s = Errno("fsync", tmp);
  ::close(fd);
  if (s.ok() && buf.size() != data.size())
    s = Status::Internal("short write on " + tmp);
  if (!s.ok()) {
    ::unlink(tmp.c_str());
    return s;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Errno("rename", path);
  }
  // fsync the parent directory so the rename itself is durable.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

Status EnsureDir(const std::string& path) {
  std::string cur;
  size_t i = 0;
  while (i <= path.size()) {
    if (i == path.size() || path[i] == '/') {
      cur = path.substr(0, i == path.size() ? i : i + 1);
      if (!cur.empty() && cur != "/" &&
          ::mkdir(cur.c_str(), 0755) != 0 && errno != EEXIST) {
        return Errno("mkdir", cur);
      }
    }
    ++i;
  }
  return Status::OK();
}

Status ListDir(const std::string& path, std::vector<std::string>* names) {
  names->clear();
  DIR* d = ::opendir(path.c_str());
  if (d == nullptr) {
    if (errno == ENOENT) return Status::NotFound("no such dir: " + path);
    return Errno("opendir", path);
  }
  while (struct dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name != "." && name != "..") names->push_back(name);
  }
  ::closedir(d);
  std::sort(names->begin(), names->end());
  return Status::OK();
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) return Errno("unlink", path);
  return Status::OK();
}

Status TruncateFile(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0)
    return Errno("truncate", path);
  return Status::OK();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

// ---------------------------------------------------------------------------
// Checked envelope
// ---------------------------------------------------------------------------

void WrapChecked(uint32_t magic, const std::string& body, std::string* out) {
  out->clear();
  out->reserve(body.size() + 12);
  PutU32(out, magic);
  PutU32(out, static_cast<uint32_t>(body.size()));
  PutU32(out, Crc32c(body.data(), body.size()));
  out->append(body);
}

Status UnwrapChecked(uint32_t magic, const std::string& file, std::string* body) {
  if (file.size() < 12) return Status::Corruption("file shorter than envelope");
  if (LoadU32(file.data()) != magic) return Status::Corruption("bad file magic");
  const uint32_t len = LoadU32(file.data() + 4);
  if (file.size() < 12 + static_cast<size_t>(len))
    return Status::Corruption("file body truncated");
  const uint32_t want = LoadU32(file.data() + 8);
  if (Crc32c(file.data() + 12, len) != want)
    return Status::Corruption("file CRC mismatch");
  body->assign(file.data() + 12, len);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Value codec
// ---------------------------------------------------------------------------

void PutLengthPrefixed(std::string* out, const std::string& s) {
  PutVarint64(out, s.size());
  out->append(s);
}

bool GetLengthPrefixed(const std::string& buf, size_t* pos, std::string* out) {
  uint64_t n = 0;
  if (!GetVarint64(buf, pos, &n)) return false;
  if (*pos + n > buf.size()) return false;
  out->assign(buf.data() + *pos, n);
  *pos += n;
  return true;
}

void PutValue(std::string* out, const Value& v) {
  out->push_back(static_cast<char>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      PutVarint64(out, ZigzagEncode(v.as_int()));
      break;
    case ValueType::kString:
      PutLengthPrefixed(out, v.as_string());
      break;
  }
}

bool GetValue(const std::string& buf, size_t* pos, Value* out) {
  if (*pos >= buf.size()) return false;
  const uint8_t type = static_cast<uint8_t>(buf[(*pos)++]);
  switch (static_cast<ValueType>(type)) {
    case ValueType::kNull:
      *out = Value::Null();
      return true;
    case ValueType::kInt: {
      uint64_t z = 0;
      if (!GetVarint64(buf, pos, &z)) return false;
      *out = Value(ZigzagDecode(z));
      return true;
    }
    case ValueType::kString: {
      std::string s;
      if (!GetLengthPrefixed(buf, pos, &s)) return false;
      *out = Value(std::move(s));
      return true;
    }
  }
  return false;
}

void PutRow(std::string* out, const Row& row) {
  PutVarint64(out, row.size());
  for (const Value& v : row) PutValue(out, v);
}

bool GetRow(const std::string& buf, size_t* pos, Row* out) {
  uint64_t n = 0;
  if (!GetVarint64(buf, pos, &n)) return false;
  out->clear();
  out->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Value v;
    if (!GetValue(buf, pos, &v)) return false;
    out->push_back(std::move(v));
  }
  return true;
}

}  // namespace persist
}  // namespace stratus
