#ifndef STRATUS_PERSIST_PERSIST_CONTROLLER_H_
#define STRATUS_PERSIST_PERSIST_CONTROLLER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "persist/checkpoint.h"
#include "persist/imcs_snapshot.h"
#include "persist/meta_store.h"
#include "persist/persist_options.h"
#include "persist/redo_archive.h"

namespace stratus {
namespace persist {

/// Point-in-time counters for metrics export and the /v/persist view.
struct PersistStats {
  uint64_t archived_records = 0;
  uint64_t archived_bytes = 0;
  uint64_t fsyncs = 0;
  uint64_t truncated_tails = 0;
  uint64_t segments = 0;
  uint64_t segments_recycled = 0;
  uint64_t checkpoints = 0;
  uint64_t snapshots = 0;
  uint64_t recoveries = 0;
  uint64_t replayed_records = 0;
  uint64_t restored_blocks = 0;
  uint64_t restored_smus = 0;
  Scn durable_scn = kInvalidScn;     ///< Min across streams.
  Scn checkpoint_scn = kInvalidScn;  ///< Recovery-start SCN of latest ckpt.
  Scn snapshot_scn = kInvalidScn;
  Scn recovered_scn = kInvalidScn;   ///< Last recovery's result.
  uint64_t faults_injected = 0;
};

/// The standby's durability front door: owns the data directory layout — one
/// RedoArchive per shipped stream, the checkpoint/snapshot files, the META
/// manifest — plus the optional background checkpoint thread. Capture and
/// restore of database state stay in the db layer (StandbyDb builds the
/// images and runs the RecoveryManager); this class owns only files and
/// scheduling, so it has no upward dependency.
class PersistController {
 public:
  PersistController(const PersistOptions& options, size_t num_streams);
  ~PersistController();

  PersistController(const PersistController&) = delete;
  PersistController& operator=(const PersistController&) = delete;

  /// Creates the directory tree, opens META and every stream archive
  /// (scanning segments and truncating torn tails).
  Status Open();

  /// Starts the background checkpoint thread if a cadence is configured.
  /// `take_checkpoint` is the db-layer capture (StandbyDb::TakeCheckpoint).
  void StartCheckpointThread(std::function<void()> take_checkpoint);
  void StopCheckpointThread();

  // -- Archiving (the ReceivedLog durable-sink tee calls this inline). ------
  Status ArchiveBatch(size_t stream, const std::vector<RedoRecord>& records);
  Scn DurableScn(size_t stream) const;
  Scn MinDurableScn() const;
  Status SyncAll();

  // -- Checkpoint / snapshot persistence. -----------------------------------
  /// Writes `img` (tmp+rename), updates META (ckpt/seq, ckpt/scn, durable
  /// watermarks, cursor positions), prunes older checkpoint files, and
  /// recycles archive segments below min(ckpt recovery SCN, snapshot floor).
  Status WriteCheckpoint(CheckpointImage* img);
  Status WriteImcsSnapshot(ImcsSnapshotImage* img);

  /// Loads the manifest-current checkpoint / snapshot. Absent (or never
  /// written) images come back as nullptr.
  Status LoadLatest(std::unique_ptr<CheckpointImage>* ckpt,
                    std::unique_ptr<ImcsSnapshotImage>* snap);

  /// Reads every stream's surviving archived redo.
  Status ReadArchives(std::vector<std::vector<RedoRecord>>* per_stream);

  // -- Fleet metadata (satellite: cursor positions as disk truth). ----------
  /// Remembers a shipper cursor position; persisted with the next checkpoint
  /// (and on Close) rather than per-advance, keeping the hot path clean.
  void NoteCursorSeq(size_t stream, uint64_t seq);
  uint64_t CursorSeq(size_t stream) const;

  void NoteRecovery(const struct RecoveryResult& result);

  size_t num_streams() const { return archives_.size(); }
  MetaStore* meta() { return meta_.get(); }
  DiskFaultInjector* faults() { return faults_.get(); }
  const PersistOptions& options() const { return options_; }
  PersistStats Stats() const;

 private:
  std::string CkptPath(uint64_t seq) const;
  std::string SnapPath(uint64_t seq) const;
  Status RecycleArchives();
  void PruneFiles(const std::string& prefix, const std::string& suffix,
                  uint64_t keep_seq);

  PersistOptions options_;
  size_t configured_streams_;
  std::unique_ptr<DiskFaultInjector> faults_;
  std::unique_ptr<MetaStore> meta_;
  std::vector<std::unique_ptr<RedoArchive>> archives_;

  std::vector<std::unique_ptr<std::atomic<uint64_t>>> cursor_seqs_;

  std::atomic<uint64_t> checkpoints_{0};
  std::atomic<uint64_t> snapshots_{0};
  std::atomic<uint64_t> recoveries_{0};
  std::atomic<uint64_t> replayed_records_{0};
  std::atomic<uint64_t> restored_blocks_{0};
  std::atomic<uint64_t> restored_smus_{0};
  std::atomic<Scn> checkpoint_scn_{kInvalidScn};
  std::atomic<Scn> snapshot_scn_{kInvalidScn};
  std::atomic<Scn> recovered_scn_{kInvalidScn};

  std::mutex ckpt_thread_mu_;
  std::condition_variable ckpt_thread_cv_;
  std::thread ckpt_thread_;
  bool ckpt_thread_stop_ = false;
};

}  // namespace persist
}  // namespace stratus

#endif  // STRATUS_PERSIST_PERSIST_CONTROLLER_H_
