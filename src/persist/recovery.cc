#include "persist/recovery.h"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "storage/block.h"

namespace stratus {
namespace persist {

namespace {

struct Touch {
  TenantId tenant;
  Dba dba;
  SlotId slot;
};

bool IsDataCv(CvKind kind) {
  return kind == CvKind::kInsert || kind == CvKind::kUpdate ||
         kind == CvKind::kDelete;
}

}  // namespace

StatusOr<RecoveryResult> RecoveryManager::Recover(
    const CheckpointImage* ckpt, const ImcsSnapshotImage* snap,
    std::vector<std::vector<RedoRecord>> stream_records,
    const std::function<bool(ObjectId, Schema*)>& schema_of) {
  RecoveryResult result;

  // -- Phase 1: restore the dictionary and the row store from the checkpoint.
  if (ckpt != nullptr) {
    result.checkpoint_loaded = true;
    result.checkpoint_scn = ckpt->recovery_scn;
    if (hooks_.restore_table) {
      for (const TableImage& t : ckpt->tables) hooks_.restore_table(t);
    }
    for (const BlockImage& img : ckpt->blocks) {
      Block* b = blocks_->EnsureBlock(img.dba, img.object_id, img.tenant);
      if (b == nullptr)
        return Status::Corruption("checkpoint names a txn-table dba");
      b->RestoreChains(img.chains, img.frontier);
      ++result.restored_blocks;
      if (hooks_.restore_block) hooks_.restore_block(img);
    }
    txns_->Restore(ckpt->txns);
  }

  // -- Phase 2: reload the columnar snapshot (resume-from-SCN, not rebuild).
  const bool have_snap = snap != nullptr && im_store_ != nullptr;
  if (have_snap) {
    auto restored = LoadImcsSnapshot(*snap, im_store_, schema_of);
    STRATUS_RETURN_IF_ERROR(restored.status());
    result.restored_smus = restored.value();
    result.snapshot_loaded = true;
    result.snapshot_scn = snap->floor_scn;
  }

  // -- Phase 3: replay archived redo from the recovery floor.
  //
  // Floor = min(checkpoint recovery SCN, snapshot floor): the row store needs
  // nothing below the former, the IMCS invalidation mining nothing below the
  // latter. kInvalidScn (no checkpoint) replays everything.
  Scn floor = ckpt != nullptr ? ckpt->recovery_scn : kInvalidScn;
  if (result.snapshot_loaded && snap->floor_scn < floor)
    floor = snap->floor_scn;
  result.replay_floor = floor;

  Scn max_seen = ckpt != nullptr ? std::max(ckpt->recovery_scn, ckpt->end_scn)
                                 : kInvalidScn;

  // K-way merge of the per-stream archives by SCN (each stream is already
  // SCN-ascending — delivery order is archive order).
  using HeapItem = std::pair<Scn, size_t>;  // (scn of head, stream)
  std::vector<size_t> cursor(stream_records.size(), 0);
  auto cmp = [](const HeapItem& a, const HeapItem& b) { return a.first > b.first; };
  std::priority_queue<HeapItem, std::vector<HeapItem>, decltype(cmp)> heap(cmp);
  for (size_t k = 0; k < stream_records.size(); ++k)
    if (!stream_records[k].empty())
      heap.push({stream_records[k][0].scn, k});

  // Mining-lite journal: per-XID DML touches seen during replay. A begin seen
  // during replay guarantees the touch set is complete (a transaction's begin
  // precedes its first DML in SCN order on its own stream).
  std::unordered_map<Xid, std::vector<Touch>> touches;
  std::unordered_set<Xid> begin_seen;

  while (!heap.empty()) {
    const size_t k = heap.top().second;
    heap.pop();
    RedoRecord& rec = stream_records[k][cursor[k]];
    if (++cursor[k] < stream_records[k].size())
      heap.push({stream_records[k][cursor[k]].scn, k});

    if (rec.scn < floor) continue;  // Fully covered by checkpoint + snapshot.
    ++result.replayed_records;

    for (ChangeVector& cv : rec.cvs) {
      switch (cv.kind) {
        case CvKind::kInsert:
        case CvKind::kUpdate:
        case CvKind::kDelete: {
          ++result.replayed_cvs;
          Block* b = blocks_->EnsureBlock(cv.dba, cv.object_id, cv.tenant);
          if (b == nullptr)
            return Status::Corruption("data CV targets a txn-table dba");
          if (have_snap) {
            touches[cv.xid].push_back(Touch{cv.tenant, cv.dba, cv.slot});
          }
          // The frontier gate: at or below it the checkpointed chains already
          // contain this CV's effect.
          if (cv.scn <= b->last_change_scn()) break;
          Status s;
          if (cv.kind == CvKind::kInsert) {
            s = b->ApplyInsert(cv.slot, cv.xid, cv.after, cv.scn);
          } else if (cv.kind == CvKind::kUpdate) {
            s = b->ApplyUpdate(cv.slot, cv.xid, cv.after, cv.scn);
          } else {
            s = b->ApplyDelete(cv.slot, cv.xid, cv.scn);
          }
          if (!s.ok())
            return Status::Corruption("redo replay failed at scn " +
                                      std::to_string(cv.scn) + ": " + s.message());
          ++result.applied_cvs;
          if (hooks_.note_applied) hooks_.note_applied(cv);
          break;
        }
        case CvKind::kTxnBegin:
          txns_->Begin(cv.xid);
          begin_seen.insert(cv.xid);
          break;
        case CvKind::kTxnCommit: {
          txns_->Commit(cv.xid, cv.scn);
          if (have_snap && cv.scn > result.snapshot_scn) {
            auto it = touches.find(cv.xid);
            if (begin_seen.count(cv.xid) != 0) {
              if (it != touches.end()) {
                for (const Touch& t : it->second) {
                  result.row_invalidations +=
                      im_store_->MarkRowInvalid(t.dba, t.slot);
                }
              }
            } else if (cv.im_flag) {
              // Straddler: the transaction began below the replay floor, so
              // its touch set is incomplete. Same fallback as online mining:
              // coarsely invalidate the tenant's IMCUs.
              im_store_->CoarseInvalidateTenant(cv.tenant);
              ++result.coarse_invalidations;
            }
          }
          touches.erase(cv.xid);
          break;
        }
        case CvKind::kTxnAbort:
          txns_->Abort(cv.xid);
          touches.erase(cv.xid);  // Aborted rows are invisible; no mining.
          break;
        case CvKind::kDdlMarker:
          if (hooks_.apply_ddl) hooks_.apply_ddl(cv.ddl, cv.scn);
          break;
        case CvKind::kHeartbeat:
          break;
      }
      if (cv.kind != CvKind::kHeartbeat && cv.scn > max_seen) max_seen = cv.scn;
    }
  }

  result.recovered_scn = max_seen;
  return result;
}

}  // namespace persist
}  // namespace stratus
