#include "persist/imcs_snapshot.h"

#include <algorithm>

#include "common/checksum.h"
#include "imcs/imcu.h"
#include "persist/persist_io.h"

namespace stratus {
namespace persist {

namespace {

inline constexpr uint32_t kSnapMagic = 0x534D4931;  // "1IMS"

Status Corrupt(const char* what) {
  return Status::Corruption(std::string("imcs snapshot: bad ") + what);
}

void PutWords(std::string* out, const std::vector<uint64_t>& words) {
  PutVarint64(out, words.size());
  for (uint64_t w : words) PutVarint64(out, w);
}

bool GetWords(const std::string& buf, size_t* pos, std::vector<uint64_t>* words) {
  uint64_t n = 0;
  if (!GetVarint64(buf, pos, &n)) return false;
  words->clear();
  words->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t w = 0;
    if (!GetVarint64(buf, pos, &w)) return false;
    words->push_back(w);
  }
  return true;
}

}  // namespace

void EncodeImcsSnapshot(const ImcsSnapshotImage& img, std::string* out) {
  std::string body;
  PutVarint64(&body, img.seq);
  PutVarint64(&body, img.floor_scn);
  PutVarint64(&body, img.smus.size());
  for (const SmuImage& s : img.smus) {
    PutVarint64(&body, s.object_id);
    PutVarint64(&body, s.tenant);
    PutVarint64(&body, s.snapshot_scn);
    PutVarint64(&body, s.dbas.size());
    for (Dba dba : s.dbas) PutVarint64(&body, dba);
    PutVarint64(&body, s.column_types.size());
    for (uint8_t t : s.column_types) body.push_back(static_cast<char>(t));
    PutWords(&body, s.present_words);
    PutWords(&body, s.invalid_words);
    for (const std::string& col : s.columns) {
      PutVarint64(&body, col.size());
      body.append(col);
    }
  }
  WrapChecked(kSnapMagic, body, out);
}

Status DecodeImcsSnapshot(const std::string& file, ImcsSnapshotImage* out) {
  std::string body;
  STRATUS_RETURN_IF_ERROR(UnwrapChecked(kSnapMagic, file, &body));
  size_t pos = 0;
  uint64_t v = 0;
  if (!GetVarint64(body, &pos, &out->seq)) return Corrupt("seq");
  if (!GetVarint64(body, &pos, &v)) return Corrupt("floor scn");
  out->floor_scn = v;
  uint64_t nsmus = 0;
  if (!GetVarint64(body, &pos, &nsmus)) return Corrupt("smu count");
  out->smus.clear();
  out->smus.reserve(nsmus);
  for (uint64_t i = 0; i < nsmus; ++i) {
    SmuImage s;
    if (!GetVarint64(body, &pos, &s.object_id)) return Corrupt("object id");
    if (!GetVarint64(body, &pos, &v)) return Corrupt("tenant");
    s.tenant = static_cast<TenantId>(v);
    if (!GetVarint64(body, &pos, &v)) return Corrupt("snapshot scn");
    s.snapshot_scn = v;
    uint64_t ndbas = 0;
    if (!GetVarint64(body, &pos, &ndbas)) return Corrupt("dba count");
    for (uint64_t d = 0; d < ndbas; ++d) {
      if (!GetVarint64(body, &pos, &v)) return Corrupt("dba");
      s.dbas.push_back(v);
    }
    uint64_t ncols = 0;
    if (!GetVarint64(body, &pos, &ncols)) return Corrupt("column count");
    for (uint64_t c = 0; c < ncols; ++c) {
      if (pos >= body.size()) return Corrupt("column type");
      s.column_types.push_back(static_cast<uint8_t>(body[pos++]));
    }
    if (!GetWords(body, &pos, &s.present_words)) return Corrupt("present bitmap");
    if (!GetWords(body, &pos, &s.invalid_words)) return Corrupt("invalid bitmap");
    s.columns.resize(ncols);
    for (uint64_t c = 0; c < ncols; ++c) {
      uint64_t len = 0;
      if (!GetVarint64(body, &pos, &len)) return Corrupt("column length");
      if (pos + len > body.size()) return Corrupt("column body");
      s.columns[c].assign(body.data() + pos, len);
      pos += len;
    }
    out->smus.push_back(std::move(s));
  }
  return Status::OK();
}

void CaptureImcsSnapshot(const ImStore& store, ImcsSnapshotImage* out) {
  out->smus.clear();
  out->floor_scn = kInvalidScn;
  for (const auto& smu : store.AllSmus()) {
    if (smu->state() != SmuState::kReady) continue;
    const std::shared_ptr<const Imcu> imcu = smu->imcu();
    if (imcu == nullptr) continue;
    SmuImage img;
    img.object_id = smu->object_id();
    img.tenant = smu->tenant();
    img.snapshot_scn = smu->snapshot_scn();
    img.dbas = smu->dbas();
    const size_t rows = imcu->num_rows();
    img.present_words.assign((rows + 63) / 64, 0);
    for (size_t r = 0; r < rows; ++r)
      if (imcu->Present(static_cast<uint32_t>(r)))
        img.present_words[r >> 6] |= 1ull << (r & 63);
    smu->SnapshotInvalid(&img.invalid_words);
    const size_t ncols = imcu->num_columns();
    img.column_types.reserve(ncols);
    img.columns.resize(ncols);
    for (size_t c = 0; c < ncols; ++c) {
      const ColumnVector& col = imcu->column(c);
      img.column_types.push_back(static_cast<uint8_t>(col.type()));
      // Encoded physical form straight off the immutable vector — capture
      // never boxes values, resume never rebuilds dictionaries.
      col.SerializeTo(&img.columns[c]);
    }
    if (out->floor_scn == kInvalidScn || img.snapshot_scn < out->floor_scn)
      out->floor_scn = img.snapshot_scn;
    out->smus.push_back(std::move(img));
  }
}

StatusOr<size_t> LoadImcsSnapshot(
    const ImcsSnapshotImage& img, ImStore* store,
    const std::function<bool(ObjectId, Schema*)>& schema_of) {
  size_t restored = 0;
  for (const SmuImage& s : img.smus) {
    Schema schema;
    if (!schema_of(s.object_id, &schema)) continue;  // Object dropped since.
    auto smu = std::make_shared<Smu>(s.object_id, s.tenant, s.snapshot_scn,
                                     s.dbas);
    STRATUS_RETURN_IF_ERROR(store->RegisterSmu(smu, nullptr));
    auto imcu = std::make_unique<Imcu>(s.object_id, s.tenant, s.snapshot_scn,
                                       s.dbas, schema);
    const size_t rows = imcu->num_rows();
    for (size_t r = 0; r < rows; ++r)
      if (r / 64 < s.present_words.size() &&
          ((s.present_words[r >> 6] >> (r & 63)) & 1))
        imcu->SetPresent(static_cast<uint32_t>(r));
    std::vector<std::unique_ptr<ColumnVector>> cols;
    cols.reserve(s.columns.size());
    bool columns_ok = true;
    for (size_t c = 0; c < s.columns.size(); ++c) {
      size_t cpos = 0;
      std::unique_ptr<ColumnVector> col =
          DeserializeColumnVector(s.columns[c], &cpos);
      // Row-count and type mismatches mean the image no longer matches the
      // live schema (or a decoder drift): skip the SMU, population rebuilds
      // its range from the recovered row store.
      if (col == nullptr || col->size() != rows ||
          col->type() != static_cast<ValueType>(s.column_types[c])) {
        columns_ok = false;
        break;
      }
      cols.push_back(std::move(col));
    }
    if (!columns_ok) {
      store->AbandonSmu(smu);
      continue;
    }
    imcu->SetColumns(std::move(cols));
    if (store->WouldExceedCapacity(imcu->ApproxBytes())) {
      store->AbandonSmu(smu);
      continue;
    }
    STRATUS_RETURN_IF_ERROR(store->AttachImcu(smu, std::move(imcu), nullptr));
    // Re-arm the invalidity the pre-crash SMU had accumulated.
    for (size_t r = 0; r < rows; ++r) {
      if (r / 64 < s.invalid_words.size() &&
          ((s.invalid_words[r >> 6] >> (r & 63)) & 1)) {
        smu->MarkRowInvalid(s.dbas[r / kRowsPerBlock],
                            static_cast<SlotId>(r % kRowsPerBlock));
      }
    }
    ++restored;
  }
  return restored;
}

}  // namespace persist
}  // namespace stratus
