#ifndef STRATUS_PERSIST_RECOVERY_H_
#define STRATUS_PERSIST_RECOVERY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "imcs/im_store.h"
#include "persist/checkpoint.h"
#include "persist/imcs_snapshot.h"
#include "redo/change_vector.h"
#include "storage/block_store.h"
#include "txn/txn_table.h"

namespace stratus {
namespace persist {

/// Callbacks into the database layer (RecoveryManager itself stays below db/
/// so the dependency arrow points one way).
struct RecoveryHooks {
  /// Create-or-find the table for `img` and install its recorded block list
  /// (scan order). Called once per checkpointed table, before block restore.
  std::function<void(const TableImage&)> restore_table;
  /// Called per restored block, after its chains are installed — identity
  /// index rebuild and apply-accounting reconstruction read the image here.
  std::function<void(const BlockImage&)> restore_block;
  /// Called per replayed-and-applied data CV: segment discovery (NoteBlock),
  /// identity index maintenance, apply accounting.
  std::function<void(const ChangeVector&)> note_applied;
  /// Dictionary DDL replay (kDdlMarker CVs past the checkpoint).
  std::function<void(const DdlMarker&, Scn)> apply_ddl;
};

struct RecoveryResult {
  bool checkpoint_loaded = false;
  bool snapshot_loaded = false;
  Scn checkpoint_scn = kInvalidScn;  ///< Recovery-start SCN (ckpt begin Q).
  Scn snapshot_scn = kInvalidScn;    ///< IMCS snapshot floor.
  Scn replay_floor = kInvalidScn;
  Scn recovered_scn = kInvalidScn;   ///< State is complete through here.
  uint64_t restored_blocks = 0;
  uint64_t restored_smus = 0;
  uint64_t replayed_records = 0;
  uint64_t replayed_cvs = 0;
  uint64_t applied_cvs = 0;          ///< Data CVs actually re-applied.
  uint64_t row_invalidations = 0;    ///< Mining-lite IMCS invalidations.
  uint64_t coarse_invalidations = 0; ///< Straddler fallbacks (whole tenant).
};

/// Boot-time recovery: restores the row store from the last fuzzy checkpoint,
/// reloads the IMCS snapshot, then replays archived redo (merged across
/// streams by SCN) from the recovery floor. Data CVs re-apply against a block
/// only above its restored change frontier — one CV per redo record and
/// per-record SCNs make that gate exact, so nothing is skipped or doubled.
/// IMCS synchronization replays through a mining-lite pass: DML touches are
/// journaled per transaction and invalidated at commit; a commit whose begin
/// predates the replay floor falls back to coarse tenant invalidation,
/// exactly like the online mining path's straddler handling.
class RecoveryManager {
 public:
  RecoveryManager(BlockStore* blocks, TxnTable* txns, ImStore* im_store,
                  RecoveryHooks hooks)
      : blocks_(blocks), txns_(txns), im_store_(im_store), hooks_(std::move(hooks)) {}

  /// `ckpt`/`snap` may be null (cold start / snapshotting disabled).
  /// `stream_records` holds each stream's surviving archive, SCN-ascending.
  /// `schema_of` resolves an object's current schema for IMCU rebuild.
  StatusOr<RecoveryResult> Recover(
      const CheckpointImage* ckpt, const ImcsSnapshotImage* snap,
      std::vector<std::vector<RedoRecord>> stream_records,
      const std::function<bool(ObjectId, Schema*)>& schema_of);

 private:
  BlockStore* blocks_;
  TxnTable* txns_;
  ImStore* im_store_;
  RecoveryHooks hooks_;
};

}  // namespace persist
}  // namespace stratus

#endif  // STRATUS_PERSIST_RECOVERY_H_
