#ifndef STRATUS_PERSIST_REDO_ARCHIVE_H_
#define STRATUS_PERSIST_REDO_ARCHIVE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "persist/persist_io.h"
#include "persist/persist_options.h"
#include "redo/change_vector.h"

namespace stratus {
namespace persist {

/// The standby's archived redo for one shipped stream: CRC-checksummed,
/// length-prefixed batches appended to segment files. Each batch rides the
/// same frame envelope the wire uses (net::EncodeFrame, type kRedoBatch), so
/// a torn tail on disk is detected exactly the way a damaged frame is on the
/// network: kOutOfRange = clean truncation, kCorruption = damaged bytes —
/// either way the scan truncates the tail and recovery never replays it.
///
/// Invariants:
///  - appends are SCN-monotone (the shipped stream is);
///  - durable_scn() is the highest SCN an fsync has covered; with
///    SyncMode::kEveryBatch it equals the highest appended SCN;
///  - segments below a checkpoint's recovery floor are recyclable; the
///    active segment never is.
class RedoArchive {
 public:
  struct Options {
    std::string dir;
    uint32_t stream = 0;
    SyncMode sync = SyncMode::kEveryBatch;
    uint64_t segment_bytes = 4ull << 20;
    DiskFaultInjector* faults = nullptr;
  };

  /// Opens the archive, scanning existing segments: verifies every frame,
  /// truncates a torn/corrupt tail in the newest segment, and resumes the
  /// batch sequence and durable SCN from what survived.
  static StatusOr<std::unique_ptr<RedoArchive>> Open(const Options& options);

  RedoArchive(const RedoArchive&) = delete;
  RedoArchive& operator=(const RedoArchive&) = delete;

  /// Archives one delivered batch (called from the ReceivedLog tee, so the
  /// stream's delivery order is the archive order). Applies the configured
  /// sync mode; a batch carrying a commit CV forces fsync under
  /// kCommitBoundary.
  Status Append(const std::vector<RedoRecord>& records);

  /// Forces everything appended so far to stable storage.
  Status Sync();

  /// Deletes sealed segments whose highest SCN is <= `floor` (checkpoint
  /// progress made them dead weight). Returns the number recycled.
  StatusOr<size_t> Recycle(Scn floor);

  /// Reads every surviving record in SCN order (the scan re-verifies CRCs;
  /// damaged tails found here are truncated on disk too).
  Status ReadAll(std::vector<RedoRecord>* out);

  Scn durable_scn() const { return durable_scn_.load(std::memory_order_acquire); }
  Scn appended_scn() const { return appended_scn_.load(std::memory_order_acquire); }

  uint64_t archived_records() const { return archived_records_.load(std::memory_order_relaxed); }
  uint64_t archived_bytes() const { return archived_bytes_.load(std::memory_order_relaxed); }
  uint64_t fsyncs() const { return fsyncs_.load(std::memory_order_relaxed); }
  uint64_t truncated_tails() const { return truncated_tails_.load(std::memory_order_relaxed); }
  uint64_t segments_recycled() const { return segments_recycled_.load(std::memory_order_relaxed); }
  size_t segment_count() const;

 private:
  struct Segment {
    uint64_t index = 0;
    std::string path;
    Scn max_scn = kInvalidScn;
    uint64_t bytes = 0;
  };

  explicit RedoArchive(const Options& options) : options_(options) {}

  Status ScanExisting();
  Status RollLocked();
  std::string SegmentPath(uint64_t index) const;

  /// Scans one segment file: appends decoded records to `out` (if non-null),
  /// truncates a bad tail, and returns the segment's highest SCN.
  Status ScanSegment(Segment* seg, std::vector<RedoRecord>* out,
                     uint64_t* scanned_records = nullptr);

  Options options_;

  mutable std::mutex mu_;
  std::vector<Segment> segments_;       // Ordered; back() is active.
  std::unique_ptr<AppendFile> active_;  // Open handle for segments_.back().
  uint64_t next_seq_ = 1;               // Batch sequence (frame seq field).

  std::atomic<Scn> durable_scn_{kInvalidScn};
  std::atomic<Scn> appended_scn_{kInvalidScn};
  std::atomic<uint64_t> archived_records_{0};
  std::atomic<uint64_t> archived_bytes_{0};
  std::atomic<uint64_t> fsyncs_{0};
  std::atomic<uint64_t> truncated_tails_{0};
  std::atomic<uint64_t> segments_recycled_{0};
};

}  // namespace persist
}  // namespace stratus

#endif  // STRATUS_PERSIST_REDO_ARCHIVE_H_
