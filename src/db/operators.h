#ifndef STRATUS_DB_OPERATORS_H_
#define STRATUS_DB_OPERATORS_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "db/plan.h"
#include "db/query_profile.h"
#include "imcs/scan_engine.h"
#include "storage/visibility.h"

namespace stratus {

struct QueryContext;

/// Shared per-query execution state threaded through every operator: one
/// snapshot, one (counting) read view, one DOP, one lane-profile collector —
/// the whole tree is pinned to a single QuerySCN end to end.
struct ExecContext {
  const QueryContext* ctx = nullptr;
  const ScanEngine* engine = nullptr;
  Scn snapshot = kInvalidScn;
  /// Read view with the query's counting resolver installed.
  const ReadView* view = nullptr;
  /// Commit-status lookups made so far by this query (reads the counting
  /// resolver); side scans use deltas for their own log entries.
  std::function<uint64_t()> commit_lookups;
  size_t dop = 1;
  /// Every scan leaf's task records accumulate here (the query profile's
  /// lanes roll up all leaves, so lane task counts sum to parallel_tasks).
  ScanProfile* scan_profile = nullptr;
  /// When true, every scan leaf except the one on `driving_object` logs its
  /// own "scan" slow-log entry — preserving the legacy facade behavior where
  /// a join's build side appeared as its own query.
  bool log_side_scans = false;
  ObjectId driving_object = kInvalidObjectId;
};

/// Batch-at-a-time operator: Open prepares (and for pipeline breakers,
/// executes) the subtree; NextBatch moves the next batch of output rows into
/// `*batch` (cleared first) and returns false when exhausted. All calls
/// happen on the query's calling thread; parallelism lives *inside*
/// operators (scan leaves fan out per-IMCU tasks, the aggregate folds
/// batches in parallel), so the tree needs no cross-operator locking.
class Operator {
 public:
  virtual ~Operator() = default;

  virtual Status Open(ExecContext* ec) = 0;
  virtual bool NextBatch(std::vector<Row>* batch) = 0;

  /// Appends this subtree's stages depth-first, leaves first (the order
  /// EXPLAIN prints them).
  void CollectStages(std::vector<OperatorStage>* out) const;

  void AddChild(std::unique_ptr<Operator> child) {
    children_.push_back(std::move(child));
  }

  /// Execution record for EXPLAIN / the /queries endpoint.
  OperatorStage stage;

  // Aggregate summary for the facade's legacy result mirror
  // (count/agg_int/agg_valid/agg_overflow). Filled by push-down scans and
  // hash aggregates.
  bool has_agg = false;
  AggKind first_agg_kind = AggKind::kNone;
  AggState first_agg;         ///< Final state of the first aggregate.
  bool agg_overflow = false;  ///< Any kSum in this operator overflowed.
  uint64_t input_matches = 0; ///< Matching input rows that reached the fold.

 protected:
  std::vector<std::unique_ptr<Operator>> children_;
};

/// Builds the executable operator tree for a plan subtree.
std::unique_ptr<Operator> BuildOperatorTree(const PlanNode& node);

}  // namespace stratus

#endif  // STRATUS_DB_OPERATORS_H_
