#include "db/query_profile.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/clock.h"

namespace stratus {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ScnStr(Scn scn) {
  return scn == kInvalidScn ? std::string("null") : std::to_string(scn);
}

}  // namespace

std::vector<WorkerLane> RollupLanes(const ScanProfile& profile) {
  std::map<uint32_t, WorkerLane> by_worker;
  for (const ScanTaskProfile& t : profile.tasks) {
    WorkerLane& lane = by_worker[t.worker];
    lane.worker = t.worker;
    ++lane.tasks;
    lane.queue_wait_us += t.queue_wait_us;
    lane.exec_us += t.exec_us;
  }
  std::vector<WorkerLane> lanes;
  lanes.reserve(by_worker.size());
  for (auto& [_, lane] : by_worker) lanes.push_back(lane);
  return lanes;
}

std::string OperatorStage::ToJson() const {
  std::string out = "{";
  out += "\"op\":\"" + JsonEscape(op) + "\"";
  if (object != kInvalidObjectId)
    out += ",\"object\":" + std::to_string(object);
  if (!path.empty()) {
    char frac[32];
    std::snprintf(frac, sizeof(frac), "%.4f", invalid_fraction);
    out += ",\"path\":\"" + JsonEscape(path) + "\"";
    out += ",\"reason\":\"" + JsonEscape(reason) + "\"";
    out += ",\"invalid_fraction\":" + std::string(frac);
  }
  out += ",\"rows_in\":" + std::to_string(rows_in);
  out += ",\"rows_out\":" + std::to_string(rows_out);
  if (op == "hash_agg") out += ",\"groups\":" + std::to_string(groups);
  if (op == "hash_join") {
    out += ",\"build_rows\":" + std::to_string(build_rows);
    out += ",\"probe_rows\":" + std::to_string(probe_rows);
    out += ",\"build_side\":\"" + JsonEscape(build_side) + "\"";
  }
  out += ",\"elapsed_us\":" + std::to_string(elapsed_us);
  out += "}";
  return out;
}

std::string QueryProfile::Explain() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%s #%llu on object %llu @ scn %llu (%s)\n",
                kind.c_str(), static_cast<unsigned long long>(query_id),
                static_cast<unsigned long long>(object),
                static_cast<unsigned long long>(snapshot), role.c_str());
  out += line;
  for (const OperatorStage& s : stages) {
    if (s.op == "scan") {
      std::snprintf(line, sizeof(line),
                    "  op scan object %llu path=%s (%s, invalid %.2f%%): "
                    "%llu rows out, %llu us\n",
                    static_cast<unsigned long long>(s.object), s.path.c_str(),
                    s.reason.c_str(), s.invalid_fraction * 100.0,
                    static_cast<unsigned long long>(s.rows_out),
                    static_cast<unsigned long long>(s.elapsed_us));
    } else if (s.op == "hash_join") {
      std::snprintf(line, sizeof(line),
                    "  op hash_join build=%s (%llu build rows, %llu probe "
                    "rows): %llu rows out, %llu us\n",
                    s.build_side.c_str(),
                    static_cast<unsigned long long>(s.build_rows),
                    static_cast<unsigned long long>(s.probe_rows),
                    static_cast<unsigned long long>(s.rows_out),
                    static_cast<unsigned long long>(s.elapsed_us));
    } else if (s.op == "hash_agg") {
      std::snprintf(line, sizeof(line),
                    "  op hash_agg: %llu rows in, %llu groups, %llu us\n",
                    static_cast<unsigned long long>(s.rows_in),
                    static_cast<unsigned long long>(s.groups),
                    static_cast<unsigned long long>(s.elapsed_us));
    } else {
      std::snprintf(line, sizeof(line),
                    "  op %s: %llu rows in, %llu rows out, %llu us\n",
                    s.op.c_str(), static_cast<unsigned long long>(s.rows_in),
                    static_cast<unsigned long long>(s.rows_out),
                    static_cast<unsigned long long>(s.elapsed_us));
    }
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "  rows: %llu returned, %llu matched "
                "(%llu from IMCS, %llu from row store)\n",
                static_cast<unsigned long long>(rows_returned),
                static_cast<unsigned long long>(matches),
                static_cast<unsigned long long>(scan.rows_from_imcs),
                static_cast<unsigned long long>(scan.rows_from_rowstore));
  out += line;
  std::snprintf(line, sizeof(line),
                "  imcus: %llu scanned, %llu pruned, %llu skipped; "
                "%llu row-path blocks, %llu reconciled invalid rows\n",
                static_cast<unsigned long long>(scan.imcus_scanned),
                static_cast<unsigned long long>(scan.imcus_pruned),
                static_cast<unsigned long long>(scan.imcus_skipped),
                static_cast<unsigned long long>(scan.blocks_rowpath),
                static_cast<unsigned long long>(scan.invalid_rowpath));
  out += line;
  std::snprintf(line, sizeof(line),
                "  kernel: %llu swar words, %llu avx2 words, "
                "%llu scalar rows\n",
                static_cast<unsigned long long>(scan.kernel_swar_words),
                static_cast<unsigned long long>(scan.kernel_avx2_words),
                static_cast<unsigned long long>(scan.kernel_scalar_rows));
  out += line;
  std::snprintf(line, sizeof(line),
                "  parallel: dop %u, %llu tasks over %zu workers\n", dop,
                static_cast<unsigned long long>(scan.parallel_tasks),
                lanes.size());
  out += line;
  for (const WorkerLane& lane : lanes) {
    std::snprintf(line, sizeof(line),
                  "    worker %u: %llu tasks, wait %llu us, exec %llu us\n",
                  lane.worker, static_cast<unsigned long long>(lane.tasks),
                  static_cast<unsigned long long>(lane.queue_wait_us),
                  static_cast<unsigned long long>(lane.exec_us));
    out += line;
  }
  std::snprintf(line, sizeof(line), "  visibility: %llu commit-status lookups",
                static_cast<unsigned long long>(commit_lookups));
  out += line;
  if (imadg_sampled) {
    std::snprintf(line, sizeof(line),
                  "; journal %llu live anchors, commit table %llu live nodes",
                  static_cast<unsigned long long>(journal_live_anchors),
                  static_cast<unsigned long long>(commit_table_live_nodes));
    out += line;
  }
  out += "\n";
  if (lag_sampled) {
    std::snprintf(line, sizeof(line),
                  "  freshness: primary scn %llu, staleness %llu scn / %lld us\n",
                  static_cast<unsigned long long>(primary_scn),
                  static_cast<unsigned long long>(staleness_scn),
                  static_cast<long long>(staleness_us));
    out += line;
  }
  std::snprintf(line, sizeof(line), "  time: %llu us wall, %llu us caller cpu\n",
                static_cast<unsigned long long>(wall_us),
                static_cast<unsigned long long>(caller_cpu_us));
  out += line;
  return out;
}

std::string QueryProfile::ToJson() const {
  std::string out = "{";
  out += "\"query_id\":" + std::to_string(query_id);
  out += ",\"kind\":\"" + JsonEscape(kind) + "\"";
  out += ",\"role\":\"" + JsonEscape(role) + "\"";
  out += ",\"object\":" + std::to_string(object);
  if (join_right != kInvalidObjectId)
    out += ",\"join_right\":" + std::to_string(join_right);
  out += ",\"snapshot\":" + ScnStr(snapshot);
  out += ",\"rows_returned\":" + std::to_string(rows_returned);
  out += ",\"matches\":" + std::to_string(matches);
  if (!stages.empty()) {
    out += ",\"stages\":[";
    for (size_t i = 0; i < stages.size(); ++i) {
      if (i != 0) out += ",";
      out += stages[i].ToJson();
    }
    out += "]";
  }
  out += ",\"rows_from_imcs\":" + std::to_string(scan.rows_from_imcs);
  out += ",\"rows_from_rowstore\":" + std::to_string(scan.rows_from_rowstore);
  out += ",\"imcus_scanned\":" + std::to_string(scan.imcus_scanned);
  out += ",\"imcus_pruned\":" + std::to_string(scan.imcus_pruned);
  out += ",\"imcus_skipped\":" + std::to_string(scan.imcus_skipped);
  out += ",\"blocks_rowpath\":" + std::to_string(scan.blocks_rowpath);
  out += ",\"invalid_rowpath\":" + std::to_string(scan.invalid_rowpath);
  out += ",\"parallel_tasks\":" + std::to_string(scan.parallel_tasks);
  out += ",\"kernel_swar_words\":" + std::to_string(scan.kernel_swar_words);
  out += ",\"kernel_avx2_words\":" + std::to_string(scan.kernel_avx2_words);
  out += ",\"kernel_scalar_rows\":" + std::to_string(scan.kernel_scalar_rows);
  out += ",\"dop\":" + std::to_string(dop);
  out += ",\"lanes\":[";
  for (size_t i = 0; i < lanes.size(); ++i) {
    if (i != 0) out += ",";
    out += "{\"worker\":" + std::to_string(lanes[i].worker) +
           ",\"tasks\":" + std::to_string(lanes[i].tasks) +
           ",\"queue_wait_us\":" + std::to_string(lanes[i].queue_wait_us) +
           ",\"exec_us\":" + std::to_string(lanes[i].exec_us) + "}";
  }
  out += "]";
  out += ",\"commit_lookups\":" + std::to_string(commit_lookups);
  out += ",\"imadg_sampled\":" + std::string(imadg_sampled ? "true" : "false");
  if (imadg_sampled) {
    out += ",\"journal_live_anchors\":" + std::to_string(journal_live_anchors);
    out += ",\"commit_table_live_nodes\":" +
           std::to_string(commit_table_live_nodes);
  }
  out += ",\"lag_sampled\":" + std::string(lag_sampled ? "true" : "false");
  if (lag_sampled) {
    out += ",\"primary_scn\":" + ScnStr(primary_scn);
    out += ",\"staleness_scn\":" + std::to_string(staleness_scn);
    out += ",\"staleness_us\":" + std::to_string(staleness_us);
  }
  out += ",\"started_at_us\":" + std::to_string(started_at_us);
  out += ",\"wall_us\":" + std::to_string(wall_us);
  out += ",\"caller_cpu_us\":" + std::to_string(caller_cpu_us);
  out += "}";
  return out;
}

uint64_t SlowQueryLog::Begin(const std::string& kind, ObjectId object,
                             Scn snapshot) {
  std::lock_guard<std::mutex> g(mu_);
  const uint64_t id = next_id_++;
  InFlightQuery q;
  q.query_id = id;
  q.kind = kind;
  q.object = object;
  q.snapshot = snapshot;
  q.started_at_us = NowMicros();
  in_flight_.emplace(id, std::move(q));
  return id;
}

void SlowQueryLog::End(uint64_t query_id, QueryProfile profile) {
  std::lock_guard<std::mutex> g(mu_);
  in_flight_.erase(query_id);
  ++completed_;
  if (profile.wall_us < threshold_us_) return;
  profile.query_id = query_id;
  ring_.push_back(std::move(profile));
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<QueryProfile> SlowQueryLog::Completed() const {
  std::lock_guard<std::mutex> g(mu_);
  return {ring_.begin(), ring_.end()};
}

std::vector<InFlightQuery> SlowQueryLog::InFlight() const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<InFlightQuery> out;
  out.reserve(in_flight_.size());
  for (const auto& [_, q] : in_flight_) out.push_back(q);
  std::sort(out.begin(), out.end(),
            [](const InFlightQuery& a, const InFlightQuery& b) {
              return a.query_id < b.query_id;
            });
  return out;
}

uint64_t SlowQueryLog::total_completed() const {
  std::lock_guard<std::mutex> g(mu_);
  return completed_;
}

std::string SlowQueryLog::ToJson() const {
  // Copy under the lock, render outside it.
  std::vector<InFlightQuery> inflight = InFlight();
  std::vector<QueryProfile> done = Completed();
  std::string out = "{\"in_flight\":[";
  for (size_t i = 0; i < inflight.size(); ++i) {
    if (i != 0) out += ",";
    out += "{\"query_id\":" + std::to_string(inflight[i].query_id) +
           ",\"kind\":\"" + JsonEscape(inflight[i].kind) + "\"" +
           ",\"object\":" + std::to_string(inflight[i].object) +
           ",\"snapshot\":" + ScnStr(inflight[i].snapshot) +
           ",\"started_at_us\":" + std::to_string(inflight[i].started_at_us) +
           "}";
  }
  out += "],\"completed\":[";
  for (size_t i = 0; i < done.size(); ++i) {
    if (i != 0) out += ",";
    out += done[i].ToJson();
  }
  out += "]}";
  return out;
}

}  // namespace stratus
