#include "db/service.h"

namespace stratus {

Status ServiceDirectory::CreateService(const ServiceDefinition& def) {
  if (def.name.empty()) return Status::InvalidArgument("service needs a name");
  if (!def.on_primary && !def.on_standby)
    return Status::InvalidArgument("service runs nowhere");
  std::lock_guard<std::mutex> g(mu_);
  if (services_.contains(def.name))
    return Status::AlreadyExists("service " + def.name);
  services_.emplace(def.name, def);
  return Status::OK();
}

Status ServiceDirectory::CreateDefaultServices() {
  STRATUS_RETURN_IF_ERROR(CreateService({"standby_only", false, true, 0}));
  STRATUS_RETURN_IF_ERROR(CreateService({"primary_only", true, false, 0}));
  return CreateService({"primary_and_standby", true, true, 0});
}

StatusOr<ServiceDefinition> ServiceDirectory::Lookup(const std::string& name) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = services_.find(name);
  if (it == services_.end()) return Status::NotFound("service " + name);
  return it->second;
}

std::vector<ServiceDefinition> ServiceDirectory::All() const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<ServiceDefinition> out;
  out.reserve(services_.size());
  for (const auto& [name, def] : services_) out.push_back(def);
  return out;
}

const char* ServiceDirectory::DefaultServiceFor(ImService service) {
  switch (service) {
    case ImService::kPrimaryOnly: return "primary_only";
    case ImService::kStandbyOnly: return "standby_only";
    case ImService::kBoth: return "primary_and_standby";
    case ImService::kNone: return "primary_only";
  }
  return "primary_only";
}

StatusOr<QueryResult> ServiceDirectory::Query(const std::string& service,
                                              const ScanQuery& query) {
  StatusOr<ServiceDefinition> def = Lookup(service);
  if (!def.ok()) return def.status();
  // Offload-first: read-only work prefers the standby when the service spans
  // it (the whole point of ADG offloading); fall back to the primary if the
  // standby has no consistency point yet.
  if (def->on_standby) {
    StatusOr<QueryResult> result =
        cluster_->standby()->Query(query, def->standby_instance);
    if (result.ok() || !def->on_primary || !result.status().IsUnavailable())
      return result;
  }
  return cluster_->primary()->Query(query);
}

StatusOr<QueryResult> ServiceDirectory::Join(const std::string& service,
                                             const JoinQuery& query) {
  StatusOr<ServiceDefinition> def = Lookup(service);
  if (!def.ok()) return def.status();
  if (def->on_standby) {
    StatusOr<QueryResult> result =
        cluster_->standby()->Join(query, def->standby_instance);
    if (result.ok() || !def->on_primary || !result.status().IsUnavailable())
      return result;
  }
  return cluster_->primary()->Join(query);
}

StatusOr<std::optional<Row>> ServiceDirectory::Fetch(const std::string& service,
                                                     ObjectId object, int64_t key) {
  StatusOr<ServiceDefinition> def = Lookup(service);
  if (!def.ok()) return def.status();
  if (def->on_standby) {
    StatusOr<std::optional<Row>> result =
        cluster_->standby()->Fetch(object, key, def->standby_instance);
    if (result.ok() || !def->on_primary || !result.status().IsUnavailable())
      return result;
  }
  return cluster_->primary()->Fetch(object, key);
}

StatusOr<Transaction> ServiceDirectory::BeginWrite(const std::string& service,
                                                   TenantId tenant) {
  StatusOr<ServiceDefinition> def = Lookup(service);
  if (!def.ok()) return def.status();
  if (!def->on_primary) {
    return Status::FailedPrecondition(
        "service " + service + " is standby-only: the standby is read-only");
  }
  return cluster_->primary()->Begin(0, tenant);
}

}  // namespace stratus
