#include "db/introspection.h"

#include <algorithm>
#include <utility>

#include "imcs/im_store.h"
#include "imcs/smu.h"
#include "obs/trace.h"
#include "redo/log_shipping.h"

namespace stratus {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ScnStr(Scn scn) {
  return scn == kInvalidScn ? std::string("null") : std::to_string(scn);
}

/// Rounds to two decimals without locale-dependent formatting.
std::string Pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

/// Builds the view rows for one (role, instance) column store. Objects with
/// no SMU at all produce no row — the view lists IMCS presence, not the
/// whole dictionary.
void CollectStoreRows(const std::string& role, InstanceId instance,
                      const ImStore* store, const Catalog* catalog,
                      const std::function<Table*(ObjectId)>& table_of,
                      std::vector<VImSegmentsRow>* out) {
  if (store == nullptr) return;
  for (ObjectId object : catalog->AllObjects()) {
    const std::vector<std::shared_ptr<Smu>> smus = store->SmusForObject(object);
    if (smus.empty()) continue;

    VImSegmentsRow row;
    row.role = role;
    row.instance = instance;
    row.object = object;
    StatusOr<std::string> name = catalog->NameOf(object);
    if (name.ok()) row.name = *name;

    for (const auto& smu : smus) {
      ++row.smus_total;
      if (smu->state() == SmuState::kPopulating) {
        ++row.smus_populating;
        continue;
      }
      ++row.smus_ready;
      if (smu->AllInvalid()) ++row.smus_quarantined;
      row.rows_covered += smu->num_rows();
      row.rows_invalid += smu->invalid_count();
      row.blocks_covered += smu->dbas().size();
      const std::shared_ptr<const Imcu> imcu = smu->imcu();
      if (imcu != nullptr) row.bytes += imcu->ApproxBytes();
      const Scn snap = smu->snapshot_scn();
      if (row.min_snapshot_scn == kInvalidScn || snap < row.min_snapshot_scn)
        row.min_snapshot_scn = snap;
      if (row.max_snapshot_scn == kInvalidScn || snap > row.max_snapshot_scn)
        row.max_snapshot_scn = snap;
    }
    if (row.rows_covered > 0) {
      row.invalid_fraction =
          static_cast<double>(row.rows_invalid) / row.rows_covered;
    }
    const char* reason = "";
    const AccessPath path =
        PlannerVerdict(row.rows_covered, row.invalid_fraction,
                       PlannerOptions{}.rowpath_invalid_threshold, &reason);
    row.planner_path = path == AccessPath::kImcs ? "imcs" : "row";
    row.planner_reason = reason;
    Table* table = table_of(object);
    if (table != nullptr) row.blocks_total = table->SnapshotBlocks().size();
    if (row.blocks_total > 0) {
      // Covered blocks can momentarily exceed the table's count while a
      // rebuild overlaps a drop; clamp so the view never reports > 100%.
      row.population_pct =
          std::min(100.0, 100.0 * static_cast<double>(row.blocks_covered) /
                              static_cast<double>(row.blocks_total));
    }
    out->push_back(std::move(row));
  }
}

}  // namespace

std::string VImSegmentsRow::ToJson() const {
  std::string out = "{";
  out += "\"role\":\"" + JsonEscape(role) + "\"";
  out += ",\"instance\":" + std::to_string(instance);
  out += ",\"object\":" + std::to_string(object);
  out += ",\"name\":\"" + JsonEscape(name) + "\"";
  out += ",\"smus_total\":" + std::to_string(smus_total);
  out += ",\"smus_ready\":" + std::to_string(smus_ready);
  out += ",\"smus_populating\":" + std::to_string(smus_populating);
  out += ",\"smus_quarantined\":" + std::to_string(smus_quarantined);
  out += ",\"rows_covered\":" + std::to_string(rows_covered);
  out += ",\"rows_invalid\":" + std::to_string(rows_invalid);
  out += ",\"invalid_fraction\":" + Pct(invalid_fraction * 100.0);
  out += ",\"blocks_total\":" + std::to_string(blocks_total);
  out += ",\"blocks_covered\":" + std::to_string(blocks_covered);
  out += ",\"population_pct\":" + Pct(population_pct);
  out += ",\"bytes\":" + std::to_string(bytes);
  out += ",\"min_snapshot_scn\":" + ScnStr(min_snapshot_scn);
  out += ",\"max_snapshot_scn\":" + ScnStr(max_snapshot_scn);
  out += ",\"planner_path\":\"" + JsonEscape(planner_path) + "\"";
  out += ",\"planner_reason\":\"" + JsonEscape(planner_reason) + "\"";
  out += "}";
  return out;
}

std::string VStandbyApplyRow::ToJson() const {
  std::string out = "{";
  out += "\"degraded\":" + std::string(degraded ? "true" : "false");
  out += ",\"apply_errors\":" + std::to_string(apply_errors);
  out += ",\"quarantined_imcus\":" + std::to_string(quarantined_imcus);
  out += ",\"first_error\":\"" + JsonEscape(first_error) + "\"";
  out += ",\"applied_scn\":" + ScnStr(applied_scn);
  out += ",\"query_scn\":" + ScnStr(query_scn);
  out += ",\"restarts\":" + std::to_string(restarts);
  out += ",\"crash_restarts\":" + std::to_string(crash_restarts);
  out += ",\"journal_live_anchors\":" + std::to_string(journal_live_anchors);
  out += ",\"journal_records_buffered\":" +
         std::to_string(journal_records_buffered);
  out += ",\"journal_anchors_created\":" +
         std::to_string(journal_anchors_created);
  out += ",\"commit_table_live_nodes\":" +
         std::to_string(commit_table_live_nodes);
  out += ",\"commit_table_inserts\":" + std::to_string(commit_table_inserts);
  out += ",\"commit_table_min_pending_scn\":" +
         ScnStr(commit_table_min_pending_scn);
  out += ",\"lag_valid\":" + std::string(lag_valid ? "true" : "false");
  if (lag_valid) {
    out += ",\"primary_scn\":" + ScnStr(lag.primary_scn);
    out += ",\"shipped_scn\":" + ScnStr(lag.shipped_scn);
    out += ",\"transport_lag_scn\":" + std::to_string(lag.transport_lag_scn);
    out += ",\"apply_lag_scn\":" + std::to_string(lag.apply_lag_scn);
    out += ",\"staleness_scn\":" + std::to_string(lag.staleness_scn);
    out += ",\"transport_lag_us\":" + std::to_string(lag.transport_lag_us);
    out += ",\"apply_lag_us\":" + std::to_string(lag.apply_lag_us);
    out += ",\"staleness_us\":" + std::to_string(lag.staleness_us);
    out += ",\"lag_no_data\":" + std::string(lag.no_data ? "true" : "false");
    out += ",\"lag_heartbeat_clamped\":" +
           std::string(lag.heartbeat_clamped ? "true" : "false");
  }
  out += "}";
  return out;
}

std::string VTransportRow::ToJson() const {
  std::string out = "{";
  out += "\"channel\":\"" + JsonEscape(channel) + "\"";
  out += ",\"paused\":" + std::string(paused ? "true" : "false");
  out += ",\"records_shipped\":" + std::to_string(records_shipped);
  out += ",\"last_shipped_scn\":" + ScnStr(last_shipped_scn);
  out += ",\"frames_sent\":" + std::to_string(stats.frames_sent);
  out += ",\"bytes_sent\":" + std::to_string(stats.bytes_sent);
  out += ",\"frames_delivered\":" + std::to_string(stats.frames_delivered);
  out += ",\"bytes_delivered\":" + std::to_string(stats.bytes_delivered);
  out += ",\"retransmits\":" + std::to_string(stats.retransmits);
  out += ",\"acks_received\":" + std::to_string(stats.acks_received);
  out += ",\"reconnects\":" + std::to_string(stats.reconnects);
  out += ",\"crc_errors\":" + std::to_string(stats.crc_errors);
  out += ",\"dup_frames_discarded\":" +
         std::to_string(stats.dup_frames_discarded);
  out += ",\"gap_frames_discarded\":" +
         std::to_string(stats.gap_frames_discarded);
  out += ",\"send_queue_depth\":" + std::to_string(stats.send_queue_depth);
  out += ",\"send_queue_bytes\":" + std::to_string(stats.send_queue_bytes);
  out += ",\"injected_drops\":" + std::to_string(stats.injected_drops);
  out += ",\"injected_dups\":" + std::to_string(stats.injected_dups);
  out += ",\"injected_corrupts\":" + std::to_string(stats.injected_corrupts);
  out += ",\"injected_truncates\":" + std::to_string(stats.injected_truncates);
  out += "}";
  return out;
}

std::string VPersistRow::ToJson() const {
  std::string out = "{";
  out += "\"enabled\":" + std::string(enabled ? "true" : "false");
  out += ",\"data_dir\":\"" + JsonEscape(data_dir) + "\"";
  out += ",\"disk_restarts\":" + std::to_string(disk_restarts);
  out += ",\"archived_records\":" + std::to_string(archived_records);
  out += ",\"archived_bytes\":" + std::to_string(archived_bytes);
  out += ",\"fsyncs\":" + std::to_string(fsyncs);
  out += ",\"truncated_tails\":" + std::to_string(truncated_tails);
  out += ",\"segments\":" + std::to_string(segments);
  out += ",\"segments_recycled\":" + std::to_string(segments_recycled);
  out += ",\"checkpoints\":" + std::to_string(checkpoints);
  out += ",\"snapshots\":" + std::to_string(snapshots);
  out += ",\"recoveries\":" + std::to_string(recoveries);
  out += ",\"faults_injected\":" + std::to_string(faults_injected);
  out += ",\"durable_scn\":" + ScnStr(durable_scn);
  out += ",\"checkpoint_scn\":" + ScnStr(checkpoint_scn);
  out += ",\"snapshot_scn\":" + ScnStr(snapshot_scn);
  out += ",\"recovered_scn\":" + ScnStr(recovered_scn);
  out += ",\"ckpt_loaded\":" + std::string(ckpt_loaded ? "true" : "false");
  out += ",\"snap_loaded\":" + std::string(snap_loaded ? "true" : "false");
  out += ",\"restored_blocks\":" + std::to_string(restored_blocks);
  out += ",\"restored_smus\":" + std::to_string(restored_smus);
  out += ",\"replayed_records\":" + std::to_string(replayed_records);
  out += ",\"replayed_cvs\":" + std::to_string(replayed_cvs);
  out += ",\"applied_cvs\":" + std::to_string(applied_cvs);
  out += ",\"row_invalidations\":" + std::to_string(row_invalidations);
  out += ",\"coarse_invalidations\":" + std::to_string(coarse_invalidations);
  out += "}";
  return out;
}

std::vector<VImSegmentsRow> CollectVImSegments(PrimaryDb* primary,
                                               StandbyDb* standby) {
  std::vector<VImSegmentsRow> rows;
  if (primary != nullptr) {
    CollectStoreRows("primary", kMasterInstance, primary->im_store(),
                     primary->catalog(),
                     [primary](ObjectId oid) { return primary->table(oid); },
                     &rows);
  }
  if (standby != nullptr) {
    for (uint32_t i = 0; i < standby->instance_count(); ++i) {
      CollectStoreRows("standby", i, standby->im_store(i), standby->catalog(),
                       [standby](ObjectId oid) { return standby->table(oid); },
                       &rows);
    }
  }
  return rows;
}

VStandbyApplyRow CollectVStandbyApply(StandbyDb* standby,
                                      obs::LagMonitor* monitor) {
  VStandbyApplyRow row;
  if (standby == nullptr) return row;
  const StandbyHealth health = standby->health();
  row.degraded = health.degraded;
  row.apply_errors = health.apply_errors;
  row.quarantined_imcus = health.quarantined_imcus;
  row.first_error = health.first_error;
  row.applied_scn = standby->applied_scn();
  row.query_scn = standby->published_query_scn();
  row.restarts = standby->restarts();
  row.crash_restarts = standby->crash_restarts();
  if (ImAdgJournal* journal = standby->journal(); journal != nullptr) {
    row.journal_live_anchors = journal->live_anchors();
    row.journal_records_buffered = journal->records_buffered();
    row.journal_anchors_created = journal->anchors_created();
  }
  if (ImAdgCommitTable* ct = standby->commit_table(); ct != nullptr) {
    row.commit_table_live_nodes = ct->live_nodes();
    row.commit_table_inserts = ct->inserts();
    row.commit_table_min_pending_scn = ct->MinPendingScn();
  }
  if (monitor != nullptr) {
    row.lag = monitor->Snapshot();
    row.lag_valid = true;
  }
  return row;
}

std::vector<VTransportRow> CollectVTransport(AdgCluster* cluster) {
  std::vector<VTransportRow> rows;
  if (cluster == nullptr) return rows;
  for (size_t i = 0; i < cluster->shipper_count(); ++i) {
    const LogShipper* shipper = cluster->shipper(i);
    VTransportRow row;
    row.channel = shipper->channel()->options().name;
    row.paused = shipper->paused();
    row.records_shipped = shipper->records_shipped();
    row.last_shipped_scn = shipper->last_shipped_scn();
    row.stats = shipper->channel()->stats();
    rows.push_back(std::move(row));
  }
  return rows;
}

VPersistRow CollectVPersist(StandbyDb* standby) {
  VPersistRow row;
  if (standby == nullptr || !standby->persist_enabled()) return row;
  row.enabled = true;
  row.data_dir = standby->options().persist.data_dir;
  row.disk_restarts = standby->disk_restarts();
  const persist::PersistStats stats = standby->PersistStatsSnapshot();
  row.archived_records = stats.archived_records;
  row.archived_bytes = stats.archived_bytes;
  row.fsyncs = stats.fsyncs;
  row.truncated_tails = stats.truncated_tails;
  row.segments = stats.segments;
  row.segments_recycled = stats.segments_recycled;
  row.checkpoints = stats.checkpoints;
  row.snapshots = stats.snapshots;
  row.recoveries = stats.recoveries;
  row.faults_injected = stats.faults_injected;
  row.durable_scn = stats.durable_scn;
  row.checkpoint_scn = stats.checkpoint_scn;
  row.snapshot_scn = stats.snapshot_scn;
  row.recovered_scn = stats.recovered_scn;
  const persist::RecoveryResult last = standby->last_recovery();
  row.ckpt_loaded = last.checkpoint_loaded;
  row.snap_loaded = last.snapshot_loaded;
  row.restored_blocks = last.restored_blocks;
  row.restored_smus = last.restored_smus;
  row.replayed_records = last.replayed_records;
  row.replayed_cvs = last.replayed_cvs;
  row.applied_cvs = last.applied_cvs;
  row.row_invalidations = last.row_invalidations;
  row.coarse_invalidations = last.coarse_invalidations;
  return row;
}

std::string VImSegmentsJson(const std::vector<VImSegmentsRow>& rows) {
  std::string out = "[";
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i != 0) out += ",";
    out += rows[i].ToJson();
  }
  out += "]";
  return out;
}

std::string VTransportJson(const std::vector<VTransportRow>& rows) {
  std::string out = "[";
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i != 0) out += ",";
    out += rows[i].ToJson();
  }
  out += "]";
  return out;
}

std::string ClusterObservability::MetricsText() const {
  return cluster_->MetricsText();
}

std::string ClusterObservability::MetricsJson() const {
  return cluster_->MetricsJson();
}

obs::HttpResponse ClusterObservability::Healthz() const {
  const StandbyHealth health = cluster_->standby()->health();
  obs::HttpResponse resp;
  if (!health.degraded) {
    resp.body = "ok\n";
    return resp;
  }
  resp.status = 503;
  resp.body = "degraded: " + health.first_error + " (apply_errors=" +
              std::to_string(health.apply_errors) + ", quarantined_imcus=" +
              std::to_string(health.quarantined_imcus) + ")\n";
  return resp;
}

obs::HttpResponse ClusterObservability::Readyz() const {
  const Scn query_scn = cluster_->standby()->published_query_scn();
  obs::HttpResponse resp;
  if (query_scn != kInvalidScn) {
    resp.body = "ready query_scn=" + std::to_string(query_scn) + "\n";
    return resp;
  }
  resp.status = 503;
  resp.body = "no QuerySCN published yet\n";
  return resp;
}

std::string ClusterObservability::TracesJson() const {
  return obs::TraceBuffer::Global().ExportJson();
}

std::string ClusterObservability::QueriesJson() const {
  return "{\"primary\":" + cluster_->primary()->slow_query_log()->ToJson() +
         ",\"standby\":" + cluster_->standby()->slow_query_log()->ToJson() +
         "}";
}

obs::HttpResponse ClusterObservability::View(const std::string& view) const {
  obs::HttpResponse resp;
  resp.content_type = "application/json";
  if (view == "im_segments") {
    resp.body = VImSegmentsJson(
        CollectVImSegments(cluster_->primary(), cluster_->standby()));
  } else if (view == "standby_apply") {
    resp.body =
        CollectVStandbyApply(cluster_->standby(), cluster_->lag_monitor())
            .ToJson();
  } else if (view == "transport") {
    resp.body = VTransportJson(CollectVTransport(cluster_));
  } else if (view == "persist") {
    resp.body = CollectVPersist(cluster_->standby()).ToJson();
  } else {
    resp.status = 404;
    resp.body = "{\"error\":\"unknown view '" + JsonEscape(view) +
                "'; try im_segments, standby_apply, transport, persist\"}";
  }
  return resp;
}

void ClusterObservability::Register(obs::ObsServer* server) {
  server->Handle("/metrics", [this](const obs::HttpRequest&) {
    obs::HttpResponse resp;
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = MetricsText();
    return resp;
  });
  server->Handle("/metrics.json", [this](const obs::HttpRequest&) {
    obs::HttpResponse resp;
    resp.content_type = "application/json";
    resp.body = MetricsJson();
    return resp;
  });
  server->Handle("/healthz",
                 [this](const obs::HttpRequest&) { return Healthz(); });
  server->Handle("/readyz",
                 [this](const obs::HttpRequest&) { return Readyz(); });
  server->Handle("/traces", [this](const obs::HttpRequest&) {
    obs::HttpResponse resp;
    resp.content_type = "application/json";
    resp.body = TracesJson();
    return resp;
  });
  server->Handle("/queries", [this](const obs::HttpRequest&) {
    obs::HttpResponse resp;
    resp.content_type = "application/json";
    resp.body = QueriesJson();
    return resp;
  });
  server->HandlePrefix("/v/", [this](const obs::HttpRequest& req) {
    return View(req.path.substr(3));
  });
}

}  // namespace stratus
