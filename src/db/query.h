#ifndef STRATUS_DB_QUERY_H_
#define STRATUS_DB_QUERY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "db/catalog.h"
#include "db/query_profile.h"
#include "imcs/expression.h"
#include "imcs/scan_engine.h"
#include "storage/buffer_cache.h"
#include "storage/table.h"
#include "txn/txn_manager.h"

namespace stratus {

// AggKind lives in imcs/scan_engine.h (aggregation push-down folds inside
// the scan engine's workers); re-exported here for query authors.

/// A filtered full-table scan, the query shape of the paper's evaluation
/// (Table 1: `SELECT * FROM t WHERE n1 = :1` / `WHERE c1 = :2`).
struct ScanQuery {
  ObjectId object = kInvalidObjectId;
  std::vector<Predicate> predicates;
  /// Bypass the IMCS (the paper's "without DBIM" baseline).
  bool force_row_store = false;
  AggKind agg = AggKind::kNone;
  uint32_t agg_column = 0;  ///< For kSum/kMin/kMax (integer columns).
  /// Degree of parallelism for the scan; 0 = the context's default DOP.
  uint32_t dop = 0;
};

/// An equi-join between two scans (dimension-style joins of Figure 2): each
/// output row is the concatenation left ++ right.
struct JoinQuery {
  ObjectId left = kInvalidObjectId;
  ObjectId right = kInvalidObjectId;
  uint32_t left_column = 0;
  uint32_t right_column = 0;
  std::vector<Predicate> left_predicates;
  std::vector<Predicate> right_predicates;
  /// Bypass the IMCS on both build and probe sides (the paper's "without
  /// DBIM" baseline for Figure 2-style joins).
  bool force_row_store = false;
  /// Degree of parallelism for both sides' scans; 0 = the context default.
  uint32_t dop = 0;
};

/// Query execution outcome.
struct QueryResult {
  std::vector<Row> rows;     ///< Materialized rows (empty for aggregates).
  uint64_t count = 0;        ///< Matching row count.
  int64_t agg_int = 0;       ///< kSum/kMin/kMax result.
  bool agg_valid = false;    ///< False when no non-null input reached the agg.
  Scn snapshot = kInvalidScn;
  ScanStats stats;
  /// Execution profile (always populated): pruning/reconciliation counts,
  /// per-worker lanes, commit lookups, freshness at execution.
  QueryProfile profile;
};

/// Everything a query needs from its database role — both roles (and every
/// standby instance service) build one of these.
struct QueryContext {
  const Catalog* catalog = nullptr;
  const BufferCache* cache = nullptr;
  const VisibilityResolver* resolver = nullptr;
  std::function<Table*(ObjectId)> table_lookup;
  /// Column stores consulted by scans (all RAC instances of the role).
  std::vector<const ImStore*> stores;
  SnapshotRegistry* snapshots = nullptr;  ///< Optional (GC watermark).
  /// In-Memory Expressions for virtual-column predicates/aggregates.
  const ImExpressionRegistry* expressions = nullptr;
  /// Scan DOP applied when a query leaves its `dop` at 0 (from
  /// DatabaseOptions::scan_dop). 0/1 = serial.
  uint32_t default_dop = 1;
  /// Worker pool for parallel scans; null = ThreadPool::Shared().
  ThreadPool* pool = nullptr;

  // --- Observability ---------------------------------------------------------
  /// Role tag stamped into every QueryProfile.
  const char* role = "primary";
  /// Slow-query ring + in-flight registry of the owning role (null: profiles
  /// still fill, nothing is logged).
  SlowQueryLog* slow_log = nullptr;
  /// Role-specific profile annotation applied just before a query completes
  /// (the standby samples its journal/commit-table occupancy and the lag
  /// monitor here; the primary stamps zero staleness).
  std::function<void(QueryProfile*)> annotate;
};

/// Cumulative scan accounting across every query executed by one engine;
/// per-query `ScanStats` snapshots stay in `QueryResult`, these totals feed
/// the metrics registry.
struct ScanTotals {
  std::atomic<uint64_t> scans{0};
  std::atomic<uint64_t> joins{0};
  std::atomic<uint64_t> index_fetches{0};
  std::atomic<uint64_t> rows_from_imcs{0};
  std::atomic<uint64_t> rows_from_rowstore{0};
  std::atomic<uint64_t> imcus_scanned{0};
  std::atomic<uint64_t> imcus_pruned{0};
  std::atomic<uint64_t> imcus_skipped{0};
  std::atomic<uint64_t> blocks_rowpath{0};
  std::atomic<uint64_t> invalid_rowpath{0};
  std::atomic<uint64_t> parallel_tasks{0};
  std::atomic<uint64_t> kernel_swar_words{0};
  std::atomic<uint64_t> kernel_avx2_words{0};
  std::atomic<uint64_t> kernel_scalar_rows{0};

  void Add(const ScanStats& s) {
    rows_from_imcs.fetch_add(s.rows_from_imcs, std::memory_order_relaxed);
    rows_from_rowstore.fetch_add(s.rows_from_rowstore, std::memory_order_relaxed);
    imcus_scanned.fetch_add(s.imcus_scanned, std::memory_order_relaxed);
    imcus_pruned.fetch_add(s.imcus_pruned, std::memory_order_relaxed);
    imcus_skipped.fetch_add(s.imcus_skipped, std::memory_order_relaxed);
    blocks_rowpath.fetch_add(s.blocks_rowpath, std::memory_order_relaxed);
    invalid_rowpath.fetch_add(s.invalid_rowpath, std::memory_order_relaxed);
    parallel_tasks.fetch_add(s.parallel_tasks, std::memory_order_relaxed);
    kernel_swar_words.fetch_add(s.kernel_swar_words, std::memory_order_relaxed);
    kernel_avx2_words.fetch_add(s.kernel_avx2_words, std::memory_order_relaxed);
    kernel_scalar_rows.fetch_add(s.kernel_scalar_rows,
                                 std::memory_order_relaxed);
  }
};

/// The query engine shared by primary and standby (the paper stresses the
/// standby runs the same engine and inherits every In-Memory Scan Engine
/// optimization).
class QueryEngine {
 public:
  /// Runs `query` at `snapshot` (primary: current visible SCN; standby: the
  /// QuerySCN).
  StatusOr<QueryResult> ExecuteScan(const QueryContext& ctx, const ScanQuery& query,
                                    Scn snapshot) const;

  /// Hash equi-join: builds on the right input, probes with the left.
  StatusOr<QueryResult> ExecuteJoin(const QueryContext& ctx, const JoinQuery& query,
                                    Scn snapshot) const;

  /// Point lookup through the identity index (the OLTAP workload's "fetch").
  StatusOr<std::optional<Row>> IndexFetch(const QueryContext& ctx, ObjectId object,
                                          int64_t key, Scn snapshot) const;

  /// Lifetime totals across all queries run by this engine.
  const ScanTotals& totals() const { return totals_; }

 private:
  ScanEngine scan_engine_;
  mutable ScanTotals totals_;
};

}  // namespace stratus

#endif  // STRATUS_DB_QUERY_H_
