#ifndef STRATUS_DB_QUERY_H_
#define STRATUS_DB_QUERY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "db/catalog.h"
#include "db/plan.h"
#include "db/query_profile.h"
#include "imcs/expression.h"
#include "imcs/scan_engine.h"
#include "storage/buffer_cache.h"
#include "storage/table.h"
#include "txn/txn_manager.h"

namespace stratus {

// AggKind lives in imcs/scan_engine.h (aggregation push-down folds inside
// the scan engine's workers); re-exported here for query authors.

/// A filtered full-table scan, the query shape of the paper's evaluation
/// (Table 1: `SELECT * FROM t WHERE n1 = :1` / `WHERE c1 = :2`) — widened
/// with grouped aggregation and projection for the operator-tree executor.
struct ScanQuery {
  ObjectId object = kInvalidObjectId;
  std::vector<Predicate> predicates;
  /// Bypass the IMCS (the paper's "without DBIM" baseline); overrides the
  /// planner's per-table access-path choice.
  bool force_row_store = false;
  /// Legacy single-aggregate surface (kept: push-down folds inside the scan
  /// engine's workers). Ignored when `aggregates` is non-empty.
  AggKind agg = AggKind::kNone;
  uint32_t agg_column = 0;  ///< For kSum/kMin/kMax (integer columns).
  /// GROUP BY key columns (schema or virtual). Requires `aggregates`.
  /// Output rows are group key values ++ one value per aggregate, sorted by
  /// key tuple (deterministic at any DOP).
  std::vector<uint32_t> group_by;
  /// Aggregates computed per group — or, with `group_by` empty, one global
  /// output row of aggregate values (SQL semantics: COUNT of zero rows is 0,
  /// SUM/MIN/MAX of zero rows is NULL).
  std::vector<AggSpec> aggregates;
  /// Columns kept in non-aggregated output (empty = all columns, including
  /// registered In-Memory Expression virtual columns).
  std::vector<uint32_t> projection;
  /// Degree of parallelism for the scan; 0 = the context's default DOP.
  uint32_t dop = 0;
};

/// An equi-join between two scans (dimension-style joins of Figure 2): each
/// output row is the concatenation left ++ right.
struct JoinQuery {
  ObjectId left = kInvalidObjectId;
  ObjectId right = kInvalidObjectId;
  uint32_t left_column = 0;
  uint32_t right_column = 0;
  std::vector<Predicate> left_predicates;
  std::vector<Predicate> right_predicates;
  /// Bypass the IMCS on both build and probe sides (the paper's "without
  /// DBIM" baseline for Figure 2-style joins).
  bool force_row_store = false;
  /// Degree of parallelism for both sides' scans; 0 = the context default.
  uint32_t dop = 0;
};

/// One dimension hop of a multi-way join: equi-join the rows accumulated so
/// far (probe side) against `object` (joinee) on
/// `accumulated[probe_column] == object_row[build_column]`. Matching output
/// rows are the concatenation accumulated ++ joinee row, so each hop widens
/// the layout by the joinee's arity and later hops may probe on any column
/// of any earlier table.
struct JoinEdge {
  ObjectId object = kInvalidObjectId;
  uint32_t probe_column = 0;  ///< Index into the accumulated (joined) layout.
  uint32_t build_column = 0;  ///< Index into `object`'s own layout.
  /// Pushed into `object`'s scan (its own layout).
  std::vector<Predicate> predicates;
};

/// A chain of 2+ equi-joins, star-schema style (the paper's Figure 2 mixed
/// workload shape: fact table joined to several dimensions), with optional
/// residual predicates, grouped aggregation, and projection over the final
/// joined layout.
struct MultiJoinQuery {
  ObjectId fact = kInvalidObjectId;           ///< Driving (probe) table.
  std::vector<Predicate> fact_predicates;     ///< Pushed into the fact scan.
  std::vector<JoinEdge> joins;                ///< Applied in order.
  /// Residual conjuncts over the fully joined layout (cross-table filters
  /// that cannot push into any single scan).
  std::vector<Predicate> joined_predicates;
  /// Grouped aggregation over the joined layout (same semantics as
  /// ScanQuery::group_by/aggregates).
  std::vector<uint32_t> group_by;
  std::vector<AggSpec> aggregates;
  std::vector<uint32_t> projection;  ///< Over the joined layout; empty = all.
  /// Bypass the IMCS on every table (planner override).
  bool force_row_store = false;
  /// Degree of parallelism for every scan; 0 = the context default.
  uint32_t dop = 0;
};

/// Query execution outcome.
struct QueryResult {
  /// Materialized rows. Empty for single-aggregate queries; grouped queries
  /// return one row per group (key values ++ aggregate values, sorted by key
  /// tuple); ungrouped multi-aggregate queries return exactly one row of
  /// aggregate values.
  std::vector<Row> rows;
  /// Matching row count for scans/joins and single aggregates; for grouped /
  /// multi-aggregate queries this is rows.size() (the profile's `matches`
  /// keeps the matching input-row count).
  uint64_t count = 0;
  int64_t agg_int = 0;       ///< kSum/kMin/kMax result (first aggregate).
  bool agg_valid = false;    ///< False when no non-null input reached the agg.
  /// A kSum aggregate's exact total left the int64 range somewhere in this
  /// query; the reported value is saturated at the bound. Identical across
  /// IMCS/row paths, kernels, and DOP (the fold carries an exact 128-bit
  /// sum).
  bool agg_overflow = false;
  Scn snapshot = kInvalidScn;
  ScanStats stats;
  /// Execution profile (always populated): pruning/reconciliation counts,
  /// per-operator stages, per-worker lanes, commit lookups, freshness at
  /// execution.
  QueryProfile profile;
};

/// Everything a query needs from its database role — both roles (and every
/// standby instance service) build one of these.
struct QueryContext {
  const Catalog* catalog = nullptr;
  const BufferCache* cache = nullptr;
  const VisibilityResolver* resolver = nullptr;
  std::function<Table*(ObjectId)> table_lookup;
  /// Column stores consulted by scans (all RAC instances of the role).
  std::vector<const ImStore*> stores;
  SnapshotRegistry* snapshots = nullptr;  ///< Optional (GC watermark).
  /// In-Memory Expressions for virtual-column predicates/aggregates.
  const ImExpressionRegistry* expressions = nullptr;
  /// Scan DOP applied when a query leaves its `dop` at 0 (from
  /// DatabaseOptions::scan_dop). 0/1 = serial.
  uint32_t default_dop = 1;
  /// Worker pool for parallel scans; null = ThreadPool::Shared().
  ThreadPool* pool = nullptr;
  /// Access-path planner knobs (from DatabaseOptions::planner).
  PlannerOptions planner;

  // --- Observability ---------------------------------------------------------
  /// Role tag stamped into every QueryProfile.
  const char* role = "primary";
  /// Slow-query ring + in-flight registry of the owning role (null: profiles
  /// still fill, nothing is logged).
  SlowQueryLog* slow_log = nullptr;
  /// Role-specific profile annotation applied just before a query completes
  /// (the standby samples its journal/commit-table occupancy and the lag
  /// monitor here; the primary stamps zero staleness).
  std::function<void(QueryProfile*)> annotate;
};

/// Cumulative scan accounting across every query executed by one engine;
/// per-query `ScanStats` snapshots stay in `QueryResult`, these totals feed
/// the metrics registry.
struct ScanTotals {
  std::atomic<uint64_t> scans{0};
  std::atomic<uint64_t> joins{0};
  std::atomic<uint64_t> index_fetches{0};
  std::atomic<uint64_t> rows_from_imcs{0};
  std::atomic<uint64_t> rows_from_rowstore{0};
  std::atomic<uint64_t> imcus_scanned{0};
  std::atomic<uint64_t> imcus_pruned{0};
  std::atomic<uint64_t> imcus_skipped{0};
  std::atomic<uint64_t> blocks_rowpath{0};
  std::atomic<uint64_t> invalid_rowpath{0};
  std::atomic<uint64_t> parallel_tasks{0};
  std::atomic<uint64_t> kernel_swar_words{0};
  std::atomic<uint64_t> kernel_avx2_words{0};
  std::atomic<uint64_t> kernel_scalar_rows{0};

  void Add(const ScanStats& s) {
    rows_from_imcs.fetch_add(s.rows_from_imcs, std::memory_order_relaxed);
    rows_from_rowstore.fetch_add(s.rows_from_rowstore, std::memory_order_relaxed);
    imcus_scanned.fetch_add(s.imcus_scanned, std::memory_order_relaxed);
    imcus_pruned.fetch_add(s.imcus_pruned, std::memory_order_relaxed);
    imcus_skipped.fetch_add(s.imcus_skipped, std::memory_order_relaxed);
    blocks_rowpath.fetch_add(s.blocks_rowpath, std::memory_order_relaxed);
    invalid_rowpath.fetch_add(s.invalid_rowpath, std::memory_order_relaxed);
    parallel_tasks.fetch_add(s.parallel_tasks, std::memory_order_relaxed);
    kernel_swar_words.fetch_add(s.kernel_swar_words, std::memory_order_relaxed);
    kernel_avx2_words.fetch_add(s.kernel_avx2_words, std::memory_order_relaxed);
    kernel_scalar_rows.fetch_add(s.kernel_scalar_rows,
                                 std::memory_order_relaxed);
  }
};

/// The query engine shared by primary and standby (the paper stresses the
/// standby runs the same engine and inherits every In-Memory Scan Engine
/// optimization).
class QueryEngine {
 public:
  /// Runs `query` at `snapshot` (primary: current visible SCN; standby: the
  /// QuerySCN).
  StatusOr<QueryResult> ExecuteScan(const QueryContext& ctx, const ScanQuery& query,
                                    Scn snapshot) const;

  /// Hash equi-join. The executor builds the hash table on whichever side
  /// materialized fewer rows; output order stays canonical (probe-row order,
  /// build matches in build order) so the choice never changes result bytes.
  StatusOr<QueryResult> ExecuteJoin(const QueryContext& ctx, const JoinQuery& query,
                                    Scn snapshot) const;

  /// Star-schema chain of 2+ equi-joins with optional residual filters,
  /// grouped aggregation, and projection over the joined layout.
  StatusOr<QueryResult> ExecuteMultiJoin(const QueryContext& ctx,
                                         const MultiJoinQuery& query,
                                         Scn snapshot) const;

  /// Point lookup through the identity index (the OLTAP workload's "fetch").
  StatusOr<std::optional<Row>> IndexFetch(const QueryContext& ctx, ObjectId object,
                                          int64_t key, Scn snapshot) const;

  /// Lifetime totals across all queries run by this engine.
  const ScanTotals& totals() const { return totals_; }

 private:
  /// Plans, builds the operator tree, executes it, and finalizes the shared
  /// profile/slow-log/result bookkeeping for every facade entry point.
  StatusOr<QueryResult> ExecutePlan(const QueryContext& ctx, Plan plan,
                                    uint32_t query_dop, Scn snapshot) const;

  ScanEngine scan_engine_;
  Planner planner_;
  mutable ScanTotals totals_;
};

}  // namespace stratus

#endif  // STRATUS_DB_QUERY_H_
