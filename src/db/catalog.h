#ifndef STRATUS_DB_CATALOG_H_
#define STRATUS_DB_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/schema.h"

namespace stratus {

/// Where an object's data is populated in-memory — which database service the
/// customer attached its INMEMORY attribute to (Figure 2's deployment model).
enum class ImService : uint8_t {
  kNone = 0,
  kPrimaryOnly = 1,
  kStandbyOnly = 2,
  kBoth = 3,
};

inline bool ImOnPrimary(ImService s) {
  return s == ImService::kPrimaryOnly || s == ImService::kBoth;
}
inline bool ImOnStandby(ImService s) {
  return s == ImService::kStandbyOnly || s == ImService::kBoth;
}

/// The data dictionary. Schema and in-memory attributes are SCN-effective:
/// each DDL adds a version stamped with its SCN, so standby queries running
/// at an older QuerySCN keep resolving the old definition (Section III.G).
class Catalog {
 public:
  struct TableMeta {
    ObjectId object_id = kInvalidObjectId;
    TenantId tenant = kDefaultTenant;
    std::string name;
    /// Ascending by SCN; front is the creation version.
    std::vector<std::pair<Scn, Schema>> schema_versions;
    std::vector<std::pair<Scn, ImService>> im_versions;
    bool has_identity_index = false;
    Scn dropped_scn = kMaxScn;
  };

  /// Registers a table created at `scn`. Fails on duplicate name per tenant.
  StatusOr<ObjectId> CreateTable(const std::string& name, TenantId tenant,
                                 Schema schema, ImService service,
                                 bool identity_index, Scn scn);

  /// Mirrors a table definition with a fixed object id (standby bootstrap).
  Status CreateTableWithId(ObjectId object_id, const std::string& name,
                           TenantId tenant, Schema schema, ImService service,
                           bool identity_index, Scn scn);

  StatusOr<ObjectId> FindByName(const std::string& name, TenantId tenant) const;

  bool Exists(ObjectId object_id) const;
  bool ExistsAt(ObjectId object_id, Scn scn) const;

  /// Schema in effect at `scn` (the newest version with version-scn <= scn).
  StatusOr<Schema> SchemaAt(ObjectId object_id, Scn scn) const;
  StatusOr<Schema> CurrentSchema(ObjectId object_id) const;

  ImService ImServiceAt(ObjectId object_id, Scn scn) const;
  ImService CurrentImService(ObjectId object_id) const;

  TenantId TenantOf(ObjectId object_id) const;
  bool HasIdentityIndex(ObjectId object_id) const;
  StatusOr<std::string> NameOf(ObjectId object_id) const;

  // DDL mutators (each records a new SCN-effective version).
  Status DropTable(ObjectId object_id, Scn scn);
  Status DropColumn(ObjectId object_id, uint32_t column_idx, Scn scn);
  Status SetImService(ObjectId object_id, ImService service, Scn scn);

  std::vector<ObjectId> AllObjects() const;

 private:
  const TableMeta* FindLocked(ObjectId object_id) const;

  mutable std::shared_mutex mu_;
  std::unordered_map<ObjectId, TableMeta> tables_;
  std::map<std::pair<TenantId, std::string>, ObjectId> by_name_;
  ObjectId next_object_id_ = 1001;
};

}  // namespace stratus

#endif  // STRATUS_DB_CATALOG_H_
