#ifndef STRATUS_DB_QUERY_PROFILE_H_
#define STRATUS_DB_QUERY_PROFILE_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "imcs/scan_engine.h"

namespace stratus {

/// Per-pool-lane rollup of one query's scan tasks: which thread ran how many
/// tasks, how long they waited behind the submit, and how long they ran.
struct WorkerLane {
  uint32_t worker = 0;         ///< Dense obs thread ordinal.
  uint64_t tasks = 0;
  uint64_t queue_wait_us = 0;  ///< Summed task start − scan submit.
  uint64_t exec_us = 0;        ///< Summed task run time.
};

/// One operator's slice of a query's execution, recorded by the operator-tree
/// executor in depth-first (leaves-first) order. Scan leaves carry the
/// planner's access-path decision and the engine accounting for that table;
/// joins record which side the hash table was built on; aggregates record
/// group counts.
struct OperatorStage {
  std::string op;  ///< "scan" | "filter" | "project" | "hash_agg" | "hash_join".
  ObjectId object = kInvalidObjectId;  ///< Scan leaves: the table scanned.
  std::string path;    ///< Scan leaves: "imcs" | "row" (planner's choice).
  std::string reason;  ///< Scan leaves: why the planner chose `path`.
  double invalid_fraction = 0.0;  ///< Scan: SMU invalidity the planner saw.
  uint64_t rows_in = 0;   ///< Rows pulled from the child (0 for leaves).
  uint64_t rows_out = 0;  ///< Rows handed to the parent.
  uint64_t groups = 0;       ///< hash_agg: distinct group keys.
  uint64_t build_rows = 0;   ///< hash_join: hash-table side input rows.
  uint64_t probe_rows = 0;   ///< hash_join: probe side input rows.
  std::string build_side;    ///< hash_join: "left" | "right" (smaller input).
  uint64_t elapsed_us = 0;   ///< Wall time attributable to this operator.
  ScanStats scan;            ///< Scan leaves: engine accounting.

  std::string ToJson() const;
};

/// The `Explain()`-style execution profile attached to every QueryResult:
/// where the rows came from (IMCS vs row path), what pruned, what the SMU
/// reconciliation re-fetched, how the parallel tasks spread over workers,
/// how many commit-status lookups visibility resolution made, the IM-ADG
/// journal/commit-table occupancy sampled at execution, and the QuerySCN
/// plus its lag behind the primary at the moment the query ran.
struct QueryProfile {
  uint64_t query_id = 0;       ///< From the role's SlowQueryLog (0 = unlogged).
  std::string kind;            ///< "scan" | "join".
  std::string role;            ///< "primary" | "standby".
  ObjectId object = kInvalidObjectId;
  ObjectId join_right = kInvalidObjectId;  ///< Build side of a join.
  Scn snapshot = kInvalidScn;  ///< The QuerySCN the query executed at.

  /// Engine accounting: rows_from_imcs / rows_from_rowstore split,
  /// imcus_scanned / imcus_pruned / imcus_skipped, blocks_rowpath, the SMU
  /// reconciliation hits (invalid_rowpath), parallel_tasks, and the
  /// kernel_* attribution of which filter kernel built the match bitmaps.
  ScanStats scan;
  uint64_t rows_returned = 0;  ///< Materialized rows handed back.
  uint64_t matches = 0;        ///< Matching rows (aggregates included).

  /// Per-operator execution stages (operator-tree executor), depth-first
  /// from the leaves — the EXPLAIN plan with live counters attached.
  std::vector<OperatorStage> stages;

  uint32_t dop = 1;
  std::vector<WorkerLane> lanes;  ///< Per-worker rollup, sorted by worker.

  /// Commit-status lookups the visibility resolver made for this query (the
  /// standby's TxnTable is fed by the IM-ADG commit machinery; on the
  /// primary this counts live-txn resolutions).
  uint64_t commit_lookups = 0;
  /// IM-ADG occupancy sampled at execution (standby only; imadg_sampled
  /// gates validity).
  uint64_t journal_live_anchors = 0;
  uint64_t commit_table_live_nodes = 0;
  bool imadg_sampled = false;

  /// Freshness at execution: the primary's SCN and the QuerySCN's lag behind
  /// it, read from the cluster lag monitor (lag_sampled gates validity — a
  /// standalone standby has no primary mark to compare against).
  Scn primary_scn = kInvalidScn;
  uint64_t staleness_scn = 0;
  int64_t staleness_us = 0;
  bool lag_sampled = false;

  uint64_t started_at_us = 0;  ///< Monotonic clock, for ordering.
  uint64_t wall_us = 0;
  uint64_t caller_cpu_us = 0;  ///< Calling thread's CPU (workers excluded).

  /// Multi-line human-readable rendering (EXPLAIN-style).
  std::string Explain() const;
  /// One JSON object (the /queries endpoint's row format).
  std::string ToJson() const;
};

/// A query currently executing (registered by SlowQueryLog::Begin, removed
/// by End), for the /queries endpoint's in-flight table.
struct InFlightQuery {
  uint64_t query_id = 0;
  std::string kind;
  ObjectId object = kInvalidObjectId;
  Scn snapshot = kInvalidScn;
  uint64_t started_at_us = 0;
};

/// Bounded ring of completed query profiles plus the in-flight registry —
/// one per database role. `threshold_us = 0` records every completed query
/// (the ring is bounded anyway); a positive threshold keeps only queries at
/// least that slow, the classic slow-query log.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(size_t capacity = 128, uint64_t threshold_us = 0)
      : capacity_(capacity), threshold_us_(threshold_us) {}

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  /// Registers an in-flight query; returns its id (stamped into the
  /// profile by End).
  uint64_t Begin(const std::string& kind, ObjectId object, Scn snapshot);
  /// Completes `query_id`: drops it from the in-flight set and records the
  /// profile in the ring when it cleared the threshold.
  void End(uint64_t query_id, QueryProfile profile);

  std::vector<QueryProfile> Completed() const;  ///< Oldest → newest.
  std::vector<InFlightQuery> InFlight() const;
  uint64_t total_completed() const;

  /// {"in_flight":[...],"completed":[...]} for the /queries endpoint.
  std::string ToJson() const;

 private:
  const size_t capacity_;
  const uint64_t threshold_us_;

  mutable std::mutex mu_;
  uint64_t next_id_ = 1;
  uint64_t completed_ = 0;
  std::deque<QueryProfile> ring_;
  std::unordered_map<uint64_t, InFlightQuery> in_flight_;
};

/// Folds a scan engine profile into per-worker lanes (sorted by worker).
std::vector<WorkerLane> RollupLanes(const ScanProfile& profile);

}  // namespace stratus

#endif  // STRATUS_DB_QUERY_PROFILE_H_
