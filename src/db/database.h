#ifndef STRATUS_DB_DATABASE_H_
#define STRATUS_DB_DATABASE_H_

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "adg/redo_apply.h"
#include "adg/redo_splitter.h"
#include "common/status.h"
#include "common/types.h"
#include "db/catalog.h"
#include "db/query.h"
#include "imadg/flush.h"
#include "imadg/mining.h"
#include "imcs/expression.h"
#include "imcs/population.h"
#include "obs/lag_monitor.h"
#include "obs/metrics.h"
#include "persist/persist_controller.h"
#include "persist/persist_options.h"
#include "persist/recovery.h"
#include "rac/home_location_map.h"
#include "rac/transport.h"
#include "redo/log_merger.h"
#include "redo/log_shipping.h"
#include "redo/redo_log.h"
#include "storage/buffer_cache.h"
#include "txn/txn_manager.h"

namespace stratus {

/// Degraded-health report for a standby (the swallowed-apply-error fix): any
/// non-OK apply status latches here and quarantines the affected IMCUs.
struct StandbyHealth {
  bool degraded = false;
  uint64_t apply_errors = 0;
  uint64_t quarantined_imcus = 0;
  std::string first_error;  ///< Empty while healthy.
};

/// Cluster-wide configuration.
struct DatabaseOptions {
  /// Redo-generating primary instances (RAC redo threads).
  int primary_redo_threads = 1;
  /// Standby RAC instances; instance 0 is the redo-apply master (SIRA).
  uint32_t standby_instances = 1;

  RedoApplyOptions apply;
  ShipperOptions shipping;

  /// IM-ADG Journal buckets (sized to redo-apply parallelism).
  size_t journal_buckets = 64;
  /// IM-ADG Commit Table partitions (1 = the paper's single sorted list).
  size_t commit_table_partitions = 4;
  FlushOptions flush;

  PopulationOptions population;
  size_t im_pool_bytes = 2ull * 1024 * 1024 * 1024;

  TransportOptions transport;

  /// Multi-Instance Redo Apply (MIRA, Section V): number of apply instances
  /// sharing recovery. 1 = Single Instance Redo Apply (SIRA, the paper's
  /// shipping configuration); >1 splits the redo stream by DBA across several
  /// apply engines under one global QuerySCN.
  int mira_apply_instances = 1;

  /// Specialized redo generation (Section III.E).
  bool specialized_redo = true;
  /// The paper's headline switch: DBIM-on-ADG infrastructure on the standby.
  bool standby_imadg_enabled = true;
  /// DBIM on the primary itself (dual-format primary).
  bool primary_imcs_enabled = true;

  /// Default scan degree of parallelism for queries that leave
  /// `ScanQuery::dop` / `JoinQuery::dop` at 0. 1 = serial (the seed
  /// behavior); >1 fans each scan out over the shared ThreadPool.
  uint32_t scan_dop = 1;

  /// Access-path planner knobs (per-table IMCS vs row-path choice from SMU
  /// invalidity and storage-index statistics).
  PlannerOptions planner;

  /// Metrics registry every component publishes into. Null means the
  /// process-wide obs::MetricsRegistry::Global(); tests pass their own for
  /// isolation.
  obs::MetricsRegistry* registry = nullptr;
  /// Identity of this standby in a multi-standby fleet ("sb0", …). Non-empty
  /// adds a {"standby", name} label to every StandbyDb-exported series so N
  /// standbys sharing one registry stay distinguishable. Empty (the default)
  /// keeps the historical single-standby label set unchanged.
  std::string standby_name;
  /// Lag-monitor poll interval (AdgCluster).
  int64_t lag_poll_interval_us = 5'000;

  /// Completed-query ring capacity of each role's SlowQueryLog.
  size_t slow_query_log_capacity = 128;
  /// Only queries at least this slow enter the ring (0 records every query;
  /// the ring is bounded either way).
  uint64_t slow_query_threshold_us = 0;

  /// Crash-injection controller for the STANDBY apply pipeline (chaos tests):
  /// threaded into the dispatcher, recovery workers, coordinator, mining,
  /// flush and standby population. The primary never observes it. Null in
  /// production wiring — every crash point then folds to one null check.
  chaos::ChaosController* chaos = nullptr;
  /// Per-(dba,slot) apply accounting on the standby: counts every successful
  /// physical data-CV apply, surviving crash–restart cycles, so the chaos
  /// auditor can prove no change vector was skipped or double-applied.
  /// Off by default (a mutex-guarded map on the apply path).
  bool apply_accounting = false;

  /// Standby durability (the persist/ subsystem): file-backed redo archive,
  /// fuzzy checkpoints and IMCS snapshot-resume restart. Disabled by default —
  /// the historical all-RAM behavior is byte-for-byte unchanged unless a data
  /// directory is configured.
  persist::PersistOptions persist;
};

/// The primary database: row store, transactions, redo generation, and its
/// own dual-format IMCS maintained by the DBIM Transaction Manager.
class PrimaryDb {
 public:
  explicit PrimaryDb(const DatabaseOptions& options);
  ~PrimaryDb();

  PrimaryDb(const PrimaryDb&) = delete;
  PrimaryDb& operator=(const PrimaryDb&) = delete;

  /// Starts background population (if primary IMCS is enabled).
  void Start();
  void Stop();

  // --- DDL / bootstrap ----------------------------------------------------
  StatusOr<ObjectId> CreateTable(const std::string& name, TenantId tenant,
                                 Schema schema, ImService service,
                                 bool identity_index);

  // --- DML ------------------------------------------------------------------
  Transaction Begin(RedoThreadId thread = 0, TenantId tenant = kDefaultTenant);
  Status Insert(Transaction* txn, ObjectId object, Row row, RowId* rid = nullptr);
  Status Update(Transaction* txn, ObjectId object, RowId rid, Row row);
  /// Index lookup + update of the full row image (OLTAP's update op).
  Status UpdateByKey(Transaction* txn, ObjectId object, int64_t key, Row row);
  Status Delete(Transaction* txn, ObjectId object, RowId rid);
  StatusOr<Scn> Commit(Transaction* txn);
  void Abort(Transaction* txn);

  // --- Queries ---------------------------------------------------------------
  StatusOr<QueryResult> Query(const ScanQuery& query);
  /// Runs the scan at an explicit snapshot SCN (flashback-style read; used to
  /// compare primary and standby results at the same consistency point).
  StatusOr<QueryResult> QueryAt(const ScanQuery& query, Scn snapshot);
  StatusOr<QueryResult> Join(const JoinQuery& query);
  /// Star-schema chain of equi-joins with optional grouped aggregation.
  StatusOr<QueryResult> MultiJoin(const MultiJoinQuery& query);
  /// Multi-join at an explicit snapshot SCN (flashback-style read; the
  /// standby-vs-primary consistency oracle).
  StatusOr<QueryResult> MultiJoinAt(const MultiJoinQuery& query, Scn snapshot);
  StatusOr<std::optional<Row>> Fetch(ObjectId object, int64_t key);

  // --- Maintenance -----------------------------------------------------------
  /// One version-chain GC pass over all blocks; returns versions freed.
  size_t PruneVersions();
  /// Synchronously populates the object's primary IMCUs.
  Status PopulateNow(ObjectId object);

  /// Registers an In-Memory Expression (Section V) for `object` and schedules
  /// the object's IMCUs for rebuild so the virtual column materializes.
  /// Returns the expression's virtual column index.
  StatusOr<uint32_t> RegisterImExpression(ObjectId object, Expression expr);

  // --- Accessors ---------------------------------------------------------------
  Catalog* catalog() { return &catalog_; }
  Table* table(ObjectId object) const;
  TxnManager* txn_manager() { return &txn_mgr_; }
  ScnAllocator* scn_allocator() { return &scns_; }
  RedoLog* redo_log(int thread) { return redo_logs_[thread].get(); }
  int redo_threads() const { return static_cast<int>(redo_logs_.size()); }
  BufferCache* cache() { return &cache_; }
  BlockStore* block_store() { return &blocks_; }
  ImStore* im_store() { return im_store_.get(); }
  Populator* populator() { return populator_.get(); }
  Scn current_scn() const { return txn_mgr_.visible_scn(); }
  QueryContext MakeQueryContext();
  const QueryEngine& query_engine() const { return query_engine_; }

  // --- Observability -----------------------------------------------------------
  obs::MetricsRegistry* registry() const { return registry_; }
  /// Prometheus-style text exposition of every series in the registry.
  std::string MetricsText() const;
  /// The same series as a JSON array.
  std::string MetricsJson() const;
  /// This role's slow-query ring + in-flight registry.
  SlowQueryLog* slow_query_log() { return &slow_log_; }
  const SlowQueryLog* slow_query_log() const { return &slow_log_; }

 private:
  class PrimaryCommitHooks : public CommitHooks {
   public:
    PrimaryCommitHooks(PrimaryImSync* sync, ImStore* store)
        : sync_(sync), store_(store) {}
    void PreCommitLock() override { sync_->LockShared(); }
    void OnCommit(const Transaction& txn, Scn commit_scn) override {
      for (const auto& [oid, rid] : txn.im_touches)
        store_->MarkRowInvalid(rid.dba, rid.slot);
      (void)commit_scn;
    }
    void PostCommitUnlock() override { sync_->UnlockShared(); }

   private:
    PrimaryImSync* sync_;
    ImStore* store_;
  };

  void ExportMetrics(obs::MetricsSink* sink) const;

  DatabaseOptions options_;
  ScnAllocator scns_;
  TxnTable txn_table_;
  BlockStore blocks_;
  BufferCache cache_{&blocks_};
  Catalog catalog_;
  std::vector<std::unique_ptr<RedoLog>> redo_logs_;
  TxnManager txn_mgr_;

  mutable std::shared_mutex tables_mu_;
  std::unordered_map<ObjectId, std::unique_ptr<Table>> tables_;

  // Primary IMCS (dual format).
  ImExpressionRegistry im_exprs_;
  PrimaryImSync im_sync_;
  std::unique_ptr<ImStore> im_store_;
  std::unique_ptr<PrimarySnapshotSource> snapshot_source_;
  std::unique_ptr<Populator> populator_;
  std::unique_ptr<PrimaryCommitHooks> commit_hooks_;

  QueryEngine query_engine_;
  SlowQueryLog slow_log_;
  bool started_ = false;

  // Declared last: the export callback reads the members above, so it must
  // detach (destruct) before any of them go away.
  obs::MetricsRegistry* registry_ = nullptr;
  obs::ScopedMetricsCallback metrics_cb_;

  friend class AdgCluster;
};

/// The standby database: physical replica maintained by parallel redo apply,
/// hosting the DBIM-on-ADG infrastructure and (optionally) a RAC-distributed
/// IMCS across several instances.
class StandbyDb : public ApplySink {
 public:
  StandbyDb(const DatabaseOptions& options, size_t num_streams);
  ~StandbyDb() override;

  StandbyDb(const StandbyDb&) = delete;
  StandbyDb& operator=(const StandbyDb&) = delete;

  /// Landing stream for primary redo thread `i` (wired to a LogShipper).
  ReceivedLog* stream(size_t i) { return streams_[i].get(); }

  /// Starts redo apply, the DBIM-on-ADG components, and population.
  void Start();
  /// Stops everything, retaining physical state (block store, txn table) and
  /// unconsumed received redo.
  void Stop();
  /// The Section III.E scenario: instance restart. All non-persistent state —
  /// the IMCS, the IM-ADG Journal and Commit Table — is lost; redo apply
  /// resumes from the last consistent point.
  void Restart();
  /// Restart after a CrashSignal killed one or more pipeline threads: tears
  /// the pipeline down with the crash-safe sequence (wake-then-join, abandon
  /// any in-progress QuerySCN advancement, drain crashed workers' queues into
  /// the row store so no change vector is lost), discards all non-persistent
  /// state exactly as Restart() does, and rebuilds a fresh pipeline over the
  /// surviving ReceivedLogs.
  void CrashRestart();

  // --- Durability (persist/ subsystem) ---------------------------------------
  /// Takes one fuzzy checkpoint: captures the dictionary, every data block's
  /// version chains (each under its own latch, apply running throughout), and
  /// the transaction table; writes it atomically; then — if configured — an
  /// IMCS snapshot of all ready SMUs. The recovery-start SCN is the published
  /// QuerySCN at capture begin. Also runs on the background cadence when
  /// `PersistOptions::checkpoint_interval_us` is set.
  Status TakeCheckpoint();
  /// Full disk restart: simulates process death (ALL volatile state is
  /// discarded — row store, txn table, table segments, IMCS, apply
  /// accounting), then re-opens the data directory exactly as a fresh boot
  /// would (segment rescan, CRC verification, torn-tail truncation), restores
  /// the last checkpoint, resumes the IMCS from its snapshot SCN, replays the
  /// archived redo tail, and rebuilds the pipeline.
  ///
  /// PRECONDITION: delivery is quiescent — callers stop every shipper feeding
  /// `stream(i)` first (AdgCluster::DiskRestartStandby and the fleet's disk
  /// restart do). Each stream is rewound to its durable watermark so the
  /// rejoining shipper redelivers exactly the redo recovery did not replay.
  Status DiskRestart();
  /// DiskRestart over the crash-safe teardown (post-CrashSignal pipelines).
  Status CrashDiskRestart();
  /// Durable (fsynced) archive watermark of stream `i`; kInvalidScn when
  /// persistence is off. The fleet's durable-floor cursor gate reads this.
  Scn DurableScn(size_t stream) const;
  /// Non-null between a successful persistence boot and destruction (swapped
  /// during DiskRestart; callers touching it must hold delivery quiescent).
  persist::PersistController* persist() { return persist_.get(); }
  bool persist_enabled() const { return options_.persist.enabled; }
  /// Construction-time options (immutable; safe from any thread).
  const DatabaseOptions& options() const { return options_; }
  /// Point-in-time persist counters (zeroed struct when persistence is off);
  /// safe to call from any thread, including during a concurrent DiskRestart.
  persist::PersistStats PersistStatsSnapshot() const;
  /// First error the durability layer latched (archive tee, boot, recovery);
  /// OK while healthy.
  Status persist_status() const;
  /// Result of the last boot/disk-restart recovery pass.
  persist::RecoveryResult last_recovery() const;
  uint64_t disk_restarts() const {
    return disk_restarts_.load(std::memory_order_relaxed);
  }
  /// SCN the last recovery pass certified complete (kInvalidScn before any).
  Scn disk_recovered_scn() const {
    return disk_recovered_scn_.load(std::memory_order_acquire);
  }

  // --- Bootstrap (physically replicated dictionary) -------------------------
  Status MirrorCreateTable(ObjectId object_id, const std::string& name,
                           TenantId tenant, Schema schema, ImService service,
                           bool identity_index);

  // --- Queries ----------------------------------------------------------------
  /// The published QuerySCN of an instance (master or local coordinator).
  Scn query_scn(InstanceId instance = kMasterInstance) const;
  /// Waits until the master QuerySCN reaches `target`.
  Scn WaitForQueryScn(Scn target, int64_t timeout_us) const;
  StatusOr<QueryResult> Query(const ScanQuery& query,
                              InstanceId instance = kMasterInstance);
  /// Runs the scan at an explicit snapshot SCN instead of the live QuerySCN
  /// (must be at or below the published QuerySCN to see consistent data).
  /// Lets callers pin one consistency point across several executions — the
  /// DOP-sweep tests re-run one query at every DOP against the same SCN.
  StatusOr<QueryResult> QueryAt(const ScanQuery& query, Scn snapshot);
  StatusOr<QueryResult> Join(const JoinQuery& query,
                             InstanceId instance = kMasterInstance);
  /// Star-schema chain of equi-joins at the live QuerySCN.
  StatusOr<QueryResult> MultiJoin(const MultiJoinQuery& query,
                                  InstanceId instance = 0);
  /// Multi-join pinned at an explicit snapshot SCN.
  StatusOr<QueryResult> MultiJoinAt(const MultiJoinQuery& query, Scn snapshot);
  /// Join pinned at an explicit snapshot SCN (QueryAt's join counterpart; the
  /// fleet router uses it for pinned-SCN contracts).
  StatusOr<QueryResult> JoinAt(const JoinQuery& query, Scn snapshot);
  StatusOr<std::optional<Row>> Fetch(ObjectId object, int64_t key,
                                     InstanceId instance = kMasterInstance);

  // --- Failover (role transition) -----------------------------------------
  /// Promotes this standby to a read-write primary: terminates redo apply at
  /// the last consistent point, bootstraps a transaction manager over the
  /// physical database (SCN/XID allocation resume above everything applied),
  /// and rewires the IMCS — which survives promotion intact — to commit-time
  /// maintenance. Received-but-undispatched redo is discarded, as in a
  /// failover. Irreversible for this object.
  Status Promote();
  bool promoted() const { return promoted_; }

  // --- DML (valid only after Promote()) -------------------------------------
  Transaction Begin(RedoThreadId thread = 0, TenantId tenant = kDefaultTenant);
  Status Insert(Transaction* txn, ObjectId object, Row row, RowId* rid = nullptr);
  Status UpdateByKey(Transaction* txn, ObjectId object, int64_t key, Row row);
  StatusOr<Scn> Commit(Transaction* txn);
  void Abort(Transaction* txn);
  TxnManager* promoted_txn_manager() { return promoted_mgr_.get(); }

  // --- Maintenance -------------------------------------------------------------
  Status PopulateNow(ObjectId object);
  size_t PruneVersions();

  /// Mirrors an In-Memory Expression registration (the dictionary metadata
  /// replicates physically in real ADG; the cluster bootstraps it here).
  Status MirrorImExpression(ObjectId object, Expression expr);

  // --- ApplySink -----------------------------------------------------------------
  Status ApplyCv(const ChangeVector& cv) override;

  // --- Introspection (tests, benches) ---------------------------------------------
  RecoveryCoordinator* coordinator() {
    if (mira_coordinator_ != nullptr) return mira_coordinator_.get();
    return engine_ != nullptr ? engine_->coordinator() : nullptr;
  }
  /// MIRA introspection.
  size_t mira_instances() const { return mira_engines_.size(); }
  RedoApplyEngine* mira_engine(size_t i) { return mira_engines_[i].get(); }
  RedoApplyEngine* apply_engine() { return engine_.get(); }
  ImStore* im_store(InstanceId instance = kMasterInstance) {
    return instances_[instance].store.get();
  }
  uint32_t instance_count() const {
    return static_cast<uint32_t>(instances_.size());
  }
  Populator* populator(InstanceId instance = kMasterInstance) {
    return instances_[instance].populator.get();
  }
  ImAdgJournal* journal() { return journal_.get(); }
  ImAdgCommitTable* commit_table() { return commit_table_.get(); }
  MiningComponent* mining() { return mining_.get(); }
  InvalidationFlushComponent* flush() { return flush_.get(); }
  InvalidationChannel* channel() { return channel_.get(); }
  TxnTable* txn_table() { return &txn_table_; }
  Catalog* catalog() { return &catalog_; }
  Table* table(ObjectId object) const;
  BufferCache* cache() { return &cache_; }
  BlockStore* block_store() { return &blocks_; }
  QueryContext MakeQueryContext() const;

  // --- Observability -----------------------------------------------------------
  obs::MetricsRegistry* registry() const { return registry_; }
  std::string MetricsText() const;
  std::string MetricsJson() const;
  /// This role's slow-query ring + in-flight registry.
  SlowQueryLog* slow_query_log() { return &slow_log_; }
  const SlowQueryLog* slow_query_log() const { return &slow_log_; }
  /// Installs (or clears, with nullptr) the freshness probe stamped into
  /// every query profile — AdgCluster wires its LagMonitor in here. The
  /// probe is invoked under an internal mutex, so clearing it guarantees no
  /// further calls once SetLagProbe returns.
  void SetLagProbe(std::function<obs::LagSnapshot()> probe);
  /// Highest SCN redo apply has put into the physical database (CV-level,
  /// monotonic, survives Stop()/Restart()) — the lag monitor's apply mark.
  Scn applied_scn() const {
    return applied_high_scn_.load(std::memory_order_acquire);
  }
  /// Last QuerySCN published by any pipeline incarnation (monotonic through
  /// Stop()/Restart(), safe to read from monitor threads during teardown).
  Scn published_query_scn() const {
    return last_query_scn_.load(std::memory_order_acquire);
  }

  // --- Health / chaos introspection -----------------------------------------
  /// True once any apply reported a non-OK status (error latched, IMCU
  /// quarantined). Cleared only by a restart (the quarantined IMCS is
  /// discarded and rebuilt from consistent data).
  bool degraded() const { return degraded_.load(std::memory_order_acquire); }
  StandbyHealth health() const;
  uint64_t restarts() const { return restarts_.load(std::memory_order_relaxed); }
  uint64_t crash_restarts() const {
    return crash_restarts_.load(std::memory_order_relaxed);
  }
  /// Key for the per-row apply accounting map (and the test-side ledger).
  static constexpr uint64_t AccountingKey(Dba dba, SlotId slot) {
    return (static_cast<uint64_t>(dba) << 20) | static_cast<uint64_t>(slot);
  }
  /// Copy of the per-(dba,slot) successful-apply counters (empty unless
  /// DatabaseOptions::apply_accounting).
  std::unordered_map<uint64_t, uint64_t> ApplyAccountingSnapshot() const;

 private:
  class StandbyApplier : public InvalidationApplier {
   public:
    explicit StandbyApplier(StandbyDb* db) : db_(db) {}
    void ApplyGroups(std::vector<InvalidationGroup> groups) override;
    void ApplyCoarseInvalidation(TenantId tenant) override;
    void ApplyDdl(const DdlMarker& marker) override;
    bool Drained() const override;
    void OnPublished(Scn query_scn) override;

   private:
    StandbyDb* db_;
    std::mutex ddl_mu_;
    std::vector<DdlMarker> pending_ddl_;  // Populator fixups, post-publish.
  };

  void BuildPipeline();
  void TearDownPipeline();
  /// TearDownPipeline's crash-safe variant (see CrashRestart()).
  void CrashTearDownPipeline();
  void EnableConfiguredObjects();
  /// Common tail of every data-CV apply: accounting, chaos error injection,
  /// and quarantine of the affected IMCUs on any non-OK status.
  Status FinishDataApply(const ChangeVector& cv, Status st);
  void QuarantineAfterApplyError(const ChangeVector& cv, const Status& st);
  void ResetHealthForRestart();
  /// Series that exist for the database's whole life (cache, scans, streams).
  void ExportCoreMetrics(obs::MetricsSink* sink) const;
  /// Series owned by one pipeline incarnation (journal, flush, apply, …);
  /// the callback detaches before TearDownPipeline frees any of them.
  void ExportPipelineMetrics(obs::MetricsSink* sink) const;
  Table* FindOrNullTable(ObjectId object) const;
  void ApplyDdlDictionary(const DdlMarker& marker, Scn scn);
  /// First-Start persistence bootstrap: opens the data directory, runs
  /// recovery (if configured), rewinds streams, installs the archive tees.
  void BootPersistence();
  /// Loads the latest checkpoint + IMCS snapshot and replays archived redo
  /// through a RecoveryManager wired to this database's dictionary/index/
  /// accounting hooks. Sets the apply marks and disk_recovered_scn_.
  Status RecoverFromDisk();
  /// Tees every stream's Deliver into the redo archive (archive-first).
  void InstallDurableSinks();
  Status DiskRestartInternal(bool crash);
  void NotePersistError(const Status& st);

  DatabaseOptions options_;
  BlockStore blocks_;
  BufferCache cache_{&blocks_};
  TxnTable txn_table_;
  Catalog catalog_;

  mutable std::shared_mutex tables_mu_;
  std::unordered_map<ObjectId, std::unique_ptr<Table>> tables_;

  std::vector<std::unique_ptr<ReceivedLog>> streams_;

  struct InstanceState {
    std::unique_ptr<ImStore> store;
    std::unique_ptr<RemoteInstance> remote;  // Null for the master instance.
    std::unique_ptr<SnapshotSource> snapshot_source;
    std::unique_ptr<Populator> populator;
  };
  std::vector<InstanceState> instances_;
  HomeLocationMap home_map_;
  ImExpressionRegistry im_exprs_;

  // DBIM-on-ADG components (rebuilt on restart: no persistence).
  std::unique_ptr<ImAdgJournal> journal_;
  std::unique_ptr<ImAdgCommitTable> commit_table_;
  std::unique_ptr<DdlInfoTable> ddl_table_;
  std::unique_ptr<StandbyApplier> applier_;
  std::unique_ptr<InvalidationFlushComponent> flush_;
  std::unique_ptr<MiningComponent> mining_;
  std::unique_ptr<InvalidationChannel> channel_;

  std::unique_ptr<RedoApplyEngine> engine_;

  // MIRA (Section V): splitter + per-instance engines + global coordinator.
  std::vector<std::unique_ptr<ReceivedLog>> mira_streams_;
  std::vector<std::unique_ptr<RedoApplyEngine>> mira_engines_;
  std::vector<std::unique_ptr<OffsetApplyHooks>> mira_hooks_;
  std::unique_ptr<RedoSplitter> splitter_;
  std::unique_ptr<RecoveryCoordinator> mira_coordinator_;

  SnapshotRegistry snapshots_;
  mutable QueryEngine query_engine_;
  mutable SlowQueryLog slow_log_;
  mutable std::mutex lag_probe_mu_;
  std::function<obs::LagSnapshot()> lag_probe_;  ///< Guarded by lag_probe_mu_.
  std::atomic<Scn> last_query_scn_{kInvalidScn};    ///< Survives Stop().
  std::atomic<Scn> last_applied_scn_{kInvalidScn};  ///< Survives Stop().
  std::atomic<Scn> applied_high_scn_{kInvalidScn};  ///< CV-level apply mark.
  bool started_ = false;

  // Degraded health (swallowed-apply-error fix). Cleared on restart.
  std::atomic<bool> degraded_{false};
  std::atomic<uint64_t> apply_error_count_{0};      ///< Monotonic.
  std::atomic<uint64_t> quarantined_imcus_{0};      ///< Monotonic.
  mutable std::mutex health_mu_;
  std::string first_apply_error_;                   ///< Guarded by health_mu_.

  std::atomic<uint64_t> restarts_{0};
  std::atomic<uint64_t> crash_restarts_{0};
  std::atomic<uint64_t> disk_restarts_{0};

  // Durability. The controller pointer is swapped during DiskRestart (a fresh
  // open models a fresh process); persist_mu_ guards the swap against
  // concurrent metric scrapes. The archive tee captures the raw pointer and
  // is removed before any swap, so the hot path takes no lock.
  mutable std::mutex persist_mu_;
  std::unique_ptr<persist::PersistController> persist_;  ///< persist_mu_ (swap).
  Status persist_status_;                     ///< Guarded by persist_mu_.
  persist::RecoveryResult last_recovery_;     ///< Guarded by persist_mu_.
  std::atomic<Scn> disk_recovered_scn_{kInvalidScn};

  // Per-row apply accounting (chaos exactly-once audits). Survives restarts.
  mutable std::mutex accounting_mu_;
  std::unordered_map<uint64_t, uint64_t> apply_accounting_;

  // Failover state (the standby's new life as a primary).
  class PromotedCommitHooks : public CommitHooks {
   public:
    PromotedCommitHooks(PrimaryImSync* sync, std::vector<ImStore*> stores)
        : sync_(sync), stores_(std::move(stores)) {}
    void PreCommitLock() override { sync_->LockShared(); }
    void OnCommit(const Transaction& txn, Scn) override {
      for (const auto& [oid, rid] : txn.im_touches) {
        for (ImStore* store : stores_) store->MarkRowInvalid(rid.dba, rid.slot);
      }
    }
    void PostCommitUnlock() override { sync_->UnlockShared(); }

   private:
    PrimaryImSync* sync_;
    std::vector<ImStore*> stores_;
  };

  bool promoted_ = false;
  ScnAllocator promoted_scns_;
  std::vector<std::unique_ptr<RedoLog>> promoted_logs_;
  std::unique_ptr<TxnManager> promoted_mgr_;
  std::unique_ptr<PrimaryImSync> promoted_sync_;
  std::unique_ptr<PrimarySnapshotSource> promoted_snapshot_;
  std::unique_ptr<PromotedCommitHooks> promoted_hooks_;

  // Declared last (destroyed first): export callbacks read the members above.
  obs::MetricsRegistry* registry_ = nullptr;
  obs::ScopedMetricsCallback metrics_cb_;           ///< Lifetime of the db.
  obs::ScopedMetricsCallback pipeline_metrics_cb_;  ///< Lifetime of a pipeline.
};

/// A full deployment: primary + standby connected by redo shipping — the
/// Figure 1 topology. Tables created here exist on both sides (the dictionary
/// is physically replicated in ADG; we bootstrap it at creation).
class AdgCluster {
 public:
  explicit AdgCluster(const DatabaseOptions& options);
  ~AdgCluster();

  AdgCluster(const AdgCluster&) = delete;
  AdgCluster& operator=(const AdgCluster&) = delete;

  void Start();
  void Stop();

  PrimaryDb* primary() { return &primary_; }
  StandbyDb* standby() { return &standby_; }

  StatusOr<ObjectId> CreateTable(const std::string& name, TenantId tenant,
                                 Schema schema, ImService service,
                                 bool identity_index);

  /// Registers an In-Memory Expression on both databases and schedules IMCU
  /// rebuilds; returns the expression's virtual column index.
  StatusOr<uint32_t> RegisterImExpression(ObjectId object, const Expression& expr);

  /// Blocks until the standby QuerySCN covers everything committed on the
  /// primary as of the call. Returns the QuerySCN reached.
  Scn WaitForCatchup(int64_t timeout_us = 30'000'000);

  uint64_t shipped_bytes() const;

  // --- Observability -----------------------------------------------------------
  obs::MetricsRegistry* registry() const { return registry_; }
  std::string MetricsText() const;
  std::string MetricsJson() const;
  /// The cluster's standing lag monitor (non-null between Start and Stop).
  obs::LagMonitor* lag_monitor() { return lag_monitor_.get(); }
  /// Redo-transport introspection for the v$transport view (valid between
  /// Start and Stop, like lag_monitor()).
  size_t shipper_count() const { return shippers_.size(); }
  const LogShipper* shipper(size_t i) const { return shippers_[i].get(); }
  /// Fault injection: pause/resume every redo shipper (transport lag
  /// accumulates while paused; Stop() still drains).
  void SetShippingPaused(bool paused);

  /// Kills the standby down to its data directory and recovers it from disk
  /// (StandbyDb::DiskRestart, `crash` selects the crash-safe teardown). This
  /// is the cluster-level orchestration that satisfies DiskRestart's
  /// delivery-quiescence precondition: temporary hold cursors pin the redo
  /// log's retention, the shippers stop and are discarded, the standby
  /// recovers, and fresh shippers redeliver the tail — which the rewound
  /// stream watermarks dedup against what recovery already replayed.
  Status DiskRestartStandby(bool crash = false);

 private:
  DatabaseOptions options_;
  PrimaryDb primary_;
  StandbyDb standby_;
  std::vector<std::unique_ptr<LogShipper>> shippers_;
  bool started_ = false;

  obs::MetricsRegistry* registry_ = nullptr;
  std::unique_ptr<obs::LagMonitor> lag_monitor_;
  obs::ScopedMetricsCallback shipper_metrics_cb_;
};

}  // namespace stratus

#endif  // STRATUS_DB_DATABASE_H_
