#ifndef STRATUS_DB_DDL_H_
#define STRATUS_DB_DDL_H_

#include <string>

#include "common/status.h"
#include "db/database.h"

namespace stratus {

/// Primary-side executor for the dictionary-only DDLs the paper's Section
/// III.G discusses. Each DDL:
///  1. records a new SCN-effective version in the primary catalog,
///  2. takes effect on the primary's own IMCS immediately (DBIM on the
///     primary is tightly integrated with DDL),
///  3. emits a redo *marker* change vector, which the standby's Mining
///     Component buffers in the DDL Information Table so the standby's IMCUs
///     are dropped exactly at the QuerySCN that covers the DDL.
class DdlExecutor {
 public:
  explicit DdlExecutor(PrimaryDb* db) : db_(db) {}

  Status DropTable(ObjectId object_id);
  Status DropColumn(ObjectId object_id, const std::string& column_name);
  Status AlterInMemory(ObjectId object_id, ImService service);
  /// ALTER TABLE ... NO INMEMORY.
  Status NoInMemory(ObjectId object_id);

 private:
  Scn EmitMarker(const DdlMarker& marker);

  PrimaryDb* db_;
};

}  // namespace stratus

#endif  // STRATUS_DB_DDL_H_
